#include <set>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace csm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, CopySemantics) {
  Status s = Status::IOError("disk gone");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
  // Original unaffected by copies going out of scope.
  { Status u = t; (void)u; }
  EXPECT_EQ(s.message(), "disk gone");
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::NotFound("x").WithContext("loading y");
  EXPECT_EQ(s.message(), "loading y: x");
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kIOError,
        StatusCode::kParseError, StatusCode::kResourceExhausted,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> HelperReturning(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return x * 2;
}

Result<int> HelperChained(int x) {
  CSM_ASSIGN_OR_RETURN(int doubled, HelperReturning(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = HelperChained(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  auto err = HelperChained(-1);
  EXPECT_TRUE(err.status().IsOutOfRange());
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtilTest, Split) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, SplitTopLevelRespectsNesting) {
  auto pieces = SplitTopLevel("f(a,b), [c,d], e", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(StripWhitespace(pieces[0]), "f(a,b)");
  EXPECT_EQ(StripWhitespace(pieces[1]), "[c,d]");
  EXPECT_EQ(StripWhitespace(pieces[2]), "e");
}

TEST(StringUtilTest, ParseNumbers) {
  int64_t i;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("12x", &i));
  EXPECT_FALSE(ParseInt64("", &i));
  uint64_t u;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("-1", &u));
  double d;
  EXPECT_TRUE(ParseDouble(" 3.5e2 ", &d));
  EXPECT_DOUBLE_EQ(d, 350.0);
  EXPECT_FALSE(ParseDouble("1.2.3", &d));
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("measure x", "measure"));
  EXPECT_FALSE(StartsWith("me", "measure"));
  EXPECT_TRUE(EndsWith("count.m", ".m"));
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
}

TEST(HashTest, VectorHashDistinguishes) {
  std::vector<uint64_t> a{1, 2, 3};
  std::vector<uint64_t> b{1, 2, 4};
  std::vector<uint64_t> c{3, 2, 1};
  EXPECT_NE(HashVector(a), HashVector(b));
  EXPECT_NE(HashVector(a), HashVector(c));
  EXPECT_EQ(HashVector(a), HashVector({1, 2, 3}));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardZero) {
  Rng rng(42);
  size_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(1000, 0.9);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // Under heavy skew, a large share of draws land in the first decile of
  // ranks; uniform would give ~1%.
  EXPECT_GT(low, static_cast<size_t>(n / 20));
}

TEST(RngTest, CoverageOfUniform) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(16));
  EXPECT_EQ(seen.size(), 16u);
}

}  // namespace
}  // namespace csm
