#include "exec/multi_pass.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "opt/footprint.h"
#include "opt/pass_planner.h"
#include "opt/sort_order.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::MakeUniformFacts;

Workflow ParseOrDie(const SchemaPtr& schema, const char* dsl) {
  auto workflow = Workflow::Parse(schema, dsl);
  EXPECT_TRUE(workflow.ok()) << workflow.status().ToString();
  return std::move(*workflow);
}

SortKey KeyOrDie(const Schema& schema, const char* text) {
  auto key = SortKey::Parse(schema, text);
  EXPECT_TRUE(key.ok()) << key.status().ToString();
  return *key;
}

TEST(FootprintTest, SortedDimensionShrinksTheEstimate) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  Workflow workflow = ParseOrDie(
      schema, "measure C at (d0:L0, d1:L0) = agg count(*) from FACT;");
  auto with = EstimateFootprint(workflow, KeyOrDie(*schema, "<d0:L0>"));
  auto without = EstimateFootprint(workflow, KeyOrDie(*schema, "<>"));
  ASSERT_TRUE(with.ok() && without.ok());
  // Sorting by d0 leaves only one d0 value live (times d1's cardinality);
  // no order leaves the full d0 x d1 product.
  EXPECT_LT(with->total_entries, without->total_entries / 100);
}

TEST(FootprintTest, CoarserSortComponentLeavesBlockLive) {
  // Table 6's worked example: data sorted by month, measure at day ->
  // ~30 entries live; sorted by day -> ~1.
  auto schema = MakeNetworkLogSchema(/*time_cardinality=*/1e7);
  Workflow workflow =
      ParseOrDie(schema, "measure C at (t:day) = agg count(*) from FACT;");
  auto by_month = EstimateFootprint(workflow, KeyOrDie(*schema, "<t:month>"));
  auto by_day = EstimateFootprint(workflow, KeyOrDie(*schema, "<t:day>"));
  ASSERT_TRUE(by_month.ok() && by_day.ok());
  EXPECT_GT(by_month->total_entries, 20);
  EXPECT_LT(by_month->total_entries, 80);
  EXPECT_LT(by_day->total_entries, 5);
}

TEST(FootprintTest, SiblingSlackInflatesTheEstimate) {
  auto schema = MakeNetworkLogSchema(1e7);
  Workflow plain = ParseOrDie(schema, R"(
      measure C at (t:hour) = agg count(*) from FACT;)");
  Workflow windowed = ParseOrDie(schema, R"(
      measure C at (t:hour) = agg count(*) from FACT hidden;
      measure W at (t:hour) = match C using sibling(t in [0, 23])
          agg avg(M);)");
  SortKey key = KeyOrDie(*schema, "<t:hour>");
  auto a = EstimateFootprint(plain, key);
  auto b = EstimateFootprint(windowed, key);
  ASSERT_TRUE(a.ok() && b.ok());
  // The windowed measure must account for ~24 hours of in-flight state.
  EXPECT_GT(b->total_entries, a->total_entries + 20);
}

TEST(FootprintTest, ParentChildSlackMatchesThePaperExample) {
  // §5.3: S_ratio at day depending on the monthly aggregate has slack
  // about one month (30 days here).
  auto schema = MakeNetworkLogSchema(1e8);
  Workflow workflow = ParseOrDie(schema, R"(
      measure Monthly at (t:month) = agg count(*) from FACT;
      measure Daily at (t:day) = agg count(*) from FACT;
      measure Share at (t:day) = match Monthly using parentchild
          agg sum(M);)");
  auto report =
      EstimateFootprint(workflow, KeyOrDie(*schema, "<t:day>"));
  ASSERT_TRUE(report.ok());
  const MeasureFootprint* share = nullptr;
  for (const auto& fp : report->measures) {
    if (fp.name == "Share") share = &fp;
  }
  ASSERT_NE(share, nullptr);
  EXPECT_NEAR(share->slack[0], 29.0, 1.0);  // fan-out(day->month) - 1
  EXPECT_GT(share->entries, 25);
  EXPECT_LT(share->entries, 40);
}

TEST(SortOrderSearchTest, BruteForcePicksAUsefulOrder) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  Workflow workflow = ParseOrDie(schema, R"(
      measure Big at (d0:L0, d1:L0) = agg count(*) from FACT;
      measure Side at (d2:L1) = agg count(*) from FACT;)");
  auto best = BruteForceSortKey(workflow);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  // The chosen order must cover the large measure's dimensions.
  auto chosen = EstimateFootprint(workflow, *best);
  auto empty = EstimateFootprint(workflow, SortKey());
  ASSERT_TRUE(chosen.ok() && empty.ok());
  EXPECT_LT(chosen->total_entries, empty->total_entries / 50);
}

TEST(SortOrderSearchTest, GreedyCloseToBruteForce) {
  auto schema = MakeNetworkLogSchema(1e7, 1e5);
  Workflow workflow = ParseOrDie(schema, R"(
      measure Count at (t:hour, U:net24) = agg count(*) from FACT hidden;
      measure Busy at (t:hour) = agg count(M) from Count where M > 3;
      measure Avg at (t:hour) = match Busy using sibling(t in [0, 5])
          agg avg(M);
      measure ByNet at (V:net16, t:day) = agg count(*) from FACT;)");
  auto brute = BruteForceSortKey(workflow);
  auto greedy = GreedySortKey(workflow);
  ASSERT_TRUE(brute.ok() && greedy.ok());
  auto brute_cost = EstimateFootprint(workflow, *brute);
  auto greedy_cost = EstimateFootprint(workflow, *greedy);
  ASSERT_TRUE(brute_cost.ok() && greedy_cost.ok());
  EXPECT_LE(brute_cost->total_entries, greedy_cost->total_entries);
  // Greedy should be within a small factor of optimal on this workload.
  EXPECT_LT(greedy_cost->total_entries,
            brute_cost->total_entries * 10 + 100);
}

TEST(SortOrderSearchTest, ChosenOrderActuallyReducesRuntimeMemory) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 20000, 1000, 71);
  Workflow workflow = ParseOrDie(
      schema, "measure C at (d0:L0, d1:L0) = agg count(*) from FACT;");
  auto best = BruteForceSortKey(workflow);
  ASSERT_TRUE(best.ok());

  auto run = [&](const SortKey& key) {
    EngineOptions options;
    options.sort_key = key;
    SortScanEngine engine;
    auto got = testing_util::RunWith(engine, workflow, fact, options);
    EXPECT_TRUE(got.ok());
    return got->stats.peak_hash_entries;
  };
  const uint64_t best_peak = run(*best);
  const uint64_t bad_peak = run(KeyOrDie(*schema, "<d2:L0>"));
  EXPECT_LT(best_peak, bad_peak / 10);
}

TEST(PassPlannerTest, SinglePassWhenBudgetIsAmple) {
  auto schema = MakeNetworkLogSchema();
  Workflow workflow = ParseOrDie(schema, R"(
      measure A at (t:hour) = agg count(*) from FACT;
      measure B at (t:day) = agg sum(M) from A;)");
  auto plan = PlanPasses(workflow, 1e9);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->passes.size(), 1u);
  EXPECT_TRUE(plan->post_pass_indices.empty());
  EXPECT_EQ(plan->passes[0].measure_indices.size(), 2u);
}

TEST(PassPlannerTest, SplitsConflictingOrdersUnderPressure) {
  // Two large measures on disjoint dimensions: one sort order cannot
  // serve both within a small budget, so they land in separate passes.
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  Workflow workflow = ParseOrDie(schema, R"(
      measure A at (d0:L0, d1:L0) = agg count(*) from FACT;
      measure B at (d2:L0, d3:L0) = agg count(*) from FACT;)");
  auto tight = PlanPasses(workflow, 2000);
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(tight->passes.size(), 2u);
  // Every measure still gets evaluated exactly once.
  size_t assigned = tight->post_pass_indices.size();
  for (const auto& pass : tight->passes) {
    assigned += pass.measure_indices.size();
  }
  EXPECT_EQ(assigned, 2u);
}

TEST(PassPlannerTest, CrossPassDependentsAreDeferred) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  Workflow workflow = ParseOrDie(schema, R"(
      measure A at (d0:L0, d1:L0) = agg count(*) from FACT;
      measure B at (d2:L0, d3:L0) = agg count(*) from FACT;
      measure RollA at (d0:L1) = agg sum(M) from A;)");
  auto plan = PlanPasses(workflow, 2000);
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(plan->passes.size(), 2u);
  // RollA's input A lives in pass 1; RollA itself cannot stream in pass 2
  // and must be combined post-pass.
  bool rolla_deferred = false;
  for (int idx : plan->post_pass_indices) {
    if (workflow.measures()[idx].name == "RollA") rolla_deferred = true;
  }
  EXPECT_TRUE(rolla_deferred);
}

TEST(MultiPassEngineTest, ReportsMultiplePassesUnderPressure) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 8000, 1000, 77);
  Workflow workflow = ParseOrDie(schema, R"(
      measure A at (d0:L0, d1:L0) = agg count(*) from FACT;
      measure B at (d2:L0, d3:L0) = agg count(*) from FACT;
      measure RollA at (d0:L1) = agg sum(M) from A;)");
  EngineOptions options;
  options.memory_budget_bytes = 128 << 10;
  MultiPassEngine engine;
  auto got = testing_util::RunWith(engine, workflow, fact, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(got->stats.passes, 2);
  EXPECT_EQ(got->tables.size(), 3u);
  EXPECT_GT(got->stats.rows_scanned, fact.num_rows());  // several scans
}

}  // namespace
}  // namespace csm
