#ifndef CSM_TESTS_TEST_UTIL_H_
#define CSM_TESTS_TEST_UTIL_H_

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/engine.h"
#include "exec/exec_context.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"

namespace csm {
namespace testing_util {

/// Runs a (stateless) engine under a fresh ExecContext carrying `options`
/// — the test-side replacement for the old per-engine options ctors.
inline Result<EvalOutput> RunWith(Engine& engine, const Workflow& workflow,
                                  const FactTable& fact,
                                  EngineOptions options = {}) {
  ExecContext ctx;
  ctx.options = std::move(options);
  return engine.Run(workflow, fact, ctx);
}

/// Asserts a Status / Result is OK with a useful failure message.
#define CSM_ASSERT_OK(expr)                                 \
  do {                                                      \
    const auto& _s = (expr);                                \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (false)

#define CSM_ASSERT_RESULT_OK(expr)                          \
  do {                                                      \
    const auto& _r = (expr);                                \
    ASSERT_TRUE(_r.ok()) << _r.status().ToString();         \
  } while (false)

#define CSM_EXPECT_OK(expr)                                 \
  do {                                                      \
    const auto& _s = (expr);                                \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (false)

/// Unwraps a Result<T> inside a test, failing fatally on error.
#define CSM_ASSERT_OK_AND_ASSIGN(lhs, expr)                 \
  CSM_ASSERT_OK_AND_ASSIGN_IMPL(                            \
      CSM_TEST_CONCAT(_csm_test_result_, __LINE__), lhs, expr)
#define CSM_TEST_CONCAT_(a, b) a##b
#define CSM_TEST_CONCAT(a, b) CSM_TEST_CONCAT_(a, b)
#define CSM_ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)       \
  auto tmp = (expr);                                        \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();         \
  lhs = std::move(tmp).ValueOrDie()

/// Generates `rows` uniform records over the synthetic schema (dims in
/// [0, card)), measure = small integers. Deterministic per seed.
inline FactTable MakeUniformFacts(SchemaPtr schema, size_t rows,
                                  uint64_t card, uint64_t seed) {
  Rng rng(seed);
  FactTable fact(schema);
  fact.Reserve(rows);
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  std::vector<Value> dims(d);
  std::vector<double> measures(m);
  for (size_t row = 0; row < rows; ++row) {
    for (int i = 0; i < d; ++i) dims[i] = rng.Uniform(card);
    for (int i = 0; i < m; ++i) {
      measures[i] = static_cast<double>(rng.Uniform(100));
    }
    fact.AppendRow(dims.data(), measures.data());
  }
  return fact;
}

/// Canonical map form of a measure table: key -> value, for comparisons.
inline std::map<std::vector<Value>, double> ToMap(const MeasureTable& t) {
  std::map<std::vector<Value>, double> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::vector<Value> key(t.key_row(row), t.key_row(row) + t.num_dims());
    out[key] = t.value(row);
  }
  return out;
}

/// Expects two measure tables to hold the same regions and values
/// (NaN == NaN; doubles compared with a small tolerance).
inline void ExpectTablesEqual(const MeasureTable& a, const MeasureTable& b,
                              const std::string& context = "") {
  auto ma = ToMap(a);
  auto mb = ToMap(b);
  EXPECT_EQ(ma.size(), mb.size())
      << context << ": row count " << ma.size() << " vs " << mb.size();
  for (const auto& [key, va] : ma) {
    auto it = mb.find(key);
    if (it == mb.end()) {
      ADD_FAILURE() << context << ": key missing from second table";
      continue;
    }
    const double vb = it->second;
    if (std::isnan(va) || std::isnan(vb)) {
      EXPECT_TRUE(std::isnan(va) && std::isnan(vb))
          << context << ": " << va << " vs " << vb;
    } else {
      EXPECT_NEAR(va, vb, 1e-9 * (1.0 + std::fabs(va)))
          << context << ": value mismatch";
    }
  }
}

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTS_TEST_UTIL_H_
