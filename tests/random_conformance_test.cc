// Property-based cross-engine conformance: random workflows over random
// data must produce identical results on every engine and under every
// sort order. This is the strongest single check of the streaming
// machinery — any frontier, slack, or watermark bug shows up as a value
// or region diff against the reference evaluator.
//
// The generators live in src/testing/ (shared with the csm_fuzz driver);
// this suite pins a fixed corpus of seeds so failures are addressable by
// name, while csm_fuzz explores fresh seeds every campaign.

#include "algebra/evaluator.h"
#include "exec/adaptive.h"
#include "exec/multi_pass.h"
#include "exec/parallel.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "relational/relational_engine.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"
#include "testing/data_gen.h"
#include "testing/random_workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::FactDist;
using testing_util::FactGenOptions;
using testing_util::GenerateFacts;
using testing_util::RandomWorkflowGen;

std::map<std::string, MeasureTable> Reference(const Workflow& workflow,
                                              const FactTable& fact) {
  std::map<std::string, MeasureTable> computed;
  for (const MeasureDef& def : workflow.measures()) {
    auto expr = workflow.ToAlgebra(def.name, /*deep=*/false);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    MeasureEnv env;
    for (const auto& [name, table] : computed) env[name] = &table;
    auto result = EvalAwExpr(**expr, fact, env);
    EXPECT_TRUE(result.ok()) << def.name << ": "
                             << result.status().ToString();
    computed.emplace(def.name, std::move(*result));
  }
  return computed;
}

void CheckOutput(const Result<EvalOutput>& got, const Workflow& workflow,
                 const std::map<std::string, MeasureTable>& expected,
                 const std::string& context) {
  ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString()
                        << "\nworkflow:\n"
                        << workflow.ToDsl();
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output) continue;
    auto it = got->tables.find(def.name);
    if (it == got->tables.end()) {
      ADD_FAILURE() << context << " missing " << def.name;
      continue;
    }
    ExpectTablesEqual(it->second, expected.at(def.name),
                      context + "/" + def.name + "\nworkflow:\n" +
                          workflow.ToDsl());
  }
}

void CheckEngine(Engine& engine, const Workflow& workflow,
                 const FactTable& fact,
                 const std::map<std::string, MeasureTable>& expected,
                 const std::string& context,
                 EngineOptions options = {}) {
  CheckOutput(testing_util::RunWith(engine, workflow, fact, options),
              workflow, expected, context);
}

// Each seed gets a different data distribution so the fixed corpus also
// exercises skew, duplicates, and hierarchy-boundary values.
FactTable CorpusFacts(const SchemaPtr& schema, uint64_t seed) {
  FactGenOptions options;
  options.rows = 2000;
  options.cardinality = 512;
  options.seed = seed * 31 + 7;
  options.dist = static_cast<FactDist>(seed % 4);
  options.negative_measures = (seed % 5) == 0;
  return GenerateFacts(schema, options);
}

class RandomConformanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomConformanceTest, AllEnginesAgreeOnRandomWorkflows) {
  const uint64_t seed = GetParam();
  auto schema = MakeSyntheticSchema(3, 3, 8, 512);
  FactTable fact = CorpusFacts(schema, seed);
  RandomWorkflowGen gen(schema, seed);
  Workflow workflow = gen.Generate(8);
  auto expected = Reference(workflow, fact);

  SingleScanEngine single_scan;
  RelationalEngine relational;
  SortScanEngine sort_scan_default;
  CheckEngine(single_scan, workflow, fact, expected, "single-scan");
  CheckEngine(relational, workflow, fact, expected, "relational");
  CheckEngine(sort_scan_default, workflow, fact, expected,
              "sort-scan-default");

  // Sort/scan under random orders.
  Rng rng(seed ^ 0xabcdef);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<int> dims{0, 1, 2};
    for (size_t i = dims.size(); i > 1; --i) {
      std::swap(dims[i - 1], dims[rng.Uniform(i)]);
    }
    std::vector<SortKeyPart> parts;
    const size_t prefix = 1 + rng.Uniform(3);
    for (size_t i = 0; i < prefix; ++i) {
      parts.push_back({dims[i], static_cast<int>(rng.Uniform(3))});
    }
    EngineOptions options;
    options.sort_key = SortKey(parts);
    SortScanEngine engine;
    CheckEngine(engine, workflow, fact, expected,
                "sort-scan " + options.sort_key.ToString(*schema), options);
  }

  // Batch-boundary sweep: record-at-a-time (1), a batch size that never
  // divides the 2000-row corpus (7), and the default made explicit.
  for (size_t batch_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
    EngineOptions options;
    options.scan_batch_rows = batch_rows;
    SortScanEngine engine;
    CheckEngine(engine, workflow, fact, expected,
                "sort-scan/b" + std::to_string(batch_rows), options);
  }

  // Multi-pass at a random tight budget, and adaptive.
  EngineOptions tight;
  tight.memory_budget_bytes = (16 + rng.Uniform(512)) << 10;
  MultiPassEngine multi_pass;
  CheckEngine(multi_pass, workflow, fact, expected, "multi-pass", tight);
  AdaptiveEngine adaptive;
  CheckEngine(adaptive, workflow, fact, expected, "adaptive");

  // Parallel at 1 (degenerate single shard), 2, and 8 workers — covers
  // both the partitioned path and the sequential fallback, depending on
  // what the random workflow allows.
  ParallelSortScanEngine parallel;
  for (int threads : {1, 2, 8}) {
    EngineOptions options;
    options.parallel_threads = threads;
    CheckEngine(parallel, workflow, fact, expected,
                "parallel/t" + std::to_string(threads), options);
  }

  // Out-of-core: the same facts streamed from a binary file through
  // RunFile's external sort under a budget small enough to force spills.
  auto scratch = TempDir::Make();
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  const std::string path = scratch->NewFilePath("conformance-facts");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());
  ExecContext ctx;
  ctx.options.memory_budget_bytes = 64 << 10;
  SortScanEngine streaming;
  CheckOutput(streaming.RunFile(workflow, path, ctx), workflow, expected,
              "sort-scan-runfile/64KB");

  // Same out-of-core stream with a tiny odd batch, so merge batches end
  // mid-run and the scan sees many short batches.
  ExecContext tiny_batch_ctx;
  tiny_batch_ctx.options.memory_budget_bytes = 64 << 10;
  tiny_batch_ctx.options.scan_batch_rows = 7;
  SortScanEngine streaming_b7;
  CheckOutput(streaming_b7.RunFile(workflow, path, tiny_batch_ctx),
              workflow, expected, "sort-scan-runfile/64KB/b7");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConformanceTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(RandomWorkflowGenTest, ProducesValidVariedWorkflows) {
  auto schema = MakeSyntheticSchema(3, 3, 8, 512);
  int ops_seen[4] = {0, 0, 0, 0};
  for (uint64_t seed = 100; seed < 140; ++seed) {
    RandomWorkflowGen gen(schema, seed);
    Workflow workflow = gen.Generate(8);
    EXPECT_GE(workflow.measures().size(), 1u);
    for (const MeasureDef& def : workflow.measures()) {
      ops_seen[static_cast<int>(def.op)]++;
    }
    // Round-trips through the DSL.
    auto reparsed = Workflow::Parse(schema, workflow.ToDsl());
    EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << workflow.ToDsl();
  }
  // All four operator families appear across the corpus.
  EXPECT_GT(ops_seen[0], 0) << "base";
  EXPECT_GT(ops_seen[1], 0) << "rollup";
  EXPECT_GT(ops_seen[2], 0) << "match";
  EXPECT_GT(ops_seen[3], 0) << "combine";
}

TEST(FactGenTest, DistributionsAreDeterministicAndInRange) {
  auto schema = MakeSyntheticSchema(3, 3, 8, 512);
  for (int dist = 0; dist < 4; ++dist) {
    FactGenOptions options;
    options.rows = 500;
    options.cardinality = 512;
    options.seed = 99 + dist;
    options.dist = static_cast<FactDist>(dist);
    FactTable a = GenerateFacts(schema, options);
    FactTable b = GenerateFacts(schema, options);
    ASSERT_EQ(a.num_rows(), 500u);
    ASSERT_EQ(b.num_rows(), 500u);
    for (size_t row = 0; row < a.num_rows(); ++row) {
      for (int i = 0; i < schema->num_dims(); ++i) {
        EXPECT_EQ(a.dim_row(row)[i], b.dim_row(row)[i]);
        EXPECT_LT(a.dim_row(row)[i], 512u);
      }
      for (int i = 0; i < schema->num_measures(); ++i) {
        EXPECT_EQ(a.measure_row(row)[i], b.measure_row(row)[i]);
      }
    }
  }
}

}  // namespace
}  // namespace csm
