// Property-based cross-engine conformance: random workflows over random
// data must produce identical results on every engine and under every
// sort order. This is the strongest single check of the streaming
// machinery — any frontier, slack, or watermark bug shows up as a value
// or region diff against the reference evaluator.

#include "algebra/evaluator.h"
#include "exec/adaptive.h"
#include "exec/multi_pass.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "random_workflow.h"
#include "relational/relational_engine.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;
using testing_util::RandomWorkflowGen;

std::map<std::string, MeasureTable> Reference(const Workflow& workflow,
                                              const FactTable& fact) {
  std::map<std::string, MeasureTable> computed;
  for (const MeasureDef& def : workflow.measures()) {
    auto expr = workflow.ToAlgebra(def.name, /*deep=*/false);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    MeasureEnv env;
    for (const auto& [name, table] : computed) env[name] = &table;
    auto result = EvalAwExpr(**expr, fact, env);
    EXPECT_TRUE(result.ok()) << def.name << ": "
                             << result.status().ToString();
    computed.emplace(def.name, std::move(*result));
  }
  return computed;
}

void CheckEngine(Engine& engine, const Workflow& workflow,
                 const FactTable& fact,
                 const std::map<std::string, MeasureTable>& expected,
                 const std::string& context,
                 EngineOptions options = {}) {
  auto got = testing_util::RunWith(engine, workflow, fact, options);
  ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString()
                        << "\nworkflow:\n"
                        << workflow.ToDsl();
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output) continue;
    auto it = got->tables.find(def.name);
    if (it == got->tables.end()) {
      ADD_FAILURE() << context << " missing " << def.name;
      continue;
    }
    ExpectTablesEqual(it->second, expected.at(def.name),
                      context + "/" + def.name + "\nworkflow:\n" +
                          workflow.ToDsl());
  }
}

class RandomConformanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomConformanceTest, AllEnginesAgreeOnRandomWorkflows) {
  const uint64_t seed = GetParam();
  auto schema = MakeSyntheticSchema(3, 3, 8, 512);
  FactTable fact = MakeUniformFacts(schema, 2000, 512, seed * 31 + 7);
  RandomWorkflowGen gen(schema, seed);
  Workflow workflow = gen.Generate(8);
  auto expected = Reference(workflow, fact);

  SingleScanEngine single_scan;
  RelationalEngine relational;
  SortScanEngine sort_scan_default;
  CheckEngine(single_scan, workflow, fact, expected, "single-scan");
  CheckEngine(relational, workflow, fact, expected, "relational");
  CheckEngine(sort_scan_default, workflow, fact, expected,
              "sort-scan-default");

  // Sort/scan under random orders.
  Rng rng(seed ^ 0xabcdef);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<int> dims{0, 1, 2};
    for (size_t i = dims.size(); i > 1; --i) {
      std::swap(dims[i - 1], dims[rng.Uniform(i)]);
    }
    std::vector<SortKeyPart> parts;
    const size_t prefix = 1 + rng.Uniform(3);
    for (size_t i = 0; i < prefix; ++i) {
      parts.push_back({dims[i], static_cast<int>(rng.Uniform(3))});
    }
    EngineOptions options;
    options.sort_key = SortKey(parts);
    SortScanEngine engine;
    CheckEngine(engine, workflow, fact, expected,
                "sort-scan " + options.sort_key.ToString(*schema), options);
  }

  // Multi-pass at a random tight budget, and adaptive.
  EngineOptions tight;
  tight.memory_budget_bytes = (16 + rng.Uniform(512)) << 10;
  MultiPassEngine multi_pass;
  CheckEngine(multi_pass, workflow, fact, expected, "multi-pass", tight);
  AdaptiveEngine adaptive;
  CheckEngine(adaptive, workflow, fact, expected, "adaptive");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConformanceTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(RandomWorkflowGenTest, ProducesValidVariedWorkflows) {
  auto schema = MakeSyntheticSchema(3, 3, 8, 512);
  int ops_seen[4] = {0, 0, 0, 0};
  for (uint64_t seed = 100; seed < 140; ++seed) {
    RandomWorkflowGen gen(schema, seed);
    Workflow workflow = gen.Generate(8);
    EXPECT_GE(workflow.measures().size(), 1u);
    for (const MeasureDef& def : workflow.measures()) {
      ops_seen[static_cast<int>(def.op)]++;
    }
    // Round-trips through the DSL.
    auto reparsed = Workflow::Parse(schema, workflow.ToDsl());
    EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << workflow.ToDsl();
  }
  // All four operator families appear across the corpus.
  EXPECT_GT(ops_seen[0], 0) << "base";
  EXPECT_GT(ops_seen[1], 0) << "rollup";
  EXPECT_GT(ops_seen[2], 0) << "match";
  EXPECT_GT(ops_seen[3], 0) << "combine";
}

}  // namespace
}  // namespace csm
