#include "common/flat_hash.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace csm {
namespace {

using Key = std::vector<uint64_t>;

TEST(FlatKeyMapTest, InsertFindErase) {
  FlatKeyMap<int> map(3);
  uint64_t a[3] = {1, 2, 3};
  uint64_t b[3] = {1, 2, 4};

  bool inserted = false;
  map.FindOrInsert(a, &inserted) = 10;
  EXPECT_TRUE(inserted);
  map.FindOrInsert(b, &inserted) = 20;
  EXPECT_TRUE(inserted);
  map.FindOrInsert(a, &inserted) += 1;
  EXPECT_FALSE(inserted);

  ASSERT_NE(map.Find(a), nullptr);
  EXPECT_EQ(*map.Find(a), 11);
  EXPECT_EQ(*map.Find(b), 20);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.Erase(a));
  EXPECT_FALSE(map.Erase(a));
  EXPECT_EQ(map.Find(a), nullptr);
  ASSERT_NE(map.Find(b), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatKeyMapTest, GrowthKeepsEveryEntry) {
  FlatKeyMap<uint64_t> map(2);
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t key[2] = {i % 97, i};
    bool inserted = false;
    map.FindOrInsert(key, &inserted) = i;
    ASSERT_TRUE(inserted);
  }
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t key[2] = {i % 97, i};
    auto* v = map.Find(key);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatKeyMapTest, FlushIfSortedMatchesMapOrder) {
  FlatKeyMap<int> map(2);
  std::map<Key, int> reference;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    uint64_t key[2] = {rng.Uniform(16), rng.Uniform(16)};
    bool inserted = false;
    map.FindOrInsert(key, &inserted) = i;
    reference[Key(key, key + 2)] = i;
  }
  ASSERT_EQ(map.size(), reference.size());

  // Flush entries whose first key component is below the "watermark" 8,
  // in lexicographic order — exactly what the sort/scan engine's
  // frontier finalization does.
  std::vector<Key> flushed;
  const size_t n = map.FlushIf(
      [](const uint64_t* k, const int&) { return k[0] < 8; },
      [&](const uint64_t* k, int&& v) {
        flushed.push_back(Key(k, k + 2));
        auto it = reference.find(flushed.back());
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(it->second, v);
      },
      /*sorted_by_key=*/true);

  std::vector<Key> expected;
  for (auto it = reference.begin(); it != reference.end();) {
    if (it->first[0] < 8) {
      expected.push_back(it->first);
      it = reference.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(n, expected.size());
  ASSERT_EQ(flushed, expected);  // same entries, same (sorted) order

  // Survivors are intact and the flushed ones are really gone.
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto* v = map.Find(key.data());
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, value);
  }
  for (const Key& key : expected) {
    EXPECT_EQ(map.Find(key.data()), nullptr);
  }
}

TEST(FlatKeyMapTest, FlushEverythingShrinksCapacity) {
  FlatKeyMap<int> map(1);
  for (uint64_t i = 0; i < 100000; ++i) {
    uint64_t key[1] = {i};
    bool inserted = false;
    map.FindOrInsert(key, &inserted) = 1;
  }
  const size_t grown = map.capacity();
  size_t flushed = map.FlushIf(
      [](const uint64_t*, const int&) { return true; },
      [](const uint64_t*, int&&) {});
  EXPECT_EQ(flushed, 100000u);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_LT(map.capacity(), grown);

  // The shrunk table still works.
  uint64_t key[1] = {7};
  bool inserted = false;
  map.FindOrInsert(key, &inserted) = 9;
  EXPECT_TRUE(inserted);
  ASSERT_NE(map.Find(key), nullptr);
}

// Randomized differential test: a long mixed stream of inserts, updates,
// erases and flushes must agree with std::map at every checkpoint.
// Backward-shift deletion is where open-addressing bugs live, so erases
// are frequent.
TEST(FlatKeyMapTest, RandomizedAgainstReference) {
  for (size_t width : {1u, 2u, 4u}) {
    FlatKeyMap<uint64_t> map(width);
    std::map<Key, uint64_t> reference;
    Rng rng(0xC0FFEE + width);
    Key key(width);
    for (int step = 0; step < 50000; ++step) {
      // Small key space => constant collisions and probe displacement.
      for (size_t i = 0; i < width; ++i) key[i] = rng.Uniform(12);
      const uint64_t op = rng.Uniform(100);
      if (op < 55) {
        bool inserted = false;
        uint64_t& v = map.FindOrInsert(key.data(), &inserted);
        auto [it, ref_inserted] = reference.emplace(key, 0);
        ASSERT_EQ(inserted, ref_inserted);
        if (inserted) v = 0;
        v += step;
        it->second += step;
      } else if (op < 85) {
        ASSERT_EQ(map.Erase(key.data()), reference.erase(key) > 0);
      } else if (op < 95) {
        const uint64_t* found = map.Find(key.data());
        auto it = reference.find(key);
        if (it == reference.end()) {
          ASSERT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          ASSERT_EQ(*found, it->second);
        }
      } else {
        // Flush a random prefix of the key space.
        const uint64_t cut = rng.Uniform(12);
        map.FlushIf(
            [&](const uint64_t* k, const uint64_t&) { return k[0] < cut; },
            [&](const uint64_t* k, uint64_t&& v) {
              auto it = reference.find(Key(k, k + width));
              ASSERT_NE(it, reference.end());
              ASSERT_EQ(it->second, v);
              reference.erase(it);
            });
      }
      ASSERT_EQ(map.size(), reference.size()) << "step " << step;
    }
    // Final sweep: identical contents.
    size_t seen = 0;
    map.ForEach([&](const uint64_t* k, uint64_t& v) {
      auto it = reference.find(Key(k, k + width));
      ASSERT_NE(it, reference.end());
      EXPECT_EQ(it->second, v);
      ++seen;
    });
    EXPECT_EQ(seen, reference.size());
  }
}

TEST(FlatKeyMapTest, MoveTransfersContents) {
  FlatKeyMap<int> map(2);
  uint64_t key[2] = {3, 4};
  bool inserted = false;
  map.FindOrInsert(key, &inserted) = 5;

  FlatKeyMap<int> moved(std::move(map));
  ASSERT_NE(moved.Find(key), nullptr);
  EXPECT_EQ(*moved.Find(key), 5);
  EXPECT_EQ(moved.key_width(), 2u);
}

}  // namespace
}  // namespace csm
