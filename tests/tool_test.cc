// End-to-end test of the csm_query CLI: writes a CSV fact file and a DSL
// query to a scratch directory, invokes the tool for every engine, and
// checks the produced measure CSVs.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"

namespace csm {
namespace {

namespace fs = std::filesystem;

std::string ToolPath() {
  // ctest runs tests with CWD = build/tests; the tool lives beside it.
  for (const char* candidate :
       {"../tools/csm_query", "tools/csm_query", "./csm_query"}) {
    if (fs::exists(candidate)) return candidate;
  }
  return "";
}

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tool_ = ToolPath();
    if (tool_.empty()) GTEST_SKIP() << "csm_query binary not found";
    auto dir = TempDir::Make();
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));

    auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
    SyntheticDataOptions options;
    options.rows = 2000;
    options.seed = 77;
    FactTable fact = GenerateSyntheticFacts(schema, options);
    facts_csv_ = dir_->path() + "/facts.csv";
    ASSERT_TRUE(WriteFactTableCsv(fact, facts_csv_).ok());
    facts_bin_ = dir_->path() + "/facts.bin";
    ASSERT_TRUE(WriteFactTableBinary(fact, facts_bin_).ok());

    query_path_ = dir_->path() + "/query.dsl";
    std::ofstream query(query_path_);
    query << R"(
      measure C at (d0:L0, d1:L1) = agg count(*) from FACT hidden;
      measure R at (d0:L1) = agg sum(M) from C;
      measure W at (d0:L1) = match R using sibling(d0 in [0, 2])
          agg avg(M);
    )";
  }

  int RunTool(const std::string& args) {
    std::string cmd = tool_ + " --schema synthetic:3,3,10,1000 " + args +
                      " > " + dir_->path() + "/stdout.txt 2>&1";
    return std::system(cmd.c_str());
  }

  std::string Stdout() {
    std::ifstream in(dir_->path() + "/stdout.txt");
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::string tool_;
  std::unique_ptr<TempDir> dir_;
  std::string facts_csv_, facts_bin_, query_path_;
};

TEST_F(ToolTest, RunsEveryEngineOverCsvFacts) {
  for (const char* engine :
       {"adaptive", "sortscan", "singlescan", "multipass", "relational"}) {
    const std::string out_dir = dir_->path() + "/out_" + engine;
    int rc = RunTool("--facts " + facts_csv_ + " --query " + query_path_ +
                     " --engine " + engine + " --out " + out_dir);
    EXPECT_EQ(rc, 0) << engine << "\n" << Stdout();
    EXPECT_TRUE(fs::exists(out_dir + "/R.csv")) << engine;
    EXPECT_TRUE(fs::exists(out_dir + "/W.csv")) << engine;
    EXPECT_FALSE(fs::exists(out_dir + "/C.csv")) << "hidden measure leaked";
  }
}

TEST_F(ToolTest, BinaryFactsAndExplain) {
  // --explain lowers the physical plan, prints it, and exits WITHOUT
  // executing the query: no output directory may appear.
  int rc = RunTool("--facts " + facts_bin_ + " --query " + query_path_ +
                   " --explain --include-hidden --out " + dir_->path() +
                   "/out_explain");
  ASSERT_EQ(rc, 0) << Stdout();
  std::string out = Stdout();
  EXPECT_NE(out.find("sort order:"), std::string::npos);
  EXPECT_NE(out.find("physical plan:"), std::string::npos);
  EXPECT_NE(out.find("plan: adaptive -> "), std::string::npos)
      << "explain should surface the resolved adaptive choice";
  EXPECT_NE(out.find("morsel_rows:"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir_->path() + "/out_explain"))
      << "--explain must not execute the query";

  // Binary facts execute like CSV facts; --include-hidden emits the
  // intermediate measures too.
  rc = RunTool("--facts " + facts_bin_ + " --query " + query_path_ +
               " --include-hidden --out " + dir_->path() + "/out_bin");
  ASSERT_EQ(rc, 0) << Stdout();
  EXPECT_TRUE(fs::exists(dir_->path() + "/out_bin/C.csv"))
      << "--include-hidden should emit intermediates";
}

TEST_F(ToolTest, StreamingModeOverBinaryFacts) {
  const std::string out_dir = dir_->path() + "/out_stream";
  int rc = RunTool("--facts " + facts_bin_ + " --query " + query_path_ +
                   " --engine sortscan --stream --budget-mb 1 --out " +
                   out_dir);
  ASSERT_EQ(rc, 0) << Stdout();
  EXPECT_NE(Stdout().find("streaming"), std::string::npos);
  EXPECT_TRUE(fs::exists(out_dir + "/R.csv"));
  // Streaming over CSV is rejected.
  EXPECT_NE(RunTool("--facts " + facts_csv_ + " --query " + query_path_ +
                    " --engine sortscan --stream"),
            0);
}

TEST_F(ToolTest, ExplicitSortKeyIsHonored) {
  int rc = RunTool("--facts " + facts_csv_ + " --query " + query_path_ +
                   " --engine sortscan --sort-key \"<d0:L0>\"");
  ASSERT_EQ(rc, 0) << Stdout();
  EXPECT_NE(Stdout().find("<d0:L0>"), std::string::npos);
}

TEST_F(ToolTest, FailsCleanlyOnBadInput) {
  EXPECT_NE(RunTool("--facts /nonexistent.csv --query " + query_path_), 0);
  // Malformed query file.
  std::string bad_query = dir_->path() + "/bad.dsl";
  std::ofstream(bad_query) << "measure broken at";
  EXPECT_NE(RunTool("--facts " + facts_csv_ + " --query " + bad_query), 0);
  // Unknown engine.
  EXPECT_NE(RunTool("--facts " + facts_csv_ + " --query " + query_path_ +
                    " --engine quantum"),
            0);
}

}  // namespace
}  // namespace csm
