// The shrink / repro half of the fuzzing subsystem, exercised through the
// --inject-fault hook: a seeded "divergence" (deliberate output
// corruption) must shrink to a minimal case, persist as a repro file, and
// replay from that file to the byte-identical divergence.

#include <fstream>
#include <string>

#include "common/logging.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "storage/temp_file.h"
#include "test_util.h"
#include "testing/campaign.h"
#include "testing/data_gen.h"
#include "testing/differential.h"
#include "testing/mutate.h"
#include "testing/repro.h"
#include "testing/shrink.h"

namespace csm {
namespace {

using testing_util::CampaignCheckpoint;
using testing_util::CampaignOptions;
using testing_util::CheckConfig;
using testing_util::CollapseDimToLevel;
using testing_util::ComputeReference;
using testing_util::EngineConfig;
using testing_util::FactGenOptions;
using testing_util::FaultSpec;
using testing_util::GenerateFacts;
using testing_util::LoadRepro;
using testing_util::ReplayRepro;
using testing_util::RunCampaign;
using testing_util::ShrinkCase;
using testing_util::WriteRepro;

constexpr char kSchemaSpec[] = "synthetic:2,2,4,64";

// Three measures across the operator families; the fault targets only A,
// so B and W are shrinkable noise.
constexpr char kWorkflowDsl[] = R"(
    measure A at (d0:L0, d1:L0) = agg sum(m) from FACT;
    measure B at (d0:L1, d1:L1) = agg sum(M) from A;
    measure W at (d0:L0, d1:L0) = match A using
        sibling(d0 in [-1, 1]) agg sum(M);)";

struct Fixture {
  SchemaPtr schema;
  Workflow workflow;
  FactTable fact;
  EngineConfig config;
  FaultSpec fault;
};

Fixture MakeFixture() {
  auto schema = ParseSchemaSpec(kSchemaSpec);
  CSM_CHECK(schema.ok());
  auto workflow = Workflow::Parse(*schema, kWorkflowDsl);
  CSM_CHECK(workflow.ok()) << workflow.status().ToString();
  FactGenOptions data;
  data.rows = 400;
  data.cardinality = 64;
  data.seed = 2024;
  FactTable fact = GenerateFacts(*schema, data);
  EngineConfig config;
  config.kind = EngineKind::kSingleScan;
  auto fault = FaultSpec::Parse("singlescan:A");
  CSM_CHECK(fault.ok());
  return {*schema, std::move(*workflow), std::move(fact), config, *fault};
}

TEST(FuzzShrinkTest, InjectedFaultDiverges) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(auto reference,
                           ComputeReference(fx.workflow, fx.fact));
  // Clean run: no divergence.
  CSM_ASSERT_OK_AND_ASSIGN(
      auto clean, CheckConfig(fx.workflow, fx.fact, reference, fx.config,
                              FaultSpec{}));
  EXPECT_FALSE(clean.has_value());
  // Faulted run diverges on A, and only A.
  CSM_ASSERT_OK_AND_ASSIGN(
      auto faulted, CheckConfig(fx.workflow, fx.fact, reference, fx.config,
                                fx.fault));
  ASSERT_TRUE(faulted.has_value());
  EXPECT_EQ(faulted->measure, "A");
  EXPECT_EQ(faulted->config_label, "singlescan");
}

TEST(FuzzShrinkTest, ShrinkConvergesToMinimalCase) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(
      auto shrunk, ShrinkCase(fx.workflow, fx.fact, fx.config, fx.fault));
  // The corruption touches one row of one measure: the minimal divergent
  // case is a single measure over a single fact row.
  EXPECT_EQ(shrunk.workflow.measures().size(), 1u);
  EXPECT_EQ(shrunk.workflow.measures()[0].name, "A");
  EXPECT_EQ(shrunk.fact.num_rows(), 1u);
  EXPECT_EQ(shrunk.divergence.measure, "A");
  EXPECT_EQ(shrunk.stats.measures_before, 3u);
  EXPECT_EQ(shrunk.stats.rows_before, 400u);
  EXPECT_GT(shrunk.stats.accepted, 0);

  // A non-divergent input is an error, not a silent no-op.
  auto no_fault =
      ShrinkCase(fx.workflow, fx.fact, fx.config, FaultSpec{});
  EXPECT_FALSE(no_fault.ok());
}

TEST(FuzzShrinkTest, ReproRoundTripsAndReplaysIdentically) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(
      auto shrunk, ShrinkCase(fx.workflow, fx.fact, fx.config, fx.fault));

  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string path,
      WriteRepro(dir.path() + "/case", shrunk.workflow, shrunk.fact,
                 fx.config, fx.fault, /*seed=*/2024, kSchemaSpec));

  CSM_ASSERT_OK_AND_ASSIGN(auto repro, LoadRepro(path));
  EXPECT_EQ(repro.schema_spec, kSchemaSpec);
  EXPECT_EQ(repro.seed, 2024u);
  EXPECT_EQ(repro.fact.num_rows(), shrunk.fact.num_rows());
  EXPECT_EQ(repro.workflow.measures().size(),
            shrunk.workflow.measures().size());

  // Replaying reproduces the shrunk divergence, byte for byte, every time.
  CSM_ASSERT_OK_AND_ASSIGN(auto replay1, ReplayRepro(repro));
  CSM_ASSERT_OK_AND_ASSIGN(auto replay2, ReplayRepro(repro));
  ASSERT_TRUE(replay1.has_value());
  ASSERT_TRUE(replay2.has_value());
  EXPECT_EQ(replay1->ToString(), replay2->ToString());
  EXPECT_EQ(replay1->ToString(), shrunk.divergence.ToString());

  // Loading by directory works too.
  CSM_ASSERT_OK_AND_ASSIGN(auto by_dir, LoadRepro(dir.path() + "/case"));
  EXPECT_EQ(by_dir.workflow_dsl, repro.workflow_dsl);

  // Clearing the fault simulates the bug getting fixed: the case must
  // stop diverging, which is how --repro reports "fixed".
  repro.fault = FaultSpec{};
  CSM_ASSERT_OK_AND_ASSIGN(auto fixed, ReplayRepro(repro));
  EXPECT_FALSE(fixed.has_value());
}

TEST(FuzzCampaignTest, DeterministicAndFindsInjectedFault) {
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir1, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir2, TempDir::Make());
  CampaignOptions options;
  options.seed = 11;
  options.runs = 2;
  options.max_rows = 200;
  options.measures_per_workflow = 4;
  auto fault = FaultSpec::Parse("parallel:*");
  ASSERT_TRUE(fault.ok());
  options.fault = *fault;

  options.repro_dir = dir1.path();
  CSM_ASSERT_OK_AND_ASSIGN(auto stats1, RunCampaign(options));
  options.repro_dir = dir2.path();
  CSM_ASSERT_OK_AND_ASSIGN(auto stats2, RunCampaign(options));

  // The injected fault is found, shrunk, and persisted.
  ASSERT_EQ(stats1.findings.size(), 1u);
  EXPECT_FALSE(stats1.findings[0].shrink_summary.empty());
  CSM_ASSERT_OK_AND_ASSIGN(auto repro,
                           LoadRepro(stats1.findings[0].repro_path));
  CSM_ASSERT_OK_AND_ASSIGN(auto replay, ReplayRepro(repro));
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->ToString(),
            stats1.findings[0].divergence.ToString());

  // Same seed, same campaign: identical stats and findings.
  EXPECT_EQ(stats1.Summary(), stats2.Summary());
  ASSERT_EQ(stats2.findings.size(), 1u);
  EXPECT_EQ(stats1.findings[0].divergence.ToString(),
            stats2.findings[0].divergence.ToString());

  // No fault, same seeds: every engine agrees with the reference.
  options.fault = FaultSpec{};
  CSM_ASSERT_OK_AND_ASSIGN(auto clean, RunCampaign(options));
  EXPECT_TRUE(clean.findings.empty());
  EXPECT_EQ(clean.runs_completed, 2);
}

TEST(FuzzCheckpointTest, SaveLoadRoundTrip) {
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  const std::string path = dir.path() + "/ck.txt";

  CampaignCheckpoint cp;
  cp.seed = 99;
  cp.runs = 40;
  cp.next_run = 7;
  cp.next_config = 3;
  cp.runs_completed = 7;
  cp.configs_checked = 115;
  cp.rows_generated = 12345;
  cp.findings = 2;
  ASSERT_TRUE(cp.Save(path).ok());

  CSM_ASSERT_OK_AND_ASSIGN(CampaignCheckpoint loaded,
                           CampaignCheckpoint::Load(path));
  EXPECT_EQ(loaded.seed, 99u);
  EXPECT_EQ(loaded.runs, 40);
  EXPECT_EQ(loaded.next_run, 7);
  EXPECT_EQ(loaded.next_config, 3);
  EXPECT_EQ(loaded.runs_completed, 7);
  EXPECT_EQ(loaded.configs_checked, 115);
  EXPECT_EQ(loaded.rows_generated, 12345u);
  EXPECT_EQ(loaded.findings, 2);

  // Garbage is rejected, not misparsed.
  EXPECT_FALSE(CampaignCheckpoint::Load(dir.path() + "/absent").ok());
  {
    std::ofstream bad(dir.path() + "/bad.txt");
    bad << "not a checkpoint\n";
  }
  EXPECT_FALSE(CampaignCheckpoint::Load(dir.path() + "/bad.txt").ok());
}

// A campaign split across an interrupt must do exactly the work of a
// straight-through campaign: runs are seed-deterministic, so a prefix
// segment plus a resumed segment land on the same cumulative summary.
TEST(FuzzCheckpointTest, ResumedCampaignMatchesStraightThrough) {
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CampaignOptions options;
  options.seed = 21;
  options.runs = 4;
  options.max_rows = 150;
  options.measures_per_workflow = 3;
  options.repro_dir = dir.path();

  CSM_ASSERT_OK_AND_ASSIGN(auto full, RunCampaign(options));

  // Segment 1: the first half of the campaign, checkpointed.
  const std::string ck = dir.path() + "/ck.txt";
  CampaignOptions seg = options;
  seg.runs = 2;
  seg.checkpoint_path = ck;
  CSM_ASSERT_OK_AND_ASSIGN(auto prefix, RunCampaign(seg));
  EXPECT_EQ(prefix.runs_completed, 2);

  // Simulate the interrupt: the checkpoint says the campaign had 4 runs
  // and stopped after 2 (Save wrote runs=2, the segment's own budget).
  CSM_ASSERT_OK_AND_ASSIGN(CampaignCheckpoint cp,
                           CampaignCheckpoint::Load(ck));
  EXPECT_EQ(cp.next_run, 2);
  EXPECT_EQ(cp.next_config, 0);
  cp.runs = 4;
  ASSERT_TRUE(cp.Save(ck).ok());

  // Segment 2: resume finishes runs 2..3 and carries the counters.
  CampaignOptions resume = options;
  resume.checkpoint_path = ck;
  resume.resume = true;
  CSM_ASSERT_OK_AND_ASSIGN(auto resumed, RunCampaign(resume));
  EXPECT_EQ(resumed.Summary(), full.Summary());

  // The checkpoint now marks the campaign complete.
  CSM_ASSERT_OK_AND_ASSIGN(cp, CampaignCheckpoint::Load(ck));
  EXPECT_EQ(cp.next_run, 4);
  EXPECT_EQ(cp.next_config, 0);
}

// With an injected fault the campaign stops mid-run at the first
// divergence; resuming must pick up at the *next config cell*, not
// rediscover the same divergence forever.
TEST(FuzzCheckpointTest, ResumeAdvancesPastDivergence) {
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CampaignOptions options;
  options.seed = 11;
  options.runs = 2;
  options.max_rows = 150;
  options.measures_per_workflow = 3;
  options.repro_dir = dir.path();
  options.shrink = false;  // keep the test fast
  options.checkpoint_path = dir.path() + "/ck.txt";
  auto fault = FaultSpec::Parse("parallel:*");
  ASSERT_TRUE(fault.ok());
  options.fault = *fault;

  CSM_ASSERT_OK_AND_ASSIGN(auto first, RunCampaign(options));
  ASSERT_EQ(first.findings.size(), 1u);
  CSM_ASSERT_OK_AND_ASSIGN(
      CampaignCheckpoint cp,
      CampaignCheckpoint::Load(options.checkpoint_path));
  const int stopped_run = cp.next_run;
  const int stopped_config = cp.next_config;
  EXPECT_GT(stopped_config, 0);  // stopped mid-run, past the divergence

  options.resume = true;
  CSM_ASSERT_OK_AND_ASSIGN(auto second, RunCampaign(options));
  EXPECT_EQ(second.prior_findings, 1);
  CSM_ASSERT_OK_AND_ASSIGN(
      cp, CampaignCheckpoint::Load(options.checkpoint_path));
  // The cursor moved: either a later cell of the same run or a later run.
  EXPECT_TRUE(cp.next_run > stopped_run ||
              (cp.next_run == stopped_run &&
               cp.next_config > stopped_config))
      << "resume did not advance (" << cp.next_run << ":"
      << cp.next_config << ")";
}

TEST(CollapseDimTest, ReplacesValuesWithBlockRepresentatives) {
  auto schema = ParseSchemaSpec("synthetic:2,3,4,64");
  ASSERT_TRUE(schema.ok());
  FactGenOptions data;
  data.rows = 100;
  data.cardinality = 64;
  data.seed = 7;
  FactTable fact = GenerateFacts(*schema, data);

  // Level 1 of a fan-out-4 stepped hierarchy: representatives are
  // multiples of 4, other dims and measures untouched.
  auto collapsed = CollapseDimToLevel(fact, 0, 1);
  ASSERT_TRUE(collapsed.has_value());
  ASSERT_EQ(collapsed->num_rows(), fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    EXPECT_EQ(collapsed->dim_row(row)[0], (fact.dim_row(row)[0] / 4) * 4);
    EXPECT_EQ(collapsed->dim_row(row)[1], fact.dim_row(row)[1]);
    EXPECT_DOUBLE_EQ(collapsed->measure_row(row)[0],
                     fact.measure_row(row)[0]);
  }

  // Level 2 collapses harder (blocks of 16); still never touches ALL.
  auto deeper = CollapseDimToLevel(fact, 0, 2);
  ASSERT_TRUE(deeper.has_value());
  for (size_t row = 0; row < deeper->num_rows(); ++row) {
    EXPECT_EQ(deeper->dim_row(row)[0] % 16, 0u);
  }

  // Rejected: level 0 (identity), the ALL level, bad dim, and a
  // no-op collapse (all values already representatives).
  EXPECT_FALSE(CollapseDimToLevel(fact, 0, 0).has_value());
  EXPECT_FALSE(
      CollapseDimToLevel(
          fact, 0, (*schema)->dim(0).hierarchy->all_level()).has_value());
  EXPECT_FALSE(CollapseDimToLevel(fact, 9, 1).has_value());
  ASSERT_TRUE(collapsed.has_value());
  EXPECT_FALSE(CollapseDimToLevel(*collapsed, 0, 1).has_value());
}

TEST(CollapseDimTest, ShrinkerCoarsensHierarchyInsideData) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(
      auto shrunk, ShrinkCase(fx.workflow, fx.fact, fx.config, fx.fault));
  // The injected fault survives any data, so the coarsening pass must
  // have collapsed the surviving row onto block representatives: every
  // remaining base value is a multiple of the level-1 block width.
  const Schema& schema = *shrunk.workflow.schema();
  for (size_t row = 0; row < shrunk.fact.num_rows(); ++row) {
    for (int dim = 0; dim < schema.num_dims(); ++dim) {
      const uint64_t div =
          schema.dim(dim).hierarchy->ExactDivisor(0, 1);
      if (div == 0) continue;
      EXPECT_EQ(shrunk.fact.dim_row(row)[dim] % div, 0u)
          << "dim " << dim << " row " << row;
    }
  }
}

TEST(FuzzShrinkTest, ReproRoundTripsBatchRows) {
  Fixture fx = MakeFixture();
  fx.config.scan_batch_rows = 7;
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string path,
      WriteRepro(dir.path() + "/case", fx.workflow, fx.fact, fx.config,
                 fx.fault, /*seed=*/7, kSchemaSpec));
  CSM_ASSERT_OK_AND_ASSIGN(auto repro, LoadRepro(path));
  EXPECT_EQ(repro.config.scan_batch_rows, 7u);
  EXPECT_EQ(repro.config.Label(*repro.workflow.schema()),
            "singlescan/b7");

  // Absent key = 0 = engine default, preserving pre-batching repro files.
  fx.config.scan_batch_rows = 0;
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string legacy_path,
      WriteRepro(dir.path() + "/legacy", fx.workflow, fx.fact, fx.config,
                 fx.fault, /*seed=*/7, kSchemaSpec));
  CSM_ASSERT_OK_AND_ASSIGN(auto legacy, LoadRepro(legacy_path));
  EXPECT_EQ(legacy.config.scan_batch_rows, 0u);
}

TEST(FuzzShrinkTest, ReproRoundTripsVectorizeOff) {
  Fixture fx = MakeFixture();
  fx.config.no_vectorize = true;
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string path,
      WriteRepro(dir.path() + "/case", fx.workflow, fx.fact, fx.config,
                 fx.fault, /*seed=*/7, kSchemaSpec));
  CSM_ASSERT_OK_AND_ASSIGN(auto repro, LoadRepro(path));
  EXPECT_TRUE(repro.config.no_vectorize);
  EXPECT_EQ(repro.config.Label(*repro.workflow.schema()),
            "singlescan+vec/off");

  // Absent key = vectorized on, preserving pre-kernel repro files.
  fx.config.no_vectorize = false;
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string legacy_path,
      WriteRepro(dir.path() + "/legacy", fx.workflow, fx.fact, fx.config,
                 fx.fault, /*seed=*/7, kSchemaSpec));
  CSM_ASSERT_OK_AND_ASSIGN(auto legacy, LoadRepro(legacy_path));
  EXPECT_FALSE(legacy.config.no_vectorize);
}

TEST(FuzzShrinkTest, ReproRoundTripsDictOff) {
  Fixture fx = MakeFixture();
  fx.config.no_dict = true;
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string path,
      WriteRepro(dir.path() + "/case", fx.workflow, fx.fact, fx.config,
                 fx.fault, /*seed=*/7, kSchemaSpec));
  CSM_ASSERT_OK_AND_ASSIGN(auto repro, LoadRepro(path));
  EXPECT_TRUE(repro.config.no_dict);
  EXPECT_EQ(repro.config.Label(*repro.workflow.schema()),
            "singlescan+dict/off");

  // Absent key = dict encoding on, preserving pre-dictionary repro
  // files; anything but on/off is a parse error.
  fx.config.no_dict = false;
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string legacy_path,
      WriteRepro(dir.path() + "/legacy", fx.workflow, fx.fact, fx.config,
                 fx.fault, /*seed=*/7, kSchemaSpec));
  CSM_ASSERT_OK_AND_ASSIGN(auto legacy, LoadRepro(legacy_path));
  EXPECT_FALSE(legacy.config.no_dict);
}

TEST(FaultSpecTest, ParseAndRoundTrip) {
  auto fault = FaultSpec::Parse("sortscan:m0");
  ASSERT_TRUE(fault.ok());
  EXPECT_TRUE(fault->enabled);
  EXPECT_EQ(fault->kind, EngineKind::kSortScan);
  EXPECT_EQ(fault->measure, "m0");
  EXPECT_EQ(fault->ToText(), "sortscan:m0");

  auto wildcard = FaultSpec::Parse("parallel:*");
  ASSERT_TRUE(wildcard.ok());
  EXPECT_EQ(wildcard->measure, "*");

  EXPECT_FALSE(FaultSpec::Parse("nocolon").ok());
  EXPECT_FALSE(FaultSpec::Parse("sortscan:").ok());
  EXPECT_FALSE(FaultSpec::Parse("warpdrive:m0").ok());
  EXPECT_EQ(FaultSpec{}.ToText(), "");
}

}  // namespace
}  // namespace csm
