// The shrink / repro half of the fuzzing subsystem, exercised through the
// --inject-fault hook: a seeded "divergence" (deliberate output
// corruption) must shrink to a minimal case, persist as a repro file, and
// replay from that file to the byte-identical divergence.

#include <string>

#include "common/logging.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "storage/temp_file.h"
#include "test_util.h"
#include "testing/campaign.h"
#include "testing/data_gen.h"
#include "testing/differential.h"
#include "testing/repro.h"
#include "testing/shrink.h"

namespace csm {
namespace {

using testing_util::CampaignOptions;
using testing_util::CheckConfig;
using testing_util::ComputeReference;
using testing_util::EngineConfig;
using testing_util::FactGenOptions;
using testing_util::FaultSpec;
using testing_util::GenerateFacts;
using testing_util::LoadRepro;
using testing_util::ReplayRepro;
using testing_util::RunCampaign;
using testing_util::ShrinkCase;
using testing_util::WriteRepro;

constexpr char kSchemaSpec[] = "synthetic:2,2,4,64";

// Three measures across the operator families; the fault targets only A,
// so B and W are shrinkable noise.
constexpr char kWorkflowDsl[] = R"(
    measure A at (d0:L0, d1:L0) = agg sum(m) from FACT;
    measure B at (d0:L1, d1:L1) = agg sum(M) from A;
    measure W at (d0:L0, d1:L0) = match A using
        sibling(d0 in [-1, 1]) agg sum(M);)";

struct Fixture {
  SchemaPtr schema;
  Workflow workflow;
  FactTable fact;
  EngineConfig config;
  FaultSpec fault;
};

Fixture MakeFixture() {
  auto schema = ParseSchemaSpec(kSchemaSpec);
  CSM_CHECK(schema.ok());
  auto workflow = Workflow::Parse(*schema, kWorkflowDsl);
  CSM_CHECK(workflow.ok()) << workflow.status().ToString();
  FactGenOptions data;
  data.rows = 400;
  data.cardinality = 64;
  data.seed = 2024;
  FactTable fact = GenerateFacts(*schema, data);
  EngineConfig config;
  config.kind = EngineKind::kSingleScan;
  auto fault = FaultSpec::Parse("singlescan:A");
  CSM_CHECK(fault.ok());
  return {*schema, std::move(*workflow), std::move(fact), config, *fault};
}

TEST(FuzzShrinkTest, InjectedFaultDiverges) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(auto reference,
                           ComputeReference(fx.workflow, fx.fact));
  // Clean run: no divergence.
  CSM_ASSERT_OK_AND_ASSIGN(
      auto clean, CheckConfig(fx.workflow, fx.fact, reference, fx.config,
                              FaultSpec{}));
  EXPECT_FALSE(clean.has_value());
  // Faulted run diverges on A, and only A.
  CSM_ASSERT_OK_AND_ASSIGN(
      auto faulted, CheckConfig(fx.workflow, fx.fact, reference, fx.config,
                                fx.fault));
  ASSERT_TRUE(faulted.has_value());
  EXPECT_EQ(faulted->measure, "A");
  EXPECT_EQ(faulted->config_label, "singlescan");
}

TEST(FuzzShrinkTest, ShrinkConvergesToMinimalCase) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(
      auto shrunk, ShrinkCase(fx.workflow, fx.fact, fx.config, fx.fault));
  // The corruption touches one row of one measure: the minimal divergent
  // case is a single measure over a single fact row.
  EXPECT_EQ(shrunk.workflow.measures().size(), 1u);
  EXPECT_EQ(shrunk.workflow.measures()[0].name, "A");
  EXPECT_EQ(shrunk.fact.num_rows(), 1u);
  EXPECT_EQ(shrunk.divergence.measure, "A");
  EXPECT_EQ(shrunk.stats.measures_before, 3u);
  EXPECT_EQ(shrunk.stats.rows_before, 400u);
  EXPECT_GT(shrunk.stats.accepted, 0);

  // A non-divergent input is an error, not a silent no-op.
  auto no_fault =
      ShrinkCase(fx.workflow, fx.fact, fx.config, FaultSpec{});
  EXPECT_FALSE(no_fault.ok());
}

TEST(FuzzShrinkTest, ReproRoundTripsAndReplaysIdentically) {
  Fixture fx = MakeFixture();
  CSM_ASSERT_OK_AND_ASSIGN(
      auto shrunk, ShrinkCase(fx.workflow, fx.fact, fx.config, fx.fault));

  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(
      std::string path,
      WriteRepro(dir.path() + "/case", shrunk.workflow, shrunk.fact,
                 fx.config, fx.fault, /*seed=*/2024, kSchemaSpec));

  CSM_ASSERT_OK_AND_ASSIGN(auto repro, LoadRepro(path));
  EXPECT_EQ(repro.schema_spec, kSchemaSpec);
  EXPECT_EQ(repro.seed, 2024u);
  EXPECT_EQ(repro.fact.num_rows(), shrunk.fact.num_rows());
  EXPECT_EQ(repro.workflow.measures().size(),
            shrunk.workflow.measures().size());

  // Replaying reproduces the shrunk divergence, byte for byte, every time.
  CSM_ASSERT_OK_AND_ASSIGN(auto replay1, ReplayRepro(repro));
  CSM_ASSERT_OK_AND_ASSIGN(auto replay2, ReplayRepro(repro));
  ASSERT_TRUE(replay1.has_value());
  ASSERT_TRUE(replay2.has_value());
  EXPECT_EQ(replay1->ToString(), replay2->ToString());
  EXPECT_EQ(replay1->ToString(), shrunk.divergence.ToString());

  // Loading by directory works too.
  CSM_ASSERT_OK_AND_ASSIGN(auto by_dir, LoadRepro(dir.path() + "/case"));
  EXPECT_EQ(by_dir.workflow_dsl, repro.workflow_dsl);

  // Clearing the fault simulates the bug getting fixed: the case must
  // stop diverging, which is how --repro reports "fixed".
  repro.fault = FaultSpec{};
  CSM_ASSERT_OK_AND_ASSIGN(auto fixed, ReplayRepro(repro));
  EXPECT_FALSE(fixed.has_value());
}

TEST(FuzzCampaignTest, DeterministicAndFindsInjectedFault) {
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir1, TempDir::Make());
  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir2, TempDir::Make());
  CampaignOptions options;
  options.seed = 11;
  options.runs = 2;
  options.max_rows = 200;
  options.measures_per_workflow = 4;
  auto fault = FaultSpec::Parse("parallel:*");
  ASSERT_TRUE(fault.ok());
  options.fault = *fault;

  options.repro_dir = dir1.path();
  CSM_ASSERT_OK_AND_ASSIGN(auto stats1, RunCampaign(options));
  options.repro_dir = dir2.path();
  CSM_ASSERT_OK_AND_ASSIGN(auto stats2, RunCampaign(options));

  // The injected fault is found, shrunk, and persisted.
  ASSERT_EQ(stats1.findings.size(), 1u);
  EXPECT_FALSE(stats1.findings[0].shrink_summary.empty());
  CSM_ASSERT_OK_AND_ASSIGN(auto repro,
                           LoadRepro(stats1.findings[0].repro_path));
  CSM_ASSERT_OK_AND_ASSIGN(auto replay, ReplayRepro(repro));
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->ToString(),
            stats1.findings[0].divergence.ToString());

  // Same seed, same campaign: identical stats and findings.
  EXPECT_EQ(stats1.Summary(), stats2.Summary());
  ASSERT_EQ(stats2.findings.size(), 1u);
  EXPECT_EQ(stats1.findings[0].divergence.ToString(),
            stats2.findings[0].divergence.ToString());

  // No fault, same seeds: every engine agrees with the reference.
  options.fault = FaultSpec{};
  CSM_ASSERT_OK_AND_ASSIGN(auto clean, RunCampaign(options));
  EXPECT_TRUE(clean.findings.empty());
  EXPECT_EQ(clean.runs_completed, 2);
}

TEST(FaultSpecTest, ParseAndRoundTrip) {
  auto fault = FaultSpec::Parse("sortscan:m0");
  ASSERT_TRUE(fault.ok());
  EXPECT_TRUE(fault->enabled);
  EXPECT_EQ(fault->kind, EngineKind::kSortScan);
  EXPECT_EQ(fault->measure, "m0");
  EXPECT_EQ(fault->ToText(), "sortscan:m0");

  auto wildcard = FaultSpec::Parse("parallel:*");
  ASSERT_TRUE(wildcard.ok());
  EXPECT_EQ(wildcard->measure, "*");

  EXPECT_FALSE(FaultSpec::Parse("nocolon").ok());
  EXPECT_FALSE(FaultSpec::Parse("sortscan:").ok());
  EXPECT_FALSE(FaultSpec::Parse("warpdrive:m0").ok());
  EXPECT_EQ(FaultSpec{}.ToText(), "");
}

}  // namespace
}  // namespace csm
