#include <cmath>

#include "algebra/aw_expr.h"
#include "algebra/evaluator.h"
#include "algebra/measure_ops.h"
#include "algebra/rewrite.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;
using testing_util::ToMap;

// Builds the Dshield-style dataset used by the paper's running example:
//   hour 0: source 1 sends 7 packets, source 2 sends 3;
//   hour 1: source 1 sends 6, source 3 sends 2, source 4 sends 9.
FactTable MakeExampleFacts(const SchemaPtr& schema) {
  FactTable fact(schema);
  auto add = [&](Value hour, Value src, int packets) {
    for (int i = 0; i < packets; ++i) {
      Value dims[4] = {hour * 3600 + static_cast<Value>(i), src,
                       100 + src, 80};
      double bytes[1] = {100.0 * (i + 1)};
      fact.AppendRow(dims, bytes);
    }
  };
  add(0, 1, 7);
  add(0, 2, 3);
  add(1, 1, 6);
  add(1, 3, 2);
  add(1, 4, 9);
  return fact;
}

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeNetworkLogSchema();
    fact_ = std::make_unique<FactTable>(MakeExampleFacts(schema_));
    auto d = AwExpr::FactTable(schema_);
    ASSERT_TRUE(d.ok());
    fact_expr_ = *d;
  }

  Granularity Gran(const char* text) {
    auto g = Granularity::Parse(*schema_, text);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return *g;
  }
  ScalarExprPtr Expr(const char* text) {
    auto e = ScalarExpr::Parse(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return *e;
  }

  // Example 1: S_C = g[(t:hour, U:ip), count(*)](D).
  AwExpr::Ptr CountExpr() {
    auto agg = AwExpr::Aggregate(fact_expr_, Gran("(t:hour, U:ip)"),
                                 AggSpec{AggKind::kCount, -1}, "Count");
    EXPECT_TRUE(agg.ok()) << agg.status().ToString();
    return *agg;
  }

  SchemaPtr schema_;
  std::unique_ptr<FactTable> fact_;
  AwExpr::Ptr fact_expr_;
};

TEST_F(PaperExamplesTest, Example1TrafficCounting) {
  auto result = EvalAwExpr(*CountExpr(), *fact_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = ToMap(*result);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows.at({0, 1, 0, 0}), 7);
  EXPECT_DOUBLE_EQ(rows.at({0, 2, 0, 0}), 3);
  EXPECT_DOUBLE_EQ(rows.at({1, 1, 0, 0}), 6);
  EXPECT_DOUBLE_EQ(rows.at({1, 3, 0, 0}), 2);
  EXPECT_DOUBLE_EQ(rows.at({1, 4, 0, 0}), 9);
}

TEST_F(PaperExamplesTest, Example2BusySourceCount) {
  // S_S = g[(t:hour), count](σ_{M>5}(S_C)).
  auto sel = AwExpr::Select(CountExpr(), Expr("M > 5"));
  ASSERT_TRUE(sel.ok());
  auto agg = AwExpr::Aggregate(*sel, Gran("(t:hour)"),
                               AggSpec{AggKind::kCount, 0}, "SCount");
  ASSERT_TRUE(agg.ok());
  auto result = EvalAwExpr(**agg, *fact_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = ToMap(*result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows.at({0, 0, 0, 0}), 1);  // only source 1
  EXPECT_DOUBLE_EQ(rows.at({1, 0, 0, 0}), 2);  // sources 1 and 4
}

TEST_F(PaperExamplesTest, Example3BusySourceTraffic) {
  auto sel = AwExpr::Select(CountExpr(), Expr("M > 5"));
  ASSERT_TRUE(sel.ok());
  auto agg = AwExpr::Aggregate(*sel, Gran("(t:hour)"),
                               AggSpec{AggKind::kSum, 0}, "STraffic");
  ASSERT_TRUE(agg.ok());
  auto result = EvalAwExpr(**agg, *fact_);
  ASSERT_TRUE(result.ok());
  auto rows = ToMap(*result);
  EXPECT_DOUBLE_EQ(rows.at({0, 0, 0, 0}), 7);
  EXPECT_DOUBLE_EQ(rows.at({1, 0, 0, 0}), 15);  // 6 + 9
}

TEST_F(PaperExamplesTest, Example4MovingAverage) {
  // SAvg = S_base ⋈_{t' in [t, t+5], avg} SCount.
  auto scount_sel = AwExpr::Select(CountExpr(), Expr("M > 5"));
  ASSERT_TRUE(scount_sel.ok());
  auto scount = AwExpr::Aggregate(*scount_sel, Gran("(t:hour)"),
                                  AggSpec{AggKind::kCount, 0}, "SCount");
  ASSERT_TRUE(scount.ok());
  auto s_base = AwExpr::Aggregate(fact_expr_, Gran("(t:hour)"),
                                  AggSpec{AggKind::kNone, -1}, "Base");
  ASSERT_TRUE(s_base.ok());
  auto avg = AwExpr::MatchJoin(
      *s_base, *scount, MatchCond::Sibling({{0, 0, 5}}),
      AggSpec{AggKind::kAvg, 0}, "SAvg");
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();
  auto result = EvalAwExpr(**avg, *fact_);
  ASSERT_TRUE(result.ok());
  auto rows = ToMap(*result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows.at({0, 0, 0, 0}), 1.5);  // (1 + 2) / 2
  EXPECT_DOUBLE_EQ(rows.at({1, 0, 0, 0}), 2.0);  // only hour 1 visible
}

TEST_F(PaperExamplesTest, Example5Ratio) {
  auto scount_sel = AwExpr::Select(CountExpr(), Expr("M > 5"));
  ASSERT_TRUE(scount_sel.ok());
  auto scount = AwExpr::Aggregate(*scount_sel, Gran("(t:hour)"),
                                  AggSpec{AggKind::kCount, 0}, "SCount");
  auto straffic_sel = AwExpr::Select(CountExpr(), Expr("M > 5"));
  auto straffic = AwExpr::Aggregate(*straffic_sel, Gran("(t:hour)"),
                                    AggSpec{AggKind::kSum, 0}, "STraffic");
  auto s_base = AwExpr::Aggregate(fact_expr_, Gran("(t:hour)"),
                                  AggSpec{AggKind::kNone, -1}, "Base");
  auto savg = AwExpr::MatchJoin(*s_base, *scount,
                                MatchCond::Sibling({{0, 0, 5}}),
                                AggSpec{AggKind::kAvg, 0}, "SAvg");
  ASSERT_TRUE(savg.ok());
  auto ratio = AwExpr::CombineJoin(
      *savg, {*straffic, *scount},
      Expr("SAvg / (STraffic / SCount)"), "Ratio");
  ASSERT_TRUE(ratio.ok()) << ratio.status().ToString();
  auto result = EvalAwExpr(**ratio, *fact_);
  ASSERT_TRUE(result.ok());
  auto rows = ToMap(*result);
  EXPECT_NEAR(rows.at({0, 0, 0, 0}), 1.5 / 7.0, 1e-12);
  EXPECT_NEAR(rows.at({1, 0, 0, 0}), 2.0 / 7.5, 1e-12);
}

TEST_F(PaperExamplesTest, ParentChildSlackExample) {
  // §5.3: S_ratio = S_2 ⋈_{cond_pc, S2/S1} S_1 with S_1 monthly,
  // S_2 daily — here hour vs day for a smaller value hierarchy.
  auto s1 = AwExpr::Aggregate(fact_expr_, Gran("(t:day)"),
                              AggSpec{AggKind::kCount, -1}, "S1");
  auto s2 = AwExpr::Aggregate(fact_expr_, Gran("(t:hour)"),
                              AggSpec{AggKind::kCount, -1}, "S2");
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto parent_sum = AwExpr::MatchJoin(*s2, *s1, MatchCond::ParentChild(),
                                      AggSpec{AggKind::kSum, 0}, "PSum");
  ASSERT_TRUE(parent_sum.ok()) << parent_sum.status().ToString();
  auto ratio = AwExpr::CombineJoin(*s2, {*parent_sum},
                                   Expr("S2 / PSum"), "Ratio");
  ASSERT_TRUE(ratio.ok());
  auto result = EvalAwExpr(**ratio, *fact_);
  ASSERT_TRUE(result.ok());
  auto rows = ToMap(*result);
  // Day 0 total = 27 packets; hour 0 has 10, hour 1 has 17.
  EXPECT_NEAR(rows.at({0, 0, 0, 0}), 10.0 / 27.0, 1e-12);
  EXPECT_NEAR(rows.at({1, 0, 0, 0}), 17.0 / 27.0, 1e-12);
}

TEST_F(PaperExamplesTest, ChildParentEqualsAggregation) {
  // A child/parent match join is equivalent to the roll-up operator.
  auto child = CountExpr();
  auto rolled = AwExpr::Aggregate(child, Gran("(t:hour)"),
                                  AggSpec{AggKind::kSum, 0}, "Rolled");
  auto s_base = AwExpr::Aggregate(fact_expr_, Gran("(t:hour)"),
                                  AggSpec{AggKind::kNone, -1}, "Base");
  auto matched = AwExpr::MatchJoin(*s_base, child,
                                   MatchCond::ChildParent(),
                                   AggSpec{AggKind::kSum, 0}, "Matched");
  ASSERT_TRUE(rolled.ok() && matched.ok());
  auto a = EvalAwExpr(**rolled, *fact_);
  auto b = EvalAwExpr(**matched, *fact_);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectTablesEqual(*a, *b, "childparent == rollup");
}

// --- Operator prerequisite validation (Table 5). ---

TEST_F(PaperExamplesTest, ValidationRejectsBadOperands) {
  auto count = CountExpr();
  // Match join over D is banned.
  auto bad1 = AwExpr::MatchJoin(fact_expr_, count, MatchCond::Self(),
                                AggSpec{AggKind::kSum, 0}, "x");
  EXPECT_FALSE(bad1.ok());
  // ... even when wrapped in σ.
  auto sel = AwExpr::Select(fact_expr_, Expr("bytes > 0"));
  ASSERT_TRUE(sel.ok());
  auto bad2 = AwExpr::MatchJoin(*sel, count, MatchCond::Self(),
                                AggSpec{AggKind::kSum, 0}, "x");
  EXPECT_FALSE(bad2.ok());
  // Aggregation cannot go to a finer granularity.
  auto bad3 = AwExpr::Aggregate(count, Granularity::Base(*schema_),
                                AggSpec{AggKind::kSum, 0}, "x");
  EXPECT_FALSE(bad3.ok());
  // Self match with mismatched granularities.
  auto hourly = AwExpr::Aggregate(count, Gran("(t:hour)"),
                                  AggSpec{AggKind::kSum, 0}, "Hourly");
  ASSERT_TRUE(hourly.ok());
  auto bad4 = AwExpr::MatchJoin(*hourly, count, MatchCond::Self(),
                                AggSpec{AggKind::kSum, 0}, "x");
  EXPECT_FALSE(bad4.ok());
  // Combine join requires equal granularities.
  auto bad5 = AwExpr::CombineJoin(*hourly, {count}, Expr("1"), "x");
  EXPECT_FALSE(bad5.ok());
  // Sibling windows: lo > hi, or a window on an ALL dimension.
  auto bad6 = AwExpr::MatchJoin(*hourly, *hourly,
                                MatchCond::Sibling({{0, 3, 1}}),
                                AggSpec{AggKind::kAvg, 0}, "x");
  EXPECT_FALSE(bad6.ok());
  auto bad7 = AwExpr::MatchJoin(*hourly, *hourly,
                                MatchCond::Sibling({{1, 0, 1}}),
                                AggSpec{AggKind::kAvg, 0}, "x");
  EXPECT_FALSE(bad7.ok());  // U is at ALL in (t:hour)
}

TEST_F(PaperExamplesTest, ToStringMentionsStructure) {
  auto count = CountExpr();
  std::string text = count->ToString();
  EXPECT_NE(text.find("g["), std::string::npos);
  EXPECT_NE(text.find("count"), std::string::npos);
  EXPECT_NE(text.find("D"), std::string::npos);
}

// --- Theorem 1 rewrites, verified against the reference evaluator. ---

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeSyntheticSchema(3, 3, 10, 1000);
    fact_ = std::make_unique<FactTable>(
        MakeUniformFacts(schema_, 3000, 1000, 77));
    auto d = AwExpr::FactTable(schema_);
    ASSERT_TRUE(d.ok());
    fact_expr_ = *d;
  }

  Granularity Gran(const char* text) {
    auto g = Granularity::Parse(*schema_, text);
    EXPECT_TRUE(g.ok());
    return *g;
  }
  ScalarExprPtr Expr(const char* text) {
    auto e = ScalarExpr::Parse(text);
    EXPECT_TRUE(e.ok());
    return *e;
  }
  void ExpectEquivalent(const AwExpr::Ptr& a, const AwExpr::Ptr& b,
                        const std::string& context) {
    auto ra = EvalAwExpr(*a, *fact_);
    auto rb = EvalAwExpr(*b, *fact_);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ExpectTablesEqual(*ra, *rb, context);
  }

  SchemaPtr schema_;
  std::unique_ptr<FactTable> fact_;
  AwExpr::Ptr fact_expr_;
};

TEST_F(RewriteTest, Property1SumOfSums) {
  auto inner = AwExpr::Aggregate(fact_expr_, Gran("(d0:L0, d1:L0)"),
                                 AggSpec{AggKind::kSum, 0}, "inner");
  ASSERT_TRUE(inner.ok());
  auto outer = AwExpr::Aggregate(*inner, Gran("(d0:L1)"),
                                 AggSpec{AggKind::kSum, 0}, "outer");
  ASSERT_TRUE(outer.ok());
  AwExpr::Ptr collapsed = TryCollapseAggregate(*outer);
  ASSERT_NE(collapsed.get(), outer->get());
  EXPECT_EQ(collapsed->kind(), AwKind::kAggregate);
  EXPECT_EQ(collapsed->input()->kind(), AwKind::kFactTable);
  ExpectEquivalent(*outer, collapsed, "sum of sums");
}

TEST_F(RewriteTest, Property1SumOfCounts) {
  auto inner = AwExpr::Aggregate(fact_expr_, Gran("(d0:L0, d2:L0)"),
                                 AggSpec{AggKind::kCount, -1}, "inner");
  auto outer = AwExpr::Aggregate(*inner, Gran("(d0:L2)"),
                                 AggSpec{AggKind::kSum, 0}, "outer");
  ASSERT_TRUE(outer.ok());
  AwExpr::Ptr collapsed = TryCollapseAggregate(*outer);
  ASSERT_NE(collapsed.get(), outer->get());
  ExpectEquivalent(*outer, collapsed, "sum of counts");
}

TEST_F(RewriteTest, Property1DoesNotCollapseCountOfCounts) {
  auto inner = AwExpr::Aggregate(fact_expr_, Gran("(d0:L0)"),
                                 AggSpec{AggKind::kCount, -1}, "inner");
  auto outer = AwExpr::Aggregate(*inner, Gran("(d0:L1)"),
                                 AggSpec{AggKind::kCount, -1}, "outer");
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(TryCollapseAggregate(*outer).get(), outer->get());
}

TEST_F(RewriteTest, Property1MinAndMax) {
  for (AggKind kind : {AggKind::kMin, AggKind::kMax}) {
    auto inner = AwExpr::Aggregate(fact_expr_, Gran("(d0:L0, d1:L1)"),
                                   AggSpec{kind, 0}, "inner");
    auto outer = AwExpr::Aggregate(*inner, Gran("(d1:L1)"),
                                   AggSpec{kind, 0}, "outer");
    ASSERT_TRUE(outer.ok());
    AwExpr::Ptr collapsed = TryCollapseAggregate(*outer);
    ASSERT_NE(collapsed.get(), outer->get());
    ExpectEquivalent(*outer, collapsed, std::string(AggKindName(kind)));
  }
}

TEST_F(RewriteTest, Property2PushDimSelection) {
  auto agg = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1, d1:L1)"),
                               AggSpec{AggKind::kSum, 0}, "agg");
  ASSERT_TRUE(agg.ok());
  auto sel = AwExpr::Select(*agg, Expr("d0 < 30"));
  ASSERT_TRUE(sel.ok());
  AwExpr::Ptr pushed = TryPushSelection(*sel);
  ASSERT_NE(pushed.get(), sel->get());
  EXPECT_EQ(pushed->kind(), AwKind::kAggregate);
  EXPECT_EQ(pushed->input()->kind(), AwKind::kSelect);
  ExpectEquivalent(*sel, pushed, "pushed selection");
}

TEST_F(RewriteTest, Property2DoesNotPushMeasureSelection) {
  auto agg = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                               AggSpec{AggKind::kSum, 0}, "agg");
  auto sel = AwExpr::Select(*agg, Expr("M > 100"));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(TryPushSelection(*sel).get(), sel->get());
}

TEST_F(RewriteTest, FixpointHandlesChains) {
  auto l0 = AwExpr::Aggregate(fact_expr_, Gran("(d0:L0)"),
                              AggSpec{AggKind::kSum, 0}, "l0");
  auto l1 = AwExpr::Aggregate(*l0, Gran("(d0:L1)"),
                              AggSpec{AggKind::kSum, 0}, "l1");
  auto l2 = AwExpr::Aggregate(*l1, Gran("(d0:L2)"),
                              AggSpec{AggKind::kSum, 0}, "l2");
  auto sel = AwExpr::Select(*l2, Expr("d0 < 5"));
  ASSERT_TRUE(sel.ok());
  AwExpr::Ptr rewritten = RewriteFixpoint(*sel);
  ExpectEquivalent(*sel, rewritten, "fixpoint chain");
  // The chain should have collapsed to a single aggregation of D under a
  // pushed selection.
  EXPECT_EQ(rewritten->kind(), AwKind::kAggregate);
  EXPECT_EQ(rewritten->input()->kind(), AwKind::kSelect);
  EXPECT_EQ(rewritten->input()->input()->kind(), AwKind::kFactTable);
}

TEST_F(RewriteTest, Property4CombineReorder) {
  // Reordering combine-join inputs (with the fc variables renamed
  // accordingly — a no-op here since fc references inputs by name) keeps
  // the result.
  auto a = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                             AggSpec{AggKind::kSum, 0}, "A");
  auto b = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                             AggSpec{AggKind::kCount, -1}, "B");
  auto c = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                             AggSpec{AggKind::kMax, 0}, "C");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  auto fc = Expr("A + 2 * B - C");
  auto forward = AwExpr::CombineJoin(*a, {*b, *c}, fc, "out");
  auto reversed = AwExpr::CombineJoin(*a, {*c, *b}, fc, "out");
  ASSERT_TRUE(forward.ok() && reversed.ok());
  ExpectEquivalent(*forward, *reversed, "combine reorder");
}

TEST_F(RewriteTest, Property5CombineSplit) {
  // S ⋈̄_fc(T1, T2) == (S ⋈̄_fc1(T1)) ⋈̄_fc2(T2) with fc decomposed.
  auto s = AwExpr::Aggregate(fact_expr_, Gran("(d1:L1)"),
                             AggSpec{AggKind::kSum, 0}, "S");
  auto t1 = AwExpr::Aggregate(fact_expr_, Gran("(d1:L1)"),
                              AggSpec{AggKind::kCount, -1}, "T1");
  auto t2 = AwExpr::Aggregate(fact_expr_, Gran("(d1:L1)"),
                              AggSpec{AggKind::kMax, 0}, "T2");
  ASSERT_TRUE(s.ok() && t1.ok() && t2.ok());
  auto joint = AwExpr::CombineJoin(*s, {*t1, *t2},
                                   Expr("(S + T1) - T2"), "out");
  auto stage1 = AwExpr::CombineJoin(*s, {*t1}, Expr("S + T1"), "Stage1");
  ASSERT_TRUE(stage1.ok());
  auto stage2 = AwExpr::CombineJoin(*stage1, {*t2},
                                    Expr("Stage1 - T2"), "out");
  ASSERT_TRUE(joint.ok() && stage2.ok());
  ExpectEquivalent(*joint, *stage2, "combine split");
}

TEST_F(RewriteTest, Property3MatchJoinIsNotAssociative) {
  // Theorem 1, Property 3: (S ⋈ T) ⋈ U ≠ S ⋈ (T ⋈ U). Demonstrate with
  // sum-aggregating self matches over tables where regrouping changes
  // the result.
  auto s = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                             AggSpec{AggKind::kCount, -1}, "S");
  auto t = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                             AggSpec{AggKind::kSum, 0}, "T");
  auto u = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                             AggSpec{AggKind::kMax, 0}, "U");
  ASSERT_TRUE(s.ok() && t.ok() && u.ok());
  const MatchCond window = MatchCond::Sibling({{0, 0, 1}});
  const AggSpec sum{AggKind::kSum, 0};
  auto st = AwExpr::MatchJoin(*s, *t, window, sum, "ST");
  ASSERT_TRUE(st.ok());
  auto left = AwExpr::MatchJoin(*st, *u, window, sum, "L");
  auto tu = AwExpr::MatchJoin(*t, *u, window, sum, "TU");
  ASSERT_TRUE(tu.ok());
  auto right = AwExpr::MatchJoin(*s, *tu, window, sum, "R");
  ASSERT_TRUE(left.ok() && right.ok());
  auto lv = EvalAwExpr(**left, *fact_);
  auto rv = EvalAwExpr(**right, *fact_);
  ASSERT_TRUE(lv.ok() && rv.ok());
  // (S⋈T)⋈U aggregates U's values over the window of ST's regions;
  // S⋈(T⋈U) aggregates window-sums of window-sums — different numbers.
  bool any_diff = false;
  auto ml = testing_util::ToMap(*lv);
  auto mr = testing_util::ToMap(*rv);
  for (const auto& [key, value] : ml) {
    auto it = mr.find(key);
    if (it != mr.end() && value != it->second) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "association order should matter";
}

TEST_F(RewriteTest, MeasureRefResolution) {
  auto count = AwExpr::Aggregate(fact_expr_, Gran("(d0:L1)"),
                                 AggSpec{AggKind::kCount, -1}, "Count");
  ASSERT_TRUE(count.ok());
  auto table = EvalAwExpr(**count, *fact_);
  ASSERT_TRUE(table.ok());
  auto ref = AwExpr::MeasureRef(schema_, "Count", Gran("(d0:L1)"));
  ASSERT_TRUE(ref.ok());
  auto rolled = AwExpr::Aggregate(*ref, Gran("(d0:L2)"),
                                  AggSpec{AggKind::kSum, 0}, "Rolled");
  ASSERT_TRUE(rolled.ok());
  MeasureEnv env{{"Count", &*table}};
  auto via_ref = EvalAwExpr(**rolled, *fact_, env);
  ASSERT_TRUE(via_ref.ok()) << via_ref.status().ToString();
  // Same as the deep expression.
  auto deep = AwExpr::Aggregate(*count, Gran("(d0:L2)"),
                                AggSpec{AggKind::kSum, 0}, "Rolled");
  auto expect = EvalAwExpr(**deep, *fact_);
  ASSERT_TRUE(expect.ok());
  ExpectTablesEqual(*via_ref, *expect, "measure ref");
  // Unresolved refs fail cleanly.
  EXPECT_FALSE(EvalAwExpr(**rolled, *fact_).ok());
}

}  // namespace
}  // namespace csm
