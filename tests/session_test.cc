// QuerySession / workflow-fusion tests: fingerprint stability, cross-query
// deduplication, fused-vs-independent conformance, result-cache behavior,
// hidden-measure demultiplexing, concurrent Submit (run under TSan in CI),
// and the validated MakeEngine factory.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/factory.h"
#include "exec/session.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "test_util.h"
#include "workflow/fuse.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

Workflow ParseOrDie(const SchemaPtr& schema, const std::string& dsl) {
  auto workflow = Workflow::Parse(schema, dsl);
  EXPECT_TRUE(workflow.ok()) << workflow.status().ToString();
  return std::move(workflow).ValueOrDie();
}

// Two overlapping queries: both build the same hidden per-source count,
// then emit different roll-ups of it. Fusion should share `Count`.
constexpr char kQueryA[] = R"(
  measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
  measure Busy at (t:hour) = agg count(M) from Count where M > 2;)";

constexpr char kQueryB[] = R"(
  measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
  measure Traffic at (t:hour) = agg sum(M) from Count where M > 2;)";

// Disjoint third query exercising match + combine arcs.
constexpr char kQueryC[] = R"(
  measure Daily at (t:day) = agg count(*) from FACT;
  measure Hourly at (t:hour) = agg count(*) from FACT;
  measure Share at (t:hour) = match Daily using parentchild agg sum(M);
  measure Frac at (t:hour) = combine(Hourly, Share)
      as Hourly / Share;)";

// Reference: each workflow through its own engine run, same options.
std::vector<EvalOutput> IndependentRuns(
    const std::vector<const Workflow*>& queries, const FactTable& fact,
    EngineOptions options = {}) {
  std::vector<EvalOutput> out;
  for (const Workflow* workflow : queries) {
    auto engine = MakeEngine(EngineKind::kSortScan, options);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    auto result = testing_util::RunWith(**engine, *workflow, fact, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.push_back(std::move(*result));
  }
  return out;
}

void ExpectOutputsEqual(const EvalOutput& got, const EvalOutput& want,
                        const std::string& context) {
  EXPECT_EQ(got.table_names(), want.table_names()) << context;
  for (const std::string& name : want.table_names()) {
    const MeasureTable* gt = got.FindTable(name);
    const MeasureTable* wt = want.FindTable(name);
    ASSERT_NE(gt, nullptr) << context << "/" << name;
    ASSERT_NE(wt, nullptr) << context << "/" << name;
    ExpectTablesEqual(*gt, *wt, context + "/" + name);
  }
}

// ---------------------------------------------------------------------------
// Measure / query fingerprints.

TEST(SessionFingerprintTest, InvariantUnderRenaming) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow a = ParseOrDie(schema, kQueryA);
  Workflow renamed = ParseOrDie(schema, R"(
    measure PerSrc at (t:hour, U:ip) = agg count(*) from FACT hidden;
    measure Loud at (t:hour) = agg count(M) from PerSrc where M > 2;)");

  CSM_ASSERT_OK_AND_ASSIGN(uint64_t base_a, MeasureFingerprint(a, "Count"));
  CSM_ASSERT_OK_AND_ASSIGN(uint64_t base_r,
                           MeasureFingerprint(renamed, "PerSrc"));
  EXPECT_EQ(base_a, base_r);

  CSM_ASSERT_OK_AND_ASSIGN(uint64_t top_a, MeasureFingerprint(a, "Busy"));
  CSM_ASSERT_OK_AND_ASSIGN(uint64_t top_r,
                           MeasureFingerprint(renamed, "Loud"));
  EXPECT_EQ(top_a, top_r);

  // Different structure (filter constant) must not collide.
  Workflow different = ParseOrDie(schema, R"(
    measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
    measure Busy at (t:hour) = agg count(M) from Count where M > 3;)");
  CSM_ASSERT_OK_AND_ASSIGN(uint64_t top_d,
                           MeasureFingerprint(different, "Busy"));
  EXPECT_NE(top_a, top_d);
  CSM_ASSERT_OK_AND_ASSIGN(uint64_t base_d,
                           MeasureFingerprint(different, "Count"));
  EXPECT_EQ(base_a, base_d);  // the shared base is still identical
}

TEST(SessionFingerprintTest, InvariantUnderReorderingUnrelatedMeasures) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow xy = ParseOrDie(schema, R"(
    measure X at (t:hour) = agg sum(bytes) from FACT;
    measure Y at (U:net24) = agg count(*) from FACT;)");
  Workflow yx = ParseOrDie(schema, R"(
    measure Y at (U:net24) = agg count(*) from FACT;
    measure X at (t:hour) = agg sum(bytes) from FACT;)");

  auto fp_xy = WorkflowFingerprints(xy);
  auto fp_yx = WorkflowFingerprints(yx);
  EXPECT_EQ(fp_xy, fp_yx);  // keyed by lower-cased name, order-free
}

TEST(SessionFingerprintTest, QueryFingerprintIgnoresHiddenNames) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow a = ParseOrDie(schema, kQueryA);
  // Renaming only the HIDDEN intermediate does not change what the query
  // emits, so the cache identity is unchanged...
  Workflow hidden_renamed = ParseOrDie(schema, R"(
    measure PerSrc at (t:hour, U:ip) = agg count(*) from FACT hidden;
    measure Busy at (t:hour) = agg count(M) from PerSrc where M > 2;)");
  EXPECT_EQ(QueryFingerprint(a, false),
            QueryFingerprint(hidden_renamed, false));

  // ...but renaming an OUTPUT is a different keyed result.
  Workflow output_renamed = ParseOrDie(schema, R"(
    measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
    measure Loud at (t:hour) = agg count(M) from Count where M > 2;)");
  EXPECT_NE(QueryFingerprint(a, false),
            QueryFingerprint(output_renamed, false));

  // Under include_hidden the intermediate's name is emitted too.
  EXPECT_NE(QueryFingerprint(a, true),
            QueryFingerprint(hidden_renamed, true));
}

// ---------------------------------------------------------------------------
// Fusion.

TEST(SessionFuseTest, DedupesSharedMeasuresAcrossQueries) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow a = ParseOrDie(schema, kQueryA);
  Workflow b = ParseOrDie(schema, kQueryB);

  CSM_ASSERT_OK_AND_ASSIGN(FusedPlan plan, FuseWorkflows({&a, &b}));
  EXPECT_EQ(plan.total_measures, 4u);
  EXPECT_EQ(plan.shared_measures, 1u);  // the hidden Count
  EXPECT_EQ(plan.combined.measures().size(), 3u);
  ASSERT_EQ(plan.queries.size(), 2u);
  // Both queries' Count measures map to the same fused name.
  EXPECT_EQ(plan.queries[0].measures[0].second,
            plan.queries[1].measures[0].second);
  // Outputs stay per-query.
  ASSERT_EQ(plan.queries[0].outputs.size(), 1u);
  EXPECT_EQ(plan.queries[0].outputs[0].first, "Busy");
  ASSERT_EQ(plan.queries[1].outputs.size(), 1u);
  EXPECT_EQ(plan.queries[1].outputs[0].first, "Traffic");
}

TEST(SessionFuseTest, IdenticalQueryFusesToNothingNew) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow a1 = ParseOrDie(schema, kQueryA);
  Workflow a2 = ParseOrDie(schema, kQueryA);
  CSM_ASSERT_OK_AND_ASSIGN(FusedPlan plan, FuseWorkflows({&a1, &a2}));
  EXPECT_EQ(plan.shared_measures, 2u);
  EXPECT_EQ(plan.combined.measures().size(), 2u);
}

// ---------------------------------------------------------------------------
// Session execution = independent execution.

TEST(SessionTest, FusedRunMatchesIndependentRuns) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 4000, 64, /*seed=*/7);
  Workflow a = ParseOrDie(schema, kQueryA);
  Workflow b = ParseOrDie(schema, kQueryB);
  Workflow c = ParseOrDie(schema, kQueryC);

  CSM_ASSERT_OK_AND_ASSIGN(auto session,
                           QuerySession::Create(EngineKind::kSortScan));
  CSM_ASSERT_OK(session->Submit(a).status());
  CSM_ASSERT_OK(session->Submit(b).status());
  CSM_ASSERT_OK(session->Submit(c).status());
  EXPECT_EQ(session->num_pending(), 3u);

  CSM_ASSERT_OK_AND_ASSIGN(std::vector<EvalOutput> fused,
                           session->RunPending(fact));
  EXPECT_EQ(session->num_pending(), 0u);
  ASSERT_EQ(fused.size(), 3u);

  std::vector<EvalOutput> independent = IndependentRuns({&a, &b, &c}, fact);
  ASSERT_EQ(independent.size(), 3u);
  ExpectOutputsEqual(fused[0], independent[0], "queryA");
  ExpectOutputsEqual(fused[1], independent[1], "queryB");
  ExpectOutputsEqual(fused[2], independent[2], "queryC");

  const SessionReport report = session->last_report();
  EXPECT_EQ(report.queries, 3u);
  EXPECT_EQ(report.total_measures, 8u);
  EXPECT_EQ(report.shared_measures, 1u);
  EXPECT_EQ(report.fused_measures, 7u);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 3u);
  EXPECT_GT(report.run_stats.total_seconds, 0.0);
}

TEST(SessionTest, RespectsExplicitSortKey) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 1500, 32, /*seed=*/11);
  Workflow a = ParseOrDie(schema, kQueryA);

  SessionOptions options;
  CSM_ASSERT_OK_AND_ASSIGN(options.engine_options.sort_key,
                           SortKey::Parse(*schema, "<t:hour, U:ip>"));
  CSM_ASSERT_OK_AND_ASSIGN(
      auto session, QuerySession::Create(EngineKind::kSortScan, options));
  CSM_ASSERT_OK(session->Submit(a).status());
  CSM_ASSERT_OK_AND_ASSIGN(auto fused, session->RunPending(fact));
  ASSERT_EQ(fused.size(), 1u);

  std::vector<EvalOutput> independent =
      IndependentRuns({&a}, fact, options.engine_options);
  ExpectOutputsEqual(fused[0], independent[0], "explicit-sort-key");
}

TEST(SessionTest, DemuxesHiddenMeasuresWhenRequested) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 1200, 32, /*seed=*/3);
  Workflow a = ParseOrDie(schema, kQueryA);
  Workflow b = ParseOrDie(schema, kQueryB);

  SessionOptions options;
  options.include_hidden = true;
  CSM_ASSERT_OK_AND_ASSIGN(
      auto session, QuerySession::Create(EngineKind::kSortScan, options));
  CSM_ASSERT_OK(session->Submit(a).status());
  CSM_ASSERT_OK(session->Submit(b).status());
  CSM_ASSERT_OK_AND_ASSIGN(auto fused, session->RunPending(fact));
  ASSERT_EQ(fused.size(), 2u);

  // Each query gets its hidden intermediate back under its OWN name, even
  // though the fused run computed the shared table only once.
  EXPECT_EQ(fused[0].table_names(),
            (std::vector<std::string>{"Busy", "Count"}));
  EXPECT_EQ(fused[1].table_names(),
            (std::vector<std::string>{"Count", "Traffic"}));
  ExpectTablesEqual(*fused[0].FindTable("Count"),
                    *fused[1].FindTable("Count"), "shared hidden Count");

  EngineOptions run_options;
  run_options.include_hidden = true;
  std::vector<EvalOutput> independent =
      IndependentRuns({&a, &b}, fact, run_options);
  ExpectOutputsEqual(fused[0], independent[0], "hidden/queryA");
  ExpectOutputsEqual(fused[1], independent[1], "hidden/queryB");
}

TEST(SessionTest, SubmitValidatesWorkflows) {
  SchemaPtr schema = MakeNetworkLogSchema();
  CSM_ASSERT_OK_AND_ASSIGN(auto session,
                           QuerySession::Create(EngineKind::kSortScan));
  EXPECT_FALSE(session->Submit(Workflow(schema)).ok());  // no measures

  CSM_ASSERT_OK(session->Submit(ParseOrDie(schema, kQueryA)).status());
  // Structurally equal schema, different object: rejected (fusion relies
  // on one shared schema instance).
  SchemaPtr other_schema = MakeNetworkLogSchema();
  EXPECT_FALSE(
      session->Submit(ParseOrDie(other_schema, kQueryB)).ok());
}

TEST(SessionTest, RunPendingOnEmptyBatchReturnsNothing) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 100, 16, /*seed=*/1);
  CSM_ASSERT_OK_AND_ASSIGN(auto session,
                           QuerySession::Create(EngineKind::kSortScan));
  CSM_ASSERT_OK_AND_ASSIGN(auto outputs, session->RunPending(fact));
  EXPECT_TRUE(outputs.empty());
  EXPECT_EQ(session->last_report().queries, 0u);
}

// ---------------------------------------------------------------------------
// Result cache.

class SessionCacheTest : public ::testing::Test {
 protected:
  SessionCacheTest()
      : schema_(MakeNetworkLogSchema()),
        fact_(MakeUniformFacts(schema_, 1000, 32, /*seed=*/5)) {}

  std::unique_ptr<QuerySession> MakeSession(size_t capacity) {
    SessionOptions options;
    options.cache_capacity = capacity;
    auto session = QuerySession::Create(EngineKind::kSortScan, options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return std::move(session).ValueOrDie();
  }

  // Submits A and B and runs them, returning the outputs.
  std::vector<EvalOutput> RunBatch(QuerySession& session,
                                   const FactTable& fact) {
    EXPECT_TRUE(session.Submit(ParseOrDie(schema_, kQueryA)).ok());
    EXPECT_TRUE(session.Submit(ParseOrDie(schema_, kQueryB)).ok());
    auto outputs = session.RunPending(fact);
    EXPECT_TRUE(outputs.ok()) << outputs.status().ToString();
    return std::move(outputs).ValueOrDie();
  }

  SchemaPtr schema_;
  FactTable fact_;
};

TEST_F(SessionCacheTest, HitsOnRepeatAndServesIdenticalResults) {
  auto session = MakeSession(/*capacity=*/8);

  std::vector<EvalOutput> cold = RunBatch(*session, fact_);
  SessionReport report = session->last_report();
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 2u);
  EXPECT_EQ(session->cache_size(), 2u);

  std::vector<EvalOutput> warm = RunBatch(*session, fact_);
  report = session->last_report();
  EXPECT_EQ(report.cache_hits, 2u);
  EXPECT_EQ(report.cache_misses, 0u);
  EXPECT_EQ(report.fused_measures, 0u);  // nothing executed
  ASSERT_EQ(warm.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ExpectOutputsEqual(warm[i], cold[i], "warm vs cold");
  }
}

TEST_F(SessionCacheTest, InvalidatesWhenFactContentChanges) {
  auto session = MakeSession(/*capacity=*/8);
  RunBatch(*session, fact_);
  EXPECT_EQ(session->cache_size(), 2u);

  // Same rows plus one appended: a different content hash, so every
  // cached entry misses against the mutated table.
  FactTable mutated(schema_);
  mutated.Reserve(fact_.num_rows() + 1);
  for (size_t row = 0; row < fact_.num_rows(); ++row) {
    mutated.AppendRow(fact_.dim_row(row), fact_.measure_row(row));
  }
  mutated.AppendRow(fact_.dim_row(0), fact_.measure_row(0));
  ASSERT_NE(fact_.ContentHash(), mutated.ContentHash());

  std::vector<EvalOutput> fresh = RunBatch(*session, mutated);
  SessionReport report = session->last_report();
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 2u);

  // And the fresh results really reflect the mutated data.
  Workflow a = ParseOrDie(schema_, kQueryA);
  std::vector<EvalOutput> independent = IndependentRuns({&a}, mutated);
  ExpectOutputsEqual(fresh[0], independent[0], "mutated fact");
}

TEST_F(SessionCacheTest, EvictsLeastRecentlyUsed) {
  auto session = MakeSession(/*capacity=*/1);
  RunBatch(*session, fact_);  // B lands last -> A evicted
  EXPECT_EQ(session->cache_size(), 1u);

  // A misses (evicted), B would hit — submit A only.
  CSM_ASSERT_OK(session->Submit(ParseOrDie(schema_, kQueryA)).status());
  CSM_ASSERT_OK(session->RunPending(fact_).status());
  EXPECT_EQ(session->last_report().cache_hits, 0u);
  EXPECT_EQ(session->last_report().cache_misses, 1u);

  // Now A occupies the single slot.
  CSM_ASSERT_OK(session->Submit(ParseOrDie(schema_, kQueryA)).status());
  CSM_ASSERT_OK(session->RunPending(fact_).status());
  EXPECT_EQ(session->last_report().cache_hits, 1u);
}

TEST_F(SessionCacheTest, ClearCacheForgetsEverything) {
  auto session = MakeSession(/*capacity=*/8);
  RunBatch(*session, fact_);
  EXPECT_EQ(session->cache_size(), 2u);
  session->ClearCache();
  EXPECT_EQ(session->cache_size(), 0u);
  RunBatch(*session, fact_);
  EXPECT_EQ(session->last_report().cache_misses, 2u);
}

TEST_F(SessionCacheTest, DisabledByDefault) {
  auto session = MakeSession(/*capacity=*/0);
  RunBatch(*session, fact_);
  EXPECT_EQ(session->cache_size(), 0u);
  RunBatch(*session, fact_);
  EXPECT_EQ(session->last_report().cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan in CI).

TEST(SessionConcurrencyTest, ConcurrentSubmitThenRun) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 600, 16, /*seed=*/17);
  CSM_ASSERT_OK_AND_ASSIGN(auto session,
                           QuerySession::Create(EngineKind::kSortScan));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const char* dsl = (t + i) % 2 == 0 ? kQueryA : kQueryB;
        auto index = session->Submit(ParseOrDie(schema, dsl));
        EXPECT_TRUE(index.ok()) << index.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(session->num_pending(),
            static_cast<size_t>(kThreads * kPerThread));

  CSM_ASSERT_OK_AND_ASSIGN(auto outputs, session->RunPending(fact));
  ASSERT_EQ(outputs.size(), static_cast<size_t>(kThreads * kPerThread));

  // Every output matches the corresponding single-query run; with only
  // two distinct structures, the fused DAG collapses to their union.
  Workflow a = ParseOrDie(schema, kQueryA);
  Workflow b = ParseOrDie(schema, kQueryB);
  std::vector<EvalOutput> independent = IndependentRuns({&a, &b}, fact);
  for (const EvalOutput& out : outputs) {
    const bool is_a = out.FindTable("Busy") != nullptr;
    ExpectOutputsEqual(out, independent[is_a ? 0 : 1],
                       is_a ? "concurrent/A" : "concurrent/B");
  }
  EXPECT_EQ(session->last_report().fused_measures, 3u);
}

TEST(SessionConcurrencyTest, SubmitRacingRunPendingLandsSomewhere) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 400, 16, /*seed=*/23);
  CSM_ASSERT_OK_AND_ASSIGN(auto session,
                           QuerySession::Create(EngineKind::kSortScan));
  CSM_ASSERT_OK(session->Submit(ParseOrDie(schema, kQueryA)).status());

  size_t raced = 0;
  std::thread submitter([&] {
    for (int i = 0; i < 4; ++i) {
      if (session->Submit(ParseOrDie(schema, kQueryB)).ok()) ++raced;
    }
  });
  CSM_ASSERT_OK_AND_ASSIGN(auto first, session->RunPending(fact));
  submitter.join();
  EXPECT_GE(first.size(), 1u);

  // Whatever missed the first batch is still pending and runs cleanly.
  CSM_ASSERT_OK_AND_ASSIGN(auto second, session->RunPending(fact));
  EXPECT_EQ(first.size() + second.size(), 1u + raced);
}

// ---------------------------------------------------------------------------
// MakeEngine / EngineOptions validation, EvalOutput accessors.

TEST(SessionEngineFactoryTest, ValidatesOptions) {
  EngineOptions bad_batch;
  bad_batch.scan_batch_rows = 0;
  EXPECT_FALSE(bad_batch.Validate().ok());
  EXPECT_FALSE(MakeEngine(EngineKind::kSortScan, bad_batch).ok());

  EngineOptions bad_budget;
  bad_budget.memory_budget_bytes = 0;
  EXPECT_FALSE(bad_budget.Validate().ok());
  EXPECT_FALSE(MakeEngine(EngineKind::kSingleScan, bad_budget).ok());

  EngineOptions bad_threads;
  bad_threads.parallel_threads = -1;
  EXPECT_FALSE(bad_threads.Validate().ok());
  EXPECT_FALSE(MakeEngine(EngineKind::kMultiPass, bad_threads).ok());

  CSM_ASSERT_OK(EngineOptions{}.Validate());
  for (EngineKind kind :
       {EngineKind::kSingleScan, EngineKind::kSortScan,
        EngineKind::kMultiPass, EngineKind::kRelational}) {
    CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(kind));
    EXPECT_NE(engine, nullptr);
  }
}

TEST(SessionEngineFactoryTest, SessionCreateRejectsBadOptions) {
  SessionOptions options;
  options.engine_options.scan_batch_rows = 0;
  EXPECT_FALSE(QuerySession::Create(EngineKind::kSortScan, options).ok());
}

TEST(SessionEvalOutputTest, FindTableAndDeterministicNames) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 300, 16, /*seed=*/9);
  Workflow c = ParseOrDie(schema, kQueryC);
  CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(EngineKind::kSortScan));
  CSM_ASSERT_OK_AND_ASSIGN(auto output,
                           testing_util::RunWith(*engine, c, fact));

  // Name-sorted, so iteration order never depends on insertion order.
  EXPECT_EQ(output.table_names(),
            (std::vector<std::string>{"Daily", "Frac", "Hourly", "Share"}));
  ASSERT_NE(output.FindTable("Frac"), nullptr);
  EXPECT_EQ(output.FindTable("Frac")->name(), "Frac");
  // Lookups are case-insensitive, like every other name in the system.
  EXPECT_EQ(output.FindTable("fRaC"), output.FindTable("Frac"));
  EXPECT_EQ(output.FindTable("NoSuchMeasure"), nullptr);
}

}  // namespace
}  // namespace csm
