// Determinism and safety of the shared work-stealing scheduler and the
// operator pipeline built on it (PR: physical operator layer).
//
// The core contract under test: every engine's result is BIT-identical
// for any executor count and any morsel size, because per-morsel partial
// states are merged in morsel-index order and morsel boundaries depend
// only on (rows, morsel_rows).

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <vector>

#include "common/logging.h"
#include "exec/exec_context.h"
#include "exec/factory.h"
#include "exec/scheduler.h"
#include "gtest/gtest.h"
#include "opt/lowering.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::MakeUniformFacts;
using testing_util::RunWith;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kSingleScan, EngineKind::kSortScan, EngineKind::kMultiPass,
    EngineKind::kParallel,   EngineKind::kRelational,
    EngineKind::kAdaptive};

Workflow ParseWorkflow(const SchemaPtr& schema) {
  // avg + var are floating-point accumulation-order sensitive: if the
  // merge order ever depended on the executor count, these would differ
  // in the low bits and the bit-exact comparison below would catch it.
  auto workflow = Workflow::Parse(schema, R"(
      measure C at (d0:L0, d1:L1) = agg sum(M) from FACT hidden;
      measure V at (d0:L1, d1:L1) = agg var(M) from FACT hidden;
      measure A at (d0:L1) = agg avg(M) from V;
      measure R at (d0:L1) = agg sum(M) from C;
      measure W at (d0:L1) = match R using sibling(d0 in [0, 2])
          agg avg(M);
      measure F at (d0:L1) = agg min(M) from FACT where (d0 > 3);)");
  CSM_CHECK(workflow.ok()) << workflow.status().ToString();
  return std::move(*workflow);
}

/// Bit-exact table equality: same rows in the same order, values compared
/// as raw 8-byte patterns (so 0.0 != -0.0 and NaN payloads must match —
/// the strongest possible determinism check).
void ExpectBitIdentical(const EvalOutput& a, const EvalOutput& b,
                        const std::string& context) {
  ASSERT_EQ(a.tables.size(), b.tables.size()) << context;
  for (const auto& [name, ta] : a.tables) {
    const MeasureTable* tb = b.FindTable(name);
    ASSERT_NE(tb, nullptr) << context << ": missing table " << name;
    ASSERT_EQ(ta.num_rows(), tb->num_rows()) << context << "/" << name;
    for (size_t row = 0; row < ta.num_rows(); ++row) {
      ASSERT_EQ(0, std::memcmp(ta.key_row(row), tb->key_row(row),
                               sizeof(Value) * ta.num_dims()))
          << context << "/" << name << " key mismatch at row " << row;
      const double va = ta.value(row);
      const double vb = tb->value(row);
      ASSERT_EQ(0, std::memcmp(&va, &vb, sizeof(double)))
          << context << "/" << name << " row " << row << ": " << va
          << " vs " << vb;
    }
  }
}

class SchedulerDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeSyntheticSchema(3, 3, 10, 1000);
    fact_ = std::make_unique<FactTable>(
        MakeUniformFacts(schema_, 20000, 1000, 7));
    workflow_ = std::make_unique<Workflow>(ParseWorkflow(schema_));
  }

  const FactTable& fact() const { return *fact_; }

  SchemaPtr schema_;
  std::unique_ptr<FactTable> fact_;
  std::unique_ptr<Workflow> workflow_;
};

TEST_F(SchedulerDeterminismTest, BitIdenticalAcrossThreadCounts) {
  for (EngineKind kind : kAllEngines) {
    EngineOptions base;
    base.include_hidden = true;
    base.parallel_threads = 1;
    CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(kind, base));
    CSM_ASSERT_OK_AND_ASSIGN(EvalOutput ref,
                             RunWith(*engine, *workflow_, fact(), base));
    for (int threads : {2, 8}) {
      EngineOptions options = base;
      options.parallel_threads = threads;
      CSM_ASSERT_OK_AND_ASSIGN(
          EvalOutput got, RunWith(*engine, *workflow_, fact(), options));
      ExpectBitIdentical(ref, got,
                         std::string(EngineKindName(kind)) + " t1 vs t" +
                             std::to_string(threads));
    }
  }
}

// Morsel size picks the partial-aggregate split points, so changing it
// legitimately perturbs floating-point low bits (like changing the sort
// order would). The scheduler contract is that for a FIXED morsel size
// the result is bit-identical at every executor count.
TEST_F(SchedulerDeterminismTest, ThreadInvariantAtEveryMorselSize) {
  EngineOptions base;
  base.include_hidden = true;
  for (size_t morsel_rows : {size_t{1}, size_t{7}, size_t{64},
                             size_t{100000}}) {
    EngineOptions ref_options = base;
    ref_options.morsel_rows = morsel_rows;
    ref_options.parallel_threads = 1;
    CSM_ASSERT_OK_AND_ASSIGN(auto engine,
                             MakeEngine(EngineKind::kSingleScan, ref_options));
    CSM_ASSERT_OK_AND_ASSIGN(
        EvalOutput ref, RunWith(*engine, *workflow_, fact(), ref_options));
    for (int threads : {2, 8}) {
      EngineOptions options = ref_options;
      options.parallel_threads = threads;
      CSM_ASSERT_OK_AND_ASSIGN(
          EvalOutput got, RunWith(*engine, *workflow_, fact(), options));
      ExpectBitIdentical(ref, got,
                         "morsel_rows=" + std::to_string(morsel_rows) +
                             " t1 vs t" + std::to_string(threads));
    }
  }
}

TEST_F(SchedulerDeterminismTest, EmptyAndOneRowFacts) {
  for (EngineKind kind : kAllEngines) {
    for (size_t rows : {size_t{0}, size_t{1}}) {
      FactTable tiny = MakeUniformFacts(schema_, rows, 1000, 11);
      EngineOptions base;
      base.parallel_threads = 1;
      CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(kind, base));
      CSM_ASSERT_OK_AND_ASSIGN(EvalOutput ref,
                               RunWith(*engine, *workflow_, tiny, base));
      EngineOptions wide = base;
      wide.parallel_threads = 8;
      wide.morsel_rows = 1;
      CSM_ASSERT_OK_AND_ASSIGN(EvalOutput got,
                               RunWith(*engine, *workflow_, tiny, wide));
      ExpectBitIdentical(ref, got,
                         std::string(EngineKindName(kind)) + " rows=" +
                             std::to_string(rows));
    }
  }
}

TEST(SchedulerPoolTest, MorselLoopCoversEveryRowExactlyOnce) {
  ThreadPool& pool = ThreadPool::Global();
  const size_t total_rows = 10013;  // prime-ish: short final morsel
  const size_t morsel_rows = 64;
  std::mutex mu;
  std::set<size_t> seen_morsels;
  std::vector<char> covered(total_rows, 0);
  MorselStats stats;
  Status status = ParallelMorsels(
      pool, total_rows, morsel_rows, /*max_executors=*/0,
      /*cancel=*/nullptr,
      [&](size_t morsel, size_t begin, size_t end, int /*executor*/) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen_morsels.insert(morsel).second)
            << "morsel " << morsel << " dispatched twice";
        EXPECT_EQ(begin, morsel * morsel_rows);
        EXPECT_LE(end, total_rows);
        for (size_t r = begin; r < end; ++r) {
          EXPECT_EQ(covered[r], 0) << "row " << r << " visited twice";
          covered[r] = 1;
        }
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(seen_morsels.size(), (total_rows + morsel_rows - 1) / morsel_rows);
  EXPECT_EQ(stats.morsels, seen_morsels.size());
  for (size_t r = 0; r < total_rows; ++r) {
    ASSERT_EQ(covered[r], 1) << "row " << r << " never visited";
  }
}

TEST(SchedulerPoolTest, CancellationStopsDispatchMidMorsel) {
  ThreadPool& pool = ThreadPool::Global();
  std::atomic<bool> cancel{false};
  std::atomic<uint64_t> executed{0};
  // The body trips the cancel flag after the first few morsels; the
  // scheduler must stop dispatching not-yet-started morsels and report
  // Cancelled.
  Status status = ParallelMorsels(
      pool, /*total_rows=*/100000, /*morsel_rows=*/16, /*max_executors=*/0,
      &cancel,
      [&](size_t, size_t, size_t, int) {
        if (executed.fetch_add(1) >= 3) {
          cancel.store(true, std::memory_order_relaxed);
        }
        return Status::OK();
      },
      nullptr);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_LT(executed.load(), 100000u / 16u)
      << "cancellation should have stopped dispatch early";
}

TEST(SchedulerPoolTest, FirstTaskErrorWinsByIndex) {
  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i]() -> Status {
      if (i == 3) return Status::Internal("boom 3");
      if (i == 9) return Status::Internal("boom 9");
      return Status::OK();
    });
  }
  Status status = ParallelTasks(pool, 0, nullptr, tasks);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("boom 3"), std::string::npos)
      << "lowest-index failure must win, got: " << status.ToString();
}

TEST(SchedulerPoolTest, NestedRunOnExecutorsDegradesToSequential) {
  ThreadPool& pool = ThreadPool::Global();
  std::atomic<int> outer{0}, inner{0};
  pool.RunOnExecutors(4, [&](int) {
    outer.fetch_add(1);
    pool.RunOnExecutors(4, [&](int) { inner.fetch_add(1); });
  });
  // Every started outer executor ran a complete nested job; no deadlock.
  EXPECT_GE(outer.load(), 1);
  EXPECT_GE(inner.load(), outer.load());
}

TEST(EngineOptionsValidateTest, MorselAndThreadBounds) {
  EngineOptions options;
  CSM_EXPECT_OK(options.Validate());

  options.morsel_rows = 0;
  EXPECT_FALSE(options.Validate().ok()) << "morsel_rows=0 must be rejected";
  options.morsel_rows = (16u << 20) + 1;
  EXPECT_FALSE(options.Validate().ok())
      << "morsel_rows over 16Mi must be rejected";
  options.morsel_rows = 16u << 20;
  CSM_EXPECT_OK(options.Validate());

  options = EngineOptions();
  options.parallel_threads = 4097;
  EXPECT_FALSE(options.Validate().ok())
      << "parallel_threads over 4096 must be rejected";
  options.parallel_threads = 4096;
  CSM_EXPECT_OK(options.Validate());
  options.parallel_threads = -1;
  EXPECT_FALSE(options.Validate().ok());

  // The factory enforces Validate.
  EngineOptions bad;
  bad.morsel_rows = 0;
  EXPECT_FALSE(MakeEngine(EngineKind::kSingleScan, bad).ok());
}

TEST(LoweringTest, EveryEngineKindDescribesItsPlan) {
  SchemaPtr schema = MakeSyntheticSchema(3, 3, 10, 1000);
  Workflow workflow = ParseWorkflow(schema);
  for (EngineKind kind : kAllEngines) {
    EngineOptions options;
    CSM_ASSERT_OK_AND_ASSIGN(PhysicalPlan plan,
                             LowerToPlan(kind, workflow, options));
    const std::string text = plan.Describe(*schema);
    EXPECT_NE(text.find("plan: "), std::string::npos) << text;
    EXPECT_NE(text.find("morsel_rows"), std::string::npos) << text;
    EXPECT_FALSE(plan.ops.empty())
        << EngineKindName(kind) << " lowered to an empty pipeline";
    if (kind == EngineKind::kAdaptive) {
      EXPECT_NE(text.find("adaptive -> "), std::string::npos) << text;
    }
  }
}

}  // namespace
}  // namespace csm
