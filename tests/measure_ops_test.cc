#include <cmath>
#include <limits>

#include "algebra/measure_ops.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::ToMap;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

class MeasureOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeSyntheticSchema(2, 3, 10, 1000);
    gran_fine_ = Parse("(d0:L0, d1:L0)");
    gran_d0_ = Parse("(d0:L0)");
    gran_coarse_ = Parse("(d0:L1)");
  }
  Granularity Parse(const char* text) {
    auto g = Granularity::Parse(*schema_, text);
    EXPECT_TRUE(g.ok());
    return *g;
  }
  MeasureTable Table(const Granularity& gran, const char* name,
                     std::vector<std::pair<RegionKey, double>> rows) {
    MeasureTable t(schema_, gran, name);
    for (auto& [key, value] : rows) t.Append(key, value);
    return t;
  }

  SchemaPtr schema_;
  Granularity gran_fine_, gran_d0_, gran_coarse_;
};

TEST_F(MeasureOpsTest, FilterMeasureOnValueAndDims) {
  MeasureTable input = Table(gran_fine_, "T",
                             {{{1, 2}, 10}, {{3, 4}, 5}, {{5, 6}, 20}});
  auto cond = ScalarExpr::Parse("M >= 10 && d0 < 5");
  ASSERT_TRUE(cond.ok());
  auto out = FilterMeasure(input, **cond, nullptr, "F");
  ASSERT_TRUE(out.ok());
  auto rows = ToMap(*out);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows.at({1, 2}), 10);
}

TEST_F(MeasureOpsTest, FilterMeasureAtCoarserGranularity) {
  // cond_gran: the dim variable is evaluated rolled up to L1 (blocks of
  // 10), Property 2's pushed-down form.
  MeasureTable input = Table(gran_d0_, "T",
                             {{{7, 0}, 1}, {{12, 0}, 2}, {{25, 0}, 3}});
  auto cond = ScalarExpr::Parse("d0 == 1");  // L1 block 1 = values 10..19
  ASSERT_TRUE(cond.ok());
  auto out = FilterMeasure(input, **cond, &gran_coarse_, "F");
  ASSERT_TRUE(out.ok());
  auto rows = ToMap(*out);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows.at({12, 0}), 2);
}

TEST_F(MeasureOpsTest, HashRollupCountVsSum) {
  MeasureTable input = Table(gran_d0_, "T",
                             {{{1, 0}, 5}, {{2, 0}, 7}, {{11, 0}, 3}});
  auto sum = HashRollup(input, gran_coarse_, {AggKind::kSum, 0}, "S");
  auto count = HashRollup(input, gran_coarse_, {AggKind::kCount, -1}, "C");
  ASSERT_TRUE(sum.ok() && count.ok());
  EXPECT_DOUBLE_EQ(ToMap(*sum).at({0, 0}), 12);
  EXPECT_DOUBLE_EQ(ToMap(*sum).at({1, 0}), 3);
  EXPECT_DOUBLE_EQ(ToMap(*count).at({0, 0}), 2);
  // Rolling to a finer granularity is rejected.
  EXPECT_FALSE(HashRollup(*sum, gran_d0_, {AggKind::kSum, 0}, "x").ok());
}

TEST_F(MeasureOpsTest, MatchJoinEmptyMatches) {
  MeasureTable source = Table(gran_d0_, "S", {{{1, 0}, 0}, {{2, 0}, 0}});
  MeasureTable target = Table(gran_d0_, "T", {{{1, 0}, 42}});
  // count over an empty match -> 0; avg -> NaN (SQL outer-join
  // semantics).
  auto counted = HashMatchJoin(source, target, MatchCond::Self(),
                               {AggKind::kCount, 0}, "C");
  auto averaged = HashMatchJoin(source, target, MatchCond::Self(),
                                {AggKind::kAvg, 0}, "A");
  ASSERT_TRUE(counted.ok() && averaged.ok());
  EXPECT_DOUBLE_EQ(ToMap(*counted).at({1, 0}), 1);
  EXPECT_DOUBLE_EQ(ToMap(*counted).at({2, 0}), 0);
  EXPECT_DOUBLE_EQ(ToMap(*averaged).at({1, 0}), 42);
  EXPECT_TRUE(std::isnan(ToMap(*averaged).at({2, 0})));
}

TEST_F(MeasureOpsTest, SiblingWindowAtDomainBoundary) {
  // Window [-2, 0] near key 0 must not probe negative coordinates.
  MeasureTable source = Table(gran_d0_, "S",
                              {{{0, 0}, 0}, {{1, 0}, 0}, {{2, 0}, 0}});
  MeasureTable target = Table(gran_d0_, "T",
                              {{{0, 0}, 1}, {{1, 0}, 2}, {{2, 0}, 4}});
  auto out = HashMatchJoin(source, target,
                           MatchCond::Sibling({{0, -2, 0}}),
                           {AggKind::kSum, 0}, "W");
  ASSERT_TRUE(out.ok());
  auto rows = ToMap(*out);
  EXPECT_DOUBLE_EQ(rows.at({0, 0}), 1);      // only t=0
  EXPECT_DOUBLE_EQ(rows.at({1, 0}), 3);      // t=0,1
  EXPECT_DOUBLE_EQ(rows.at({2, 0}), 7);      // t=0,1,2
}

TEST_F(MeasureOpsTest, CombineMissingInputGivesNaNSlot) {
  MeasureTable s = Table(gran_d0_, "S", {{{1, 0}, 10}, {{2, 0}, 20}});
  MeasureTable t = Table(gran_d0_, "T", {{{1, 0}, 5}});
  auto fc = ScalarExpr::Parse("coalesce(T, -1) + S");
  ASSERT_TRUE(fc.ok());
  auto out = HashCombine({&s, &t}, **fc, "Z");
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(ToMap(*out).at({1, 0}), 15);
  EXPECT_DOUBLE_EQ(ToMap(*out).at({2, 0}), 19);  // T missing -> -1
  // Regions present only in T never appear (left outer from S).
  MeasureTable extra = Table(gran_d0_, "T", {{{9, 0}, 1}});
  auto out2 = HashCombine({&s, &extra}, **fc, "Z");
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->num_rows(), 2u);
}

TEST_F(MeasureOpsTest, CombineNaNValuesPropagate) {
  MeasureTable s = Table(gran_d0_, "S", {{{1, 0}, kNaN}});
  MeasureTable t = Table(gran_d0_, "T", {{{1, 0}, 3}});
  auto fc = ScalarExpr::Parse("S + T");
  ASSERT_TRUE(fc.ok());
  auto out = HashCombine({&s, &t}, **fc, "Z");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isnan(out->value(0)));
}

TEST_F(MeasureOpsTest, SiblingProbeOdometerCoversTheBox) {
  MatchCond cond = MatchCond::Sibling({{0, -1, 1}, {1, 0, 2}});
  RegionKey base{5, 5};
  RegionKey probe(2);
  std::set<std::pair<Value, Value>> seen;
  ForEachSiblingProbe(base.data(), 2, cond, &probe,
                      [&](const RegionKey& k) {
                        seen.insert({k[0], k[1]});
                      });
  EXPECT_EQ(seen.size(), 9u);  // 3 x 3 box
  EXPECT_TRUE(seen.count({4, 5}));
  EXPECT_TRUE(seen.count({6, 7}));
  EXPECT_FALSE(seen.count({5, 4}));
}

TEST_F(MeasureOpsTest, ParentChildMatchFindsUniqueAncestor) {
  MeasureTable source = Table(gran_d0_, "S",
                              {{{3, 0}, 0}, {{17, 0}, 0}});
  MeasureTable parent = Table(gran_coarse_, "P",
                              {{{0, 0}, 100}, {{1, 0}, 200}});
  auto out = HashMatchJoin(source, parent, MatchCond::ParentChild(),
                           {AggKind::kSum, 0}, "X");
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(ToMap(*out).at({3, 0}), 100);
  EXPECT_DOUBLE_EQ(ToMap(*out).at({17, 0}), 200);
}

}  // namespace
}  // namespace csm
