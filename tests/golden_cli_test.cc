// Golden-file regression for the csm_query CLI: a fixed schema, dataset
// seed, and workflow must keep producing the same text output and measure
// CSVs. Volatile parts (timings, memory sizes, scratch paths) are masked
// before comparison. Regenerate with:
//   CSM_UPDATE_GOLDEN=1 ctest -R GoldenCli
// and commit the updated tests/golden/csm_query_output.golden.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"

namespace csm {
namespace {

namespace fs = std::filesystem;

constexpr char kGoldenRelPath[] = "/golden/csm_query_output.golden";

std::string ToolPath() {
  // ctest runs tests with CWD = build/tests; the tool lives beside it.
  for (const char* candidate :
       {"../tools/csm_query", "tools/csm_query", "./csm_query"}) {
    if (fs::exists(candidate)) return candidate;
  }
  return "";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Masks everything legitimately run-dependent so the rest must match
/// byte for byte: wall-clock timings, memory megabytes, scratch paths.
std::string Normalize(std::string text, const std::string& tmp_dir) {
  size_t at;
  while ((at = text.find(tmp_dir)) != std::string::npos) {
    text.replace(at, tmp_dir.size(), "<TMP>");
  }
  text = std::regex_replace(text, std::regex(R"(\d+\.\d+s)"), "<TIME>");
  text = std::regex_replace(text, std::regex(R"(\d+\.\d+ MB)"), "<MB>");
  return text;
}

TEST(GoldenCliTest, QueryOutputMatchesGolden) {
  const std::string tool = ToolPath();
  if (tool.empty()) GTEST_SKIP() << "csm_query binary not found";

  CSM_ASSERT_OK_AND_ASSIGN(TempDir dir, TempDir::Make());

  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  SyntheticDataOptions options;
  options.rows = 2000;
  options.seed = 77;
  FactTable fact = GenerateSyntheticFacts(schema, options);
  const std::string facts_csv = dir.path() + "/facts.csv";
  ASSERT_TRUE(WriteFactTableCsv(fact, facts_csv).ok());

  const std::string query_path = dir.path() + "/query.dsl";
  std::ofstream(query_path) << R"(
      measure C at (d0:L0, d1:L1) = agg count(*) from FACT hidden;
      measure R at (d0:L1) = agg sum(M) from C;
      measure W at (d0:L1) = match R using sibling(d0 in [0, 2])
          agg avg(M);
    )";

  const std::string out_dir = dir.path() + "/out";
  const std::string cmd = tool +
                          " --schema synthetic:3,3,10,1000 --facts " +
                          facts_csv + " --query " + query_path +
                          " --engine sortscan --out " + out_dir + " > " +
                          dir.path() + "/stdout.txt 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0)
      << ReadFileOrEmpty(dir.path() + "/stdout.txt");

  // Golden = masked stdout + the produced output CSVs, one document.
  std::string actual =
      Normalize(ReadFileOrEmpty(dir.path() + "/stdout.txt"), dir.path());
  actual += "=== R.csv ===\n" + ReadFileOrEmpty(out_dir + "/R.csv");
  actual += "=== W.csv ===\n" + ReadFileOrEmpty(out_dir + "/W.csv");

  const std::string golden_path =
      std::string(CSM_TEST_SOURCE_DIR) + kGoldenRelPath;
  if (std::getenv("CSM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream golden(golden_path);
    ASSERT_TRUE(golden.good()) << "cannot write " << golden_path;
    golden << actual;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  const std::string expected = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(expected.empty())
      << golden_path
      << " missing or empty; run with CSM_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(actual, expected)
      << "csm_query output drifted from the golden file. If the change "
         "is intentional, regenerate with CSM_UPDATE_GOLDEN=1.";
}

}  // namespace
}  // namespace csm
