// Incremental append maintenance tests: the memoized FactTable content
// hash, AppendBatch semantics, the DeltaPlan classification, DeltaEvaluator
// vs the reference evaluator, metamorphic chunking (same rows, different
// batch boundaries / batch orders -> identical results), session delta
// patching, and an append-vs-query concurrency test (run under TSan in CI).

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/delta.h"
#include "exec/factory.h"
#include "exec/session.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "storage/fact_table.h"
#include "test_util.h"
#include "testing/differential.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;
using testing_util::ToMap;

Workflow ParseOrDie(const SchemaPtr& schema, const std::string& dsl) {
  auto workflow = Workflow::Parse(schema, dsl);
  EXPECT_TRUE(workflow.ok()) << workflow.status().ToString();
  return std::move(workflow).ValueOrDie();
}

/// Copies rows [begin, end) of `fact` into a fresh table.
FactTable Slice(const FactTable& fact, size_t begin, size_t end) {
  FactTable out(fact.schema());
  out.Reserve(end - begin);
  for (size_t row = begin; row < end; ++row) {
    out.AppendRow(fact.dim_row(row), fact.measure_row(row));
  }
  return out;
}

/// Bit-exact table equality (the tolerance-based ExpectTablesEqual is too
/// forgiving for metamorphic tests, whose whole point is == on doubles).
void ExpectTablesIdentical(const MeasureTable& a, const MeasureTable& b,
                           const std::string& context) {
  auto ma = ToMap(a);
  auto mb = ToMap(b);
  ASSERT_EQ(ma.size(), mb.size()) << context;
  for (const auto& [key, va] : ma) {
    auto it = mb.find(key);
    ASSERT_TRUE(it != mb.end()) << context << ": region missing";
    EXPECT_EQ(va, it->second) << context << ": value drift";
  }
}

// Every maintenance class in one workflow: self-maintainable base
// aggregates (count/sum/min/avg), holistic bases (count_distinct,
// stddev), a where-filtered roll-up, a match join, and a combine.
constexpr char kFullWorkflow[] = R"(
  measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
  measure Traffic at (t:hour) = agg sum(bytes) from FACT;
  measure MinBytes at (U:ip) = agg min(bytes) from FACT;
  measure AvgBytes at (t:day) = agg avg(bytes) from FACT;
  measure Kinds at (t:day) = agg count_distinct(bytes) from FACT;
  measure Spread at (t:day) = agg stddev(bytes) from FACT;
  measure Busy at (t:hour) = agg count(M) from Count where M > 2;
  measure Daily at (t:day) = agg count(*) from FACT;
  measure Share at (t:hour) = match Daily using parentchild agg sum(M);
  measure Frac at (t:hour) = combine(Busy, Share) as Busy / Share;)";

// The self-maintainable + derived subset (no var/stddev): batch-order
// metamorphic runs need results that cannot depend on row order. (The
// recompute fallback re-scans the final fact table, whose row order does
// depend on the append order; count_distinct is order-free, Welford
// variance is not.)
constexpr char kOrderFreeWorkflow[] = R"(
  measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
  measure Traffic at (t:hour) = agg sum(bytes) from FACT;
  measure MinBytes at (U:ip) = agg min(bytes) from FACT;
  measure Kinds at (t:day) = agg count_distinct(bytes) from FACT;
  measure Busy at (t:hour) = agg count(M) from Count where M > 2;)";

// --- FactTable content hash -------------------------------------------

TEST(IncrementalHashTest, MemoizedIncrementalMatchesRecompute) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 500, 32, /*seed=*/7);
  const uint64_t memoized = fact.ContentHash();  // memoizes the row sum

  // Grow the table AFTER memoization: the hash must update incrementally
  // to exactly what a from-scratch pass over the same rows computes.
  FactTable extra = MakeUniformFacts(schema, 123, 32, /*seed=*/8);
  for (size_t row = 0; row < extra.num_rows(); ++row) {
    fact.AppendRow(extra.dim_row(row), extra.measure_row(row));
  }
  FactTable fresh = Slice(fact, 0, fact.num_rows());  // never hashed yet
  EXPECT_EQ(fact.ContentHash(), fresh.ContentHash());
  EXPECT_NE(fact.ContentHash(), memoized);
}

TEST(IncrementalHashTest, OrderIndependentButContentSensitive) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 200, 16, /*seed=*/3);
  const uint64_t original = fact.ContentHash();

  // Reversing the physical row order keeps the multiset, so the hash
  // stands (this is what lets differently-chunked appends converge).
  std::vector<uint32_t> reversed(fact.num_rows());
  for (size_t i = 0; i < reversed.size(); ++i) {
    reversed[i] = static_cast<uint32_t>(fact.num_rows() - 1 - i);
  }
  fact.Permute(reversed);
  EXPECT_EQ(fact.ContentHash(), original);
  FactTable fresh = Slice(fact, 0, fact.num_rows());
  EXPECT_EQ(fresh.ContentHash(), original);

  // Any content change must show: one more row, or one value changed.
  FactTable grown = fact.Clone();
  grown.AppendRow(fact.dim_row(0), fact.measure_row(0));
  EXPECT_NE(grown.ContentHash(), original);
  FactTable tweaked(schema);
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    std::vector<double> m(fact.measure_row(row),
                          fact.measure_row(row) + schema->num_measures());
    if (row == 17) m[0] += 1.0;
    tweaked.AppendRow(fact.dim_row(row), m.data());
  }
  EXPECT_NE(tweaked.ContentHash(), original);
}

TEST(IncrementalHashTest, AppendBatchMatchesRowwiseAppends) {
  SchemaPtr schema = MakeNetworkLogSchema();
  FactTable base = MakeUniformFacts(schema, 100, 16, /*seed=*/1);
  FactTable delta = MakeUniformFacts(schema, 37, 16, /*seed=*/2);

  FactTable rowwise = base.Clone();
  for (size_t row = 0; row < delta.num_rows(); ++row) {
    rowwise.AppendRow(delta.dim_row(row), delta.measure_row(row));
  }
  FactTable batched = base.Clone();
  ASSERT_TRUE(batched.ContentHash() != 0);  // memoize before the append
  CSM_ASSERT_OK(batched.AppendBatch(delta));

  ASSERT_EQ(batched.num_rows(), rowwise.num_rows());
  for (size_t row = 0; row < batched.num_rows(); ++row) {
    for (int i = 0; i < schema->num_dims(); ++i) {
      ASSERT_EQ(batched.dim_row(row)[i], rowwise.dim_row(row)[i]);
    }
    for (int i = 0; i < schema->num_measures(); ++i) {
      ASSERT_EQ(batched.measure_row(row)[i], rowwise.measure_row(row)[i]);
    }
  }
  EXPECT_EQ(batched.ContentHash(), rowwise.ContentHash());

  // Appending an empty batch is a no-op, including on the hash.
  const uint64_t before = batched.ContentHash();
  CSM_ASSERT_OK(batched.AppendBatch(FactTable(schema)));
  EXPECT_EQ(batched.ContentHash(), before);

  // Shape mismatches and self-appends are rejected.
  SchemaPtr other = MakeSyntheticSchema(2, 2, 3, 64);
  EXPECT_FALSE(batched.AppendBatch(FactTable(other)).ok());
  EXPECT_FALSE(batched.AppendBatch(batched).ok());
}

// --- DeltaPlan classification -----------------------------------------

TEST(IncrementalPlanTest, ClassifiesEveryMeasure) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow workflow = ParseOrDie(schema, kFullWorkflow);
  CSM_ASSERT_OK_AND_ASSIGN(DeltaPlan plan, DeltaPlan::Build(workflow));
  ASSERT_EQ(plan.measures.size(), workflow.measures().size());

  auto cls = [&](const std::string& name) {
    const DeltaMeasurePlan* entry = plan.Find(name);
    EXPECT_TRUE(entry != nullptr) << name;
    return entry == nullptr ? DeltaClass::kRecompute : entry->cls;
  };
  EXPECT_EQ(cls("Count"), DeltaClass::kSelfMaintainable);
  EXPECT_EQ(cls("Traffic"), DeltaClass::kSelfMaintainable);
  EXPECT_EQ(cls("MinBytes"), DeltaClass::kSelfMaintainable);
  EXPECT_EQ(cls("AvgBytes"), DeltaClass::kSelfMaintainable);
  EXPECT_EQ(cls("Kinds"), DeltaClass::kRecompute);
  EXPECT_EQ(cls("Spread"), DeltaClass::kRecompute);
  EXPECT_EQ(cls("Busy"), DeltaClass::kDerived);
  EXPECT_EQ(cls("Daily"), DeltaClass::kSelfMaintainable);
  EXPECT_EQ(cls("Share"), DeltaClass::kDerived);
  EXPECT_EQ(cls("Frac"), DeltaClass::kDerived);

  EXPECT_EQ(plan.CountClass(DeltaClass::kSelfMaintainable), 5u);
  EXPECT_EQ(plan.CountClass(DeltaClass::kRecompute), 2u);
  EXPECT_EQ(plan.CountClass(DeltaClass::kDerived), 3u);
  EXPECT_TRUE(plan.Find("nope") == nullptr);

  // A derived measure downstream of a holistic input says so.
  constexpr char kDownstream[] = R"(
    measure Kinds at (t:day) = agg count_distinct(bytes) from FACT;
    measure Roll at (t:month) = agg sum(M) from Kinds;)";
  Workflow downstream = ParseOrDie(schema, kDownstream);
  CSM_ASSERT_OK_AND_ASSIGN(DeltaPlan plan2, DeltaPlan::Build(downstream));
  const DeltaMeasurePlan* roll = plan2.Find("Roll");
  ASSERT_TRUE(roll != nullptr);
  EXPECT_EQ(roll->cls, DeltaClass::kDerived);
  EXPECT_NE(roll->reason.find("downstream of recompute-class"),
            std::string::npos)
      << roll->reason;
}

// --- DeltaEvaluator vs the reference evaluator ------------------------

TEST(IncrementalEvalTest, PatchedStateMatchesReferenceAfterEveryAppend) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow workflow = ParseOrDie(schema, kFullWorkflow);
  FactTable full = MakeUniformFacts(schema, 600, 24, /*seed=*/11);

  const std::vector<size_t> cuts = {150, 150, 0, 200, 100};  // 0 = empty
  FactTable grow = Slice(full, 0, cuts[0]);
  CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<DeltaEvaluator> eval,
                           DeltaEvaluator::Create(workflow, grow));
  size_t rows = cuts[0];
  for (size_t i = 1; i < cuts.size(); ++i) {
    const size_t first = rows;
    CSM_ASSERT_OK(grow.AppendBatch(Slice(full, rows, rows + cuts[i])));
    rows += cuts[i];
    CSM_ASSERT_OK_AND_ASSIGN(DeltaReport report,
                             eval->ApplyAppend(grow, first));
    EXPECT_EQ(report.delta_rows, cuts[i]);
    EXPECT_EQ(eval->rows_seen(), rows);

    // After every append, every measure (hidden and derived included)
    // must match the reference evaluator over the rows seen so far.
    CSM_ASSERT_OK_AND_ASSIGN(auto reference,
                             testing_util::ComputeReference(workflow, grow));
    for (const auto& [name, expected] : reference) {
      const MeasureTable* got = eval->FindTable(name);
      ASSERT_TRUE(got != nullptr) << name;
      ExpectTablesEqual(*got, expected, name);
    }
  }

  // An out-of-order append offset is rejected, state left intact.
  EXPECT_FALSE(eval->ApplyAppend(grow, rows + 1).ok());
  EXPECT_FALSE(eval->ApplyAppend(grow, 0).ok());
  EXPECT_EQ(eval->rows_seen(), rows);
}

// --- Metamorphic: chunking must not matter ----------------------------

TEST(IncrementalMetamorphicTest, BatchBoundariesDoNotChangeResults) {
  SchemaPtr schema = MakeNetworkLogSchema();
  // Same row ORDER in every run, so even the order-sensitive recompute
  // class (stddev) must agree bit for bit across chunkings.
  Workflow workflow = ParseOrDie(schema, kFullWorkflow);
  FactTable full = MakeUniformFacts(schema, 500, 24, /*seed=*/21);

  const std::vector<std::vector<size_t>> chunkings = {
      {500},  // single shot
      {250, 250},
      {100, 0, 13, 287, 100},
      {1, 499},
  };
  std::vector<std::unique_ptr<DeltaEvaluator>> evals;
  uint64_t hash = 0;
  for (size_t c = 0; c < chunkings.size(); ++c) {
    const std::vector<size_t>& cuts = chunkings[c];
    FactTable grow = Slice(full, 0, cuts[0]);
    CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<DeltaEvaluator> eval,
                             DeltaEvaluator::Create(workflow, grow));
    size_t rows = cuts[0];
    for (size_t i = 1; i < cuts.size(); ++i) {
      const size_t first = rows;
      CSM_ASSERT_OK(grow.AppendBatch(Slice(full, rows, rows + cuts[i])));
      rows += cuts[i];
      CSM_ASSERT_OK(eval->ApplyAppend(grow, first).status());
    }
    ASSERT_EQ(rows, full.num_rows());
    if (c == 0) {
      hash = grow.ContentHash();
    } else {
      EXPECT_EQ(grow.ContentHash(), hash) << "chunking " << c;
    }
    evals.push_back(std::move(eval));
  }
  for (size_t c = 1; c < evals.size(); ++c) {
    for (const MeasureDef& def : workflow.measures()) {
      const MeasureTable* a = evals[0]->FindTable(def.name);
      const MeasureTable* b = evals[c]->FindTable(def.name);
      ASSERT_TRUE(a != nullptr && b != nullptr);
      ExpectTablesIdentical(*a, *b,
                            def.name + " chunking " + std::to_string(c));
    }
  }
}

TEST(IncrementalMetamorphicTest, BatchOrderDoesNotChangeResults) {
  SchemaPtr schema = MakeNetworkLogSchema();
  // Batches arrive in different ORDERS, so only order-free measures
  // (sum/count/min/avg/count_distinct and their derivations) apply.
  Workflow workflow = ParseOrDie(schema, kOrderFreeWorkflow);
  FactTable full = MakeUniformFacts(schema, 400, 24, /*seed=*/31);

  // Four batches of 100 rows, applied in different permutations.
  const std::vector<std::vector<size_t>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  std::vector<std::unique_ptr<DeltaEvaluator>> evals;
  uint64_t hash = 0;
  for (size_t o = 0; o < orders.size(); ++o) {
    FactTable grow = Slice(full, orders[o][0] * 100,
                           orders[o][0] * 100 + 100);
    CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<DeltaEvaluator> eval,
                             DeltaEvaluator::Create(workflow, grow));
    for (size_t i = 1; i < orders[o].size(); ++i) {
      const size_t first = grow.num_rows();
      CSM_ASSERT_OK(grow.AppendBatch(
          Slice(full, orders[o][i] * 100, orders[o][i] * 100 + 100)));
      CSM_ASSERT_OK(eval->ApplyAppend(grow, first).status());
    }
    // Same multiset of rows -> the content hashes converge even though
    // the physical row orders differ.
    if (o == 0) {
      hash = grow.ContentHash();
    } else {
      EXPECT_EQ(grow.ContentHash(), hash) << "order " << o;
    }
    evals.push_back(std::move(eval));
  }
  for (size_t o = 1; o < evals.size(); ++o) {
    for (const MeasureDef& def : workflow.measures()) {
      const MeasureTable* a = evals[0]->FindTable(def.name);
      const MeasureTable* b = evals[o]->FindTable(def.name);
      ASSERT_TRUE(a != nullptr && b != nullptr);
      ExpectTablesIdentical(*a, *b,
                            def.name + " order " + std::to_string(o));
    }
  }
}

// --- Session delta patching -------------------------------------------

TEST(IncrementalSessionTest, AppendPatchesCacheInsteadOfInvalidating) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow workflow = ParseOrDie(schema, kFullWorkflow);
  FactTable full = MakeUniformFacts(schema, 500, 24, /*seed=*/41);
  FactTable fact = Slice(full, 0, 400);
  const FactTable delta = Slice(full, 400, 500);

  SessionOptions options;
  options.cache_capacity = 4;
  options.delta_patching = true;
  CSM_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<QuerySession> session,
      QuerySession::Create(EngineKind::kSortScan, options));

  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK(session->RunPending(fact).status());
  ASSERT_EQ(session->cache_size(), 1u);

  CSM_ASSERT_OK_AND_ASSIGN(SessionAppendReport report,
                           session->AppendAndRefresh(fact, delta));
  EXPECT_EQ(report.delta_rows, 100u);
  EXPECT_EQ(report.patched_queries, 1u);
  EXPECT_EQ(report.dropped_queries, 0u);
  EXPECT_GT(report.patched_measures, 0u);
  EXPECT_GT(report.recomputed_measures, 0u);
  EXPECT_EQ(fact.num_rows(), 500u);
  EXPECT_EQ(session->cache_size(), 1u);

  // The refreshed query is a cache HIT and matches a fresh engine run
  // over the appended table.
  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK_AND_ASSIGN(std::vector<EvalOutput> outs,
                           session->RunPending(fact));
  EXPECT_EQ(session->last_report().cache_hits, 1u);
  CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                           MakeEngine(EngineKind::kSortScan, {}));
  CSM_ASSERT_OK_AND_ASSIGN(EvalOutput fresh,
                           testing_util::RunWith(*engine, workflow, fact));
  for (const auto& [name, table] : fresh.tables) {
    const MeasureTable* got = outs[0].FindTable(name);
    ASSERT_TRUE(got != nullptr) << name;
    ExpectTablesEqual(*got, table, name);
  }
}

TEST(IncrementalSessionTest, WithoutDeltaPatchingEntriesDrop) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow workflow = ParseOrDie(schema, kOrderFreeWorkflow);
  FactTable full = MakeUniformFacts(schema, 300, 24, /*seed=*/43);
  FactTable fact = Slice(full, 0, 200);
  const FactTable delta = Slice(full, 200, 300);

  SessionOptions options;
  options.cache_capacity = 4;  // delta_patching stays off
  CSM_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<QuerySession> session,
      QuerySession::Create(EngineKind::kSortScan, options));
  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK(session->RunPending(fact).status());
  ASSERT_EQ(session->cache_size(), 1u);

  CSM_ASSERT_OK_AND_ASSIGN(SessionAppendReport report,
                           session->AppendAndRefresh(fact, delta));
  EXPECT_EQ(report.patched_queries, 0u);
  EXPECT_EQ(report.dropped_queries, 1u);
  EXPECT_EQ(session->cache_size(), 0u);

  // The next run is a miss, evaluated over the appended table.
  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK(session->RunPending(fact).status());
  EXPECT_EQ(session->last_report().cache_misses, 1u);
}

// --- Concurrency: appends are atomic w.r.t. queries (TSan cell) -------

TEST(IncrementalConcurrencyTest, QueriesSeePreOrPostAppendNeverTorn) {
  SchemaPtr schema = MakeNetworkLogSchema();
  // bytes == 7 on every row, so in ANY consistent snapshot each region
  // satisfies Traffic == 7 * Cnt and the global row count is one of the
  // batch boundaries. A torn read (query overlapping an append) breaks
  // one of the two invariants.
  constexpr char kInvariant[] = R"(
    measure Cnt at (t:day) = agg count(*) from FACT;
    measure Traffic at (t:day) = agg sum(bytes) from FACT;)";
  Workflow workflow = ParseOrDie(schema, kInvariant);

  const size_t kBase = 400, kBatch = 100, kAppends = 4;
  auto make_rows = [&](size_t rows, uint64_t seed) {
    Rng rng(seed);
    FactTable out(schema);
    out.Reserve(rows);
    std::vector<Value> dims(schema->num_dims());
    const double bytes = 7.0;
    for (size_t row = 0; row < rows; ++row) {
      for (int i = 0; i < schema->num_dims(); ++i) {
        dims[i] = rng.Uniform(24);
      }
      out.AppendRow(dims.data(), &bytes);
    }
    return out;
  };
  FactTable fact = make_rows(kBase, 51);
  std::set<size_t> valid_totals;
  for (size_t i = 0; i <= kAppends; ++i) {
    valid_totals.insert(kBase + i * kBatch);
  }

  SessionOptions options;
  options.cache_capacity = 4;
  options.delta_patching = true;
  CSM_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<QuerySession> session,
      QuerySession::Create(EngineKind::kSortScan, options));

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  auto check = [&](const EvalOutput& out) {
    const MeasureTable* cnt = out.FindTable("Cnt");
    const MeasureTable* traffic = out.FindTable("Traffic");
    if (cnt == nullptr || traffic == nullptr) {
      ++failures;
      return;
    }
    auto mc = ToMap(*cnt);
    auto mt = ToMap(*traffic);
    double total = 0;
    for (const auto& [key, c] : mc) {
      auto it = mt.find(key);
      if (it == mt.end() || it->second != 7.0 * c) ++failures;
      total += c;
    }
    if (valid_totals.count(static_cast<size_t>(total)) == 0) ++failures;
  };

  std::vector<std::thread> queriers;
  for (int t = 0; t < 3; ++t) {
    queriers.emplace_back([&]() {
      while (!done.load(std::memory_order_acquire)) {
        auto submit = session->Submit(workflow);
        if (!submit.ok()) {
          ++failures;
          break;
        }
        auto outs = session->RunPending(fact);
        if (!outs.ok()) {
          ++failures;
          break;
        }
        for (const EvalOutput& out : *outs) check(out);
      }
    });
  }
  for (size_t i = 0; i < kAppends; ++i) {
    // Give the query threads a chance to overlap each append window.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const FactTable delta = make_rows(kBatch, 60 + i);
    auto report = session->AppendAndRefresh(fact, delta);
    CSM_EXPECT_OK(report.status());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : queriers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fact.num_rows(), kBase + kAppends * kBatch);

  // Drain: one last query sees the final state.
  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK_AND_ASSIGN(std::vector<EvalOutput> outs,
                           session->RunPending(fact));
  for (const EvalOutput& out : outs) check(out);
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace csm
