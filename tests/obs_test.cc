// Tests for the observability layer (src/obs) and its integration with
// the engines through ExecContext: span nesting, cross-thread metric
// aggregation, exporter output, the derived ExecStats view, cooperative
// cancellation, and traced-vs-untraced conformance.

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec_context.h"
#include "exec/factory.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

TEST(TracerTest, SpanNestingAndDurations) {
  Tracer tracer;
  SpanId root = tracer.BeginSpan("run");
  SpanId sort = tracer.BeginSpan("sort", root);
  tracer.EndSpan(sort);
  SpanId scan = tracer.BeginSpan("scan", root);
  SpanId inner = tracer.BeginSpan("scan", scan);  // nested same name
  tracer.EndSpan(inner);
  tracer.EndSpan(scan);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.num_spans(), 4u);
  SpanData r = tracer.GetSpan(root);
  EXPECT_EQ(r.parent, kNoSpan);
  ASSERT_EQ(r.children.size(), 2u);
  EXPECT_EQ(tracer.GetSpan(r.children[0]).name, "sort");
  EXPECT_EQ(tracer.GetSpan(r.children[1]).name, "scan");
  EXPECT_FALSE(r.open);
  EXPECT_GE(r.duration_seconds, tracer.GetSpan(sort).duration_seconds);
  ASSERT_EQ(tracer.RootSpans().size(), 1u);
  EXPECT_EQ(tracer.RootSpans()[0], root);

  // The nested "scan" span must not double-count in the exclusive sum.
  const double outer_scan = tracer.GetSpan(scan).duration_seconds;
  EXPECT_DOUBLE_EQ(tracer.SumDurationExclusive(root, {"scan"}),
                   outer_scan);
}

TEST(TracerTest, EndingTwiceIsANoOp) {
  Tracer tracer;
  SpanId s = tracer.BeginSpan("s");
  tracer.EndSpan(s);
  const double d = tracer.GetSpan(s).duration_seconds;
  tracer.EndSpan(s);
  EXPECT_DOUBLE_EQ(tracer.GetSpan(s).duration_seconds, d);
}

TEST(TracerTest, CountersAggregateAcrossThreads) {
  Tracer tracer;
  SpanId root = tracer.BeginSpan("run");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, root] {
      SpanId shard = tracer.BeginSpan("shard", root);
      for (int i = 0; i < kAddsPerThread; ++i) {
        tracer.AddCounter(shard, "rows", 1);
      }
      tracer.SetGaugeMax(shard, "peak", kAddsPerThread);
      tracer.EndSpan(shard);
    });
  }
  for (auto& t : threads) t.join();
  tracer.EndSpan(root);

  EXPECT_DOUBLE_EQ(tracer.SumCounter(root, "rows"),
                   kThreads * kAddsPerThread);
  EXPECT_DOUBLE_EQ(tracer.MaxGauge(root, "peak"), kAddsPerThread);
  // Worker spans carry the worker's thread hash, not the opener's.
  SpanData r = tracer.GetSpan(root);
  ASSERT_EQ(r.children.size(), static_cast<size_t>(kThreads));
  bool found_foreign = false;
  for (SpanId child : r.children) {
    if (tracer.GetSpan(child).thread_hash != r.thread_hash) {
      found_foreign = true;
    }
  }
  EXPECT_TRUE(found_foreign);
}

TEST(TracerTest, GaugeKeepsHighWater) {
  Tracer tracer;
  SpanId s = tracer.BeginSpan("s");
  tracer.SetGaugeMax(s, "g", 10);
  tracer.SetGaugeMax(s, "g", 3);
  tracer.SetGaugeMax(s, "g", 7);
  tracer.EndSpan(s);
  EXPECT_DOUBLE_EQ(tracer.MaxGauge(s, "g"), 10.0);
  EXPECT_DOUBLE_EQ(tracer.MaxGauge(s, "missing", 42.0), 42.0);
}

TEST(TracerTest, JsonExportContainsTheTree) {
  Tracer tracer;
  SpanId root = tracer.BeginSpan("sort-scan");
  SpanId sort = tracer.BeginSpan("sort", root);
  tracer.AddCounter(sort, "spilled_bytes", 1024);
  tracer.EndSpan(sort);
  tracer.SetGaugeMax(root, "peak_hash_entries", 99);
  tracer.SetAttr(root, "sort_key", "<d0:L0> \"quoted\"");
  tracer.EndSpan(root);

  std::string json = tracer.ToJson();
  // Structural round-trip: balanced brackets/braces outside strings.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // Content checks.
  EXPECT_NE(json.find("\"name\":\"sort-scan\""), std::string::npos);
  EXPECT_NE(json.find("\"spilled_bytes\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"peak_hash_entries\":99"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos);

  std::string tree = tracer.ToTreeString();
  EXPECT_NE(tree.find("sort-scan"), std::string::npos);
  EXPECT_NE(tree.find("  sort"), std::string::npos) << tree;
}

TEST(DeriveExecStatsTest, BucketsAndVolumesFromSpans) {
  Tracer tracer;
  SpanId root = tracer.BeginSpan("engine");
  SpanId sort = tracer.BeginSpan("sort", root);
  tracer.AddCounter(sort, "spilled_bytes", 500);
  tracer.EndSpan(sort);
  SpanId scan = tracer.BeginSpan("scan", root);
  tracer.AddCounter(scan, "rows_scanned", 1234);
  tracer.SetGaugeMax(scan, "peak_hash_entries", 55);
  tracer.EndSpan(scan);
  tracer.AddCounter(root, "passes", 3);
  tracer.SetAttr(root, "sort_key", "<k>");
  tracer.EndSpan(root);

  ExecStats stats = DeriveExecStats(tracer, root);
  EXPECT_EQ(stats.rows_scanned, 1234u);
  EXPECT_EQ(stats.spilled_bytes, 500u);
  EXPECT_EQ(stats.peak_hash_entries, 55u);
  EXPECT_EQ(stats.passes, 3);
  EXPECT_EQ(stats.sort_key, "<k>");
  EXPECT_GT(stats.sort_seconds, 0.0);
  EXPECT_GT(stats.scan_seconds, 0.0);
  EXPECT_GE(stats.total_seconds,
            stats.sort_seconds + stats.scan_seconds - 1e-9);
}

class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeSyntheticSchema(3, 3, 10, 1000);
    fact_ = std::make_unique<FactTable>(
        MakeUniformFacts(schema_, 4000, 1000, 19));
    auto workflow = Workflow::Parse(schema_, R"(
        measure C at (d0:L0, d1:L1) = agg count(*) from FACT hidden;
        measure R at (d0:L1) = agg sum(M) from C;
        measure W at (d0:L1) = match R using sibling(d0 in [0, 2])
            agg avg(M);)");
    ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
    workflow_ = std::make_unique<Workflow>(std::move(*workflow));
  }

  SchemaPtr schema_;
  std::unique_ptr<FactTable> fact_;
  std::unique_ptr<Workflow> workflow_;
};

TEST_F(ObsEngineTest, TracedAndUntracedRunsAgreeOnEveryEngine) {
  for (EngineKind kind :
       {EngineKind::kSingleScan, EngineKind::kSortScan,
        EngineKind::kMultiPass, EngineKind::kAdaptive, EngineKind::kParallel,
        EngineKind::kRelational}) {
    CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(kind));
    const std::string label = std::string(EngineKindName(kind));
    // Untraced: null tracer in the default context.
    auto plain = engine->Run(*workflow_, *fact_);
    ASSERT_TRUE(plain.ok()) << label << ": " << plain.status().ToString();
    // Traced: external tracer.
    Tracer tracer;
    ExecContext ctx;
    ctx.tracer = &tracer;
    auto traced = engine->Run(*workflow_, *fact_, ctx);
    ASSERT_TRUE(traced.ok()) << label << ": " << traced.status().ToString();
    ASSERT_EQ(plain->tables.size(), traced->tables.size()) << label;
    for (auto& [name, table] : plain->tables) {
      ExpectTablesEqual(table, traced->tables.at(name), label + "/" + name);
    }
    // The trace carries exactly one engine root, named after the engine.
    ASSERT_EQ(tracer.RootSpans().size(), 1u) << label;
    SpanData root = tracer.GetSpan(tracer.RootSpans()[0]);
    EXPECT_FALSE(root.open) << label;
    // Stats must be derivable in both modes (private tracer when null).
    EXPECT_EQ(plain->stats.rows_scanned, traced->stats.rows_scanned)
        << label;
    EXPECT_GT(traced->stats.total_seconds, 0.0) << label;
  }
}

TEST_F(ObsEngineTest, PerMeasureHashGaugesArePresent) {
  for (EngineKind kind : {EngineKind::kSortScan, EngineKind::kSingleScan,
                          EngineKind::kRelational}) {
    CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(kind));
    Tracer tracer;
    ExecContext ctx;
    ctx.options.include_hidden = true;
    ctx.tracer = &tracer;
    auto result = engine->Run(*workflow_, *fact_, ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    SpanId root = tracer.RootSpans()[0];
    for (const char* measure : {"C", "R", "W"}) {
      EXPECT_GT(tracer.MaxGauge(root, std::string("hash_entries_hw/") +
                                          measure),
                0.0)
          << EngineKindName(kind) << "/" << measure;
    }
  }
}

TEST_F(ObsEngineTest, PhaseSpansCoverMostOfTheRun) {
  CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(EngineKind::kSortScan));
  Tracer tracer;
  ExecContext ctx;
  ctx.tracer = &tracer;
  auto result = engine->Run(*workflow_, *fact_, ctx);
  ASSERT_TRUE(result.ok());
  const ExecStats& s = result->stats;
  const double phases = s.sort_seconds + s.scan_seconds + s.combine_seconds;
  EXPECT_GT(phases, 0.0);
  EXPECT_LE(phases, s.total_seconds + 1e-9);
  // The acceptance bar: phases account for >=95% of the wall time.
  EXPECT_GT(phases, 0.95 * s.total_seconds)
      << "total " << s.total_seconds << " phases " << phases;
}

TEST_F(ObsEngineTest, CancellationStopsEveryEngineMidRun) {
  // A pre-set flag must cancel promptly regardless of engine.
  std::atomic<bool> cancel{true};
  for (EngineKind kind :
       {EngineKind::kSingleScan, EngineKind::kSortScan,
        EngineKind::kMultiPass, EngineKind::kParallel,
        EngineKind::kRelational}) {
    CSM_ASSERT_OK_AND_ASSIGN(auto engine, MakeEngine(kind));
    ExecContext ctx;
    ctx.cancel = &cancel;
    auto result = engine->Run(*workflow_, *fact_, ctx);
    ASSERT_FALSE(result.ok()) << EngineKindName(kind);
    EXPECT_TRUE(result.status().IsCancelled())
        << EngineKindName(kind) << ": " << result.status().ToString();
  }
}

TEST_F(ObsEngineTest, CancellationDuringSpillingSort) {
  // Out-of-core path with a tiny budget: cancellation must abort inside
  // the external sort and clean up its run files.
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("facts");
  ASSERT_TRUE(WriteFactTableBinary(*fact_, path).ok());

  std::atomic<bool> cancel{true};
  SortScanEngine engine;
  ExecContext ctx;
  ctx.options.memory_budget_bytes = 64 << 10;
  ctx.cancel = &cancel;
  auto result = engine.RunFile(*workflow_, path, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled())
      << result.status().ToString();
}

TEST_F(ObsEngineTest, UncancelledFlagChangesNothing) {
  std::atomic<bool> cancel{false};
  SortScanEngine engine;
  auto plain = engine.Run(*workflow_, *fact_);
  ASSERT_TRUE(plain.ok());
  ExecContext ctx;
  ctx.cancel = &cancel;
  auto flagged = engine.Run(*workflow_, *fact_, ctx);
  ASSERT_TRUE(flagged.ok());
  for (auto& [name, table] : plain->tables) {
    ExpectTablesEqual(table, flagged->tables.at(name), name);
  }
}

}  // namespace
}  // namespace csm
