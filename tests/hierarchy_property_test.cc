// Property tests over every hierarchy implementation: Proposition 1
// (monotone generalization), γ-composition consistency, cardinality
// coherence, and exact-divisor correctness — the invariants the sort/scan
// engine's frontier arithmetic depends on.

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "model/hierarchy.h"

namespace csm {
namespace {

struct HierarchyCase {
  const char* label;
  std::shared_ptr<Hierarchy> hierarchy;
  uint64_t value_range;  // base values drawn from [0, range)
};

class HierarchyPropertyTest
    : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(HierarchyPropertyTest, Proposition1Monotonicity) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(11);
  for (int trial = 0; trial < 3000; ++trial) {
    Value u = rng.Uniform(GetParam().value_range);
    Value v = rng.Uniform(GetParam().value_range);
    if (u > v) std::swap(u, v);
    for (int level = 0; level < h.num_levels(); ++level) {
      ASSERT_LE(h.Generalize(u, 0, level), h.Generalize(v, 0, level))
          << GetParam().label << " level " << level << " u=" << u
          << " v=" << v;
    }
  }
}

TEST_P(HierarchyPropertyTest, GammaComposes) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(12);
  for (int trial = 0; trial < 2000; ++trial) {
    Value v = rng.Uniform(GetParam().value_range);
    for (int mid = 0; mid < h.num_levels(); ++mid) {
      for (int top = mid; top < h.num_levels(); ++top) {
        Value direct = h.Generalize(v, 0, top);
        Value via = h.Generalize(h.Generalize(v, 0, mid), mid, top);
        ASSERT_EQ(direct, via)
            << GetParam().label << " v=" << v << " via " << mid << "->"
            << top;
      }
    }
  }
}

TEST_P(HierarchyPropertyTest, CardinalityDecreasesUpward) {
  const auto& h = *GetParam().hierarchy;
  for (int level = 1; level < h.num_levels(); ++level) {
    EXPECT_LE(h.EstimatedCardinality(level),
              h.EstimatedCardinality(level - 1))
        << GetParam().label;
  }
  EXPECT_DOUBLE_EQ(h.EstimatedCardinality(h.all_level()), 1.0);
}

TEST_P(HierarchyPropertyTest, ExactDivisorConsistentWithGamma) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(13);
  for (int from = 0; from < h.num_levels() - 1; ++from) {
    for (int to = from; to < h.num_levels() - 1; ++to) {
      const uint64_t div = h.ExactDivisor(from, to);
      if (div == 0) continue;  // hierarchy declares itself irregular
      for (int trial = 0; trial < 200; ++trial) {
        Value v = h.Generalize(rng.Uniform(GetParam().value_range), 0,
                               from);
        ASSERT_EQ(h.Generalize(v, from, to), v / div)
            << GetParam().label << " " << from << "->" << to;
      }
    }
  }
}

TEST_P(HierarchyPropertyTest, AllLevelCollapsesEverything) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    Value v = rng.Uniform(GetParam().value_range);
    EXPECT_EQ(h.Generalize(v, 0, h.all_level()), kAllValue);
  }
}

// GeneralizeColumn must agree with per-value Generalize for every
// (from, to) pair — including from == to (identity copy), the ALL level,
// and exact in == out aliasing (the batched scan generalizes each
// dimension in place). The n == 0 call must be a safe no-op even with a
// one-past-the-end pointer.
TEST_P(HierarchyPropertyTest, GeneralizeColumnMatchesScalar) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(15);
  std::vector<Value> in(257);
  for (Value& v : in) v = rng.Uniform(GetParam().value_range);
  for (int from = 0; from < h.num_levels(); ++from) {
    std::vector<Value> base(in.size());
    h.GeneralizeColumn(in.data(), in.size(), 0, from, base.data());
    for (int to = from; to < h.num_levels(); ++to) {
      std::vector<Value> out(base.size(), ~Value{0});
      h.GeneralizeColumn(base.data(), base.size(), from, to, out.data());
      for (size_t i = 0; i < base.size(); ++i) {
        ASSERT_EQ(out[i], h.Generalize(base[i], from, to))
            << GetParam().label << " " << from << "->" << to << " i="
            << i;
      }
      // In-place: in == out aliasing must give the same column.
      std::vector<Value> aliased = base;
      h.GeneralizeColumn(aliased.data(), aliased.size(), from, to,
                         aliased.data());
      ASSERT_EQ(aliased, out)
          << GetParam().label << " aliased " << from << "->" << to;
    }
  }
}

TEST_P(HierarchyPropertyTest, GeneralizeColumnEmptyIsNoOp) {
  const auto& h = *GetParam().hierarchy;
  std::vector<Value> col(4, 7);
  // n == 0 with a one-past-the-end input pointer: legal, touches
  // nothing.
  h.GeneralizeColumn(col.data() + col.size(), 0, 0, h.all_level(),
                     col.data());
  EXPECT_EQ(col, std::vector<Value>(4, 7)) << GetParam().label;
}

// from == to at the table-driven hierarchy's top non-ALL level: the
// identity copy must not consult the parent maps (there is no map above
// the top level).
TEST_P(HierarchyPropertyTest, GeneralizeColumnTopLevelIdentity) {
  const auto& h = *GetParam().hierarchy;
  const int top = h.all_level() - 1;
  Rng rng(16);
  std::vector<Value> base(64);
  for (Value& v : base) {
    v = h.Generalize(rng.Uniform(GetParam().value_range), 0, top);
  }
  std::vector<Value> out(base.size(), ~Value{0});
  h.GeneralizeColumn(base.data(), base.size(), top, top, out.data());
  EXPECT_EQ(out, base) << GetParam().label;
}

std::shared_ptr<Hierarchy> ScrambledMapped() {
  // A two-step table-driven hierarchy made monotone via BuildMonotone.
  std::unordered_map<Value, Value> level0;
  std::unordered_map<Value, Value> level1;
  Rng rng(77);
  for (Value v = 0; v < 64; ++v) level0[v] = 100 + rng.Uniform(8);
  for (Value p = 100; p < 108; ++p) level1[p] = 200 + (p % 3);
  auto made =
      MappedHierarchy::Make({"leaf", "mid", "top", "ALL"},
                            {std::move(level0), std::move(level1)});
  CSM_CHECK(made.ok());
  auto encoded = (*made)->BuildMonotone();
  CSM_CHECK(encoded.ok());
  return encoded->hierarchy;
}

INSTANTIATE_TEST_SUITE_P(
    AllHierarchies, HierarchyPropertyTest,
    ::testing::Values(
        HierarchyCase{"time", MakeTimeHierarchy(1e8), 100000000},
        HierarchyCase{"ipv4", MakeIpv4Hierarchy(1e6), 1ull << 32},
        HierarchyCase{"port", MakePortHierarchy(), 65536},
        HierarchyCase{"uniform10", MakeUniformHierarchy(4, 10, 10000),
                      10000},
        HierarchyCase{"uniform2", MakeUniformHierarchy(6, 2, 64), 64},
        HierarchyCase{"mapped_monotone", ScrambledMapped(), 64}),
    [](const ::testing::TestParamInfo<HierarchyCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace csm
