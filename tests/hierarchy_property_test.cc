// Property tests over every hierarchy implementation: Proposition 1
// (monotone generalization), γ-composition consistency, cardinality
// coherence, and exact-divisor correctness — the invariants the sort/scan
// engine's frontier arithmetic depends on.

#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "model/hierarchy.h"

namespace csm {
namespace {

struct HierarchyCase {
  const char* label;
  std::shared_ptr<Hierarchy> hierarchy;
  uint64_t value_range;  // base values drawn from [0, range)
};

class HierarchyPropertyTest
    : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(HierarchyPropertyTest, Proposition1Monotonicity) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(11);
  for (int trial = 0; trial < 3000; ++trial) {
    Value u = rng.Uniform(GetParam().value_range);
    Value v = rng.Uniform(GetParam().value_range);
    if (u > v) std::swap(u, v);
    for (int level = 0; level < h.num_levels(); ++level) {
      ASSERT_LE(h.Generalize(u, 0, level), h.Generalize(v, 0, level))
          << GetParam().label << " level " << level << " u=" << u
          << " v=" << v;
    }
  }
}

TEST_P(HierarchyPropertyTest, GammaComposes) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(12);
  for (int trial = 0; trial < 2000; ++trial) {
    Value v = rng.Uniform(GetParam().value_range);
    for (int mid = 0; mid < h.num_levels(); ++mid) {
      for (int top = mid; top < h.num_levels(); ++top) {
        Value direct = h.Generalize(v, 0, top);
        Value via = h.Generalize(h.Generalize(v, 0, mid), mid, top);
        ASSERT_EQ(direct, via)
            << GetParam().label << " v=" << v << " via " << mid << "->"
            << top;
      }
    }
  }
}

TEST_P(HierarchyPropertyTest, CardinalityDecreasesUpward) {
  const auto& h = *GetParam().hierarchy;
  for (int level = 1; level < h.num_levels(); ++level) {
    EXPECT_LE(h.EstimatedCardinality(level),
              h.EstimatedCardinality(level - 1))
        << GetParam().label;
  }
  EXPECT_DOUBLE_EQ(h.EstimatedCardinality(h.all_level()), 1.0);
}

TEST_P(HierarchyPropertyTest, ExactDivisorConsistentWithGamma) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(13);
  for (int from = 0; from < h.num_levels() - 1; ++from) {
    for (int to = from; to < h.num_levels() - 1; ++to) {
      const uint64_t div = h.ExactDivisor(from, to);
      if (div == 0) continue;  // hierarchy declares itself irregular
      for (int trial = 0; trial < 200; ++trial) {
        Value v = h.Generalize(rng.Uniform(GetParam().value_range), 0,
                               from);
        ASSERT_EQ(h.Generalize(v, from, to), v / div)
            << GetParam().label << " " << from << "->" << to;
      }
    }
  }
}

TEST_P(HierarchyPropertyTest, AllLevelCollapsesEverything) {
  const auto& h = *GetParam().hierarchy;
  Rng rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    Value v = rng.Uniform(GetParam().value_range);
    EXPECT_EQ(h.Generalize(v, 0, h.all_level()), kAllValue);
  }
}

std::shared_ptr<Hierarchy> ScrambledMapped() {
  // A two-step table-driven hierarchy made monotone via BuildMonotone.
  std::unordered_map<Value, Value> level0;
  std::unordered_map<Value, Value> level1;
  Rng rng(77);
  for (Value v = 0; v < 64; ++v) level0[v] = 100 + rng.Uniform(8);
  for (Value p = 100; p < 108; ++p) level1[p] = 200 + (p % 3);
  auto made =
      MappedHierarchy::Make({"leaf", "mid", "top", "ALL"},
                            {std::move(level0), std::move(level1)});
  CSM_CHECK(made.ok());
  auto encoded = (*made)->BuildMonotone();
  CSM_CHECK(encoded.ok());
  return encoded->hierarchy;
}

INSTANTIATE_TEST_SUITE_P(
    AllHierarchies, HierarchyPropertyTest,
    ::testing::Values(
        HierarchyCase{"time", MakeTimeHierarchy(1e8), 100000000},
        HierarchyCase{"ipv4", MakeIpv4Hierarchy(1e6), 1ull << 32},
        HierarchyCase{"port", MakePortHierarchy(), 65536},
        HierarchyCase{"uniform10", MakeUniformHierarchy(4, 10, 10000),
                      10000},
        HierarchyCase{"uniform2", MakeUniformHierarchy(6, 2, 64), 64},
        HierarchyCase{"mapped_monotone", ScrambledMapped(), 64}),
    [](const ::testing::TestParamInfo<HierarchyCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace csm
