#include <algorithm>
#include <filesystem>
#include <fstream>

#include "algebra/evaluator.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

// The paper's running example (Examples 1-5) as DSL.
constexpr char kExampleDsl[] = R"(
  # Example 1: hourly per-source packet counts.
  measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
  # Example 2: number of busy sources per hour.
  measure SCount at (t:hour) = agg count(M) from Count where M > 5;
  # Example 3: traffic from busy sources per hour.
  measure STraffic at (t:hour) = agg sum(M) from Count where M > 5;
  # Example 4: six-hour moving average of the busy-source count.
  measure AvgCount at (t:hour) =
      match SCount using sibling(t in [0, 5]) agg avg(M);
  # Example 5: ratio of the moving average to per-source traffic.
  measure Ratio at (t:hour) = combine(AvgCount, STraffic, SCount)
      as AvgCount / (STraffic / SCount);
)";

TEST(WorkflowParseTest, ParsesTheRunningExample) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kExampleDsl);
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  ASSERT_EQ(workflow->measures().size(), 5u);

  auto count = workflow->Find("Count");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ((*count)->op, MeasureOp::kBaseAgg);
  EXPECT_EQ((*count)->agg.kind, AggKind::kCount);
  EXPECT_EQ((*count)->agg.arg, -1);
  EXPECT_FALSE((*count)->is_output);

  auto scount = workflow->Find("SCount");
  ASSERT_TRUE(scount.ok());
  EXPECT_EQ((*scount)->op, MeasureOp::kRollup);
  EXPECT_EQ((*scount)->input, "Count");
  ASSERT_NE((*scount)->where, nullptr);
  EXPECT_TRUE((*scount)->is_output);

  auto avg = workflow->Find("AvgCount");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ((*avg)->op, MeasureOp::kMatch);
  EXPECT_EQ((*avg)->match.type, MatchType::kSibling);
  ASSERT_EQ((*avg)->match.windows.size(), 1u);
  EXPECT_EQ((*avg)->match.windows[0].dim, 0);
  EXPECT_EQ((*avg)->match.windows[0].lo, 0);
  EXPECT_EQ((*avg)->match.windows[0].hi, 5);
  EXPECT_EQ((*avg)->agg.kind, AggKind::kAvg);

  auto ratio = workflow->Find("Ratio");
  ASSERT_TRUE(ratio.ok());
  EXPECT_EQ((*ratio)->op, MeasureOp::kCombine);
  ASSERT_EQ((*ratio)->combine_inputs.size(), 3u);
  EXPECT_EQ((*ratio)->combine_inputs[0], "AvgCount");
}

TEST(WorkflowParseTest, DslRoundTrip) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kExampleDsl);
  ASSERT_TRUE(workflow.ok());
  std::string dsl = workflow->ToDsl();
  auto reparsed = Workflow::Parse(schema, dsl);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << dsl;
  EXPECT_EQ(reparsed->measures().size(), workflow->measures().size());
  // Semantically identical: evaluate both via the algebra and compare.
  FactTable fact = MakeUniformFacts(schema, 500, 50, 5);
  for (const MeasureDef& def : workflow->measures()) {
    auto ea = workflow->ToAlgebra(def.name, /*deep=*/true);
    auto eb = reparsed->ToAlgebra(def.name, /*deep=*/true);
    ASSERT_TRUE(ea.ok() && eb.ok());
    auto ra = EvalAwExpr(**ea, fact);
    auto rb = EvalAwExpr(**eb, fact);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ExpectTablesEqual(*ra, *rb, def.name);
  }
}

TEST(WorkflowParseTest, CaseInsensitiveKeywords) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(
      schema,
      "MEASURE C AT (t:Hour) = AGG Count(*) FROM fact WHERE bytes > 10;");
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  EXPECT_EQ(workflow->measures()[0].name, "C");
}

TEST(WorkflowParseTest, RejectsMalformedStatements) {
  auto schema = MakeNetworkLogSchema();
  const char* bad[] = {
      "count at (t:hour) = agg count(*) from FACT;",   // missing 'measure'
      "measure X = agg count(*) from FACT;",           // missing 'at'
      "measure X at (t:hour) agg count(*) from FACT;", // missing '='
      "measure X at (t:hour) = agg count(*);",         // missing 'from'
      "measure X at (t:hour) = agg count(*) from Nope;",  // unknown input
      "measure X at (t:hour) = blend(A, B) as 1;",     // unknown op
      "measure X at (t:hour) = agg median(*) from FACT;",  // unknown fn
      "measure X at (t:zzz) = agg count(*) from FACT;",    // bad level
      "measure X at (t:hour) = agg count(*) from FACT extra;",
      "measure X at (t:hour) = match Y using self agg sum(M);",  // no Y
  };
  for (const char* dsl : bad) {
    EXPECT_FALSE(Workflow::Parse(schema, dsl).ok()) << dsl;
  }
}

TEST(WorkflowValidationTest, GranularityRules) {
  auto schema = MakeNetworkLogSchema();
  // Roll-up must go coarser.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT;
      measure B at (t:hour) = agg sum(M) from A;)")
                   .ok());
  // Sibling requires equal granularity.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT;
      measure B at (t:hour) = match A using sibling(t in [0,1]) agg avg(M);)")
                   .ok());
  // Sibling window on a rolled-away dimension.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT;
      measure B at (t:day) = match A using sibling(U in [0,1]) agg avg(M);)")
                   .ok());
  // Parent/child requires the input to be coarser.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:hour) = agg count(*) from FACT;
      measure B at (t:day) = match A using parentchild agg sum(M);)")
                   .ok());
  // The same statement the right way round parses.
  EXPECT_TRUE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT;
      measure B at (t:hour) = match A using parentchild agg sum(M);)")
                  .ok());
}

TEST(WorkflowValidationTest, NameRules) {
  auto schema = MakeNetworkLogSchema();
  // Duplicate measure.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT;
      measure A at (t:day) = agg count(*) from FACT;)")
                   .ok());
  // Collides with a dimension.
  EXPECT_FALSE(Workflow::Parse(
                   schema, "measure t at (t:day) = agg count(*) from FACT;")
                   .ok());
  // Reserved.
  EXPECT_FALSE(Workflow::Parse(
                   schema, "measure M at (t:day) = agg count(*) from FACT;")
                   .ok());
  // Unknown variable in where.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT where nonsense > 1;)")
                   .ok());
  // Combine expression referencing a non-input measure.
  EXPECT_FALSE(Workflow::Parse(schema, R"(
      measure A at (t:day) = agg count(*) from FACT;
      measure B at (t:day) = agg sum(bytes) from FACT;
      measure C at (t:day) = combine(A) as A + B;)")
                   .ok());
}

TEST(WorkflowAlgebraTest, ShallowTranslationUsesRefs) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kExampleDsl);
  ASSERT_TRUE(workflow.ok());
  auto shallow = workflow->ToAlgebra("SCount", /*deep=*/false);
  ASSERT_TRUE(shallow.ok()) << shallow.status().ToString();
  EXPECT_EQ((*shallow)->kind(), AwKind::kAggregate);
  // Input should be σ over a measure ref, not over D.
  const auto& input = (*shallow)->input();
  ASSERT_EQ(input->kind(), AwKind::kSelect);
  EXPECT_EQ(input->input()->kind(), AwKind::kMeasureRef);
  EXPECT_EQ(input->input()->name(), "Count");
}

TEST(WorkflowAlgebraTest, DeepTranslationMatchesComposedEvaluation) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kExampleDsl);
  ASSERT_TRUE(workflow.ok());
  FactTable fact = MakeUniformFacts(schema, 2000, 40, 21);

  // Evaluate measure-by-measure through refs (workflow semantics)...
  std::map<std::string, MeasureTable> computed;
  for (const MeasureDef& def : workflow->measures()) {
    auto expr = workflow->ToAlgebra(def.name, /*deep=*/false);
    ASSERT_TRUE(expr.ok()) << expr.status().ToString();
    MeasureEnv env;
    for (const auto& [name, table] : computed) env[name] = &table;
    auto result = EvalAwExpr(**expr, fact, env);
    ASSERT_TRUE(result.ok()) << def.name << ": "
                             << result.status().ToString();
    computed.emplace(def.name, std::move(*result));
  }
  // ... and compare with the fully expanded expression per measure.
  for (const MeasureDef& def : workflow->measures()) {
    auto deep = workflow->ToAlgebra(def.name, /*deep=*/true);
    ASSERT_TRUE(deep.ok());
    auto result = EvalAwExpr(**deep, fact);
    ASSERT_TRUE(result.ok()) << def.name;
    ExpectTablesEqual(computed.at(def.name), *result, def.name);
  }
}

TEST(WorkflowAlgebraTest, MatchTranslationBuildsSBase) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kExampleDsl);
  ASSERT_TRUE(workflow.ok());
  auto expr = workflow->ToAlgebra("AvgCount", /*deep=*/false);
  ASSERT_TRUE(expr.ok());
  ASSERT_EQ((*expr)->kind(), AwKind::kMatchJoin);
  // Theorem 2 translation: S = g_{G,0}(D).
  const auto& s = (*expr)->source();
  EXPECT_EQ(s->kind(), AwKind::kAggregate);
  EXPECT_EQ(s->agg().kind, AggKind::kNone);
  EXPECT_EQ(s->input()->kind(), AwKind::kFactTable);
}

TEST(WorkflowTest, ToDotRendersThePictorialForm) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kExampleDsl);
  ASSERT_TRUE(workflow.ok());
  std::string dot = workflow->ToDot();
  // One cluster per region set: (t:hour, U:ip) and (t:hour).
  EXPECT_NE(dot.find("digraph workflow"), std::string::npos);
  EXPECT_NE(dot.find("(t:hour, U:ip)"), std::string::npos);
  EXPECT_NE(dot.find("(t:hour)"), std::string::npos);
  // Measures appear as nodes; hidden ones dashed.
  EXPECT_NE(dot.find("\"Count\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Arcs carry their conditions.
  EXPECT_NE(dot.find("sibling(t in [0, 5])"), std::string::npos);
  EXPECT_NE(dot.find("\"SCount\" -> \"AvgCount\""), std::string::npos);
  EXPECT_NE(dot.find("combine"), std::string::npos);
  // Balanced braces (a cheap well-formedness check).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(WorkflowTest, ShippedQueryFilesParse) {
  // The sample DSL files under examples/queries must stay valid against
  // the network schema.
  namespace fs = std::filesystem;
  std::string dir;
  for (const char* candidate :
       {"../../examples/queries", "../examples/queries",
        "examples/queries"}) {
    if (fs::exists(candidate)) {
      dir = candidate;
      break;
    }
  }
  if (dir.empty()) GTEST_SKIP() << "examples/queries not found from cwd";
  auto schema = MakeNetworkLogSchema();
  int parsed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".dsl") continue;
    std::ifstream in(entry.path());
    std::string dsl(std::istreambuf_iterator<char>(in), {});
    auto workflow = Workflow::Parse(schema, dsl);
    EXPECT_TRUE(workflow.ok())
        << entry.path() << ": " << workflow.status().ToString();
    ++parsed;
  }
  EXPECT_GE(parsed, 3);
}

TEST(WorkflowTest, ProgrammaticConstruction) {
  auto schema = MakeSyntheticSchema();
  Workflow workflow(schema);
  MeasureDef base;
  base.name = "Total";
  auto gran = Granularity::Parse(*schema, "(d0:L1)");
  ASSERT_TRUE(gran.ok());
  base.gran = *gran;
  base.op = MeasureOp::kBaseAgg;
  base.agg = {AggKind::kSum, 0};
  ASSERT_TRUE(workflow.AddMeasure(base).ok());
  // Forward references are rejected (insertion order is dependency
  // order).
  MeasureDef dependent;
  dependent.name = "FromFuture";
  dependent.gran = Granularity::All(*schema);
  dependent.op = MeasureOp::kRollup;
  dependent.agg = {AggKind::kSum, 0};
  dependent.input = "NotYet";
  EXPECT_FALSE(workflow.AddMeasure(dependent).ok());
}

}  // namespace
}  // namespace csm
