#include <cmath>
#include <limits>
#include <vector>

#include "agg/aggregate.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace csm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double RunAgg(AggKind kind, const std::vector<double>& values) {
  AggState state;
  AggInit(kind, &state);
  for (double v : values) AggUpdate(kind, &state, v);
  return AggFinalize(kind, state);
}

TEST(AggregateTest, BasicSemantics) {
  std::vector<double> values{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kCount, values), 5);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kSum, values), 14);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kMin, values), 1);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kMax, values), 5);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kAvg, values), 2.8);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kCountDistinct, values), 4);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kNone, values), 0);
}

TEST(AggregateTest, VarianceMatchesTwoPass) {
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<double>(rng.Uniform(1000)) / 7.0);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= values.size();
  EXPECT_NEAR(RunAgg(AggKind::kVar, values), var, 1e-8 * var);
  EXPECT_NEAR(RunAgg(AggKind::kStddev, values), std::sqrt(var),
              1e-8 * std::sqrt(var));
}

TEST(AggregateTest, EmptyAggregates) {
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kCount, {}), 0);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kSum, {}), 0);
  EXPECT_TRUE(std::isnan(RunAgg(AggKind::kMin, {})));
  EXPECT_TRUE(std::isnan(RunAgg(AggKind::kMax, {})));
  EXPECT_TRUE(std::isnan(RunAgg(AggKind::kAvg, {})));
  EXPECT_TRUE(std::isnan(RunAgg(AggKind::kVar, {})));
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kCountDistinct, {}), 0);
}

TEST(AggregateTest, NullInputsSkipped) {
  // SQL semantics: NULL (NaN) is invisible to aggregates.
  std::vector<double> values{kNaN, 2, kNaN, 4};
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kCount, values), 2);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kSum, values), 6);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kAvg, values), 3);
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kMin, values), 2);
  std::vector<double> all_null{kNaN, kNaN};
  EXPECT_TRUE(std::isnan(RunAgg(AggKind::kAvg, all_null)));
  EXPECT_DOUBLE_EQ(RunAgg(AggKind::kCount, all_null), 0);
}

TEST(AggregateTest, Classification) {
  EXPECT_TRUE(IsDistributive(AggKind::kSum));
  EXPECT_TRUE(IsDistributive(AggKind::kCount));
  EXPECT_TRUE(IsDistributive(AggKind::kMin));
  EXPECT_FALSE(IsDistributive(AggKind::kAvg));
  EXPECT_TRUE(IsAlgebraic(AggKind::kAvg));
  EXPECT_TRUE(IsAlgebraic(AggKind::kVar));
  EXPECT_FALSE(IsAlgebraic(AggKind::kCountDistinct));
}

TEST(AggregateTest, NamesRoundTrip) {
  for (AggKind kind :
       {AggKind::kCount, AggKind::kSum, AggKind::kMin, AggKind::kMax,
        AggKind::kAvg, AggKind::kVar, AggKind::kStddev,
        AggKind::kCountDistinct, AggKind::kNone}) {
    auto parsed = AggKindFromName(AggKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(AggKindFromName("median").ok());
  auto avg = AggKindFromName("AVERAGE");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(*avg, AggKind::kAvg);
}

// Property test: merging partial aggregates over any split of the input
// equals aggregating the whole input. This is the invariant the streaming
// engines rely on when updates arrive out of order across finalized
// batches.
class MergePropertyTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(MergePropertyTest, SplitMergeEqualsBulk) {
  const AggKind kind = GetParam();
  Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(200);
    std::vector<double> values;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(static_cast<double>(rng.Uniform(50)));
    }
    // Bulk.
    double expect = RunAgg(kind, values);
    // Split into up to 5 chunks, aggregate each, merge.
    AggState merged;
    AggInit(kind, &merged);
    size_t pos = 0;
    while (pos < n) {
      size_t len = 1 + rng.Uniform(n - pos > 64 ? 64 : n - pos);
      AggState part;
      AggInit(kind, &part);
      for (size_t i = pos; i < pos + len && i < n; ++i) {
        AggUpdate(kind, &part, values[i]);
      }
      AggMerge(kind, &merged, part);
      pos += len;
    }
    double got = AggFinalize(kind, merged);
    if (std::isnan(expect)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_NEAR(got, expect, 1e-9 * (1 + std::fabs(expect)))
          << AggKindName(kind) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MergePropertyTest,
    ::testing::Values(AggKind::kCount, AggKind::kSum, AggKind::kMin,
                      AggKind::kMax, AggKind::kAvg, AggKind::kVar,
                      AggKind::kStddev, AggKind::kCountDistinct),
    [](const ::testing::TestParamInfo<AggKind>& info) {
      return std::string(AggKindName(info.param));
    });

TEST(AggregateTest, MergeEmptyIsIdentity) {
  for (AggKind kind : {AggKind::kSum, AggKind::kAvg, AggKind::kVar,
                       AggKind::kMin, AggKind::kCountDistinct}) {
    AggState a;
    AggInit(kind, &a);
    AggUpdate(kind, &a, 5);
    AggUpdate(kind, &a, 7);
    const double before = AggFinalize(kind, a);
    AggState empty;
    AggInit(kind, &empty);
    AggMerge(kind, &a, empty);
    EXPECT_DOUBLE_EQ(AggFinalize(kind, a), before)
        << AggKindName(kind);
  }
}

TEST(AggregateTest, StateFootprintGrowsWithDistinct) {
  AggState s;
  AggInit(AggKind::kCountDistinct, &s);
  size_t empty = s.FootprintBytes();
  for (int i = 0; i < 100; ++i) AggUpdate(AggKind::kCountDistinct, &s, i);
  EXPECT_GT(s.FootprintBytes(), empty);
}

}  // namespace
}  // namespace csm
