#include <algorithm>

#include "gtest/gtest.h"
#include "model/granularity.h"
#include "model/hierarchy.h"
#include "model/schema.h"
#include "model/sort_key.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::MakeUniformFacts;

TEST(SteppedHierarchyTest, GeneralizeDividesByCumulativeFanout) {
  auto time = MakeTimeHierarchy(1e6);
  // second -> hour -> day -> month -> year -> ALL
  EXPECT_EQ(time->num_levels(), 6);
  EXPECT_EQ(time->Generalize(7200, 0, 1), 2u);     // 2 hours
  EXPECT_EQ(time->Generalize(7200, 0, 2), 0u);     // day 0
  EXPECT_EQ(time->Generalize(86400, 1, 2), 3600u);  // hours -> days
  EXPECT_EQ(time->Generalize(49, 1, 2), 2u);       // hour 49 = day 2
  EXPECT_EQ(time->Generalize(12345, 0, 5), kAllValue);
  EXPECT_EQ(time->Generalize(77, 3, 3), 77u);      // identity
}

TEST(SteppedHierarchyTest, LevelNamesAndLookup) {
  auto time = MakeTimeHierarchy(1e6);
  EXPECT_EQ(time->level_name(0), "second");
  EXPECT_EQ(time->level_name(5), "ALL");
  auto day = time->LevelByName("Day");
  ASSERT_TRUE(day.ok());
  EXPECT_EQ(*day, 2);
  EXPECT_FALSE(time->LevelByName("fortnight").ok());
}

TEST(SteppedHierarchyTest, MonotoneGeneralization) {
  // Proposition 1: u < v implies γ(u) <= γ(v) for all coarser levels.
  auto h = MakeUniformHierarchy(4, 10, 10000);
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    Value u = rng.Uniform(10000);
    Value v = rng.Uniform(10000);
    if (u > v) std::swap(u, v);
    for (int level = 0; level < h->num_levels(); ++level) {
      EXPECT_LE(h->Generalize(u, 0, level), h->Generalize(v, 0, level));
    }
  }
}

TEST(SteppedHierarchyTest, GeneralizationComposes) {
  // γ consistency: going base->L2 equals base->L1->L2.
  auto h = MakeUniformHierarchy(4, 7, 7 * 7 * 7);
  for (Value v = 0; v < 343; ++v) {
    Value via = h->Generalize(h->Generalize(v, 0, 1), 1, 2);
    EXPECT_EQ(via, h->Generalize(v, 0, 2));
  }
}

TEST(SteppedHierarchyTest, FanOutAndCardinality) {
  auto h = MakeUniformHierarchy(4, 10, 1000.0);
  EXPECT_DOUBLE_EQ(h->FanOut(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(h->FanOut(0, 2), 100.0);
  EXPECT_DOUBLE_EQ(h->FanOut(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(h->EstimatedCardinality(0), 1000.0);
  EXPECT_DOUBLE_EQ(h->EstimatedCardinality(2), 10.0);
  EXPECT_DOUBLE_EQ(h->EstimatedCardinality(h->all_level()), 1.0);
}

TEST(SteppedHierarchyTest, MakeRejectsBadShape) {
  EXPECT_FALSE(SteppedHierarchy::Make({"only"}, {}, 10).ok());
  EXPECT_FALSE(SteppedHierarchy::Make({"a", "b", "ALL"}, {}, 10).ok());
  EXPECT_FALSE(SteppedHierarchy::Make({"a", "b", "ALL"}, {0}, 10).ok());
  EXPECT_FALSE(SteppedHierarchy::Make({"a", "ALL"}, {}, -1).ok());
  EXPECT_TRUE(SteppedHierarchy::Make({"a", "b", "ALL"}, {4}, 10).ok());
}

TEST(Ipv4HierarchyTest, PrefixCollapse) {
  auto ip = MakeIpv4Hierarchy(1e6);
  const Value addr = (10u << 24) | (1u << 16) | (2u << 8) | 3u;
  EXPECT_EQ(ip->Generalize(addr, 0, 1), addr >> 8);    // /24
  EXPECT_EQ(ip->Generalize(addr, 0, 2), addr >> 16);   // /16
  EXPECT_EQ(ip->Generalize(addr, 0, 3), addr >> 24);   // /8
}

TEST(MappedHierarchyTest, ExplicitParents) {
  // values 0..5 -> groups {0,1,2}->10, {3,4}->11, {5}->12; top is ALL.
  std::unordered_map<Value, Value> parents{{0, 10}, {1, 10}, {2, 10},
                                           {3, 11}, {4, 11}, {5, 12}};
  auto made = MappedHierarchy::Make({"base", "group", "ALL"}, {parents});
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto h = *made;
  EXPECT_EQ(h->Generalize(4, 0, 1), 11u);
  EXPECT_EQ(h->Generalize(4, 0, 2), kAllValue);
  EXPECT_TRUE(h->IsMonotone());
  EXPECT_DOUBLE_EQ(h->EstimatedCardinality(0), 6.0);
  EXPECT_DOUBLE_EQ(h->EstimatedCardinality(1), 3.0);
}

TEST(MappedHierarchyTest, DetectsNonMonotone) {
  // 0 -> 20, 1 -> 10: parents decrease while children increase.
  std::unordered_map<Value, Value> parents{{0, 20}, {1, 10}};
  auto made = MappedHierarchy::Make({"base", "group", "ALL"}, {parents});
  ASSERT_TRUE(made.ok());
  EXPECT_FALSE((*made)->IsMonotone());
}

TEST(MappedHierarchyTest, BuildMonotoneRestoresProposition1) {
  // A deliberately scrambled two-step hierarchy.
  std::unordered_map<Value, Value> level0{{0, 7}, {1, 5}, {2, 7},
                                          {3, 5}, {4, 9}};
  std::unordered_map<Value, Value> level1{{5, 100}, {7, 50}, {9, 100}};
  auto made = MappedHierarchy::Make({"base", "mid", "top", "ALL"},
                                    {level0, level1});
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  EXPECT_FALSE((*made)->IsMonotone());

  auto encoded = (*made)->BuildMonotone();
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_TRUE(encoded->hierarchy->IsMonotone());
  // Every original value has a translation, and the translated hierarchy
  // preserves co-membership: two base values share a mid parent iff they
  // did originally.
  const auto& tr = encoded->value_translation;
  ASSERT_EQ(tr.size(), 3u);
  for (Value a = 0; a < 5; ++a) {
    for (Value b = 0; b < 5; ++b) {
      bool orig_same = level0.at(a) == level0.at(b);
      Value ta = tr[0].at(a), tb = tr[0].at(b);
      bool new_same = encoded->hierarchy->Generalize(ta, 0, 1) ==
                      encoded->hierarchy->Generalize(tb, 0, 1);
      EXPECT_EQ(orig_same, new_same);
    }
  }
}

TEST(MappedHierarchyTest, RejectsDanglingParent) {
  std::unordered_map<Value, Value> level0{{0, 5}};
  std::unordered_map<Value, Value> level1{{6, 9}};  // 5 missing
  EXPECT_FALSE(MappedHierarchy::Make({"a", "b", "c", "ALL"},
                                     {level0, level1})
                   .ok());
}

TEST(SchemaTest, LookupAndValidation) {
  auto schema = MakeNetworkLogSchema();
  EXPECT_EQ(schema->num_dims(), 4);
  EXPECT_EQ(schema->num_measures(), 1);
  auto t = schema->DimIndex("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, 0);
  EXPECT_TRUE(schema->DimIndex("U").ok());
  EXPECT_FALSE(schema->DimIndex("zz").ok());
  EXPECT_TRUE(schema->MeasureIndex("bytes").ok());

  // Duplicate names rejected.
  auto h = MakeUniformHierarchy(2, 10, 100);
  EXPECT_FALSE(Schema::Make({{"a", h}, {"A", h}}, {}).ok());
  EXPECT_FALSE(Schema::Make({{"a", h}}, {"a"}).ok());
  EXPECT_FALSE(Schema::Make({}, {}).ok());
  EXPECT_FALSE(Schema::Make({{"a", nullptr}}, {}).ok());
}

TEST(GranularityTest, ParseDefaultsToAll) {
  auto schema = MakeNetworkLogSchema();
  auto g = Granularity::Parse(*schema, "(t:hour, U:ip)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->level(0), 1);  // hour
  EXPECT_EQ(g->level(1), 0);  // ip
  EXPECT_EQ(g->level(2), schema->dim(2).hierarchy->all_level());
  EXPECT_EQ(g->level(3), schema->dim(3).hierarchy->all_level());
  EXPECT_EQ(g->ToString(*schema), "(t:hour, U:ip)");

  auto all = Granularity::Parse(*schema, "(ALL)");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->IsAll(*schema));
  EXPECT_EQ(all->ToString(*schema), "(ALL)");

  EXPECT_FALSE(Granularity::Parse(*schema, "(t:fortnight)").ok());
  EXPECT_FALSE(Granularity::Parse(*schema, "(bogus:hour)").ok());
  EXPECT_FALSE(Granularity::Parse(*schema, "(t=hour)").ok());
}

TEST(GranularityTest, PartialOrder) {
  auto schema = MakeNetworkLogSchema();
  auto parse = [&](const char* text) {
    auto r = Granularity::Parse(*schema, text);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  Granularity fine = parse("(t:hour, U:ip)");
  Granularity coarse = parse("(t:day)");
  Granularity other = parse("(U:ip)");
  EXPECT_TRUE(fine.FinerOrEqual(coarse));
  EXPECT_FALSE(coarse.FinerOrEqual(fine));
  EXPECT_TRUE(fine.FinerOrEqual(fine));
  EXPECT_TRUE(fine.FinerOrEqual(other));
  EXPECT_FALSE(other.FinerOrEqual(coarse));
  EXPECT_TRUE(Granularity::Base(*schema).FinerOrEqual(fine));
  EXPECT_TRUE(fine.FinerOrEqual(Granularity::All(*schema)));
}

TEST(GranularityTest, GeneralizeKey) {
  auto schema = MakeNetworkLogSchema();
  Granularity base = Granularity::Base(*schema);
  auto hour_u24 = Granularity::Parse(*schema, "(t:hour, U:net24)");
  ASSERT_TRUE(hour_u24.ok());
  RegionKey key{7200, 0x0a010203, 0x0b010203, 80};
  RegionKey up = GeneralizeKey(*schema, key, base, *hour_u24);
  EXPECT_EQ(up[0], 2u);
  EXPECT_EQ(up[1], 0x0a010203u >> 8);
  EXPECT_EQ(up[2], kAllValue);
  EXPECT_EQ(up[3], kAllValue);
}

TEST(SortKeyTest, ParseAndPrint) {
  auto schema = MakeNetworkLogSchema();
  auto key = SortKey::Parse(*schema, "<t:day, V:ip, U:ip>");
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(key->size(), 3);
  EXPECT_EQ(key->part(0).dim, 0);
  EXPECT_EQ(key->part(0).level, 2);
  EXPECT_EQ(key->ToString(*schema), "<t:day, V:ip, U:ip>");
  EXPECT_TRUE(SortKey::Parse(*schema, "").ok());
  EXPECT_FALSE(SortKey::Parse(*schema, "<t>").ok());
}

TEST(SortKeyTest, CompareBaseKeys) {
  auto schema = MakeNetworkLogSchema();
  auto key = SortKey::Parse(*schema, "<t:hour, U:ip>");
  ASSERT_TRUE(key.ok());
  Value a[4] = {100, 5, 0, 0};
  Value b[4] = {3700, 1, 0, 0};  // later hour wins even with smaller U
  EXPECT_LT(key->CompareBaseKeys(*schema, a, b), 0);
  Value c[4] = {200, 5, 9, 9};   // same hour, same U: equal under the key
  EXPECT_EQ(key->CompareBaseKeys(*schema, a, c), 0);
  Value e[4] = {200, 6, 0, 0};
  EXPECT_LT(key->CompareBaseKeys(*schema, a, e), 0);
}

TEST(SortKeyTest, CompatibleWithGranularity) {
  auto schema = MakeNetworkLogSchema();
  auto key = SortKey::Parse(*schema, "<t:day, U:net24>");
  ASSERT_TRUE(key.ok());
  auto parse = [&](const char* text) {
    auto r = Granularity::Parse(*schema, text);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  // Streams at hour granularity can be ordered by day.
  EXPECT_TRUE(key->CompatibleWith(*schema, parse("(t:hour, U:ip)")));
  // A stream at month granularity cannot follow a day order.
  EXPECT_FALSE(key->CompatibleWith(*schema, parse("(t:month)")));
  // Rolled-away dims are fine.
  EXPECT_TRUE(key->CompatibleWith(*schema, parse("(U:net24)")));
}

}  // namespace
}  // namespace csm
