#include <filesystem>

#include "gtest/gtest.h"
#include "storage/external_sorter.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::MakeUniformFacts;

TEST(FactTableTest, AppendAndAccess) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact(schema);
  Value dims[3] = {1, 2, 3};
  double m[1] = {7.5};
  fact.AppendRow(dims, m);
  dims[0] = 9;
  fact.AppendRow(dims, m);
  ASSERT_EQ(fact.num_rows(), 2u);
  EXPECT_EQ(fact.dim_row(0)[0], 1u);
  EXPECT_EQ(fact.dim_row(1)[0], 9u);
  EXPECT_DOUBLE_EQ(fact.measure_row(1)[0], 7.5);
  EXPECT_EQ(fact.RowBytes(), 3 * 8 + 8u);
}

TEST(FactTableTest, Permute) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact(schema);
  for (Value v = 0; v < 5; ++v) {
    Value dims[2] = {v, 10 + v};
    double m[1] = {static_cast<double>(v)};
    fact.AppendRow(dims, m);
  }
  fact.Permute({4, 3, 2, 1, 0});
  EXPECT_EQ(fact.dim_row(0)[0], 4u);
  EXPECT_EQ(fact.dim_row(4)[0], 0u);
  EXPECT_DOUBLE_EQ(fact.measure_row(0)[0], 4.0);
}

TEST(MeasureTableTest, SortByKeyLex) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  MeasureTable t(schema, Granularity::Base(*schema), "m");
  t.Append(RegionKey{2, 1}, 10);
  t.Append(RegionKey{1, 9}, 20);
  t.Append(RegionKey{1, 2}, 30);
  t.SortByKeyLex();
  EXPECT_EQ(t.key_row(0)[0], 1u);
  EXPECT_EQ(t.key_row(0)[1], 2u);
  EXPECT_DOUBLE_EQ(t.value(0), 30);
  EXPECT_EQ(t.key_row(2)[0], 2u);
}

TEST(MeasureTableTest, SortByGeneralizedKey) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  MeasureTable t(schema, Granularity::Base(*schema), "m");
  // Under <d0:L1> (fan-out 10), 15 and 12 share bucket 1; 5 is bucket 0.
  t.Append(RegionKey{15, 0}, 1);
  t.Append(RegionKey{5, 0}, 2);
  t.Append(RegionKey{12, 0}, 3);
  auto key = SortKey::Parse(*schema, "<d0:L1>");
  ASSERT_TRUE(key.ok());
  t.SortBy(*key);
  EXPECT_EQ(t.key_row(0)[0], 5u);
  // Tie within bucket 1 broken by full key: 12 before 15.
  EXPECT_EQ(t.key_row(1)[0], 12u);
  EXPECT_EQ(t.key_row(2)[0], 15u);
}

TEST(MeasureTableTest, CloneIsDeep) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  MeasureTable t(schema, Granularity::Base(*schema), "m");
  t.Append(RegionKey{1, 1}, 5);
  MeasureTable copy = t.Clone();
  copy.set_value(0, 9);
  EXPECT_DOUBLE_EQ(t.value(0), 5);
  EXPECT_DOUBLE_EQ(copy.value(0), 9);
}

TEST(TempDirTest, CreatesAndRemoves) {
  std::string path;
  {
    auto dir = TempDir::Make();
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    path = dir->path();
    EXPECT_TRUE(std::filesystem::exists(path));
    std::string f1 = dir->NewFilePath("x");
    std::string f2 = dir->NewFilePath("x");
    EXPECT_NE(f1, f2);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillIoTest, WriteReadRoundTrip) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("t");
  SpillWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  uint64_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE(writer.Write(data, sizeof(data)).ok());
  EXPECT_EQ(writer.bytes_written(), sizeof(data));
  ASSERT_TRUE(writer.Close().ok());

  SpillReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  uint64_t got[4] = {};
  Status status;
  ASSERT_TRUE(reader.Read(got, sizeof(got), &status));
  EXPECT_EQ(got[3], 4u);
  EXPECT_FALSE(reader.Read(got, 8, &status));  // clean EOF
  EXPECT_TRUE(status.ok());
}

class ExternalSortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExternalSortTest, SortsUnderAnyBudget) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 5000, 1000, /*seed=*/3);
  auto key = SortKey::Parse(*schema, "<d0:L1, d1:L0>");
  ASSERT_TRUE(key.ok());

  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  SortStats stats;
  // GetParam() is the memory budget: tiny budgets force the external path.
  auto sorted = SortFactTable(MakeUniformFacts(schema, 5000, 1000, 3),
                              *key, GetParam(), &*dir, &stats);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_EQ(sorted->num_rows(), fact.num_rows());

  // Sorted under the order vector.
  for (size_t row = 1; row < sorted->num_rows(); ++row) {
    EXPECT_LE(key->CompareBaseKeys(*schema, sorted->dim_row(row - 1),
                                   sorted->dim_row(row)),
              0)
        << "row " << row;
  }
  // Same multiset of rows: compare row checksums.
  auto checksum = [&](const FactTable& t) {
    uint64_t sum = 0;
    for (size_t row = 0; row < t.num_rows(); ++row) {
      uint64_t h = HashSpan(t.dim_row(row), 3);
      h = HashCombine(h, static_cast<uint64_t>(t.measure_row(row)[0]));
      sum += h;
    }
    return sum;
  };
  EXPECT_EQ(checksum(fact), checksum(*sorted));
  if (GetParam() < 100000) {
    EXPECT_GT(stats.runs, 1u) << "small budget should spill runs";
    EXPECT_GT(stats.spilled_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalSortTest,
                         ::testing::Values<size_t>(16ull << 20,  // in-memory
                                                   64 << 10,     // a few runs
                                                   16 << 10));   // many runs

TEST(ExternalSortTest, EmptyAndSingleRow) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  auto key = SortKey::Parse(*schema, "<d0:L0>");
  ASSERT_TRUE(key.ok());
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());

  auto empty = SortFactTable(FactTable(schema), *key, 1 << 20, &*dir,
                             nullptr);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);

  FactTable one(schema);
  Value dims[2] = {5, 6};
  double m[1] = {1.0};
  one.AppendRow(dims, m);
  auto sorted = SortFactTable(std::move(one), *key, 1 << 20, &*dir,
                              nullptr);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->num_rows(), 1u);
  EXPECT_EQ(sorted->dim_row(0)[0], 5u);
}

TEST(TableIoTest, FactBinaryRoundTrip) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 200, 1000, 11);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("fact");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());
  auto loaded = ReadFactTableBinary(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(loaded->dim_row(row)[i], fact.dim_row(row)[i]);
    }
    EXPECT_DOUBLE_EQ(loaded->measure_row(row)[0],
                     fact.measure_row(row)[0]);
  }
}

TEST(TableIoTest, FactCsvRoundTrip) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 50, 100, 13);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("fact_csv");
  ASSERT_TRUE(WriteFactTableCsv(fact, path).ok());
  auto loaded = ReadFactTableCsv(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    EXPECT_EQ(loaded->dim_row(row)[1], fact.dim_row(row)[1]);
  }
}

TEST(TableIoTest, MeasureBinaryRoundTrip) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  auto gran = Granularity::Parse(*schema, "(d0:L1)");
  ASSERT_TRUE(gran.ok());
  MeasureTable t(schema, *gran, "count");
  t.Append(RegionKey{3, 0}, 42);
  t.Append(RegionKey{5, 0}, std::nan(""));
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("measure");
  ASSERT_TRUE(WriteMeasureTableBinary(t, path).ok());
  auto loaded = ReadMeasureTableBinary(schema, *gran, "count", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(loaded->value(0), 42);
  EXPECT_TRUE(std::isnan(loaded->value(1)));
  EXPECT_EQ(loaded->key_row(0)[0], 3u);
}

TEST(TableIoTest, RejectsWrongSchema) {
  auto schema2 = MakeSyntheticSchema(2, 3, 10, 1000);
  auto schema3 = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema2, 10, 100, 1);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("fact");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());
  EXPECT_FALSE(ReadFactTableBinary(schema3, path).ok());
}

}  // namespace
}  // namespace csm
