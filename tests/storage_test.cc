#include <atomic>
#include <filesystem>
#include <thread>

#include "gtest/gtest.h"
#include "storage/external_sorter.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"
#include "storage/record_batch.h"
#include "storage/record_cursor.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::MakeUniformFacts;

TEST(FactTableTest, AppendAndAccess) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact(schema);
  Value dims[3] = {1, 2, 3};
  double m[1] = {7.5};
  fact.AppendRow(dims, m);
  dims[0] = 9;
  fact.AppendRow(dims, m);
  ASSERT_EQ(fact.num_rows(), 2u);
  EXPECT_EQ(fact.dim_row(0)[0], 1u);
  EXPECT_EQ(fact.dim_row(1)[0], 9u);
  EXPECT_DOUBLE_EQ(fact.measure_row(1)[0], 7.5);
  EXPECT_EQ(fact.RowBytes(), 3 * 8 + 8u);
}

TEST(FactTableTest, Permute) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact(schema);
  for (Value v = 0; v < 5; ++v) {
    Value dims[2] = {v, 10 + v};
    double m[1] = {static_cast<double>(v)};
    fact.AppendRow(dims, m);
  }
  fact.Permute({4, 3, 2, 1, 0});
  EXPECT_EQ(fact.dim_row(0)[0], 4u);
  EXPECT_EQ(fact.dim_row(4)[0], 0u);
  EXPECT_DOUBLE_EQ(fact.measure_row(0)[0], 4.0);
}

TEST(MeasureTableTest, SortByKeyLex) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  MeasureTable t(schema, Granularity::Base(*schema), "m");
  t.Append(RegionKey{2, 1}, 10);
  t.Append(RegionKey{1, 9}, 20);
  t.Append(RegionKey{1, 2}, 30);
  t.SortByKeyLex();
  EXPECT_EQ(t.key_row(0)[0], 1u);
  EXPECT_EQ(t.key_row(0)[1], 2u);
  EXPECT_DOUBLE_EQ(t.value(0), 30);
  EXPECT_EQ(t.key_row(2)[0], 2u);
}

TEST(MeasureTableTest, SortByGeneralizedKey) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  MeasureTable t(schema, Granularity::Base(*schema), "m");
  // Under <d0:L1> (fan-out 10), 15 and 12 share bucket 1; 5 is bucket 0.
  t.Append(RegionKey{15, 0}, 1);
  t.Append(RegionKey{5, 0}, 2);
  t.Append(RegionKey{12, 0}, 3);
  auto key = SortKey::Parse(*schema, "<d0:L1>");
  ASSERT_TRUE(key.ok());
  t.SortBy(*key);
  EXPECT_EQ(t.key_row(0)[0], 5u);
  // Tie within bucket 1 broken by full key: 12 before 15.
  EXPECT_EQ(t.key_row(1)[0], 12u);
  EXPECT_EQ(t.key_row(2)[0], 15u);
}

TEST(MeasureTableTest, CloneIsDeep) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  MeasureTable t(schema, Granularity::Base(*schema), "m");
  t.Append(RegionKey{1, 1}, 5);
  MeasureTable copy = t.Clone();
  copy.set_value(0, 9);
  EXPECT_DOUBLE_EQ(t.value(0), 5);
  EXPECT_DOUBLE_EQ(copy.value(0), 9);
}

TEST(TempDirTest, CreatesAndRemoves) {
  std::string path;
  {
    auto dir = TempDir::Make();
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    path = dir->path();
    EXPECT_TRUE(std::filesystem::exists(path));
    std::string f1 = dir->NewFilePath("x");
    std::string f2 = dir->NewFilePath("x");
    EXPECT_NE(f1, f2);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SpillIoTest, WriteReadRoundTrip) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("t");
  SpillWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  uint64_t data[4] = {1, 2, 3, 4};
  ASSERT_TRUE(writer.Write(data, sizeof(data)).ok());
  EXPECT_EQ(writer.bytes_written(), sizeof(data));
  ASSERT_TRUE(writer.Close().ok());

  SpillReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  uint64_t got[4] = {};
  Status status;
  ASSERT_TRUE(reader.Read(got, sizeof(got), &status));
  EXPECT_EQ(got[3], 4u);
  EXPECT_FALSE(reader.Read(got, 8, &status));  // clean EOF
  EXPECT_TRUE(status.ok());
}

class ExternalSortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExternalSortTest, SortsUnderAnyBudget) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 5000, 1000, /*seed=*/3);
  auto key = SortKey::Parse(*schema, "<d0:L1, d1:L0>");
  ASSERT_TRUE(key.ok());

  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  SortStats stats;
  // GetParam() is the memory budget: tiny budgets force the external path.
  auto sorted = SortFactTable(MakeUniformFacts(schema, 5000, 1000, 3),
                              *key, GetParam(), &*dir, &stats);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_EQ(sorted->num_rows(), fact.num_rows());

  // Sorted under the order vector.
  for (size_t row = 1; row < sorted->num_rows(); ++row) {
    EXPECT_LE(key->CompareBaseKeys(*schema, sorted->dim_row(row - 1),
                                   sorted->dim_row(row)),
              0)
        << "row " << row;
  }
  // Same multiset of rows: compare row checksums.
  auto checksum = [&](const FactTable& t) {
    uint64_t sum = 0;
    for (size_t row = 0; row < t.num_rows(); ++row) {
      uint64_t h = HashSpan(t.dim_row(row), 3);
      h = HashCombine(h, static_cast<uint64_t>(t.measure_row(row)[0]));
      sum += h;
    }
    return sum;
  };
  EXPECT_EQ(checksum(fact), checksum(*sorted));
  if (GetParam() < 100000) {
    EXPECT_GT(stats.runs, 1u) << "small budget should spill runs";
    EXPECT_GT(stats.spilled_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExternalSortTest,
                         ::testing::Values<size_t>(16ull << 20,  // in-memory
                                                   64 << 10,     // a few runs
                                                   16 << 10));   // many runs

TEST(ExternalSortTest, EmptyAndSingleRow) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  auto key = SortKey::Parse(*schema, "<d0:L0>");
  ASSERT_TRUE(key.ok());
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());

  auto empty = SortFactTable(FactTable(schema), *key, 1 << 20, &*dir,
                             nullptr);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);

  FactTable one(schema);
  Value dims[2] = {5, 6};
  double m[1] = {1.0};
  one.AppendRow(dims, m);
  auto sorted = SortFactTable(std::move(one), *key, 1 << 20, &*dir,
                              nullptr);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->num_rows(), 1u);
  EXPECT_EQ(sorted->dim_row(0)[0], 5u);
}

TEST(TableIoTest, FactBinaryRoundTrip) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 200, 1000, 11);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("fact");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());
  auto loaded = ReadFactTableBinary(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(loaded->dim_row(row)[i], fact.dim_row(row)[i]);
    }
    EXPECT_DOUBLE_EQ(loaded->measure_row(row)[0],
                     fact.measure_row(row)[0]);
  }
}

TEST(TableIoTest, FactCsvRoundTrip) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 50, 100, 13);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("fact_csv");
  ASSERT_TRUE(WriteFactTableCsv(fact, path).ok());
  auto loaded = ReadFactTableCsv(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), fact.num_rows());
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    EXPECT_EQ(loaded->dim_row(row)[1], fact.dim_row(row)[1]);
  }
}

TEST(TableIoTest, MeasureBinaryRoundTrip) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  auto gran = Granularity::Parse(*schema, "(d0:L1)");
  ASSERT_TRUE(gran.ok());
  MeasureTable t(schema, *gran, "count");
  t.Append(RegionKey{3, 0}, 42);
  t.Append(RegionKey{5, 0}, std::nan(""));
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("measure");
  ASSERT_TRUE(WriteMeasureTableBinary(t, path).ok());
  auto loaded = ReadMeasureTableBinary(schema, *gran, "count", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(loaded->value(0), 42);
  EXPECT_TRUE(std::isnan(loaded->value(1)));
  EXPECT_EQ(loaded->key_row(0)[0], 3u);
}

TEST(FactTableTest, CloneCapacityIsTightFit) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact(schema);
  // Grown row by row, so the vectors carry geometric-growth padding.
  for (Value v = 0; v < 100; ++v) {
    Value dims[3] = {v, v + 1, v + 2};
    double m[1] = {static_cast<double>(v)};
    fact.AppendRow(dims, m);
  }
  EXPECT_GE(fact.MemoryBytes(), fact.RowBytes() * fact.num_rows());

  FactTable copy = fact.Clone();
  ASSERT_EQ(copy.num_rows(), fact.num_rows());
  // The clone reserves the exact row count before copying: its resident
  // size is the tight fit, no growth padding.
  EXPECT_EQ(copy.MemoryBytes(), copy.RowBytes() * copy.num_rows());
  // Deep: appending to the copy leaves the source untouched.
  Value dims[3] = {7, 7, 7};
  double m[1] = {7.0};
  copy.AppendRow(dims, m);
  EXPECT_EQ(fact.num_rows(), 100u);
  EXPECT_EQ(copy.dim_row(42)[0], fact.dim_row(42)[0]);
}

TEST(RecordBatchTest, ScatterGatherRoundTrip) {
  RecordBatch batch(2, 1, 4);
  EXPECT_EQ(batch.capacity(), 4u);
  Value dims[2] = {10, 20};
  double m[1] = {1.5};
  batch.ScatterRow(0, dims, m);
  dims[0] = 11;
  m[0] = 2.5;
  batch.ScatterRow(1, dims, m);
  batch.set_num_rows(2);

  EXPECT_EQ(batch.dim_col(0)[0], 10u);
  EXPECT_EQ(batch.dim_col(0)[1], 11u);
  EXPECT_EQ(batch.dim_col(1)[0], 20u);
  EXPECT_DOUBLE_EQ(batch.measure_col(0)[1], 2.5);

  Value got_dims[2];
  double got_m[1];
  batch.GatherRow(0, got_dims, got_m);
  EXPECT_EQ(got_dims[0], 10u);
  EXPECT_EQ(got_dims[1], 20u);
  EXPECT_DOUBLE_EQ(got_m[0], 1.5);
}

TEST(RecordBatchTest, ZeroCapacityClampsToOne) {
  RecordBatch batch(1, 0, 0);
  EXPECT_EQ(batch.capacity(), 1u);
}

TEST(FactTableBatchCursorTest, ShortFinalBatch) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact(schema);
  for (Value v = 0; v < 10; ++v) {
    Value dims[2] = {v, 100 + v};
    double m[1] = {static_cast<double>(v) * 0.5};
    fact.AppendRow(dims, m);
  }
  auto cursor = MakeFactTableBatchCursor(fact);
  EXPECT_FALSE(cursor->per_record_fallback());
  RecordBatch batch(2, 1, 4);
  size_t total = 0;
  std::vector<size_t> sizes;
  for (;;) {
    auto n = cursor->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    ASSERT_EQ(batch.num_rows(), *n);
    for (size_t r = 0; r < *n; ++r) {
      EXPECT_EQ(batch.dim_col(0)[r], total + r);
      EXPECT_EQ(batch.dim_col(1)[r], 100 + total + r);
      EXPECT_DOUBLE_EQ(batch.measure_col(0)[r], (total + r) * 0.5);
    }
    sizes.push_back(*n);
    total += *n;
  }
  EXPECT_EQ(total, 10u);
  // 10 rows at capacity 4: two full batches and a short final one.
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 2u);
  // The stream stays ended on repeated calls.
  auto again = cursor->NextBatch(&batch);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(FactTableBatchCursorTest, EmptyTable) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact(schema);
  auto cursor = MakeFactTableBatchCursor(fact);
  RecordBatch batch(2, 1, 8);
  auto n = cursor->NextBatch(&batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(FactTableBatchCursorTest, CapacityOneIsPerRecordExecution) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 5, 100, 17);
  auto cursor = MakeFactTableBatchCursor(fact);
  RecordBatch batch(2, 1, 1);
  size_t rows = 0;
  for (;;) {
    auto n = cursor->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    EXPECT_EQ(*n, 1u);
    EXPECT_EQ(batch.dim_col(0)[0], fact.dim_row(rows)[0]);
    ++rows;
  }
  EXPECT_EQ(rows, fact.num_rows());
}

TEST(BatchAdapterTest, RecordsToBatchesReportsFallback) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 23, 500, 19);
  auto cursor = MakeBatchCursorOverRecords(MakeFactTableCursor(fact),
                                           fact.num_dims(),
                                           fact.num_measures());
  EXPECT_TRUE(cursor->per_record_fallback());
  RecordBatch batch(3, 1, 8);
  size_t row = 0;
  for (;;) {
    auto n = cursor->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    for (size_t r = 0; r < *n; ++r, ++row) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(batch.dim_col(i)[r], fact.dim_row(row)[i]);
      }
      EXPECT_DOUBLE_EQ(batch.measure_col(0)[r],
                       fact.measure_row(row)[0]);
    }
  }
  EXPECT_EQ(row, fact.num_rows());  // 23 = 2 full batches + short 7
}

TEST(BatchAdapterTest, BatchesToRecordsRoundTrip) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 10, 100, 23);
  // Odd capacity 3 over 10 rows: the adapter crosses three batch
  // boundaries and ends on a short batch.
  auto records = MakeRecordCursorOverBatches(
      MakeFactTableBatchCursor(fact), fact.num_dims(),
      fact.num_measures(), /*batch_capacity=*/3);
  size_t row = 0;
  for (;;) {
    auto more = records->Next();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_LT(row, fact.num_rows());
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(records->dims()[i], fact.dim_row(row)[i]);
    }
    EXPECT_DOUBLE_EQ(records->measures()[0], fact.measure_row(row)[0]);
    ++row;
  }
  EXPECT_EQ(row, fact.num_rows());
}

TEST(SortFactFileBatchCursorTest, MergedRunsEndWithShortBatch) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  // Run chunks have a 1024-row floor; 5003 rows under a tiny budget give
  // five spilled runs and a 5003 % 64 = 11-row final merge batch.
  FactTable fact = MakeUniformFacts(schema, 5003, 1000, 29);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("facts");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());

  auto key = SortKey::Parse(*schema, "<d0:L1, d1:L0>");
  ASSERT_TRUE(key.ok());
  SortStats stats;
  // A tiny budget forces several spilled runs, so batches drain through
  // the k-way merge rather than a single sorted run.
  auto cursor = SortFactFileBatchCursor(schema, path, *key, 16 << 10,
                                        &*dir, &stats);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_GT(stats.runs, 1u);

  RecordBatch batch(3, 1, 64);
  size_t total = 0;
  size_t last_n = 0;
  std::vector<Value> prev(3);
  for (;;) {
    auto n = (*cursor)->NextBatch(&batch);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    for (size_t r = 0; r < *n; ++r) {
      Value row[3] = {batch.dim_col(0)[r], batch.dim_col(1)[r],
                      batch.dim_col(2)[r]};
      if (total + r > 0) {
        EXPECT_LE(key->CompareBaseKeys(*schema, prev.data(), row), 0);
      }
      prev.assign(row, row + 3);
    }
    last_n = *n;
    total += *n;
  }
  EXPECT_EQ(total, 5003u);
  EXPECT_EQ(last_n, 5003u % 64);  // short final batch from the merge
}

// Identical contents + identical key + stable ties => the sorted output
// is the stable sort of the input, so it cannot depend on how many
// workers generated runs or whether the sort spilled at all.
TEST(ExternalSortTest, OneThreadEqualsManyThreads) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  auto key = SortKey::Parse(*schema, "<d0:L1, d1:L0>");
  ASSERT_TRUE(key.ok());
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());

  // In-memory reference (single-threaded, no spilling).
  SortOptions reference_options;
  reference_options.temp_dir = &*dir;
  auto reference = SortFactTable(MakeUniformFacts(schema, 7001, 1000, 11),
                                 *key, reference_options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {1, 2, 8}) {
    for (size_t budget : {size_t{64} << 20, size_t{24} << 10}) {
      SortOptions options;
      options.memory_budget_bytes = budget;
      options.temp_dir = &*dir;
      options.threads = threads;
      SortStats stats;
      auto sorted = SortFactTable(MakeUniformFacts(schema, 7001, 1000, 11),
                                  *key, options, &stats);
      ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
      ASSERT_EQ(sorted->num_rows(), reference->num_rows());
      for (size_t row = 0; row < sorted->num_rows(); ++row) {
        for (int i = 0; i < 3; ++i) {
          ASSERT_EQ(sorted->dim_row(row)[i], reference->dim_row(row)[i])
              << "threads " << threads << " budget " << budget << " row "
              << row;
        }
        ASSERT_EQ(sorted->measure_row(row)[0],
                  reference->measure_row(row)[0])
            << "threads " << threads << " budget " << budget << " row "
            << row;
      }
    }
  }
}

// A budget smaller than a single row's footprint must still sort: the
// run size clamps to its floor instead of dividing to zero rows.
TEST(ExternalSortTest, BudgetSmallerThanOneRow) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  auto key = SortKey::Parse(*schema, "<d0:L0>");
  ASSERT_TRUE(key.ok());
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());

  SortOptions options;
  options.memory_budget_bytes = 1;  // less than one row
  options.temp_dir = &*dir;
  SortStats stats;
  auto sorted = SortFactTable(MakeUniformFacts(schema, 5000, 1000, 17),
                              *key, options, &stats);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_EQ(sorted->num_rows(), 5000u);
  EXPECT_GT(stats.runs, 1u);

  SortOptions big;
  big.temp_dir = &*dir;
  auto reference = SortFactTable(MakeUniformFacts(schema, 5000, 1000, 17),
                                 *key, big);
  ASSERT_TRUE(reference.ok());
  for (size_t row = 0; row < sorted->num_rows(); ++row) {
    ASSERT_EQ(sorted->dim_row(row)[0], reference->dim_row(row)[0]);
    ASSERT_EQ(sorted->measure_row(row)[0], reference->measure_row(row)[0]);
  }

  // Same floor on the file-sort path.
  std::string path = dir->NewFilePath("facts");
  ASSERT_TRUE(WriteFactTableBinary(*reference, path).ok());
  auto cursor = SortFactFileBatchCursor(schema, path, *key, options);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  RecordBatch batch(3, 1, 256);
  size_t total = 0;
  for (;;) {
    auto n = (*cursor)->NextBatch(&batch);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    total += *n;
  }
  EXPECT_EQ(total, 5000u);
}

// Flip the cancel flag once the first run file lands in the temp dir, so
// the sort is cancelled in the middle of run generation (not before it
// starts, not during the merge).
TEST(ExternalSortTest, CancellationMidRunGeneration) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  auto key = SortKey::Parse(*schema, "<d0:L0>");
  ASSERT_TRUE(key.ok());
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());

  std::atomic<bool> cancel{false};
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    // Poll for the first spilled run, then cancel. The fallback timeout
    // only matters if the sort finishes faster than we can see a file.
    for (int i = 0; i < 100000 && !done.load(); ++i) {
      bool has_run = false;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir->path())) {
        (void)entry;
        has_run = true;
        break;
      }
      if (has_run) break;
      std::this_thread::yield();
    }
    cancel.store(true);
  });

  SortOptions options;
  options.memory_budget_bytes = 16 << 10;  // many runs => a long spill
  options.temp_dir = &*dir;
  options.cancel = &cancel;
  auto sorted = SortFactTable(MakeUniformFacts(schema, 200000, 1000, 23),
                              *key, options);
  done.store(true);
  watcher.join();
  ASSERT_FALSE(sorted.ok());
  EXPECT_TRUE(sorted.status().IsCancelled())
      << sorted.status().ToString();

  // All spilled run files were cleaned up on the cancel path.
  size_t leftover = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir->path())) {
    (void)entry;
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
}

TEST(TableIoTest, RejectsWrongSchema) {
  auto schema2 = MakeSyntheticSchema(2, 3, 10, 1000);
  auto schema3 = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema2, 10, 100, 1);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("fact");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());
  EXPECT_FALSE(ReadFactTableBinary(schema3, path).ok());
}

}  // namespace
}  // namespace csm
