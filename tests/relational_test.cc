#include <cmath>

#include "exec/single_scan.h"
#include "gtest/gtest.h"
#include "relational/relational_engine.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;
using testing_util::ToMap;

class RelationalTest : public ::testing::Test {
 protected:
  void SetUp() override { schema_ = MakeSyntheticSchema(3, 3, 10, 100); }

  void ExpectAgrees(const char* dsl, size_t rows = 2000,
                    uint64_t seed = 5) {
    auto workflow = Workflow::Parse(schema_, dsl);
    ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
    FactTable fact = MakeUniformFacts(schema_, rows, 100, seed);
    SingleScanEngine reference;
    RelationalEngine relational;
    auto expect = reference.Run(*workflow, fact);
    auto got = relational.Run(*workflow, fact);
    ASSERT_TRUE(expect.ok() && got.ok())
        << expect.status().ToString() << " / "
        << got.status().ToString();
    for (auto& [name, table] : expect->tables) {
      ExpectTablesEqual(table, got->tables.at(name), name);
    }
  }

  SchemaPtr schema_;
};

TEST_F(RelationalTest, WhereOnMatchTargetFiltersUpdates) {
  ExpectAgrees(R"(
      measure C at (d0:L0, d1:L0) = agg count(*) from FACT hidden;
      measure Big at (d0:L0) = match C using childparent agg count(M)
          where M >= 3;
      measure AvgBig at (d0:L0) = match C using childparent agg avg(M)
          where M >= 3;)");
}

TEST_F(RelationalTest, ParentChildThroughSelection) {
  ExpectAgrees(R"(
      measure Coarse at (d0:L2) = agg sum(m) from FACT hidden;
      measure Fine at (d0:L0) = match Coarse using parentchild agg sum(M)
          where M > 100;)");
}

TEST_F(RelationalTest, MultiWindowSibling) {
  ExpectAgrees(R"(
      measure G at (d0:L1, d1:L1) = agg count(*) from FACT hidden;
      measure W at (d0:L1, d1:L1) = match G using
          sibling(d0 in [-1, 1], d1 in [-2, 0]) agg sum(M);)");
}

TEST_F(RelationalTest, CombineChains) {
  ExpectAgrees(R"(
      measure A at (d0:L1) = agg sum(m) from FACT hidden;
      measure B at (d0:L1) = agg count(*) from FACT hidden;
      measure AB at (d0:L1) = combine(A, B) as A / B hidden;
      measure ABB at (d0:L1) = combine(AB, B) as AB * B;)");
}

TEST_F(RelationalTest, NaNMeasuresSurviveMaterialization) {
  // avg over an empty match is NULL; the combine must read it back from
  // disk as NULL, not 0.
  auto workflow = Workflow::Parse(schema_, R"(
      measure C at (d0:L0) = agg count(*) from FACT hidden;
      measure Rare at (d0:L0) = match C using self agg avg(M)
          where M > 1000000;
      measure Guard at (d0:L0) = combine(Rare, C)
          as if(isnull(Rare), -1, Rare);)");
  ASSERT_TRUE(workflow.ok());
  FactTable fact = MakeUniformFacts(schema_, 500, 100, 7);
  RelationalEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const MeasureTable& rare = got->tables.at("Rare");
  const MeasureTable& guard = got->tables.at("Guard");
  ASSERT_GT(rare.num_rows(), 0u);
  for (size_t row = 0; row < rare.num_rows(); ++row) {
    EXPECT_TRUE(std::isnan(rare.value(row)));
  }
  for (size_t row = 0; row < guard.num_rows(); ++row) {
    EXPECT_DOUBLE_EQ(guard.value(row), -1.0);
  }
}

TEST_F(RelationalTest, HiddenMeasuresRespectIncludeFlag) {
  auto workflow = Workflow::Parse(schema_, R"(
      measure C at (d0:L1) = agg count(*) from FACT hidden;
      measure R at (d0:L2) = agg sum(M) from C;)");
  ASSERT_TRUE(workflow.ok());
  FactTable fact = MakeUniformFacts(schema_, 300, 100, 9);
  RelationalEngine plain;
  auto without = plain.Run(*workflow, fact);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->tables.count("C"));
  EngineOptions options;
  options.include_hidden = true;
  RelationalEngine with;
  auto got = testing_util::RunWith(with, *workflow, fact, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->tables.count("C"));
}

TEST_F(RelationalTest, StatsExposeThePerQueryArchitecture) {
  // Q with 3 base measures and 1 match: 3 + 1 (enumerator) fact scans.
  auto workflow = Workflow::Parse(schema_, R"(
      measure A at (d0:L0) = agg count(*) from FACT;
      measure B at (d1:L0) = agg count(*) from FACT;
      measure C at (d2:L0) = agg count(*) from FACT hidden;
      measure W at (d2:L0) = match C using self agg sum(M);)");
  ASSERT_TRUE(workflow.ok());
  FactTable fact = MakeUniformFacts(schema_, 1000, 100, 11);
  RelationalEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.rows_scanned, 4000u);
  EXPECT_GT(got->stats.sort_seconds, 0.0);
  EXPECT_GT(got->stats.materialized_rows, 0u);
}

TEST_F(RelationalTest, VarAndCountDistinct) {
  ExpectAgrees(R"(
      measure V at (d0:L1) = agg var(m) from FACT;
      measure S at (d0:L1) = agg stddev(m) from FACT;
      measure D at (d0:L1) = agg count_distinct(m) from FACT;)");
}

}  // namespace
}  // namespace csm
