// Dictionary encoding tests: DimDictionary code assignment and the
// code-stability contract, the FactTable's memoized encoding across every
// mutator (AppendRow / AppendBatch / Permute / Clone / Clear), session
// delta patching with the dictionary path on, metamorphic encoded-vs-raw
// bit-identity across every append split, a dict-on/off conformance sweep
// over engines x threads x batch sizes, and counter-asserting zone-map
// batch-skipping tests (sorted-input skip rate plus the all-skip,
// none-skip, boundary-straddle and empty-table edge cases).

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/factory.h"
#include "exec/session.h"
#include "gtest/gtest.h"
#include "model/schema.h"
#include "obs/trace.h"
#include "storage/dim_dictionary.h"
#include "storage/fact_table.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::MakeUniformFacts;
using testing_util::ToMap;

Workflow ParseOrDie(const SchemaPtr& schema, const std::string& dsl) {
  auto workflow = Workflow::Parse(schema, dsl);
  EXPECT_TRUE(workflow.ok()) << workflow.status().ToString();
  return std::move(workflow).ValueOrDie();
}

/// Copies rows [begin, end) of `fact` into a fresh table.
FactTable Slice(const FactTable& fact, size_t begin, size_t end) {
  FactTable out(fact.schema());
  out.Reserve(end - begin);
  for (size_t row = begin; row < end; ++row) {
    out.AppendRow(fact.dim_row(row), fact.measure_row(row));
  }
  return out;
}

/// Bit-level table map: region key -> the value's raw bit pattern. The
/// dictionary path's contract is bit-identity with the raw scan, so
/// comparisons here are on the exact double bits (NaN payloads included),
/// not tolerance-based.
std::map<std::vector<Value>, uint64_t> BitMap(const MeasureTable& t) {
  std::map<std::vector<Value>, uint64_t> out;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    uint64_t bits;
    const double v = t.value(row);
    std::memcpy(&bits, &v, sizeof(bits));
    out.emplace(std::vector<Value>(t.key_row(row),
                                   t.key_row(row) + t.num_dims()),
                bits);
  }
  return out;
}

void ExpectBitIdentical(const EvalOutput& a, const EvalOutput& b,
                        const std::string& context) {
  ASSERT_EQ(a.tables.size(), b.tables.size()) << context;
  for (const auto& [name, ta] : a.tables) {
    const MeasureTable* tb = b.FindTable(name);
    ASSERT_TRUE(tb != nullptr) << context << ": missing " << name;
    EXPECT_EQ(BitMap(ta), BitMap(*tb)) << context << "/" << name;
  }
}

/// Runs `kind` with a caller-owned tracer and returns the output plus the
/// summed zone-map skip counter of the run's span tree.
struct TracedRun {
  EvalOutput output;
  uint64_t batches_skipped = 0;
};

TracedRun RunTraced(EngineKind kind, const Workflow& workflow,
                    const FactTable& fact, EngineOptions options) {
  TracedRun out;
  auto engine = MakeEngine(kind, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return out;
  Tracer tracer;
  ExecContext ctx;
  ctx.options = std::move(options);
  ctx.tracer = &tracer;
  auto result = (*engine)->Run(workflow, fact, ctx);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return out;
  out.output = std::move(*result);
  const std::vector<SpanId> roots = tracer.RootSpans();
  EXPECT_FALSE(roots.empty());
  if (!roots.empty()) {
    out.batches_skipped = static_cast<uint64_t>(
        tracer.SumCounter(roots.front(), "batches_skipped"));
  }
  return out;
}

/// Facts sorted ascending by d0 (the zone-map-friendly layout): row r
/// gets d0 = floor(r * card / rows), other dims and the measure uniform.
FactTable MakeSortedFacts(SchemaPtr schema, size_t rows, uint64_t card,
                          uint64_t seed) {
  Rng rng(seed);
  FactTable fact(schema);
  fact.Reserve(rows);
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  std::vector<Value> dims(d);
  std::vector<double> measures(m);
  for (size_t row = 0; row < rows; ++row) {
    dims[0] = static_cast<Value>(row * card / rows);
    for (int i = 1; i < d; ++i) dims[i] = rng.Uniform(card);
    for (int i = 0; i < m; ++i) {
      measures[i] = static_cast<double>(rng.Uniform(100));
    }
    fact.AppendRow(dims.data(), measures.data());
  }
  return fact;
}

// --- DimDictionary ----------------------------------------------------

TEST(DimDictionaryTest, BuildAssignsSortedUniqueCodes) {
  // Interleaved column layout (stride 2) with duplicates and unsorted
  // arrival order; the dictionary must come out sorted and deduplicated.
  const std::vector<Value> column = {42, 0, 7, 0, 42, 0, 3, 0, 7, 0};
  DimDictionary dict;
  dict.Build(column.data(), column.size() / 2, /*stride=*/2);

  // Stride 2 reads indices 0, 2, 4, 6, 8: {42, 7, 42, 3, 7}.
  ASSERT_EQ(dict.size(), 3u);
  // Codes are monotone in the value: code order == value order.
  EXPECT_EQ(dict.values(), (std::vector<Value>{3, 7, 42}));
  for (uint32_t code = 0; code + 1 < dict.size(); ++code) {
    EXPECT_LT(dict.value(code), dict.value(code + 1));
  }
  // Roundtrip both ways; absent values report UINT32_MAX.
  for (uint32_t code = 0; code < dict.size(); ++code) {
    EXPECT_EQ(dict.CodeOf(dict.value(code)), code);
  }
  EXPECT_EQ(dict.CodeOf(5), UINT32_MAX);
  EXPECT_EQ(dict.CodeOf(1000), UINT32_MAX);
}

TEST(DimDictionaryTest, CodeOrAddIsStable) {
  std::vector<Value> vals;
  for (Value v = 0; v < 100; ++v) vals.push_back(v * 3);
  DimDictionary dict;
  dict.Build(vals.data(), vals.size(), /*stride=*/1);
  ASSERT_EQ(dict.size(), 100u);
  const std::vector<Value> before = dict.values();

  // Known values return their existing code without growing the dict.
  EXPECT_EQ(dict.CodeOrAdd(0), dict.CodeOf(0));
  EXPECT_EQ(dict.CodeOrAdd(297), dict.CodeOf(297));
  EXPECT_EQ(dict.size(), 100u);

  // New values (even ones that sort into the middle) take the next free
  // code at the END — existing codes never move.
  const uint32_t added = dict.CodeOrAdd(7);  // sorts between 6 and 9
  EXPECT_EQ(added, 100u);
  EXPECT_EQ(dict.size(), 101u);
  EXPECT_EQ(dict.value(added), 7u);
  for (uint32_t code = 0; code < 100; ++code) {
    EXPECT_EQ(dict.value(code), before[code]) << "code " << code;
  }
  // The appended value is found through CodeOf too.
  EXPECT_EQ(dict.CodeOf(7), added);
}

TEST(DimDictionaryTest, BitsTracksCodeWidth) {
  auto dict_of = [](size_t n) {
    std::vector<Value> vals;
    vals.reserve(n);
    for (size_t v = 0; v < n; ++v) vals.push_back(v);
    DimDictionary dict;
    dict.Build(vals.data(), vals.size(), /*stride=*/1);
    return dict;
  };
  EXPECT_EQ(dict_of(1).bits(), 8);
  EXPECT_EQ(dict_of(256).bits(), 8);
  EXPECT_EQ(dict_of(257).bits(), 16);
  EXPECT_EQ(dict_of(65536).bits(), 16);
  EXPECT_EQ(dict_of(65537).bits(), 32);
}

TEST(DimDictionaryTest, SparseDomainsFallBackFromDenseIndex) {
  // Values far above the dense-index limit (1 << 20) force the hash-map
  // reverse index; behavior must match the dense path.
  const std::vector<Value> vals = {5'000'000, 123, 9'999'999, 5'000'000,
                                   1u << 21};
  DimDictionary dict;
  dict.Build(vals.data(), vals.size(), /*stride=*/1);
  ASSERT_EQ(dict.size(), 4u);
  for (uint32_t code = 0; code < dict.size(); ++code) {
    EXPECT_EQ(dict.CodeOf(dict.value(code)), code);
  }
  EXPECT_EQ(dict.CodeOf(5'000'001), UINT32_MAX);
  const uint32_t added = dict.CodeOrAdd(7'777'777);
  EXPECT_EQ(added, 4u);
  EXPECT_EQ(dict.CodeOf(7'777'777), added);
}

// --- FactTable encoding lifecycle -------------------------------------

/// Every (row, dim) code must decode to the table's raw value.
void ExpectCodesAligned(const FactTable& fact) {
  const DictEncoding* enc = fact.dict_encoding();
  ASSERT_TRUE(enc != nullptr);
  ASSERT_EQ(enc->dicts.size(), static_cast<size_t>(fact.num_dims()));
  ASSERT_EQ(enc->codes.size(), static_cast<size_t>(fact.num_dims()));
  for (int i = 0; i < fact.num_dims(); ++i) {
    ASSERT_EQ(enc->codes[i].size(), fact.num_rows()) << "dim " << i;
    for (size_t row = 0; row < fact.num_rows(); ++row) {
      ASSERT_EQ(enc->dicts[i].value(enc->codes[i][row]),
                fact.dim_row(row)[i])
          << "dim " << i << " row " << row;
    }
  }
}

TEST(FactTableDictTest, EnsureBuildsLazilyAndMemoizes) {
  SchemaPtr schema = MakeSyntheticSchema(3, 2, 8, 64);
  FactTable fact = MakeUniformFacts(schema, 300, 64, /*seed=*/11);
  EXPECT_EQ(fact.dict_encoding(), nullptr);  // lazy: nothing built yet

  const DictEncoding& enc = fact.EnsureDictEncoding();
  EXPECT_EQ(&enc, fact.dict_encoding());
  EXPECT_EQ(&enc, &fact.EnsureDictEncoding());  // memoized, not rebuilt
  ExpectCodesAligned(fact);
  // Build-time codes are sorted by value, per dictionary.
  for (const DimDictionary& dict : enc.dicts) {
    for (uint32_t code = 0; code + 1 < dict.size(); ++code) {
      EXPECT_LT(dict.value(code), dict.value(code + 1));
    }
  }
}

TEST(FactTableDictTest, AppendsExtendEncodingWithoutRemapping) {
  SchemaPtr schema = MakeSyntheticSchema(3, 2, 8, 64);
  FactTable full = MakeUniformFacts(schema, 400, 64, /*seed=*/12);
  FactTable fact = Slice(full, 0, 250);
  const FactTable delta = Slice(full, 250, 400);

  const DictEncoding& enc = fact.EnsureDictEncoding();
  const std::vector<std::vector<Value>> dict_before = [&] {
    std::vector<std::vector<Value>> v;
    for (const DimDictionary& d : enc.dicts) v.push_back(d.values());
    return v;
  }();
  const std::vector<std::vector<uint32_t>> codes_before = enc.codes;

  CSM_ASSERT_OK(fact.AppendBatch(delta));
  fact.AppendRow(full.dim_row(0), full.measure_row(0));
  ASSERT_EQ(fact.num_rows(), 401u);

  // The encoding followed the appends: row-aligned, and the pre-append
  // prefix — dictionary values AND code columns — is untouched (the
  // code-stability contract delta sessions rely on).
  ExpectCodesAligned(fact);
  const DictEncoding* after = fact.dict_encoding();
  for (size_t i = 0; i < dict_before.size(); ++i) {
    ASSERT_GE(after->dicts[i].size(), dict_before[i].size());
    for (size_t c = 0; c < dict_before[i].size(); ++c) {
      EXPECT_EQ(after->dicts[i].values()[c], dict_before[i][c]);
    }
    for (size_t row = 0; row < codes_before[i].size(); ++row) {
      EXPECT_EQ(after->codes[i][row], codes_before[i][row]);
    }
  }
}

TEST(FactTableDictTest, CloneCarriesPermuteReordersClearInvalidates) {
  SchemaPtr schema = MakeSyntheticSchema(3, 2, 8, 64);
  FactTable fact = MakeUniformFacts(schema, 200, 64, /*seed=*/13);
  fact.EnsureDictEncoding();

  // Clone carries the memoized encoding without a rebuild.
  FactTable copy = fact.Clone();
  ASSERT_TRUE(copy.dict_encoding() != nullptr);
  ExpectCodesAligned(copy);

  // Permute reorders the code columns alongside the data.
  std::vector<uint32_t> reversed(fact.num_rows());
  for (size_t i = 0; i < reversed.size(); ++i) {
    reversed[i] = static_cast<uint32_t>(fact.num_rows() - 1 - i);
  }
  fact.Permute(reversed);
  ExpectCodesAligned(fact);

  // Clear drops the encoding; the next Ensure rebuilds from scratch.
  fact.Clear();
  EXPECT_EQ(fact.dict_encoding(), nullptr);
  fact.AppendRow(copy.dim_row(0), copy.measure_row(0));
  fact.EnsureDictEncoding();
  ExpectCodesAligned(fact);
}

TEST(FactTableDictTest, ConcurrentEnsureSharesOneBuild) {
  SchemaPtr schema = MakeSyntheticSchema(3, 2, 8, 64);
  FactTable fact = MakeUniformFacts(schema, 5000, 64, /*seed=*/14);

  // All racers must see the same completed encoding (double-checked
  // build under the table's mutex); run under TSan in CI.
  constexpr int kThreads = 8;
  std::vector<const DictEncoding*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { seen[t] = &fact.EnsureDictEncoding(); });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], fact.dict_encoding()) << "thread " << t;
  }
  ExpectCodesAligned(fact);
}

// --- Session delta patching with the dictionary path ------------------

TEST(DictSessionTest, DeltaPatchingStaysCorrectWithEncodingOn) {
  SchemaPtr schema = MakeNetworkLogSchema();
  Workflow workflow = ParseOrDie(schema, R"(
    measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
    measure Busy at (t:hour) = agg count(M) from Count where M > 2;
    measure Traffic at (t:hour) = agg sum(bytes) from FACT;
    measure Daily at (t:day) = agg count(*) from FACT;
    measure Share at (t:hour) = match Daily using parentchild agg sum(M);
    measure Frac at (t:hour) = combine(Busy, Share) as Busy / Share;)");
  FactTable full = MakeUniformFacts(schema, 600, 24, /*seed=*/44);
  FactTable fact = Slice(full, 0, 450);
  const FactTable delta = Slice(full, 450, 600);

  SessionOptions options;
  options.cache_capacity = 4;
  options.delta_patching = true;
  options.engine_options.dict_encoding = true;
  CSM_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<QuerySession> session,
      QuerySession::Create(EngineKind::kSortScan, options));

  // Cold run encodes the table; the append must extend the memoized
  // encoding in place (ContentHash re-keys the cache, codes stay valid).
  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK(session->RunPending(fact).status());
  const uint64_t base_hash = fact.ContentHash();

  CSM_ASSERT_OK_AND_ASSIGN(SessionAppendReport report,
                           session->AppendAndRefresh(fact, delta));
  EXPECT_EQ(report.patched_queries, 1u);
  EXPECT_NE(fact.ContentHash(), base_hash);
  if (fact.dict_encoding() != nullptr) ExpectCodesAligned(fact);

  // The patched cache entry matches a fresh dict-on run AND a fresh
  // raw run over the appended table.
  CSM_ASSERT_OK(session->Submit(workflow).status());
  CSM_ASSERT_OK_AND_ASSIGN(std::vector<EvalOutput> outs,
                           session->RunPending(fact));
  EXPECT_EQ(session->last_report().cache_hits, 1u);
  CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                           MakeEngine(EngineKind::kSortScan, {}));
  for (bool dict : {true, false}) {
    EngineOptions fresh_options;
    fresh_options.dict_encoding = dict;
    CSM_ASSERT_OK_AND_ASSIGN(
        EvalOutput fresh,
        testing_util::RunWith(*engine, workflow, fact, fresh_options));
    for (const auto& [name, table] : fresh.tables) {
      const MeasureTable* got = outs[0].FindTable(name);
      ASSERT_TRUE(got != nullptr) << name;
      testing_util::ExpectTablesEqual(*got, table, name);
    }
  }
}

// --- Metamorphic: encoded vs raw across every append split ------------

TEST(DictMetamorphicTest, EncodedMatchesRawAcrossEveryAppendSplit) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  Workflow workflow = ParseOrDie(schema, R"(
    measure Low at (d0:L1, d1:L1) = agg sum(m) from FACT where d0 < 200;
    measure Mid at (d0:L2, d2:L1) =
        agg count(*) from FACT where d0 >= 400 && d0 < 600;
    measure Top at (d0:L1, d3:L2) = agg max(m) from FACT where d0 >= 900;)");
  const size_t n = 700;
  FactTable full = MakeUniformFacts(schema, n, 1000, /*seed=*/21);

  CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                           MakeEngine(EngineKind::kSortScan, {}));
  // Every split point: encode-then-append tables (whose dictionaries
  // gained codes through CodeOrAdd, in arrival order) must stay
  // bit-identical to the raw path. Split 0 appends everything to an
  // empty encoded table; split n appends nothing.
  for (size_t split : {size_t{0}, size_t{1}, n / 2, n - 1, n}) {
    FactTable fact = Slice(full, 0, split);
    fact.EnsureDictEncoding();  // encode BEFORE the append
    CSM_ASSERT_OK(fact.AppendBatch(Slice(full, split, n)));
    ExpectCodesAligned(fact);

    EngineOptions dict_on, dict_off;
    dict_off.dict_encoding = false;
    CSM_ASSERT_OK_AND_ASSIGN(
        EvalOutput encoded,
        testing_util::RunWith(*engine, workflow, fact, dict_on));
    CSM_ASSERT_OK_AND_ASSIGN(
        EvalOutput raw,
        testing_util::RunWith(*engine, workflow, fact, dict_off));
    ExpectBitIdentical(encoded, raw,
                       "split " + std::to_string(split));
  }
}

// --- Conformance: dict on/off across engines x threads x batches ------

TEST(DictConformanceTest, OnOffBitIdenticalAcrossEnginesThreadsBatches) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  Workflow workflow = ParseOrDie(schema, R"(
    measure Count at (d0:L1, d1:L1) = agg count(*) from FACT hidden;
    measure Low at (d0:L1, d1:L1) = agg sum(m) from FACT where d0 < 200;
    measure Busy at (d0:L1) = agg count(M) from Count where M > 1;
    measure Band at (d0:L2, d2:L1) =
        agg sum(m) from FACT where d0 >= 300 && d0 < 420 && m < 80;)");
  FactTable fact = MakeUniformFacts(schema, 3000, 1000, /*seed=*/22);

  for (EngineKind kind : {EngineKind::kSingleScan, EngineKind::kSortScan,
                          EngineKind::kParallel, EngineKind::kMultiPass}) {
    for (int threads : {1, 4}) {
      for (size_t batch : {size_t{7}, size_t{1024}}) {
        EngineOptions options;
        options.parallel_threads = threads;
        options.scan_batch_rows = batch;
        CSM_ASSERT_OK_AND_ASSIGN(std::unique_ptr<Engine> engine,
                                 MakeEngine(kind, options));
        options.dict_encoding = true;
        CSM_ASSERT_OK_AND_ASSIGN(
            EvalOutput encoded,
            testing_util::RunWith(*engine, workflow, fact, options));
        options.dict_encoding = false;
        CSM_ASSERT_OK_AND_ASSIGN(
            EvalOutput raw,
            testing_util::RunWith(*engine, workflow, fact, options));
        ExpectBitIdentical(
            encoded, raw,
            std::string(EngineKindName(kind)) + " t" +
                std::to_string(threads) + " b" + std::to_string(batch));
      }
    }
  }
}

// --- Zone-map batch skipping ------------------------------------------

TEST(ZoneMapSkipTest, SortedSelectiveFilterSkipsMostBatches) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  // 80 batches of 1024 sorted rows; d0 < 50 holds for exactly the first
  // 5% of rows, so at most 5 batches can intersect the predicate's code
  // range — the other 75+ are provably all-false and must be skipped.
  const size_t rows = 80 * 1024;
  FactTable fact = MakeSortedFacts(schema, rows, 1000, /*seed=*/31);
  Workflow workflow = ParseOrDie(schema, R"(
    measure Low at (d0:L1, d1:L1) = agg count(*) from FACT
        where d0 < 50;)");

  EngineOptions options;
  options.scan_batch_rows = 1024;
  TracedRun run = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  const uint64_t total_batches = (rows + 1023) / 1024;
  EXPECT_GT(run.batches_skipped,
            static_cast<uint64_t>(0.9 * total_batches))
      << run.batches_skipped << " of " << total_batches;

  // The skips cost nothing: results stay bit-identical to the raw scan.
  options.dict_encoding = false;
  TracedRun raw = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  EXPECT_EQ(raw.batches_skipped, 0u);  // no zone maps without codes
  ExpectBitIdentical(run.output, raw.output, "sorted selective");

  // The sort/scan engine (which sorts by d0 itself) skips too.
  options.dict_encoding = true;
  TracedRun sorted = RunTraced(EngineKind::kSortScan, workflow, fact,
                               options);
  EXPECT_GT(sorted.batches_skipped, 0u);
  ExpectBitIdentical(sorted.output, raw.output, "sortscan sorted");
}

TEST(ZoneMapSkipTest, PredicateOutsideDomainSkipsEveryBatch) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  const size_t rows = 8 * 1024;
  FactTable fact = MakeUniformFacts(schema, rows, 1000, /*seed=*/32);
  // No d0 value reaches 5000, so every batch is provably all-false —
  // even on UNSORTED input (zone judgment needs no row order).
  Workflow workflow = ParseOrDie(schema, R"(
    measure None at (d0:L1, d1:L1) = agg sum(m) from FACT
        where d0 >= 5000;)");

  EngineOptions options;
  options.scan_batch_rows = 1024;
  TracedRun run = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  EXPECT_EQ(run.batches_skipped, rows / 1024);

  options.dict_encoding = false;
  TracedRun raw = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  ExpectBitIdentical(run.output, raw.output, "all-skip");
  const MeasureTable* none = run.output.FindTable("None");
  ASSERT_TRUE(none != nullptr);
  EXPECT_EQ(none->num_rows(), 0u);
}

TEST(ZoneMapSkipTest, UnskippableFiltersNeverSkip) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  const size_t rows = 8 * 1024;
  FactTable fact = MakeSortedFacts(schema, rows, 1000, /*seed=*/33);
  // A measure-only predicate compiles no dimension atoms (no bitsets to
  // judge zones against) and an always-true dim predicate never yields
  // an all-false batch: both must scan every batch.
  Workflow workflow = ParseOrDie(schema, R"(
    measure Cheap at (d0:L1, d1:L1) = agg count(*) from FACT
        where m < 200;
    measure All at (d0:L2, d2:L1) = agg sum(m) from FACT
        where d0 < 1000;)");

  EngineOptions options;
  options.scan_batch_rows = 1024;
  TracedRun run = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  EXPECT_EQ(run.batches_skipped, 0u);

  options.dict_encoding = false;
  TracedRun raw = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  ExpectBitIdentical(run.output, raw.output, "none-skip");
}

TEST(ZoneMapSkipTest, BatchStraddlingTheBoundaryIsScannedNotSkipped) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  // Two sorted batches; d0 < 250 holds for the first half of batch 0,
  // so batch 0 straddles the boundary (kUnknown -> row filter) and only
  // batch 1 is skipped: the straddling rows must not be lost.
  const size_t rows = 2 * 1024;
  FactTable fact = MakeSortedFacts(schema, rows, 1000, /*seed=*/34);
  Workflow workflow = ParseOrDie(schema, R"(
    measure Half at (d0:L1, d1:L1) = agg count(*) from FACT
        where d0 < 250;)");

  EngineOptions options;
  options.scan_batch_rows = 1024;
  TracedRun run = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  EXPECT_GT(run.batches_skipped, 0u);
  EXPECT_LT(run.batches_skipped, rows / 1024);

  options.dict_encoding = false;
  TracedRun raw = RunTraced(EngineKind::kSingleScan, workflow, fact,
                            options);
  ExpectBitIdentical(run.output, raw.output, "straddle");
  // Sanity on the count itself: exactly the first quarter qualifies.
  double total = 0;
  for (const auto& [key, bits] : BitMap(*run.output.FindTable("Half"))) {
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    total += v;
  }
  EXPECT_EQ(total, static_cast<double>(rows / 4));
}

TEST(ZoneMapSkipTest, EmptyFactTable) {
  SchemaPtr schema = MakeSyntheticSchema(4, 3, 10, 1000);
  FactTable fact(schema);
  Workflow workflow = ParseOrDie(schema, R"(
    measure Low at (d0:L1, d1:L1) = agg count(*) from FACT
        where d0 < 50;)");

  for (EngineKind kind : {EngineKind::kSingleScan, EngineKind::kSortScan}) {
    TracedRun run = RunTraced(kind, workflow, fact, EngineOptions{});
    EXPECT_EQ(run.batches_skipped, 0u);
    const MeasureTable* low = run.output.FindTable("Low");
    ASSERT_TRUE(low != nullptr);
    EXPECT_EQ(low->num_rows(), 0u);
  }
}

}  // namespace
}  // namespace csm
