#include <memory>

#include "algebra/evaluator.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

std::map<std::string, MeasureTable> Reference(const Workflow& workflow,
                                              const FactTable& fact) {
  std::map<std::string, MeasureTable> computed;
  for (const MeasureDef& def : workflow.measures()) {
    auto expr = workflow.ToAlgebra(def.name, /*deep=*/false);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    MeasureEnv env;
    for (const auto& [name, table] : computed) env[name] = &table;
    auto result = EvalAwExpr(**expr, fact, env);
    EXPECT_TRUE(result.ok()) << def.name << ": "
                             << result.status().ToString();
    computed.emplace(def.name, std::move(*result));
  }
  return computed;
}

void ExpectConforms(const Workflow& workflow, const FactTable& fact,
                    const SortKey& sort_key, const std::string& context) {
  EngineOptions options;
  options.sort_key = sort_key;
  SortScanEngine engine;
  auto got = testing_util::RunWith(engine, workflow, fact, options);
  ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
  auto expected = Reference(workflow, fact);
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output) continue;
    ExpectTablesEqual(got->tables.at(def.name), expected.at(def.name),
                      context + "/" + def.name);
  }
}

// The streaming machinery must be correct for EVERY sort order — the
// order only changes memory, never results (Theorem 3). Sweep random
// orders over a workflow mixing every arc kind.
TEST(SortScanOrderSweepTest, AnySortOrderGivesTheSameAnswer) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 3000, 20000, 7);
  auto workflow = Workflow::Parse(schema, R"(
      measure Count at (t:hour, U:net24) = agg count(*) from FACT hidden;
      measure Daily at (t:day) = agg count(*) from FACT;
      measure Busy at (t:hour) = agg count(M) from Count where M > 1;
      measure Avg6 at (t:hour) =
          match Busy using sibling(t in [0, 5]) agg avg(M);
      measure Share at (t:hour) = match Daily using parentchild agg sum(M);
      measure MaxNet at (t:hour) = match Count using childparent agg max(M);
      measure Mix at (t:hour) = combine(Busy, Avg6, Share, MaxNet)
          as Busy * 100 + coalesce(Avg6, 0) + Share / 100 +
             coalesce(MaxNet, -1);)");
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();

  const char* keys[] = {
      "<>",
      "<t:second>",
      "<t:hour>",
      "<t:day>",
      "<t:month>",
      "<t:hour, U:net24>",
      "<U:net24, t:hour>",
      "<U:ip, t:second>",
      "<t:day, U:net24, V:ip>",
      "<P:port, t:hour>",
      "<V:net16, P:range, t:hour, U:net24>",
  };
  for (const char* text : keys) {
    auto key = SortKey::Parse(*schema, text);
    ASSERT_TRUE(key.ok()) << text;
    ExpectConforms(*workflow, fact, *key, text);
  }
}

TEST(SortScanOrderSweepTest, RandomOrdersOnSyntheticSchema) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 2500, 1000, 31);
  auto workflow = Workflow::Parse(schema, R"(
      measure C at (d0:L0, d1:L0) = agg sum(m) from FACT hidden;
      measure R at (d0:L1) = agg sum(M) from C;
      measure W at (d0:L0, d1:L0) = match C using
          sibling(d0 in [-1, 1], d1 in [0, 2]) agg sum(M);
      measure P at (d0:L0, d1:L0) = match R using parentchild agg sum(M);
      measure Z at (d0:L0, d1:L0) = combine(W, P) as W / (P + 1);)");
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();

  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    // Random permutation of dimensions, random levels.
    std::vector<int> dims{0, 1, 2, 3};
    for (size_t i = dims.size(); i > 1; --i) {
      std::swap(dims[i - 1], dims[rng.Uniform(i)]);
    }
    const int prefix = 1 + static_cast<int>(rng.Uniform(4));
    std::vector<SortKeyPart> parts;
    for (int i = 0; i < prefix; ++i) {
      parts.push_back(
          {dims[i], static_cast<int>(rng.Uniform(3))});  // L0..L2
    }
    SortKey key(parts);
    ExpectConforms(*workflow, fact, key,
                   "trial " + std::to_string(trial) + " " +
                       key.ToString(*schema));
  }
}

// The paper's central memory claim (§5.3): with the right sort order the
// engine flushes finalized entries early, so the peak footprint is a
// small fraction of the total number of regions.
TEST(SortScanMemoryTest, EarlyFlushBoundsThePeakFootprint) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 20000, 1000, 13);
  auto workflow = Workflow::Parse(
      *&schema, "measure C at (d0:L0, d1:L0) = agg count(*) from FACT;");
  ASSERT_TRUE(workflow.ok());

  auto run = [&](const char* key_text) {
    EngineOptions options;
    auto key = SortKey::Parse(*schema, key_text);
    EXPECT_TRUE(key.ok());
    options.sort_key = *key;
    SortScanEngine engine;
    auto got = testing_util::RunWith(engine, *workflow, fact, options);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    return std::move(*got);
  };

  EvalOutput sorted = run("<d0:L0, d1:L0>");
  // A sort order on a dimension the measure rolls away gives the stream
  // no usable order: nothing finalizes before the end of the scan.
  EvalOutput useless = run("<d2:L0>");
  const uint64_t total_regions = sorted.tables.at("C").num_rows();
  ASSERT_GT(total_regions, 100u);
  EXPECT_LT(sorted.stats.peak_hash_entries, total_regions / 10)
      << "sorted run should flush early";
  EXPECT_GE(useless.stats.peak_hash_entries, total_regions);
  // Both still produce the same number of result rows.
  EXPECT_EQ(useless.tables.at("C").num_rows(), total_regions);
}

TEST(SortScanMemoryTest, CoarserOrderStillBoundsMemory) {
  // Table 6's worked example: data sorted by <t:month, ...> finalizes
  // day-level entries whenever the coarser prefix advances. Here: sort by
  // d0:L1 (blocks of 10), aggregate at (d0:L0) — at most one block's
  // entries are in flight.
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 20000, 1000, 17);
  auto workflow = Workflow::Parse(
      schema, "measure C at (d0:L0) = agg count(*) from FACT;");
  ASSERT_TRUE(workflow.ok());
  EngineOptions options;
  auto key = SortKey::Parse(*schema, "<d0:L1>");
  ASSERT_TRUE(key.ok());
  options.sort_key = *key;
  SortScanEngine engine;
  auto got = testing_util::RunWith(engine, *workflow, fact, options);
  ASSERT_TRUE(got.ok());
  const uint64_t total = got->tables.at("C").num_rows();
  ASSERT_GT(total, 500u);
  // One L1 block covers 10 L0 values; allow slack for the batch interval.
  EXPECT_LT(got->stats.peak_hash_entries, 64u) << "of " << total;
}

TEST(SortScanMemoryTest, SiblingChainStaysBounded) {
  // Moving-window chains pipeline without materializing whole levels
  // (Fig. 6(b)'s flat-cost claim rests on this).
  auto schema = MakeSyntheticSchema(2, 3, 10, 100000);
  FactTable fact = MakeUniformFacts(schema, 30000, 100000, 23);
  std::string dsl =
      "measure C0 at (d0:L0) = agg count(*) from FACT hidden;\n";
  for (int i = 1; i <= 5; ++i) {
    dsl += "measure C" + std::to_string(i) + " at (d0:L0) = match C" +
           std::to_string(i - 1) +
           " using sibling(d0 in [0, 3]) agg avg(M)" +
           (i < 5 ? " hidden;\n" : ";\n");
  }
  auto workflow = Workflow::Parse(schema, dsl);
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  EngineOptions options;
  auto key = SortKey::Parse(*schema, "<d0:L0>");
  ASSERT_TRUE(key.ok());
  options.sort_key = *key;
  SortScanEngine engine;
  auto got = testing_util::RunWith(engine, *workflow, fact, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const uint64_t total = got->tables.at("C5").num_rows();
  ASSERT_GT(total, 5000u);
  // Each chain stage holds only the window reach plus batch slack.
  EXPECT_LT(got->stats.peak_hash_entries, total / 4);
}

TEST(SortScanBatchTest, PropagationIntervalNeverChangesResults) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 2500, 8000, 63);
  auto workflow = Workflow::Parse(schema, R"(
      measure C at (t:hour, U:net24) = agg count(*) from FACT hidden;
      measure W at (t:hour, U:net24) = match C using
          sibling(t in [-1, 1]) agg sum(M);
      measure R at (t:day) = agg sum(M) from C;)");
  ASSERT_TRUE(workflow.ok());
  auto expected = Reference(*workflow, fact);
  uint64_t prev_peak = 0;
  for (size_t batch : {size_t{1}, size_t{64}, size_t{1024},
                       size_t{100000}}) {
    EngineOptions options;
    options.propagation_batch_records = batch;
    SortScanEngine engine;
    auto got = testing_util::RunWith(engine, *workflow, fact, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    for (const char* name : {"W", "R"}) {
      ExpectTablesEqual(got->tables.at(name), expected.at(name),
                        std::string(name) + " batch " +
                            std::to_string(batch));
    }
    // Larger batches can only hold entries longer, never shorter.
    EXPECT_GE(got->stats.peak_hash_entries + 64, prev_peak)
        << "batch " << batch;
    prev_peak = got->stats.peak_hash_entries;
  }
}

TEST(SortScanFileTest, OutOfCoreRunMatchesInMemoryRun) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 20000, 50000, 93);
  auto workflow = Workflow::Parse(schema, R"(
      measure Count at (t:hour, U:net24) = agg count(*) from FACT hidden;
      measure Busy at (t:hour) = agg count(M) from Count where M > 1;
      measure Avg at (t:hour) = match Busy using sibling(t in [0, 3])
          agg avg(M);)");
  ASSERT_TRUE(workflow.ok());

  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("facts");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());

  SortScanEngine in_memory;
  auto expected = in_memory.Run(*workflow, fact);
  ASSERT_TRUE(expected.ok());

  // Tiny budget: the file is split into many runs and merged lazily.
  for (size_t budget : {size_t{64} << 10, size_t{256} << 20}) {
    ExecContext ctx;
    ctx.options.memory_budget_bytes = budget;
    SortScanEngine streaming;
    auto got = streaming.RunFile(*workflow, path, ctx);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->stats.rows_scanned, fact.num_rows());
    for (const char* name : {"Busy", "Avg"}) {
      ExpectTablesEqual(got->tables.at(name), expected->tables.at(name),
                        std::string(name) + " @budget " +
                            std::to_string(budget));
    }
    if (budget == (size_t{64} << 10)) {
      EXPECT_GT(got->stats.spilled_bytes, 0u);
    }
  }
}

TEST(SortScanFileTest, RejectsMismatchedFile) {
  auto schema2 = MakeSyntheticSchema(2, 3, 10, 1000);
  auto schema3 = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema2, 100, 100, 1);
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewFilePath("facts");
  ASSERT_TRUE(WriteFactTableBinary(fact, path).ok());
  auto workflow = Workflow::Parse(
      schema3, "measure C at (d0:L0) = agg count(*) from FACT;");
  ASSERT_TRUE(workflow.ok());
  SortScanEngine engine;
  EXPECT_FALSE(engine.RunFile(*workflow, path).ok());
  EXPECT_FALSE(engine.RunFile(*workflow, "/nonexistent.bin").ok());
}

TEST(SortScanStatsTest, ReportsSortAndScanPhases) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 5000, 1000, 3);
  auto workflow = Workflow::Parse(
      schema, "measure C at (d0:L0, d1:L0) = agg count(*) from FACT;");
  ASSERT_TRUE(workflow.ok());
  SortScanEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.rows_scanned, 5000u);
  EXPECT_GT(got->stats.total_seconds, 0.0);
  EXPECT_FALSE(got->stats.sort_key.empty());
  EXPECT_EQ(got->stats.passes, 1);
  // Default key covers the dims the query uses.
  EXPECT_NE(got->stats.sort_key.find("d0"), std::string::npos);
}

TEST(SortScanDefaultKeyTest, UsesFinestQueriedLevels) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, R"(
      measure A at (t:day, U:net16) = agg count(*) from FACT;
      measure B at (t:hour) = agg count(*) from FACT;)");
  ASSERT_TRUE(workflow.ok());
  SortKey key = SortScanEngine::DefaultSortKey(*workflow);
  // t appears at hour (finest of day/hour); U at net16; V and P unused.
  EXPECT_EQ(key.ToString(*schema), "<t:hour, U:net16>");
}

TEST(SortScanFilterTest, WhereClausesApplyPerArc) {
  // The same source measure feeds two consumers with different filters.
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 4000, 1000, 41);
  auto workflow = Workflow::Parse(schema, R"(
      measure C at (d0:L0) = agg count(*) from FACT hidden;
      measure Big at (d0:L1) = agg count(M) from C where M >= 4;
      measure Small at (d0:L1) = agg count(M) from C where M < 4;
      measure All at (d0:L1) = agg count(M) from C;
      measure Check at (d0:L1) = combine(All, Big, Small)
          as All - Big - Small;)");
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  SortScanEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok());
  const MeasureTable& check = got->tables.at("Check");
  for (size_t row = 0; row < check.num_rows(); ++row) {
    EXPECT_DOUBLE_EQ(check.value(row), 0.0);
  }
}

}  // namespace
}  // namespace csm
