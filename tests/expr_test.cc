#include <cmath>
#include <limits>

#include "expr/scalar_expr.h"
#include "gtest/gtest.h"

namespace csm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double EvalWith(const std::string& text,
                const std::vector<std::string>& vars,
                const std::vector<double>& slots) {
  auto parsed = ScalarExpr::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto bound = BoundExpr::Bind(**parsed, vars);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return bound->Eval(slots.data());
}

double EvalConst(const std::string& text) { return EvalWith(text, {}, {}); }

TEST(ScalarExprTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(EvalConst("1 + 2 * 3"), 7);
  EXPECT_DOUBLE_EQ(EvalConst("(1 + 2) * 3"), 9);
  EXPECT_DOUBLE_EQ(EvalConst("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(EvalConst("10 % 3"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("-3 + 5"), 2);
  EXPECT_DOUBLE_EQ(EvalConst("2 - -3"), 5);
  EXPECT_DOUBLE_EQ(EvalConst("1.5e2"), 150);
}

TEST(ScalarExprTest, ComparisonsAndLogic) {
  EXPECT_DOUBLE_EQ(EvalConst("3 < 4"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("3 >= 4"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("3 == 3 && 2 != 1"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("0 || 2 > 1"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("!(1 < 2)"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("1 < 2 and 2 < 3"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("0 or 0"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("not 0"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("3 <> 4"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("2 = 2"), 1);
}

TEST(ScalarExprTest, Functions) {
  EXPECT_DOUBLE_EQ(EvalConst("abs(-5)"), 5);
  EXPECT_DOUBLE_EQ(EvalConst("sqrt(16)"), 4);
  EXPECT_DOUBLE_EQ(EvalConst("min(3, 7)"), 3);
  EXPECT_DOUBLE_EQ(EvalConst("max(3, 7)"), 7);
  EXPECT_DOUBLE_EQ(EvalConst("pow(2, 10)"), 1024);
  EXPECT_DOUBLE_EQ(EvalConst("floor(2.7)"), 2);
  EXPECT_DOUBLE_EQ(EvalConst("ceil(2.1)"), 3);
  EXPECT_DOUBLE_EQ(EvalConst("if(1 < 2, 10, 20)"), 10);
  EXPECT_DOUBLE_EQ(EvalConst("if(1 > 2, 10, 20)"), 20);
  EXPECT_DOUBLE_EQ(EvalConst("isnull(null)"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("isnull(3)"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("coalesce(null, 9)"), 9);
  EXPECT_DOUBLE_EQ(EvalConst("coalesce(4, 9)"), 4);
}

TEST(ScalarExprTest, NullSemantics) {
  EXPECT_TRUE(std::isnan(EvalConst("null + 1")));
  // Comparisons with NULL are false.
  EXPECT_DOUBLE_EQ(EvalConst("null < 1"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("null == null"), 0);
  // Logic treats NULL as false.
  EXPECT_DOUBLE_EQ(EvalConst("null && 1"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("null || 1"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("!null"), 1);
}

TEST(ScalarExprTest, Variables) {
  EXPECT_DOUBLE_EQ(EvalWith("M * 2 + t", {"t", "M"}, {10, 3}), 16);
  // Case-insensitive.
  EXPECT_DOUBLE_EQ(EvalWith("m + 1", {"M"}, {5}), 6);
  // "X.M" matches a slot named "X".
  EXPECT_DOUBLE_EQ(EvalWith("Count.M / 2", {"Count"}, {8}), 4);
}

TEST(ScalarExprTest, BindRejectsUnknownVariable) {
  auto parsed = ScalarExpr::Parse("mystery + 1");
  ASSERT_TRUE(parsed.ok());
  auto bound = BoundExpr::Bind(**parsed, {"M"});
  EXPECT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsInvalidArgument());
}

TEST(ScalarExprTest, ParseErrors) {
  EXPECT_FALSE(ScalarExpr::Parse("1 +").ok());
  EXPECT_FALSE(ScalarExpr::Parse("(1").ok());
  EXPECT_FALSE(ScalarExpr::Parse("1 2").ok());
  EXPECT_FALSE(ScalarExpr::Parse("foo(1)").ok());
  EXPECT_FALSE(ScalarExpr::Parse("@").ok());
  EXPECT_FALSE(ScalarExpr::Parse("").ok());
}

TEST(ScalarExprTest, ArityCheckedAtBind) {
  for (const char* text : {"min(1)", "if(1, 2)", "abs(1, 2)"}) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(BoundExpr::Bind(**parsed, {}).ok()) << text;
  }
}

TEST(ScalarExprTest, CollectVars) {
  auto parsed = ScalarExpr::Parse("a + B * f.M + min(a, c)");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> vars;
  (*parsed)->CollectVars(&vars);
  ASSERT_EQ(vars.size(), 4u);  // a, B, f.M, c (deduped case-insensitively)
}

TEST(ScalarExprTest, ToStringIsReparsable) {
  const char* exprs[] = {"1 + 2 * x", "min(a, b) / 2",
                         "if(m > 5, m, 0)", "!(a < b) || c == 1"};
  for (const char* text : exprs) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok());
    auto reparsed = ScalarExpr::Parse((*parsed)->ToString());
    ASSERT_TRUE(reparsed.ok()) << (*parsed)->ToString();
    // Evaluate both with the same bindings and compare.
    std::vector<std::string> vars{"x", "a", "b", "c", "m"};
    std::vector<double> slots{2, 3, 1, 1, 7};
    auto b1 = BoundExpr::Bind(**parsed, vars);
    auto b2 = BoundExpr::Bind(**reparsed, vars);
    ASSERT_TRUE(b1.ok() && b2.ok());
    EXPECT_DOUBLE_EQ(b1->Eval(slots.data()), b2->Eval(slots.data()))
        << text;
  }
}

TEST(ScalarExprTest, DeepNestingDoesNotOverflow) {
  // Exercises the defensive stack growth in BoundExpr::Eval.
  std::string text = "1";
  for (int i = 0; i < 60; ++i) text = "(" + text + " + 1)";
  EXPECT_DOUBLE_EQ(EvalConst(text), 61);
  std::string calls = "0";
  for (int i = 0; i < 30; ++i) calls = "max(" + calls + ", 1)";
  EXPECT_DOUBLE_EQ(EvalConst(calls), 1);
}

TEST(ScalarExprTest, ProgrammaticBuilders) {
  auto expr = ScalarExpr::Binary(ScalarExpr::Op::kAdd,
                                 ScalarExpr::Var("x"),
                                 ScalarExpr::Const(4));
  auto bound = BoundExpr::Bind(*expr, {"x"});
  ASSERT_TRUE(bound.ok());
  double slot = 6;
  EXPECT_DOUBLE_EQ(bound->Eval(&slot), 10);
}

}  // namespace
}  // namespace csm
