#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "expr/predicate_kernel.h"
#include "expr/scalar_expr.h"
#include "gtest/gtest.h"

namespace csm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double EvalWith(const std::string& text,
                const std::vector<std::string>& vars,
                const std::vector<double>& slots) {
  auto parsed = ScalarExpr::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto bound = BoundExpr::Bind(**parsed, vars);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return bound->Eval(slots.data());
}

double EvalConst(const std::string& text) { return EvalWith(text, {}, {}); }

TEST(ScalarExprTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(EvalConst("1 + 2 * 3"), 7);
  EXPECT_DOUBLE_EQ(EvalConst("(1 + 2) * 3"), 9);
  EXPECT_DOUBLE_EQ(EvalConst("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(EvalConst("10 % 3"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("-3 + 5"), 2);
  EXPECT_DOUBLE_EQ(EvalConst("2 - -3"), 5);
  EXPECT_DOUBLE_EQ(EvalConst("1.5e2"), 150);
}

TEST(ScalarExprTest, ComparisonsAndLogic) {
  EXPECT_DOUBLE_EQ(EvalConst("3 < 4"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("3 >= 4"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("3 == 3 && 2 != 1"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("0 || 2 > 1"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("!(1 < 2)"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("1 < 2 and 2 < 3"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("0 or 0"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("not 0"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("3 <> 4"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("2 = 2"), 1);
}

TEST(ScalarExprTest, Functions) {
  EXPECT_DOUBLE_EQ(EvalConst("abs(-5)"), 5);
  EXPECT_DOUBLE_EQ(EvalConst("sqrt(16)"), 4);
  EXPECT_DOUBLE_EQ(EvalConst("min(3, 7)"), 3);
  EXPECT_DOUBLE_EQ(EvalConst("max(3, 7)"), 7);
  EXPECT_DOUBLE_EQ(EvalConst("pow(2, 10)"), 1024);
  EXPECT_DOUBLE_EQ(EvalConst("floor(2.7)"), 2);
  EXPECT_DOUBLE_EQ(EvalConst("ceil(2.1)"), 3);
  EXPECT_DOUBLE_EQ(EvalConst("if(1 < 2, 10, 20)"), 10);
  EXPECT_DOUBLE_EQ(EvalConst("if(1 > 2, 10, 20)"), 20);
  EXPECT_DOUBLE_EQ(EvalConst("isnull(null)"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("isnull(3)"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("coalesce(null, 9)"), 9);
  EXPECT_DOUBLE_EQ(EvalConst("coalesce(4, 9)"), 4);
}

TEST(ScalarExprTest, NullSemantics) {
  EXPECT_TRUE(std::isnan(EvalConst("null + 1")));
  // Comparisons with NULL are false.
  EXPECT_DOUBLE_EQ(EvalConst("null < 1"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("null == null"), 0);
  // Logic treats NULL as false.
  EXPECT_DOUBLE_EQ(EvalConst("null && 1"), 0);
  EXPECT_DOUBLE_EQ(EvalConst("null || 1"), 1);
  EXPECT_DOUBLE_EQ(EvalConst("!null"), 1);
}

TEST(ScalarExprTest, Variables) {
  EXPECT_DOUBLE_EQ(EvalWith("M * 2 + t", {"t", "M"}, {10, 3}), 16);
  // Case-insensitive.
  EXPECT_DOUBLE_EQ(EvalWith("m + 1", {"M"}, {5}), 6);
  // "X.M" matches a slot named "X".
  EXPECT_DOUBLE_EQ(EvalWith("Count.M / 2", {"Count"}, {8}), 4);
}

TEST(ScalarExprTest, BindRejectsUnknownVariable) {
  auto parsed = ScalarExpr::Parse("mystery + 1");
  ASSERT_TRUE(parsed.ok());
  auto bound = BoundExpr::Bind(**parsed, {"M"});
  EXPECT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsInvalidArgument());
}

TEST(ScalarExprTest, ParseErrors) {
  EXPECT_FALSE(ScalarExpr::Parse("1 +").ok());
  EXPECT_FALSE(ScalarExpr::Parse("(1").ok());
  EXPECT_FALSE(ScalarExpr::Parse("1 2").ok());
  EXPECT_FALSE(ScalarExpr::Parse("foo(1)").ok());
  EXPECT_FALSE(ScalarExpr::Parse("@").ok());
  EXPECT_FALSE(ScalarExpr::Parse("").ok());
}

TEST(ScalarExprTest, ArityCheckedAtBind) {
  for (const char* text : {"min(1)", "if(1, 2)", "abs(1, 2)"}) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(BoundExpr::Bind(**parsed, {}).ok()) << text;
  }
}

TEST(ScalarExprTest, CollectVars) {
  auto parsed = ScalarExpr::Parse("a + B * f.M + min(a, c)");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> vars;
  (*parsed)->CollectVars(&vars);
  ASSERT_EQ(vars.size(), 4u);  // a, B, f.M, c (deduped case-insensitively)
}

TEST(ScalarExprTest, ToStringIsReparsable) {
  const char* exprs[] = {"1 + 2 * x", "min(a, b) / 2",
                         "if(m > 5, m, 0)", "!(a < b) || c == 1"};
  for (const char* text : exprs) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok());
    auto reparsed = ScalarExpr::Parse((*parsed)->ToString());
    ASSERT_TRUE(reparsed.ok()) << (*parsed)->ToString();
    // Evaluate both with the same bindings and compare.
    std::vector<std::string> vars{"x", "a", "b", "c", "m"};
    std::vector<double> slots{2, 3, 1, 1, 7};
    auto b1 = BoundExpr::Bind(**parsed, vars);
    auto b2 = BoundExpr::Bind(**reparsed, vars);
    ASSERT_TRUE(b1.ok() && b2.ok());
    EXPECT_DOUBLE_EQ(b1->Eval(slots.data()), b2->Eval(slots.data()))
        << text;
  }
}

TEST(ScalarExprTest, DeepNestingDoesNotOverflow) {
  // Exercises the defensive stack growth in BoundExpr::Eval.
  std::string text = "1";
  for (int i = 0; i < 60; ++i) text = "(" + text + " + 1)";
  EXPECT_DOUBLE_EQ(EvalConst(text), 61);
  std::string calls = "0";
  for (int i = 0; i < 30; ++i) calls = "max(" + calls + ", 1)";
  EXPECT_DOUBLE_EQ(EvalConst(calls), 1);
}

TEST(ScalarExprTest, ProgrammaticBuilders) {
  auto expr = ScalarExpr::Binary(ScalarExpr::Op::kAdd,
                                 ScalarExpr::Var("x"),
                                 ScalarExpr::Const(4));
  auto bound = BoundExpr::Bind(*expr, {"x"});
  ASSERT_TRUE(bound.ok());
  double slot = 6;
  EXPECT_DOUBLE_EQ(bound->Eval(&slot), 10);
}

// ---- Predicate kernel: the columnar compiler must agree with the
// per-row interpreter on every row, including NaN and zero edge cases —
// the vectorized scan's correctness rests on this equivalence.

// Two dims (d0, d1) and two measures (m0, m1), the fact-row slot layout.
const std::vector<std::string> kKernelVars = {"d0", "d1", "m0", "m1"};
constexpr int kKernelDims = 2;

struct KernelColumns {
  std::vector<uint64_t> d0, d1;
  std::vector<double> m0, m1;
};

KernelColumns MakeKernelColumns() {
  KernelColumns c;
  // Deterministic mix of small ints, zeros, negatives, and NaNs.
  for (uint64_t i = 0; i < 300; ++i) {
    c.d0.push_back(i % 7);
    c.d1.push_back((i * 13) % 5);
    c.m0.push_back(i % 11 == 0 ? kNaN : static_cast<double>(i % 9) - 4.0);
    c.m1.push_back(i % 13 == 0 ? 0.0 : 0.5 * static_cast<double>(i % 6));
  }
  return c;
}

// Selection vector the interpreter would produce for `text`.
std::vector<uint32_t> InterpreterSelect(const std::string& text,
                                        const KernelColumns& c) {
  auto parsed = ScalarExpr::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto bound = BoundExpr::Bind(**parsed, kKernelVars);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  std::vector<uint32_t> sel;
  double slots[4];
  for (size_t r = 0; r < c.d0.size(); ++r) {
    slots[0] = static_cast<double>(c.d0[r]);
    slots[1] = static_cast<double>(c.d1[r]);
    slots[2] = c.m0[r];
    slots[3] = c.m1[r];
    if (bound->EvalBool(slots)) sel.push_back(static_cast<uint32_t>(r));
  }
  return sel;
}

TEST(PredicateKernelTest, MatchesInterpreterOnSupportedShapes) {
  const KernelColumns c = MakeKernelColumns();
  const uint64_t* dims[2] = {c.d0.data(), c.d1.data()};
  const double* measures[2] = {c.m0.data(), c.m1.data()};
  const char* shapes[] = {
      "m0 > 1",          "m0 >= 1.5",       "m0 < 0",
      "m0 <= -1",        "m0 == 2",         "m0 != m0",  // NaN rows
      "d0 > 3",          "d1 == 2",         "d0 <= d1",
      "m0 < m1",         "5 > d0",          // const-lhs flip
      "m0",              "d0",              "m1",  // bare truthiness
      "!(m0 < 1)",       "!m1",             "!!d0",
      "m0 > 0 && d0 < 5", "m0 < 0 || m1 > 2",
      "d0 == 1 || d0 == 4 || d1 != 0",
      "(m0 >= -2 && m0 <= 2) && !(d1 == 3)",
      "1 < 2 && m0 > 0",  // const-const folding
  };
  for (const char* text : shapes) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto kernel =
        PredicateKernel::Compile(**parsed, kKernelVars, kKernelDims);
    ASSERT_TRUE(kernel.has_value()) << "did not compile: " << text;
    std::vector<uint32_t> sel(c.d0.size());
    const size_t n = kernel->Select(dims, measures, c.d0.size(),
                                    sel.data());
    sel.resize(n);
    EXPECT_EQ(sel, InterpreterSelect(text, c)) << text;
  }
}

TEST(PredicateKernelTest, FallsBackOnUnsupportedShapes) {
  const char* shapes[] = {
      "m0 + 1 > 2",        // arithmetic
      "-m0 < 1",           // unary minus
      "abs(m0) > 1",       // function call
      "min(m0, m1)",       // function call as truthiness
      "m0 > 1 && m1 + m0 < 3",  // unsupported subtree poisons the AND
  };
  for (const char* text : shapes) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(
        PredicateKernel::Compile(**parsed, kKernelVars, kKernelDims)
            .has_value())
        << "unexpectedly compiled: " << text;
  }
}

TEST(PredicateKernelTest, NaNSemantics) {
  // One measure column: [NaN, 1, 0].
  std::vector<double> m0 = {kNaN, 1.0, 0.0};
  const double* measures[1] = {m0.data()};
  auto check = [&](const char* text, std::vector<uint32_t> want) {
    auto parsed = ScalarExpr::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto kernel = PredicateKernel::Compile(**parsed, {"m0"}, 0);
    ASSERT_TRUE(kernel.has_value()) << text;
    std::vector<uint32_t> sel(m0.size());
    sel.resize(kernel->Select(nullptr, measures, m0.size(), sel.data()));
    EXPECT_EQ(sel, want) << text;
  };
  check("m0 < 5", {1, 2});    // NaN comparisons are false
  check("!(m0 < 5)", {0});    // ...so their negation selects the NaN
  check("m0 != m0", {0});     // != is the one NaN-true comparison
  check("m0", {1});           // truthiness: NaN and 0.0 are both false
  check("!m0", {0, 2});       // Not(NaN) = 1.0, like Not(0)
}

TEST(PredicateKernelTest, EmptyInputSelectsNothing) {
  auto parsed = ScalarExpr::Parse("m0 > 1");
  ASSERT_TRUE(parsed.ok());
  auto kernel = PredicateKernel::Compile(**parsed, {"m0"}, 0);
  ASSERT_TRUE(kernel.has_value());
  EXPECT_EQ(kernel->Select(nullptr, nullptr, 0, nullptr), 0u);
}

}  // namespace
}  // namespace csm
