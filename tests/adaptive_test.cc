#include "data/netlog.h"
#include "data/queries.h"
#include "exec/adaptive.h"
#include "exec/single_scan.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

TEST(AdaptiveEngineTest, PicksSingleScanForSmallState) {
  // The Fig. 7(a) situation: tiny intermediate state — skip the sort.
  auto schema = MakeNetworkLogSchema(/*time_cardinality=*/1e5);
  auto workflow = MakeEscalationQuery(schema);
  ASSERT_TRUE(workflow.ok());
  // Default 256 MB budget.
  auto choice = AdaptiveEngine::Decide(*workflow, EngineOptions{});
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(*choice, AdaptiveEngine::Choice::kSingleScan);
}

TEST(AdaptiveEngineTest, PicksSortScanForLargeStreamableState) {
  // Large region sets (hour x /24 x source) but a good order exists.
  auto schema = MakeNetworkLogSchema(/*time_cardinality=*/1e8,
                                     /*ip_cardinality=*/1e9);
  auto workflow = MakeMultiReconQuery(schema);
  ASSERT_TRUE(workflow.ok());
  EngineOptions options;
  options.memory_budget_bytes = 8 << 20;
  auto choice = AdaptiveEngine::Decide(*workflow, options);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(*choice, AdaptiveEngine::Choice::kSortScan);
}

TEST(AdaptiveEngineTest, PicksMultiPassWhenNoOrderFits) {
  // Two huge measures on disjoint dimensions and a budget neither fits:
  // no single order helps -> multiple passes.
  auto schema = MakeSyntheticSchema(4, 3, 10, 1e6);
  auto workflow = Workflow::Parse(schema, R"(
      measure A at (d0:L0, d1:L0) = agg count(*) from FACT;
      measure B at (d2:L0, d3:L0) = agg count(*) from FACT;)");
  ASSERT_TRUE(workflow.ok());
  EngineOptions options;
  options.memory_budget_bytes = 12 << 20;  // ~128k entries
  auto choice = AdaptiveEngine::Decide(*workflow, options);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(*choice, AdaptiveEngine::Choice::kMultiPass);
}

TEST(AdaptiveEngineTest, ResultsMatchSingleScanReference) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 3000, 5000, 17);
  for (const char* dsl :
       {"measure C at (t:hour, U:ip) = agg count(*) from FACT;",
        R"(measure D at (t:day) = agg count(*) from FACT;
           measure H at (t:hour) = agg count(*) from FACT;
           measure S at (t:hour) = match D using parentchild agg sum(M);
           measure F at (t:hour) = combine(H, S) as H / S;)"}) {
    auto workflow = Workflow::Parse(schema, dsl);
    ASSERT_TRUE(workflow.ok());
    SingleScanEngine reference;
    AdaptiveEngine adaptive;
    auto expect = reference.Run(*workflow, fact);
    auto got = adaptive.Run(*workflow, fact);
    ASSERT_TRUE(expect.ok() && got.ok());
    ASSERT_EQ(expect->tables.size(), got->tables.size());
    for (auto& [name, table] : expect->tables) {
      ExpectTablesEqual(table, got->tables.at(name), name);
    }
    // The chosen engine is reported.
    EXPECT_EQ(got->stats.sort_key.front(), '[');
  }
}

TEST(AdaptiveEngineTest, HonorsExplicitSortKey) {
  auto schema = MakeNetworkLogSchema(1e8, 1e9);
  auto workflow = MakeMultiReconQuery(schema);
  ASSERT_TRUE(workflow.ok());
  EngineOptions options;
  options.memory_budget_bytes = 8 << 20;
  auto key = SortKey::Parse(*schema, "<t:hour, V:net24, U:ip>");
  ASSERT_TRUE(key.ok());
  options.sort_key = *key;
  auto choice = AdaptiveEngine::Decide(*workflow, options);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(*choice, AdaptiveEngine::Choice::kSortScan);
}

}  // namespace
}  // namespace csm
