#include <set>

#include "data/netlog.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "relational/relational_engine.h"
#include "test_util.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;

TEST(SyntheticDataTest, DeterministicAndInRange) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  SyntheticDataOptions options;
  options.rows = 5000;
  options.base_cardinality = 1000;
  options.seed = 5;
  FactTable a = GenerateSyntheticFacts(schema, options);
  FactTable b = GenerateSyntheticFacts(schema, options);
  ASSERT_EQ(a.num_rows(), 5000u);
  for (size_t row = 0; row < a.num_rows(); ++row) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(a.dim_row(row)[i], b.dim_row(row)[i]);
      EXPECT_LT(a.dim_row(row)[i], 1000u);
    }
  }
  options.seed = 6;
  FactTable c = GenerateSyntheticFacts(schema, options);
  bool any_diff = false;
  for (size_t row = 0; row < 100; ++row) {
    if (a.dim_row(row)[0] != c.dim_row(row)[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

class NetLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakeNetworkLogSchema();
    options_.rows = 60000;
    options_.seed = 11;
    options_.duration_seconds = 2 * 24 * 3600;
    fact_ = std::make_unique<FactTable>(GenerateNetLog(schema_, options_));
  }
  SchemaPtr schema_;
  NetLogOptions options_;
  std::unique_ptr<FactTable> fact_;
};

TEST_F(NetLogTest, ShapeAndDeterminism) {
  EXPECT_NEAR(static_cast<double>(fact_->num_rows()),
              static_cast<double>(options_.rows), options_.rows * 0.2);
  FactTable again = GenerateNetLog(schema_, options_);
  ASSERT_EQ(again.num_rows(), fact_->num_rows());
  for (size_t row = 0; row < 200; ++row) {
    EXPECT_EQ(again.dim_row(row)[1], fact_->dim_row(row)[1]);
  }
  // Timestamps within the window; targets inside the monitored /16.
  for (size_t row = 0; row < fact_->num_rows(); ++row) {
    EXPECT_LT(fact_->dim_row(row)[0], options_.duration_seconds);
    EXPECT_EQ(fact_->dim_row(row)[2] >> 16,
              static_cast<Value>(options_.monitored_net16));
    EXPECT_LT(fact_->dim_row(row)[3], 65536u);
  }
}

TEST_F(NetLogTest, SourcesAreHeavyTailed) {
  std::map<Value, size_t> by_source;
  for (size_t row = 0; row < fact_->num_rows(); ++row) {
    by_source[fact_->dim_row(row)[1]]++;
  }
  std::vector<size_t> counts;
  for (auto& [src, n] : by_source) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  size_t top_decile = 0, total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i < counts.size() / 10) top_decile += counts[i];
    total += counts[i];
  }
  // Zipf 0.9: the top 10% of sources carry well over half the traffic.
  EXPECT_GT(top_decile * 2, total);
}

TEST_F(NetLogTest, EscalationQueryFindsInjectedEvents) {
  auto workflow = MakeEscalationQuery(schema_);
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  SingleScanEngine engine;
  auto got = engine.Run(*workflow, *fact_);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const MeasureTable& alerts = got->tables.at("Alerts");
  double total_alerts = 0;
  for (size_t row = 0; row < alerts.num_rows(); ++row) {
    total_alerts += alerts.value(row);
  }
  // Each escalation event doubles volume hour over hour for several
  // hours; at least some ramp hours must trip the 3x growth detector.
  EXPECT_GE(total_alerts, options_.escalation_events);
}

TEST_F(NetLogTest, MultiReconQueryFindsInjectedBursts) {
  auto workflow = MakeMultiReconQuery(schema_);
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  SingleScanEngine engine;
  auto got = engine.Run(*workflow, *fact_);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const MeasureTable& recon = got->tables.at("Recon");
  double flagged = 0;
  for (size_t row = 0; row < recon.num_rows(); ++row) {
    if (recon.value(row) == 1.0) flagged += 1;
  }
  EXPECT_GE(flagged, options_.recon_events);
}

TEST_F(NetLogTest, CombinedQueryAgreesAcrossEngines) {
  auto workflow = MakeCombinedNetworkQuery(schema_);
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  SingleScanEngine single;
  SortScanEngine sortscan;
  auto a = single.Run(*workflow, *fact_);
  auto b = sortscan.Run(*workflow, *fact_);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->tables.size(), b->tables.size());
  for (auto& [name, table] : a->tables) {
    ExpectTablesEqual(table, b->tables.at(name), name);
  }
}

TEST(QueriesTest, Q1BuildsForAllChildCounts) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  for (int n = 1; n <= 7; ++n) {
    auto workflow = MakeQ1ChildParent(schema, n);
    ASSERT_TRUE(workflow.ok()) << "n=" << n << ": "
                               << workflow.status().ToString();
    // n children + n roll-ups + 1 combine.
    EXPECT_EQ(workflow->measures().size(), static_cast<size_t>(2 * n + 1));
  }
  EXPECT_FALSE(MakeQ1ChildParent(schema, 0).ok());
  EXPECT_FALSE(MakeQ1ChildParent(schema, 8).ok());
}

TEST(QueriesTest, Q2ChainLengthMatches) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  for (int chain : {1, 2, 7}) {
    auto workflow = MakeQ2SiblingChain(schema, chain);
    ASSERT_TRUE(workflow.ok());
    EXPECT_EQ(workflow->measures().size(),
              static_cast<size_t>(chain + 1));
    // Only the last chain link is an output.
    int outputs = 0;
    for (const MeasureDef& def : workflow->measures()) {
      if (def.is_output) ++outputs;
    }
    EXPECT_EQ(outputs, 1);
  }
}

TEST(QueriesTest, Q1AgreesAcrossEngines) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  SyntheticDataOptions options;
  options.rows = 8000;
  options.base_cardinality = 1000;
  FactTable fact = GenerateSyntheticFacts(schema, options);
  auto workflow = MakeQ1ChildParent(schema, 7);
  ASSERT_TRUE(workflow.ok());
  SortScanEngine sortscan;
  RelationalEngine relational;
  auto a = sortscan.Run(*workflow, fact);
  auto b = relational.Run(*workflow, fact);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectTablesEqual(a->tables.at("Composite"), b->tables.at("Composite"),
                    "Q1");
}

TEST(QueriesTest, Q2AgreesAcrossEngines) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  SyntheticDataOptions options;
  options.rows = 8000;
  FactTable fact = GenerateSyntheticFacts(schema, options);
  auto workflow = MakeQ2SiblingChain(schema, 4);
  ASSERT_TRUE(workflow.ok());
  SortScanEngine sortscan;
  RelationalEngine relational;
  auto a = sortscan.Run(*workflow, fact);
  auto b = relational.Run(*workflow, fact);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectTablesEqual(a->tables.at("C4"), b->tables.at("C4"), "Q2");
}

TEST(QueriesTest, RunningExampleProducesAllFiveMeasures) {
  auto schema = MakeNetworkLogSchema();
  auto workflow = MakeRunningExampleQuery(schema);
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  NetLogOptions options;
  options.rows = 20000;
  FactTable fact = GenerateNetLog(schema, options);
  SortScanEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->tables.count("SCount"));
  EXPECT_TRUE(got->tables.count("STraffic"));
  EXPECT_TRUE(got->tables.count("AvgCount"));
  EXPECT_TRUE(got->tables.count("Ratio"));
}

}  // namespace
}  // namespace csm
