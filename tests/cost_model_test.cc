#include "data/queries.h"
#include "gtest/gtest.h"
#include "opt/cost_model.h"
#include "opt/sort_order.h"
#include "test_util.h"

namespace csm {
namespace {

TEST(CostModelTest, RelationalGrowsWithMeasureCount) {
  // The Fig. 6(c) shape, predicted by the model: each extra child measure
  // adds a full scan+sort to the relational plan but only hash updates to
  // the sort/scan plan.
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  const double rows = 1e6;
  double prev_db = 0, prev_ss = 0;
  double db_growth = 0, ss_growth = 0;
  for (int children : {2, 6}) {
    auto workflow = MakeQ1ChildParent(schema, children);
    ASSERT_TRUE(workflow.ok());
    auto key = BruteForceSortKey(*workflow);
    ASSERT_TRUE(key.ok());
    auto db = EstimateRelationalCost(*workflow, rows);
    auto ss = EstimateSortScanCost(*workflow, *key, rows);
    ASSERT_TRUE(db.ok() && ss.ok());
    if (prev_db > 0) {
      db_growth = db->total() / prev_db;
      ss_growth = ss->total() / prev_ss;
    }
    prev_db = db->total();
    prev_ss = ss->total();
  }
  EXPECT_GT(db_growth, 1.8);  // ~linear in measures
  // Sort/scan also grows (one more hash table fed per record) but more
  // slowly, and from a far lower base. The measured Fig. 6(c) growth on
  // this machine was 2.3x for sort/scan vs 3.2x for the baseline.
  EXPECT_LT(ss_growth, db_growth);
  EXPECT_LT(prev_ss, prev_db / 2);
}

TEST(CostModelTest, SortScanBeatsRelationalOnMultiMeasureQueries) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto workflow = MakeQ1ChildParent(schema, 7);
  ASSERT_TRUE(workflow.ok());
  auto key = BruteForceSortKey(*workflow);
  ASSERT_TRUE(key.ok());
  const double rows = 1e6;
  auto db = EstimateRelationalCost(*workflow, rows);
  auto ss = EstimateSortScanCost(*workflow, *key, rows);
  ASSERT_TRUE(db.ok() && ss.ok());
  EXPECT_GT(db->total(), 2 * ss->total());
  EXPECT_GT(db->sort_cost, ss->sort_cost * 5);  // 14 sorts vs 1
}

TEST(CostModelTest, SingleScanSkipsTheSortButPaysForState) {
  // Fig. 7(a)'s prediction: with small state, single-scan < sort/scan
  // (the sort is pure overhead).
  auto schema = MakeNetworkLogSchema(/*time_cardinality=*/1e5);
  auto workflow = MakeEscalationQuery(schema);
  ASSERT_TRUE(workflow.ok());
  auto key = BruteForceSortKey(*workflow);
  ASSERT_TRUE(key.ok());
  const double rows = 1e6;
  auto single = EstimateSingleScanCost(*workflow, rows);
  auto sorted = EstimateSortScanCost(*workflow, *key, rows);
  ASSERT_TRUE(single.ok() && sorted.ok());
  EXPECT_EQ(single->sort_cost, 0);
  EXPECT_LT(single->total(), sorted->total());

  // Fig. 7(b)'s prediction: with huge region sets, the cache penalty
  // erases single-scan's advantage.
  auto big_schema = MakeNetworkLogSchema(1e8, 1e9);
  auto recon = MakeMultiReconQuery(big_schema);
  ASSERT_TRUE(recon.ok());
  auto recon_key = BruteForceSortKey(*recon);
  ASSERT_TRUE(recon_key.ok());
  auto single_big = EstimateSingleScanCost(*recon, rows);
  auto sorted_big = EstimateSortScanCost(*recon, *recon_key, rows);
  ASSERT_TRUE(single_big.ok() && sorted_big.ok());
  EXPECT_GT(single_big->total(), sorted_big->total());
}

TEST(CostModelTest, SiblingWindowFanOutCharged) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  auto narrow = MakeQ2SiblingChain(schema, 1, /*window=*/1);
  auto wide = MakeQ2SiblingChain(schema, 1, /*window=*/9);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  auto key = SortKey::Parse(*schema, "<d0:L0>");
  ASSERT_TRUE(key.ok());
  auto a = EstimateSortScanCost(*narrow, *key, 1e6);
  auto b = EstimateSortScanCost(*wide, *key, 1e6);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->update_cost, a->update_cost);
}

TEST(CostModelTest, ToStringMentionsComponents) {
  auto schema = MakeSyntheticSchema(2, 3, 10, 1000);
  auto workflow = MakeQ2SiblingChain(schema, 2);
  ASSERT_TRUE(workflow.ok());
  auto cost = EstimateRelationalCost(*workflow, 1000);
  ASSERT_TRUE(cost.ok());
  std::string text = cost->ToString();
  EXPECT_NE(text.find("sort"), std::string::npos);
  EXPECT_NE(text.find("row-ops"), std::string::npos);
}

}  // namespace
}  // namespace csm
