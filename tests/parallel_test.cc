#include "data/queries.h"
#include "exec/parallel.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

void ExpectMatchesSequential(const Workflow& workflow,
                             const FactTable& fact, int threads) {
  SortScanEngine sequential;
  ParallelSortScanEngine parallel;
  EngineOptions options;
  options.parallel_threads = threads;
  auto expect = sequential.Run(workflow, fact);
  auto got = testing_util::RunWith(parallel, workflow, fact, options);
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(expect->tables.size(), got->tables.size());
  for (auto& [name, table] : expect->tables) {
    ExpectTablesEqual(table, got->tables.at(name),
                      name + " @" + std::to_string(threads) + "t");
  }
}

TEST(ParallelSortScanTest, PlanPicksAPartitionableDimension) {
  auto schema = MakeNetworkLogSchema();
  // Multi-recon: every measure keeps V (and t) below ALL; no windows.
  auto recon = MakeMultiReconQuery(schema);
  ASSERT_TRUE(recon.ok());
  auto dim = ParallelSortScanEngine::PlanPartitionDim(*recon);
  ASSERT_TRUE(dim.ok()) << dim.status().ToString();
  // U is rolled to ALL by the parent measures; t carries no window but V
  // is also valid — the planner prefers higher cardinality.
  EXPECT_TRUE(*dim == 0 || *dim == 2);

  // The running example windows over t and rolls U away above Count:
  // nothing qualifies.
  auto running = MakeRunningExampleQuery(schema);
  ASSERT_TRUE(running.ok());
  EXPECT_FALSE(
      ParallelSortScanEngine::PlanPartitionDim(*running).ok());
}

TEST(ParallelSortScanTest, MatchesSequentialOnPartitionableWorkflows) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 6000, 30000, 41);
  auto recon = MakeMultiReconQuery(schema, /*min_sources=*/2);
  ASSERT_TRUE(recon.ok());
  for (int threads : {2, 3, 8}) {
    ExpectMatchesSequential(*recon, fact, threads);
  }
}

TEST(ParallelSortScanTest, SiblingWindowsOnOtherDimsAreFine) {
  auto schema = MakeSyntheticSchema(3, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 5000, 1000, 43);
  // Windows over d1; partition on d0 (or d2) is still valid.
  auto workflow = Workflow::Parse(schema, R"(
      measure C at (d0:L0, d1:L0) = agg count(*) from FACT hidden;
      measure W at (d0:L0, d1:L0) = match C using
          sibling(d1 in [-1, 1]) agg sum(M);
      measure R at (d0:L0, d1:L1) = agg sum(M) from C;)");
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  auto dim = ParallelSortScanEngine::PlanPartitionDim(*workflow);
  ASSERT_TRUE(dim.ok());
  EXPECT_EQ(*dim, 0);
  ExpectMatchesSequential(*workflow, fact, 4);
}

TEST(ParallelSortScanTest, FallsBackWhenNotPartitionable) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 2000, 5000, 45);
  auto running = MakeRunningExampleQuery(schema);
  ASSERT_TRUE(running.ok());
  ParallelSortScanEngine parallel;
  Tracer tracer;
  ExecContext ctx;
  ctx.options.parallel_threads = 4;
  ctx.tracer = &tracer;
  auto got = parallel.Run(*running, fact, ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NE(got->stats.sort_key.find("[sequential]"), std::string::npos);

  // The fallback is recorded on the engine's root span, so operators can
  // tell a degraded run from a parallel one without diffing timings.
  auto roots = tracer.RootSpans();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(tracer.GetSpan(roots[0]).name, "parallel-sort-scan");
  EXPECT_EQ(tracer.AttrOrEmpty(roots[0], "fallback"), "sequential");
  EXPECT_NE(tracer.AttrOrEmpty(roots[0], "fallback_reason")
                .find("no partitionable dimension"),
            std::string::npos);

  // Still correct.
  SortScanEngine sequential;
  auto expect = sequential.Run(*running, fact);
  ASSERT_TRUE(expect.ok());
  for (auto& [name, table] : expect->tables) {
    ExpectTablesEqual(table, got->tables.at(name), name);
  }

  // A partitionable workflow must NOT carry the fallback marker.
  Tracer tracer2;
  ExecContext ctx2;
  ctx2.options.parallel_threads = 4;
  ctx2.tracer = &tracer2;
  auto recon = MakeMultiReconQuery(schema);
  ASSERT_TRUE(recon.ok());
  ASSERT_TRUE(parallel.Run(*recon, fact, ctx2).ok());
  auto roots2 = tracer2.RootSpans();
  ASSERT_EQ(roots2.size(), 1u);
  EXPECT_EQ(tracer2.AttrOrEmpty(roots2[0], "fallback"), "");
}

TEST(ParallelSortScanTest, EmptyInput) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact(schema);
  auto recon = MakeMultiReconQuery(schema);
  ASSERT_TRUE(recon.ok());
  ParallelSortScanEngine parallel;
  EngineOptions options;
  options.parallel_threads = 4;
  auto got = testing_util::RunWith(parallel, *recon, fact, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (auto& [name, table] : got->tables) {
    EXPECT_EQ(table.num_rows(), 0u) << name;
  }
}

}  // namespace
}  // namespace csm
