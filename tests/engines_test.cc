#include <cstring>
#include <memory>
#include <string>

#include "algebra/evaluator.h"
#include "exec/multi_pass.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "gtest/gtest.h"
#include "relational/relational_engine.h"
#include "test_util.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

using testing_util::ExpectTablesEqual;
using testing_util::MakeUniformFacts;

/// Evaluates every measure of the workflow via the reference algebra
/// evaluator (measure-by-measure through named refs) — the ground truth
/// engines are checked against.
std::map<std::string, MeasureTable> ReferenceResults(
    const Workflow& workflow, const FactTable& fact, bool include_hidden) {
  std::map<std::string, MeasureTable> computed;
  for (const MeasureDef& def : workflow.measures()) {
    auto expr = workflow.ToAlgebra(def.name, /*deep=*/false);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    MeasureEnv env;
    for (const auto& [name, table] : computed) env[name] = &table;
    auto result = EvalAwExpr(**expr, fact, env);
    EXPECT_TRUE(result.ok()) << def.name << ": "
                             << result.status().ToString();
    computed.emplace(def.name, std::move(*result));
  }
  if (!include_hidden) {
    for (const MeasureDef& def : workflow.measures()) {
      if (!def.is_output) computed.erase(def.name);
    }
  }
  return computed;
}

void ExpectMatchesReference(Engine& engine, const Workflow& workflow,
                            const FactTable& fact,
                            const EngineOptions& options = {}) {
  auto expected = ReferenceResults(workflow, fact, false);
  auto got = testing_util::RunWith(engine, workflow, fact, options);
  ASSERT_TRUE(got.ok()) << engine.name() << ": "
                        << got.status().ToString();
  EXPECT_EQ(got->tables.size(), expected.size()) << engine.name();
  for (auto& [name, table] : expected) {
    auto it = got->tables.find(name);
    if (it == got->tables.end()) {
      ADD_FAILURE() << engine.name() << " missing output " << name;
      continue;
    }
    ExpectTablesEqual(it->second, table,
                      std::string(engine.name()) + "/" + name);
  }
}

struct EngineCase {
  const char* label;
  std::function<std::unique_ptr<Engine>()> make;
  uint64_t memory_budget_bytes = 0;  // 0 = engine default
  size_t scan_batch_rows = 0;        // 0 = engine default

  EngineOptions options() const {
    EngineOptions options;
    if (memory_budget_bytes != 0) {
      options.memory_budget_bytes = memory_budget_bytes;
    }
    if (scan_batch_rows != 0) {
      options.scan_batch_rows = scan_batch_rows;
    }
    return options;
  }
};

class EngineConformanceTest
    : public ::testing::TestWithParam<EngineCase> {};

// Workflows exercising every operator family.
const char* const kWorkflows[] = {
    // Basic aggregation only (Example 1).
    "measure Count at (t:hour, U:ip) = agg count(*) from FACT;",
    // Filtered base measure with a raw measure argument.
    R"(measure Heavy at (U:net24) = agg sum(bytes) from FACT
         where bytes > 300;)",
    // Roll-up chains with filters (Examples 2-3).
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure SCount at (t:hour) = agg count(M) from Count where M > 5;
       measure STraffic at (t:hour) = agg sum(M) from Count where M > 5;)",
    // Sibling match join (Example 4) plus combine (Example 5).
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure SCount at (t:hour) = agg count(M) from Count where M > 5;
       measure STraffic at (t:hour) = agg sum(M) from Count where M > 5;
       measure AvgCount at (t:hour) =
           match SCount using sibling(t in [0, 5]) agg avg(M);
       measure Ratio at (t:hour) = combine(AvgCount, STraffic, SCount)
           as AvgCount / (STraffic / SCount);)",
    // Parent/child match (the §5.3 slack example).
    R"(measure Daily at (t:day) = agg count(*) from FACT;
       measure Hourly at (t:hour) = agg count(*) from FACT;
       measure Share at (t:hour) = match Daily using parentchild agg sum(M);
       measure Frac at (t:hour) = combine(Hourly, Share)
           as Hourly / Share;)",
    // Child/parent match with filter, plus min/max/avg aggregates.
    R"(measure PerSrc at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure MaxSrc at (t:hour) = match PerSrc using childparent
           agg max(M);
       measure AvgBig at (t:hour) = match PerSrc using childparent
           agg avg(M) where M >= 2;
       measure MinSrc at (t:hour) = agg min(M) from PerSrc;)",
    // Self match and a two-dimensional sibling window.
    R"(measure Grid at (t:hour, U:net24) = agg count(*) from FACT hidden;
       measure Same at (t:hour, U:net24) = match Grid using self
           agg sum(M);
       measure Neighborhood at (t:hour, U:net24) = match Grid using
           sibling(t in [-1, 1], U in [0, 1]) agg sum(M);)",
    // Variance/stddev and count_distinct (holistic) paths.
    R"(measure Spread at (t:day) = agg stddev(bytes) from FACT;
       measure Kinds at (t:day) = agg count_distinct(bytes) from FACT;
       measure Wild at (t:day) = combine(Spread, Kinds)
           as if(Kinds > 1, Spread, 0);)",
    // NULL-valued match partners: the self-excluding sibling window gives
    // the first hour an empty match (NULL, by outer-join semantics).
    // Downstream, count(*) must count that region while count(M) skips
    // it — the SQL NULL rule every engine has to agree on.
    R"(measure Var0 at (t:hour) = agg var(bytes) from FACT hidden;
       measure Prev at (t:hour) = match Var0 using sibling(t in [-1, -1])
           agg stddev(M) hidden;
       measure Rows at (ALL) = match Prev using childparent agg count(*);
       measure Vals at (ALL) = match Prev using childparent agg count(M);)",
};

TEST_P(EngineConformanceTest, MatchesReferenceOnAllWorkflows) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 4000, 5000, /*seed=*/101);
  for (const char* dsl : kWorkflows) {
    auto workflow = Workflow::Parse(schema, dsl);
    ASSERT_TRUE(workflow.ok()) << workflow.status().ToString() << "\n"
                               << dsl;
    auto engine = GetParam().make();
    ExpectMatchesReference(*engine, *workflow, fact, GetParam().options());
  }
}

TEST_P(EngineConformanceTest, RandomizedWorkloads) {
  // Random uniform data at several cardinalities; the dense case makes
  // hierarchy levels collide heavily, the sparse case produces empty
  // matches.
  auto schema = MakeNetworkLogSchema();
  auto workflow = Workflow::Parse(schema, kWorkflows[3]);
  ASSERT_TRUE(workflow.ok());
  for (uint64_t card : {20ull, 1000ull, 1000000ull}) {
    FactTable fact = MakeUniformFacts(schema, 1500, card, card);
    auto engine = GetParam().make();
    ExpectMatchesReference(*engine, *workflow, fact, GetParam().options());
  }
}

TEST_P(EngineConformanceTest, EmptyFactTable) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact(schema);
  auto workflow = Workflow::Parse(schema, kWorkflows[3]);
  ASSERT_TRUE(workflow.ok());
  auto engine = GetParam().make();
  auto got =
      testing_util::RunWith(*engine, *workflow, fact, GetParam().options());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  for (const auto& [name, table] : got->tables) {
    EXPECT_EQ(table.num_rows(), 0u) << name;
  }
}

TEST_P(EngineConformanceTest, SyntheticSchemaWorkflow) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  FactTable fact = MakeUniformFacts(schema, 3000, 1000, 55);
  auto workflow = Workflow::Parse(schema, R"(
      measure C0 at (d0:L0, d1:L1) = agg count(*) from FACT hidden;
      measure R1 at (d0:L1) = agg sum(M) from C0;
      measure R2 at (d0:L1) = agg max(M) from C0;
      measure Mix at (d0:L1) = combine(R1, R2) as R1 - R2;
      measure Win at (d0:L1) = match R1 using sibling(d0 in [-2, 2])
          agg avg(M);)");
  ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
  auto engine = GetParam().make();
  ExpectMatchesReference(*engine, *workflow, fact, GetParam().options());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineConformanceTest,
    ::testing::Values(
        EngineCase{"SingleScan",
                   [] {
                     return std::make_unique<SingleScanEngine>();
                   }},
        EngineCase{"Relational",
                   [] {
                     return std::make_unique<RelationalEngine>();
                   }},
        EngineCase{"RelationalTinyMemory",
                   [] {
                     return std::make_unique<RelationalEngine>();
                   },
                   64 << 10},
        EngineCase{"SortScanDefaultKey",
                   [] {
                     return std::make_unique<SortScanEngine>();
                   }},
        EngineCase{"SortScanTinyMemory",
                   [] {
                     return std::make_unique<SortScanEngine>();
                   },
                   64 << 10},
        // batch=1 degenerates the columnar pipeline to record-at-a-time;
        // batch=7 never divides the test row counts, so every scan ends
        // on a short final batch and propagation fires mid-stream.
        EngineCase{"SortScanBatch1",
                   [] {
                     return std::make_unique<SortScanEngine>();
                   },
                   0, 1},
        EngineCase{"SortScanBatch7",
                   [] {
                     return std::make_unique<SortScanEngine>();
                   },
                   0, 7},
        EngineCase{"SingleScanBatch7",
                   [] {
                     return std::make_unique<SingleScanEngine>();
                   },
                   0, 7},
        EngineCase{"RelationalBatch7",
                   [] {
                     return std::make_unique<RelationalEngine>();
                   },
                   0, 7},
        EngineCase{"MultiPass",
                   [] {
                     return std::make_unique<MultiPassEngine>();
                   }},
        EngineCase{"MultiPassTinyMemory",
                   [] {
                     return std::make_unique<MultiPassEngine>();
                   },
                   // ~340 live entries: forces several passes and the
                   // post-pass combiner on most workflows.
                   32 << 10}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.label;
    });

TEST(SingleScanStatsTest, ReportsPeakMemoryAndScanCounts) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 2000, 500, 3);
  auto workflow = Workflow::Parse(schema, kWorkflows[0]);
  ASSERT_TRUE(workflow.ok());
  SingleScanEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.rows_scanned, 2000u);
  EXPECT_GT(got->stats.peak_hash_entries, 0u);
  EXPECT_GT(got->stats.peak_hash_bytes, 0u);
  EXPECT_EQ(got->stats.sort_seconds, 0.0);  // never sorts
}

TEST(RelationalStatsTest, ChargesMaterializationAndRescans) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 2000, 500, 3);
  // Two independent base measures: the relational engine must scan the
  // fact file twice.
  auto workflow = Workflow::Parse(schema, R"(
      measure A at (t:hour) = agg count(*) from FACT;
      measure B at (U:net24) = agg count(*) from FACT;)");
  ASSERT_TRUE(workflow.ok());
  RelationalEngine engine;
  auto got = engine.Run(*workflow, fact);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->stats.rows_scanned, 4000u);
  EXPECT_GT(got->stats.materialized_rows, 0u);
  EXPECT_GT(got->stats.spilled_bytes, 0u);
}

// The vectorized scan's contract is BIT-identity with the per-row
// interpreter, not tolerance-level agreement: identical fold order,
// identical float accumulation, identical table layout. Any drift here
// means a kernel, key-encode, or run-detection bug.
TEST(VectorizedScanTest, BitIdenticalToScalarPath) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 4000, 5000, /*seed=*/101);
  auto expect_bit_identical = [](const EvalOutput& vec,
                                 const EvalOutput& scalar,
                                 const std::string& context) {
    ASSERT_EQ(vec.tables.size(), scalar.tables.size()) << context;
    for (const auto& [name, vt] : vec.tables) {
      const MeasureTable* st = scalar.FindTable(name);
      ASSERT_NE(st, nullptr) << context << "/" << name;
      ASSERT_EQ(vt.num_rows(), st->num_rows()) << context << "/" << name;
      for (size_t row = 0; row < vt.num_rows(); ++row) {
        for (int i = 0; i < vt.num_dims(); ++i) {
          ASSERT_EQ(vt.key_row(row)[i], st->key_row(row)[i])
              << context << "/" << name << " row " << row;
        }
        uint64_t vb, sb;
        const double vv = vt.value(row), sv = st->value(row);
        std::memcpy(&vb, &vv, sizeof(vb));
        std::memcpy(&sb, &sv, sizeof(sb));
        ASSERT_EQ(vb, sb) << context << "/" << name << " row " << row
                          << ": " << vv << " vs " << sv;
      }
    }
  };
  for (const char* dsl : kWorkflows) {
    auto workflow = Workflow::Parse(schema, dsl);
    ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
    // batch=7 keeps short final batches (and mid-run batch boundaries on
    // the sorted path) in play.
    for (size_t batch_rows : {size_t{0}, size_t{7}}) {
      EngineOptions vec_options;
      EngineOptions scalar_options;
      vec_options.scan_batch_rows = batch_rows;
      scalar_options.scan_batch_rows = batch_rows;
      vec_options.vectorized = true;
      scalar_options.vectorized = false;
      const std::string tag = "b" + std::to_string(batch_rows);
      {
        SingleScanEngine vec_engine, scalar_engine;
        auto vec = testing_util::RunWith(vec_engine, *workflow, fact,
                                         vec_options);
        auto scalar = testing_util::RunWith(scalar_engine, *workflow,
                                            fact, scalar_options);
        ASSERT_TRUE(vec.ok() && scalar.ok());
        expect_bit_identical(*vec, *scalar, "singlescan/" + tag);
      }
      {
        SortScanEngine vec_engine, scalar_engine;
        auto vec = testing_util::RunWith(vec_engine, *workflow, fact,
                                         vec_options);
        auto scalar = testing_util::RunWith(scalar_engine, *workflow,
                                            fact, scalar_options);
        ASSERT_TRUE(vec.ok() && scalar.ok());
        expect_bit_identical(*vec, *scalar, "sortscan/" + tag);
      }
    }
  }
}

TEST(EngineOptionsTest, IncludeHiddenReturnsIntermediates) {
  auto schema = MakeNetworkLogSchema();
  FactTable fact = MakeUniformFacts(schema, 500, 100, 9);
  auto workflow = Workflow::Parse(schema, kWorkflows[2]);
  ASSERT_TRUE(workflow.ok());
  EngineOptions options;
  options.include_hidden = true;
  SingleScanEngine engine;
  auto got = testing_util::RunWith(engine, *workflow, fact, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->tables.count("Count"));
  SingleScanEngine plain;
  auto without = plain.Run(*workflow, fact);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->tables.count("Count"));
}

}  // namespace
}  // namespace csm
