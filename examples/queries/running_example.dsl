# The paper's running example (§3.1, Examples 1-5).
# Run: csm_query --schema net --facts log.csv --query running_example.dsl
measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
measure SCount at (t:hour) = agg count(M) from Count where M > 5;
measure STraffic at (t:hour) = agg sum(M) from Count where M > 5;
measure AvgCount at (t:hour) =
    match SCount using sibling(t in [0, 5]) agg avg(M);
measure Ratio at (t:hour) = combine(AvgCount, STraffic, SCount)
    as AvgCount / (STraffic / SCount);
