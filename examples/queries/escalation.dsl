# Network escalation detection (§7.2): hours where attack volume into a
# target /24 grows more than 3x over the previous hour.
measure Vol at (t:hour, V:net24) = agg count(*) from FACT hidden;
measure PrevVol at (t:hour, V:net24) =
    match Vol using sibling(t in [-1, -1]) agg sum(M) hidden;
measure Growth at (t:hour, V:net24) = combine(Vol, PrevVol)
    as if(isnull(PrevVol) || PrevVol < 1, 0, Vol / PrevVol);
measure Alerts at (V:net24) = agg count(M) from Growth where M > 3;
