# Multi-recon detection (§7.2): windows where many distinct sources probe
# one target /24, none dominating.
measure SrcCount at (t:hour, V:net24, U:ip) = agg count(*) from FACT hidden;
measure UniqueSrcs at (t:hour, V:net24) =
    match SrcCount using childparent agg count(M) hidden;
measure ReconVol at (t:hour, V:net24) =
    match SrcCount using childparent agg sum(M) hidden;
measure MaxPerSrc at (t:hour, V:net24) =
    match SrcCount using childparent agg max(M) hidden;
measure Recon at (t:hour, V:net24) = combine(UniqueSrcs, ReconVol, MaxPerSrc)
    as if(UniqueSrcs >= 20 && MaxPerSrc * 4 < ReconVol, 1, 0);
