// Network escalation detection (paper §7.2, first HoneyNet analysis):
// find hours in which attack volume into a target /24 grows sharply over
// the previous hour — the worm-outbreak signature from the paper's
// introduction. Demonstrates sibling match joins, combine joins, and the
// engine trade-off the paper observes in Fig. 7(a): when the intermediate
// state is small, the plain single-scan algorithm beats sort/scan because
// the sort dominates.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "data/netlog.h"
#include "data/queries.h"
#include "exec/factory.h"
#include "model/schema.h"

int main() {
  using namespace csm;
  SchemaPtr schema = MakeNetworkLogSchema();

  NetLogOptions data_options;
  data_options.rows = 400000;
  data_options.duration_seconds = 3 * 24 * 3600;
  data_options.escalation_events = 4;
  FactTable fact = GenerateNetLog(schema, data_options);
  std::printf("log: %zu records over %llu hours, %d injected escalations\n",
              fact.num_rows(),
              static_cast<unsigned long long>(
                  data_options.duration_seconds / 3600),
              data_options.escalation_events);

  auto workflow = MakeEscalationQuery(schema, /*factor=*/3.0);
  if (!workflow.ok()) {
    std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
    return 1;
  }

  for (EngineKind kind : {EngineKind::kSingleScan, EngineKind::kSortScan}) {
    auto made = MakeEngine(kind);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Engine> engine = std::move(*made);
    auto result = engine->Run(*workflow, fact);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", std::string(engine->name()).c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n[%s] total %.3fs (sort %.3fs, scan %.3fs), peak "
                "entries %llu\n",
                std::string(engine->name()).c_str(),
                result->stats.total_seconds, result->stats.sort_seconds,
                result->stats.scan_seconds,
                static_cast<unsigned long long>(
                    result->stats.peak_hash_entries));

    if (kind == EngineKind::kSortScan) {
      // Report the alerting networks once.
      const MeasureTable& alerts = result->tables.at("Alerts");
      std::vector<std::pair<double, Value>> hot;
      for (size_t row = 0; row < alerts.num_rows(); ++row) {
        if (alerts.value(row) > 0) {
          hot.push_back({alerts.value(row), alerts.key_row(row)[2]});
        }
      }
      std::sort(hot.rbegin(), hot.rend());
      std::printf("\nescalating target networks (alert hours, /24):\n");
      for (size_t i = 0; i < hot.size() && i < 8; ++i) {
        const Value net24 = hot[i].second;
        std::printf("  %3.0f alert hour(s)  %llu.%llu.%llu.0/24\n",
                    hot[i].first,
                    static_cast<unsigned long long>(net24 >> 16),
                    static_cast<unsigned long long>((net24 >> 8) & 0xff),
                    static_cast<unsigned long long>(net24 & 0xff));
      }
      std::printf("  (%zu alerting networks total)\n", hot.size());
    }
  }
  std::printf("\nNote Fig. 7(a)'s effect: the intermediate state here is "
              "small, so single-scan\navoids the sort and wins; sort/scan "
              "pays the sort to bound memory.\n");
  return 0;
}
