// Custom table-driven hierarchies and Proposition 1's monotone
// re-encoding. Builds a small retail-style dataset whose product
// dimension uses an explicit (dimension-table) hierarchy with arbitrary
// ids, re-encodes it so value generalization becomes monotone — the
// property the sort/scan engine needs — and runs a composite measure
// query over it.

#include <cstdio>

#include "common/rng.h"
#include "exec/sort_scan.h"
#include "model/hierarchy.h"
#include "model/schema.h"
#include "workflow/workflow.h"

int main() {
  using namespace csm;

  // A product hierarchy with meaningless catalog ids:
  //   products {301, 404, 117, 552, 209, 750} ->
  //   categories {77: dairy, 12: produce, 95: frozen} -> ALL.
  std::unordered_map<Value, Value> product_to_category{
      {301, 77}, {404, 12}, {117, 95}, {552, 77}, {209, 12}, {750, 95}};
  auto raw = MappedHierarchy::Make({"product", "category", "ALL"},
                                   {product_to_category});
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  std::printf("raw catalog hierarchy monotone: %s\n",
              (*raw)->IsMonotone() ? "yes" : "no");

  // Proposition 1: impose a total order by re-encoding the extended
  // domain. The translation maps let us convert incoming records.
  auto encoded = (*raw)->BuildMonotone();
  if (!encoded.ok()) {
    std::fprintf(stderr, "%s\n", encoded.status().ToString().c_str());
    return 1;
  }
  std::printf("re-encoded hierarchy monotone:  %s\n",
              encoded->hierarchy->IsMonotone() ? "yes" : "no");
  std::printf("product id translation:");
  for (const auto& [old_id, new_id] : encoded->value_translation[0]) {
    std::printf("  %llu->%llu", static_cast<unsigned long long>(old_id),
                static_cast<unsigned long long>(new_id));
  }
  std::printf("\n\n");

  // Schema: day (stepped time) x product (the re-encoded hierarchy),
  // with a "revenue" measure.
  auto day = SteppedHierarchy::Make({"day", "week", "ALL"}, {7}, 56);
  auto schema = Schema::Make(
      {{"day", *day}, {"product", encoded->hierarchy}}, {"revenue"});
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }

  // Synthetic sales: 8 weeks, every product every day, noisy revenue.
  FactTable fact(*schema);
  Rng rng(2026);
  for (Value d = 0; d < 56; ++d) {
    for (const auto& [old_id, new_id] : encoded->value_translation[0]) {
      Value dims[2] = {d, new_id};
      double revenue[1] = {
          50.0 + static_cast<double>(rng.Uniform(100)) +
          (new_id == 0 ? 40.0 : 0.0)};  // one star product
      fact.AppendRow(dims, revenue);
    }
  }

  // Weekly revenue per category, its 3-week trailing average, and the
  // deviation of each week from that average.
  auto workflow = Workflow::Parse(*schema, R"(
      measure Weekly at (day:week, product:category) =
          agg sum(revenue) from FACT;
      measure Trail at (day:week, product:category) =
          match Weekly using sibling(day in [-2, 0]) agg avg(M) hidden;
      measure Deviation at (day:week, product:category) =
          combine(Weekly, Trail) as (Weekly - Trail) / Trail;
  )");
  if (!workflow.ok()) {
    std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
    return 1;
  }

  SortScanEngine engine;
  auto result = engine.Run(*workflow, fact);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const MeasureTable& weekly = result->tables.at("Weekly");
  const MeasureTable& deviation = result->tables.at("Deviation");
  std::printf("week | category | revenue | vs 3-week trail\n");
  for (size_t row = 0; row < weekly.num_rows(); ++row) {
    std::printf("%4llu | %8llu | %7.0f | %+6.1f%%\n",
                static_cast<unsigned long long>(weekly.key_row(row)[0]),
                static_cast<unsigned long long>(weekly.key_row(row)[1]),
                weekly.value(row), 100.0 * deviation.value(row));
  }
  return 0;
}
