// Multi-recon detection (paper §7.2, second HoneyNet analysis): windows
// where many distinct source IPs probe one target /24, none dominating —
// coordinated reconnaissance. The query is three child/parent match joins
// over one child region set plus a combine join; this is the shape where
// the coordinated sort/scan evaluation shines (Fig. 7(b)).
//
// Also demonstrates the §6 optimizer: the sort order is chosen by
// brute-force search over the footprint model rather than the engine's
// default.

#include <cstdio>

#include "data/netlog.h"
#include "data/queries.h"
#include "exec/exec_context.h"
#include "exec/sort_scan.h"
#include "model/schema.h"
#include "opt/footprint.h"
#include "opt/sort_order.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  SchemaPtr schema = MakeNetworkLogSchema();

  NetLogOptions data_options;
  data_options.rows = 400000;
  data_options.recon_events = 5;
  data_options.recon_sources = 80;
  FactTable fact = GenerateNetLog(schema, data_options);
  std::printf("log: %zu records, %d injected recon bursts\n\n",
              fact.num_rows(), data_options.recon_events);

  auto workflow = MakeMultiReconQuery(schema, /*min_sources=*/40);
  if (!workflow.ok()) {
    std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
    return 1;
  }

  // Let the optimizer pick the sort order (§6: brute force over the
  // footprint model, as in the paper's experiments).
  auto best_key = BruteForceSortKey(*workflow);
  if (!best_key.ok()) {
    std::fprintf(stderr, "%s\n", best_key.status().ToString().c_str());
    return 1;
  }
  auto footprint = EstimateFootprint(*workflow, *best_key);
  std::printf("optimizer-chosen sort order: %s\n",
              best_key->ToString(*schema).c_str());
  std::printf("estimated footprint:\n%s\n",
              footprint->ToString(*schema).c_str());

  ExecContext ctx;
  ctx.options.sort_key = *best_key;
  SortScanEngine sort_scan;
  RelationalEngine relational;

  auto streamed = sort_scan.Run(*workflow, fact, ctx);
  auto baseline = relational.Run(*workflow, fact);
  if (!streamed.ok() || !baseline.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("sort/scan:  %.3fs (one shared sort+scan)\n",
              streamed->stats.total_seconds);
  std::printf("relational: %.3fs (per-measure scans and sorts)\n\n",
              baseline->stats.total_seconds);

  const MeasureTable& recon = streamed->tables.at("Recon");
  std::printf("flagged reconnaissance windows:\n");
  int flagged = 0;
  for (size_t row = 0; row < recon.num_rows(); ++row) {
    if (recon.value(row) != 1.0) continue;
    ++flagged;
    if (flagged <= 10) {
      const Value* key = recon.key_row(row);
      std::printf("  hour %4llu  target %llu.%llu.%llu.0/24\n",
                  static_cast<unsigned long long>(key[0]),
                  static_cast<unsigned long long>(key[2] >> 16),
                  static_cast<unsigned long long>((key[2] >> 8) & 0xff),
                  static_cast<unsigned long long>(key[2] & 0xff));
    }
  }
  std::printf("  (%d flagged windows out of %zu)\n", flagged,
              recon.num_rows());
  return 0;
}
