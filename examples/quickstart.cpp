// Quickstart: the paper's running example (Composite Subset Measures,
// VLDB 2006, Examples 1-5) end to end.
//
//  1. Define a multidimensional schema with domain hierarchies.
//  2. Load (here: generate) a fact table of network attack records.
//  3. Describe the composite measures as an aggregation workflow in the
//     textual DSL.
//  4. Evaluate everything in one coordinated sort/scan pass.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "data/netlog.h"
#include "data/queries.h"
#include "exec/sort_scan.h"
#include "model/schema.h"

int main() {
  using namespace csm;

  // Table 1's schema: t (time), U (source IP), V (target IP), P (port),
  // each with its natural domain hierarchy (second->hour->day->...,
  // ip->/24->/16->/8, ...).
  SchemaPtr schema = MakeNetworkLogSchema();

  // A synthetic Dshield-style log (the paper's datasets are not
  // redistributable): heavy-tailed sources, diurnal volume, two days.
  NetLogOptions data_options;
  data_options.rows = 200000;
  data_options.duration_seconds = 2 * 24 * 3600;
  FactTable fact = GenerateNetLog(schema, data_options);
  std::printf("fact table: %zu records, %d dimensions, %d measure(s)\n\n",
              fact.num_rows(), fact.num_dims(), fact.num_measures());

  // Examples 1-5 as an aggregation workflow. The same graph can be built
  // programmatically (see Workflow::AddMeasure); the DSL is the textual
  // stand-in for the paper's pictorial language.
  auto workflow = MakeRunningExampleQuery(schema);
  if (!workflow.ok()) {
    std::fprintf(stderr, "workflow error: %s\n",
                 workflow.status().ToString().c_str());
    return 1;
  }
  std::printf("workflow:\n%s\n", workflow->ToDsl().c_str());

  // Evaluate with the one-pass sort/scan engine: one sort of the fact
  // table, one scan, all five measures computed together with early
  // flushing of finalized hash entries.
  SortScanEngine engine;
  auto result = engine.Run(*workflow, fact);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("chosen sort order: %s\n", result->stats.sort_key.c_str());
  std::printf("sort %.3fs, scan %.3fs, peak hash entries %llu\n\n",
              result->stats.sort_seconds, result->stats.scan_seconds,
              static_cast<unsigned long long>(
                  result->stats.peak_hash_entries));

  // Print the busy-source ratio (Example 5) for the first hours.
  const MeasureTable& ratio = result->tables.at("Ratio");
  const MeasureTable& scount = result->tables.at("SCount");
  std::printf("hour | busy sources | ratio (Example 5)\n");
  for (size_t row = 0; row < ratio.num_rows() && row < 12; ++row) {
    std::printf("%4llu | %12.0f | %.4f\n",
                static_cast<unsigned long long>(ratio.key_row(row)[0]),
                scount.value(row), ratio.value(row));
  }
  std::printf("(%zu hours total)\n", ratio.num_rows());
  return 0;
}
