file(REMOVE_RECURSE
  "CMakeFiles/fig6d_chains.dir/fig6d_chains.cc.o"
  "CMakeFiles/fig6d_chains.dir/fig6d_chains.cc.o.d"
  "fig6d_chains"
  "fig6d_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
