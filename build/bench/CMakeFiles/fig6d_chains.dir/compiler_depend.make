# Empty compiler generated dependencies file for fig6d_chains.
# This may be replaced when dependencies are built.
