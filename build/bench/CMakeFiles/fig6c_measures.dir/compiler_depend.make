# Empty compiler generated dependencies file for fig6c_measures.
# This may be replaced when dependencies are built.
