file(REMOVE_RECURSE
  "CMakeFiles/fig6c_measures.dir/fig6c_measures.cc.o"
  "CMakeFiles/fig6c_measures.dir/fig6c_measures.cc.o.d"
  "fig6c_measures"
  "fig6c_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
