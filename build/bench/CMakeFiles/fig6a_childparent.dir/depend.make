# Empty dependencies file for fig6a_childparent.
# This may be replaced when dependencies are built.
