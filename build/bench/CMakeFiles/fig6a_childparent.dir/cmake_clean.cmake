file(REMOVE_RECURSE
  "CMakeFiles/fig6a_childparent.dir/fig6a_childparent.cc.o"
  "CMakeFiles/fig6a_childparent.dir/fig6a_childparent.cc.o.d"
  "fig6a_childparent"
  "fig6a_childparent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_childparent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
