# Empty compiler generated dependencies file for fig6f_network.
# This may be replaced when dependencies are built.
