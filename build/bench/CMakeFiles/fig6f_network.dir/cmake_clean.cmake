file(REMOVE_RECURSE
  "CMakeFiles/fig6f_network.dir/fig6f_network.cc.o"
  "CMakeFiles/fig6f_network.dir/fig6f_network.cc.o.d"
  "fig6f_network"
  "fig6f_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6f_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
