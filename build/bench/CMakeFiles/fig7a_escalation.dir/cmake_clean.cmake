file(REMOVE_RECURSE
  "CMakeFiles/fig7a_escalation.dir/fig7a_escalation.cc.o"
  "CMakeFiles/fig7a_escalation.dir/fig7a_escalation.cc.o.d"
  "fig7a_escalation"
  "fig7a_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
