# Empty compiler generated dependencies file for fig7a_escalation.
# This may be replaced when dependencies are built.
