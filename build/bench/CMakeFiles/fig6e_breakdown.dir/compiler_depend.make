# Empty compiler generated dependencies file for fig6e_breakdown.
# This may be replaced when dependencies are built.
