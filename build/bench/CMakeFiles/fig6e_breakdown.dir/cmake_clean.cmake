file(REMOVE_RECURSE
  "CMakeFiles/fig6e_breakdown.dir/fig6e_breakdown.cc.o"
  "CMakeFiles/fig6e_breakdown.dir/fig6e_breakdown.cc.o.d"
  "fig6e_breakdown"
  "fig6e_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6e_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
