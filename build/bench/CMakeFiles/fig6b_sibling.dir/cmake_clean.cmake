file(REMOVE_RECURSE
  "CMakeFiles/fig6b_sibling.dir/fig6b_sibling.cc.o"
  "CMakeFiles/fig6b_sibling.dir/fig6b_sibling.cc.o.d"
  "fig6b_sibling"
  "fig6b_sibling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_sibling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
