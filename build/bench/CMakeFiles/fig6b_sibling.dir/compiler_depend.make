# Empty compiler generated dependencies file for fig6b_sibling.
# This may be replaced when dependencies are built.
