file(REMOVE_RECURSE
  "CMakeFiles/opt_sortorder.dir/opt_sortorder.cc.o"
  "CMakeFiles/opt_sortorder.dir/opt_sortorder.cc.o.d"
  "opt_sortorder"
  "opt_sortorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_sortorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
