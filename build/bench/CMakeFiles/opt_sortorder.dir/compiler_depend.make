# Empty compiler generated dependencies file for opt_sortorder.
# This may be replaced when dependencies are built.
