# Empty compiler generated dependencies file for fig7b_multirecon.
# This may be replaced when dependencies are built.
