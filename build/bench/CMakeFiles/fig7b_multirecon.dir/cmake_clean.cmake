file(REMOVE_RECURSE
  "CMakeFiles/fig7b_multirecon.dir/fig7b_multirecon.cc.o"
  "CMakeFiles/fig7b_multirecon.dir/fig7b_multirecon.cc.o.d"
  "fig7b_multirecon"
  "fig7b_multirecon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_multirecon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
