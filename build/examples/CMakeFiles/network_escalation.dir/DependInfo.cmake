
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/network_escalation.cpp" "examples/CMakeFiles/network_escalation.dir/network_escalation.cpp.o" "gcc" "examples/CMakeFiles/network_escalation.dir/network_escalation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/csm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/csm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/csm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/csm_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/csm_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/csm_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/csm_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/csm_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/csm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/csm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
