file(REMOVE_RECURSE
  "CMakeFiles/network_escalation.dir/network_escalation.cpp.o"
  "CMakeFiles/network_escalation.dir/network_escalation.cpp.o.d"
  "network_escalation"
  "network_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
