# Empty dependencies file for network_escalation.
# This may be replaced when dependencies are built.
