# Empty compiler generated dependencies file for multi_recon.
# This may be replaced when dependencies are built.
