file(REMOVE_RECURSE
  "CMakeFiles/multi_recon.dir/multi_recon.cpp.o"
  "CMakeFiles/multi_recon.dir/multi_recon.cpp.o.d"
  "multi_recon"
  "multi_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
