file(REMOVE_RECURSE
  "CMakeFiles/csm_query.dir/csm_query.cc.o"
  "CMakeFiles/csm_query.dir/csm_query.cc.o.d"
  "csm_query"
  "csm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
