# Empty compiler generated dependencies file for csm_query.
# This may be replaced when dependencies are built.
