file(REMOVE_RECURSE
  "CMakeFiles/csm_exec.dir/adaptive.cc.o"
  "CMakeFiles/csm_exec.dir/adaptive.cc.o.d"
  "CMakeFiles/csm_exec.dir/multi_pass.cc.o"
  "CMakeFiles/csm_exec.dir/multi_pass.cc.o.d"
  "CMakeFiles/csm_exec.dir/parallel.cc.o"
  "CMakeFiles/csm_exec.dir/parallel.cc.o.d"
  "CMakeFiles/csm_exec.dir/single_scan.cc.o"
  "CMakeFiles/csm_exec.dir/single_scan.cc.o.d"
  "CMakeFiles/csm_exec.dir/sort_scan.cc.o"
  "CMakeFiles/csm_exec.dir/sort_scan.cc.o.d"
  "libcsm_exec.a"
  "libcsm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
