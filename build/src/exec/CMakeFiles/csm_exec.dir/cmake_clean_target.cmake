file(REMOVE_RECURSE
  "libcsm_exec.a"
)
