# Empty dependencies file for csm_exec.
# This may be replaced when dependencies are built.
