file(REMOVE_RECURSE
  "CMakeFiles/csm_common.dir/logging.cc.o"
  "CMakeFiles/csm_common.dir/logging.cc.o.d"
  "CMakeFiles/csm_common.dir/status.cc.o"
  "CMakeFiles/csm_common.dir/status.cc.o.d"
  "CMakeFiles/csm_common.dir/string_util.cc.o"
  "CMakeFiles/csm_common.dir/string_util.cc.o.d"
  "libcsm_common.a"
  "libcsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
