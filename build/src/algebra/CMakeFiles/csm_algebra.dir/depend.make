# Empty dependencies file for csm_algebra.
# This may be replaced when dependencies are built.
