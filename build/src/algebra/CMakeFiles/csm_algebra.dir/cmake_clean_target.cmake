file(REMOVE_RECURSE
  "libcsm_algebra.a"
)
