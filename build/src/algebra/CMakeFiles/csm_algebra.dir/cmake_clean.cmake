file(REMOVE_RECURSE
  "CMakeFiles/csm_algebra.dir/aw_expr.cc.o"
  "CMakeFiles/csm_algebra.dir/aw_expr.cc.o.d"
  "CMakeFiles/csm_algebra.dir/evaluator.cc.o"
  "CMakeFiles/csm_algebra.dir/evaluator.cc.o.d"
  "CMakeFiles/csm_algebra.dir/measure_ops.cc.o"
  "CMakeFiles/csm_algebra.dir/measure_ops.cc.o.d"
  "CMakeFiles/csm_algebra.dir/rewrite.cc.o"
  "CMakeFiles/csm_algebra.dir/rewrite.cc.o.d"
  "libcsm_algebra.a"
  "libcsm_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
