file(REMOVE_RECURSE
  "libcsm_storage.a"
)
