
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/external_sorter.cc" "src/storage/CMakeFiles/csm_storage.dir/external_sorter.cc.o" "gcc" "src/storage/CMakeFiles/csm_storage.dir/external_sorter.cc.o.d"
  "/root/repo/src/storage/fact_table.cc" "src/storage/CMakeFiles/csm_storage.dir/fact_table.cc.o" "gcc" "src/storage/CMakeFiles/csm_storage.dir/fact_table.cc.o.d"
  "/root/repo/src/storage/measure_table.cc" "src/storage/CMakeFiles/csm_storage.dir/measure_table.cc.o" "gcc" "src/storage/CMakeFiles/csm_storage.dir/measure_table.cc.o.d"
  "/root/repo/src/storage/record_cursor.cc" "src/storage/CMakeFiles/csm_storage.dir/record_cursor.cc.o" "gcc" "src/storage/CMakeFiles/csm_storage.dir/record_cursor.cc.o.d"
  "/root/repo/src/storage/table_io.cc" "src/storage/CMakeFiles/csm_storage.dir/table_io.cc.o" "gcc" "src/storage/CMakeFiles/csm_storage.dir/table_io.cc.o.d"
  "/root/repo/src/storage/temp_file.cc" "src/storage/CMakeFiles/csm_storage.dir/temp_file.cc.o" "gcc" "src/storage/CMakeFiles/csm_storage.dir/temp_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/csm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
