file(REMOVE_RECURSE
  "CMakeFiles/csm_storage.dir/external_sorter.cc.o"
  "CMakeFiles/csm_storage.dir/external_sorter.cc.o.d"
  "CMakeFiles/csm_storage.dir/fact_table.cc.o"
  "CMakeFiles/csm_storage.dir/fact_table.cc.o.d"
  "CMakeFiles/csm_storage.dir/measure_table.cc.o"
  "CMakeFiles/csm_storage.dir/measure_table.cc.o.d"
  "CMakeFiles/csm_storage.dir/record_cursor.cc.o"
  "CMakeFiles/csm_storage.dir/record_cursor.cc.o.d"
  "CMakeFiles/csm_storage.dir/table_io.cc.o"
  "CMakeFiles/csm_storage.dir/table_io.cc.o.d"
  "CMakeFiles/csm_storage.dir/temp_file.cc.o"
  "CMakeFiles/csm_storage.dir/temp_file.cc.o.d"
  "libcsm_storage.a"
  "libcsm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
