# Empty dependencies file for csm_storage.
# This may be replaced when dependencies are built.
