file(REMOVE_RECURSE
  "CMakeFiles/csm_workflow.dir/parser.cc.o"
  "CMakeFiles/csm_workflow.dir/parser.cc.o.d"
  "CMakeFiles/csm_workflow.dir/workflow.cc.o"
  "CMakeFiles/csm_workflow.dir/workflow.cc.o.d"
  "libcsm_workflow.a"
  "libcsm_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
