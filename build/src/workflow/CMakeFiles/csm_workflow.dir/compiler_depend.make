# Empty compiler generated dependencies file for csm_workflow.
# This may be replaced when dependencies are built.
