file(REMOVE_RECURSE
  "libcsm_workflow.a"
)
