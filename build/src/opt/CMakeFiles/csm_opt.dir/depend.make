# Empty dependencies file for csm_opt.
# This may be replaced when dependencies are built.
