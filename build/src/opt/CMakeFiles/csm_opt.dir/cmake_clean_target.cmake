file(REMOVE_RECURSE
  "libcsm_opt.a"
)
