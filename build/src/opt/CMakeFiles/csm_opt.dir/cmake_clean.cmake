file(REMOVE_RECURSE
  "CMakeFiles/csm_opt.dir/cost_model.cc.o"
  "CMakeFiles/csm_opt.dir/cost_model.cc.o.d"
  "CMakeFiles/csm_opt.dir/footprint.cc.o"
  "CMakeFiles/csm_opt.dir/footprint.cc.o.d"
  "CMakeFiles/csm_opt.dir/pass_planner.cc.o"
  "CMakeFiles/csm_opt.dir/pass_planner.cc.o.d"
  "CMakeFiles/csm_opt.dir/sort_order.cc.o"
  "CMakeFiles/csm_opt.dir/sort_order.cc.o.d"
  "libcsm_opt.a"
  "libcsm_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
