# Empty compiler generated dependencies file for csm_agg.
# This may be replaced when dependencies are built.
