file(REMOVE_RECURSE
  "libcsm_agg.a"
)
