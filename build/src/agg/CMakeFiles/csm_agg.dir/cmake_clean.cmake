file(REMOVE_RECURSE
  "CMakeFiles/csm_agg.dir/aggregate.cc.o"
  "CMakeFiles/csm_agg.dir/aggregate.cc.o.d"
  "libcsm_agg.a"
  "libcsm_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
