# Empty dependencies file for csm_agg.
# This may be replaced when dependencies are built.
