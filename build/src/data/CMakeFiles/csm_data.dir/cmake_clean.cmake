file(REMOVE_RECURSE
  "CMakeFiles/csm_data.dir/netlog.cc.o"
  "CMakeFiles/csm_data.dir/netlog.cc.o.d"
  "CMakeFiles/csm_data.dir/queries.cc.o"
  "CMakeFiles/csm_data.dir/queries.cc.o.d"
  "CMakeFiles/csm_data.dir/synthetic.cc.o"
  "CMakeFiles/csm_data.dir/synthetic.cc.o.d"
  "libcsm_data.a"
  "libcsm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
