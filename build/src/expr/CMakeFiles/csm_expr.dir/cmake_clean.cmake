file(REMOVE_RECURSE
  "CMakeFiles/csm_expr.dir/scalar_expr.cc.o"
  "CMakeFiles/csm_expr.dir/scalar_expr.cc.o.d"
  "libcsm_expr.a"
  "libcsm_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
