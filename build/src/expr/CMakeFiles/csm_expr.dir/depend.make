# Empty dependencies file for csm_expr.
# This may be replaced when dependencies are built.
