file(REMOVE_RECURSE
  "libcsm_expr.a"
)
