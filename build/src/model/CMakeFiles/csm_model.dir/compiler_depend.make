# Empty compiler generated dependencies file for csm_model.
# This may be replaced when dependencies are built.
