file(REMOVE_RECURSE
  "CMakeFiles/csm_model.dir/granularity.cc.o"
  "CMakeFiles/csm_model.dir/granularity.cc.o.d"
  "CMakeFiles/csm_model.dir/hierarchy.cc.o"
  "CMakeFiles/csm_model.dir/hierarchy.cc.o.d"
  "CMakeFiles/csm_model.dir/schema.cc.o"
  "CMakeFiles/csm_model.dir/schema.cc.o.d"
  "CMakeFiles/csm_model.dir/sort_key.cc.o"
  "CMakeFiles/csm_model.dir/sort_key.cc.o.d"
  "libcsm_model.a"
  "libcsm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
