file(REMOVE_RECURSE
  "libcsm_model.a"
)
