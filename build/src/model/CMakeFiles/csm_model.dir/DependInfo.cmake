
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/granularity.cc" "src/model/CMakeFiles/csm_model.dir/granularity.cc.o" "gcc" "src/model/CMakeFiles/csm_model.dir/granularity.cc.o.d"
  "/root/repo/src/model/hierarchy.cc" "src/model/CMakeFiles/csm_model.dir/hierarchy.cc.o" "gcc" "src/model/CMakeFiles/csm_model.dir/hierarchy.cc.o.d"
  "/root/repo/src/model/schema.cc" "src/model/CMakeFiles/csm_model.dir/schema.cc.o" "gcc" "src/model/CMakeFiles/csm_model.dir/schema.cc.o.d"
  "/root/repo/src/model/sort_key.cc" "src/model/CMakeFiles/csm_model.dir/sort_key.cc.o" "gcc" "src/model/CMakeFiles/csm_model.dir/sort_key.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
