# Empty compiler generated dependencies file for csm_relational.
# This may be replaced when dependencies are built.
