file(REMOVE_RECURSE
  "CMakeFiles/csm_relational.dir/relational_engine.cc.o"
  "CMakeFiles/csm_relational.dir/relational_engine.cc.o.d"
  "libcsm_relational.a"
  "libcsm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
