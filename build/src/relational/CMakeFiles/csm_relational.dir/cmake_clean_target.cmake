file(REMOVE_RECURSE
  "libcsm_relational.a"
)
