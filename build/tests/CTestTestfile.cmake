# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/agg_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/sort_scan_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/measure_ops_test[1]_include.cmake")
include("/root/repo/build/tests/random_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/tool_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_property_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
