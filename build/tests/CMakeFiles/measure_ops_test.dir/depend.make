# Empty dependencies file for measure_ops_test.
# This may be replaced when dependencies are built.
