file(REMOVE_RECURSE
  "CMakeFiles/measure_ops_test.dir/measure_ops_test.cc.o"
  "CMakeFiles/measure_ops_test.dir/measure_ops_test.cc.o.d"
  "measure_ops_test"
  "measure_ops_test.pdb"
  "measure_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
