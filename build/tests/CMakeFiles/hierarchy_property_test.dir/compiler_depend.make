# Empty compiler generated dependencies file for hierarchy_property_test.
# This may be replaced when dependencies are built.
