file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_property_test.dir/hierarchy_property_test.cc.o"
  "CMakeFiles/hierarchy_property_test.dir/hierarchy_property_test.cc.o.d"
  "hierarchy_property_test"
  "hierarchy_property_test.pdb"
  "hierarchy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
