file(REMOVE_RECURSE
  "CMakeFiles/random_conformance_test.dir/random_conformance_test.cc.o"
  "CMakeFiles/random_conformance_test.dir/random_conformance_test.cc.o.d"
  "random_conformance_test"
  "random_conformance_test.pdb"
  "random_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
