# Empty compiler generated dependencies file for random_conformance_test.
# This may be replaced when dependencies are built.
