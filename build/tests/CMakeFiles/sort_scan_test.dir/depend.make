# Empty dependencies file for sort_scan_test.
# This may be replaced when dependencies are built.
