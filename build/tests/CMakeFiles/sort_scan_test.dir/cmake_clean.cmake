file(REMOVE_RECURSE
  "CMakeFiles/sort_scan_test.dir/sort_scan_test.cc.o"
  "CMakeFiles/sort_scan_test.dir/sort_scan_test.cc.o.d"
  "sort_scan_test"
  "sort_scan_test.pdb"
  "sort_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
