# Sanitizer presets: -DCSM_SANITIZE=address|undefined|thread (or a
# comma-separated combination like "address,undefined"). Applied globally
# so every library, test and tool in the build is instrumented — a
# half-instrumented binary reports false positives under TSan and misses
# container-overflow checks under ASan.
#
# address + undefined compose; thread composes with neither.
set(CSM_SANITIZE "" CACHE STRING
    "Sanitizer(s) to instrument with: address, undefined, thread, or a comma list")

if(CSM_SANITIZE)
  string(REPLACE "," ";" _csm_sanitizers "${CSM_SANITIZE}")

  if("thread" IN_LIST _csm_sanitizers AND
     ("address" IN_LIST _csm_sanitizers OR "undefined" IN_LIST _csm_sanitizers))
    message(FATAL_ERROR "CSM_SANITIZE: thread cannot be combined with address/undefined")
  endif()

  set(_csm_san_flags "")
  foreach(_san IN LISTS _csm_sanitizers)
    if(_san STREQUAL "address")
      list(APPEND _csm_san_flags -fsanitize=address)
    elseif(_san STREQUAL "undefined")
      # Promote UB findings to hard failures so CI cannot scroll past them.
      list(APPEND _csm_san_flags -fsanitize=undefined -fno-sanitize-recover=all)
    elseif(_san STREQUAL "thread")
      list(APPEND _csm_san_flags -fsanitize=thread)
    else()
      message(FATAL_ERROR "CSM_SANITIZE: unknown sanitizer '${_san}' "
                          "(expected address, undefined, or thread)")
    endif()
  endforeach()

  # Keep frame pointers and some debug info so sanitizer reports carry
  # usable stacks even in Release builds.
  list(APPEND _csm_san_flags -fno-omit-frame-pointer -g)

  add_compile_options(${_csm_san_flags})
  add_link_options(${_csm_san_flags})
  message(STATUS "Sanitizers enabled: ${CSM_SANITIZE}")
endif()
