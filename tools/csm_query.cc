// csm_query — the standalone, lightweight analysis tool the paper's
// introduction calls for: evaluate an aggregation-workflow query over a
// flat fact file without importing anything into a DBMS.
//
// Usage:
//   csm_query --schema net --facts log.csv --query query.dsl
//             [--engine adaptive] [--budget-mb 256] [--sort-budget BYTES]
//             [--sort-key K]
//             [--threads N] [--morsel-rows N] [--batch-rows N]
//             [--no-vectorize] [--no-dict] [--out results_dir]
//             [--dot workflow.dot] [--metrics out.json] [--trace]
//             [--explain] [--stream] [--include-hidden]
//
// --explain prints the lowered physical plan (operator pipeline, sort
// order, thread/morsel plan) plus the cost-model comparison and exits
// WITHOUT executing the query.
//
// Multi-query sessions (shared-scan execution across queries):
//   csm_query --schema net --facts log.csv --queries batch.txt
//             [--session-cache] [...common flags...]
// where batch.txt lists one workflow DSL path per line (# comments and
// blank lines skipped; relative paths resolve against the list file's
// directory). The batch is fused into ONE sort/scan run through
// QuerySession; per-query outputs land in <out>/q<i>/<measure>.csv.
// --session-cache enables the fingerprint-keyed result cache and runs
// the batch a second time, reporting cache-hit latency separately.
//
// Incremental appends (delta maintenance instead of recompute):
//   csm_query --schema net --facts log.csv --query query.dsl
//             --append new_rows.csv [...common flags...]
// evaluates the query over the base facts, appends the delta file's rows
// through Session::AppendAndRefresh — self-maintainable measures merge
// the sorted delta into retained per-region state and re-finalize only
// dirty regions; holistic measures re-scan; derived measures re-derive —
// and reports the per-measure maintenance classification plus the patch
// time against the cold run time.
//
// Schemas:
//   net                      the Table-1 network log schema
//                            (t, U, V, P + bytes)
//   synthetic[:d,l,f,c]      d dims, l non-ALL levels, fan-out f, base
//                            cardinality c (defaults 4,3,10,1000)
//
// Fact files: .csv (header row) or .bin (WriteFactTableBinary format).
// Each output measure is written to <out>/<measure>.csv; stats go to
// stdout. --metrics writes the full span tree + summary as JSON;
// --trace prints the human-readable span tree to stderr.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "algebra/evaluator.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "exec/adaptive.h"
#include "exec/op/generalize_op.h"
#include "expr/predicate_kernel.h"
#include "opt/lowering.h"
#include "exec/exec_context.h"
#include "exec/factory.h"
#include "exec/session.h"
#include "exec/sort_scan.h"
#include "model/schema.h"
#include "obs/trace.h"
#include "opt/cost_model.h"
#include "opt/footprint.h"
#include "opt/sort_order.h"
#include "storage/table_io.h"
#include "workflow/workflow.h"

namespace csm {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --schema net|synthetic[:d,l,f,c] --facts FILE.csv|.bin\n"
      "          --query FILE.dsl | --queries LIST.txt [--session-cache]\n"
      "          [--append FILE.csv|.bin]\n"
      "          [--engine adaptive|sortscan|singlescan|\n"
      "          multipass|parallel|relational] [--budget-mb N]\n"
      "          [--sort-budget BYTES] [--sort-key K] [--threads N]\n"
      "          [--morsel-rows N] [--batch-rows N] [--no-vectorize]\n"
      "          [--no-dict] [--out DIR] [--dot FILE]\n"
      "          [--metrics FILE.json]\n"
      "          [--trace] [--explain] [--stream] [--include-hidden]\n",
      argv0);
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses a --queries list file: one workflow DSL path per line, blank
/// lines and # comments skipped, relative paths resolved against the
/// list file's directory.
Result<std::vector<Workflow>> LoadQueryBatch(const SchemaPtr& schema,
                                             const std::string& list_path) {
  CSM_ASSIGN_OR_RETURN(std::string text, ReadFile(list_path));
  const std::string base_dir =
      std::filesystem::path(list_path).parent_path().string();
  std::vector<Workflow> batch;
  for (std::string_view line : Split(text, '\n')) {
    line = StripWhitespace(line);
    if (line.empty() || line.front() == '#') continue;
    std::string path(line);
    if (!base_dir.empty() &&
        !std::filesystem::path(path).is_absolute()) {
      path = base_dir + "/" + path;
    }
    CSM_ASSIGN_OR_RETURN(std::string dsl, ReadFile(path));
    auto workflow = Workflow::Parse(schema, dsl);
    CSM_RETURN_NOT_OK(workflow.status().WithContext(path));
    batch.push_back(std::move(*workflow));
  }
  if (batch.empty()) {
    return Status::InvalidArgument("no queries listed in " + list_path);
  }
  return batch;
}

/// --queries mode: fuse the whole batch into one engine run through
/// QuerySession; with --session-cache, run it twice and report the
/// cache-hit latency of the second pass separately.
int RunSessionMode(const SchemaPtr& schema, const FactTable& fact,
                   const std::string& queries_path,
                   const std::string& engine_name,
                   const EngineOptions& options, bool include_hidden,
                   bool session_cache, const std::string& out_dir,
                   bool trace, const std::string& metrics_path) {
  auto report = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  };

  auto batch = LoadQueryBatch(schema, queries_path);
  if (!batch.ok()) return report(batch.status());
  auto kind = ParseEngineKind(engine_name);
  if (!kind.ok()) return report(kind.status());

  SessionOptions session_options;
  session_options.engine_options = options;
  session_options.include_hidden = include_hidden;
  if (session_cache) {
    session_options.cache_capacity = std::max<size_t>(16, batch->size());
  }
  auto session = QuerySession::Create(*kind, session_options);
  if (!session.ok()) return report(session.status());

  Tracer tracer;
  ExecContext ctx;
  ctx.options = options;
  ctx.tracer = &tracer;

  auto run_batch = [&]() -> Result<std::vector<EvalOutput>> {
    for (const Workflow& query : *batch) {
      CSM_RETURN_NOT_OK((*session)->Submit(query).status());
    }
    return (*session)->RunPending(fact, ctx);
  };

  Timer timer;
  auto outs = run_batch();
  const double cold_seconds = timer.Seconds();
  if (!outs.ok()) return report(outs.status());
  const SessionReport rep = (*session)->last_report();

  std::printf(
      "session: fused %zu queries (%zu measures -> %zu executed, "
      "%zu shared) in %.3fs\n",
      rep.queries, rep.total_measures, rep.fused_measures,
      rep.shared_measures, cold_seconds);
  std::printf("session run: %s\n", rep.run_stats.ToString().c_str());

  for (size_t i = 0; i < outs->size(); ++i) {
    const EvalOutput& out = (*outs)[i];
    std::printf("query %zu (%zu tables):\n", i, out.tables.size());
    for (const std::string& name : out.table_names()) {
      const MeasureTable* table = out.FindTable(name);
      std::printf("  %-16s %8zu regions", name.c_str(),
                  table->num_rows());
      if (!out_dir.empty()) {
        const std::string dir = out_dir + "/q" + std::to_string(i);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        const std::string path = dir + "/" + name + ".csv";
        Status status = WriteMeasureTableCsv(*table, path);
        if (!status.ok()) return report(status);
        std::printf("  -> %s", path.c_str());
      }
      std::printf("\n");
    }
  }

  double warm_seconds = -1;
  if (session_cache) {
    timer.Reset();
    auto warm = run_batch();
    warm_seconds = timer.Seconds();
    if (!warm.ok()) return report(warm.status());
    const SessionReport warm_rep = (*session)->last_report();
    std::printf(
        "session cache: %zu hit(s), %zu miss(es); warm batch %.6fs "
        "(cold %.3fs, %.1fx)\n",
        warm_rep.cache_hits, warm_rep.cache_misses, warm_seconds,
        cold_seconds,
        warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0);
  }

  if (trace) std::fputs(tracer.ToTreeString().c_str(), stderr);
  if (!metrics_path.empty()) {
    std::ofstream metrics(metrics_path);
    if (!metrics) {
      return report(Status::IOError("cannot write " + metrics_path));
    }
    metrics << "{\"queries\":" << rep.queries
            << ",\"fused_measures\":" << rep.fused_measures
            << ",\"shared_measures\":" << rep.shared_measures
            << ",\"cold_seconds\":" << cold_seconds;
    if (warm_seconds >= 0) {
      metrics << ",\"warm_seconds\":" << warm_seconds;
    }
    metrics << ",\n\"summary\":" << rep.run_stats.ToJson()
            << ",\n\"spans\":" << tracer.ToJson() << "}\n";
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  return 0;
}

/// EXPLAIN detail for the dictionary-encoded scan: per-column code
/// widths, memoized generalization LUT counts, and which where-filters
/// compile down to per-dictionary bitsets. The dictionaries are
/// value-dependent, so --explain loads the fact table for this section
/// (the plan itself is still never executed).
void PrintDictExplain(const Schema& schema, const Workflow& workflow,
                      const FactTable& fact) {
  std::shared_ptr<const DictPlan> dict =
      BuildDictPlan(fact, BuildScanSweep(workflow));
  std::printf("dictionary encoding:\n");
  for (int i = 0; i < schema.num_dims(); ++i) {
    std::printf("  %s: %zu distinct values, %d-bit codes\n",
                schema.dim(i).name.c_str(), dict->enc->dicts[i].size(),
                dict->enc->dicts[i].bits());
  }
  std::printf("  generalization LUTs: %zu memoized (%zu entries)\n",
              dict->num_luts, dict->lut_entries);
  const auto vars = FactRowVars(schema);
  int compiled = 0, total = 0;
  size_t bits = 0;
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op != MeasureOp::kBaseAgg || def.where == nullptr) continue;
    ++total;
    auto kernel =
        PredicateKernel::Compile(*def.where, vars, schema.num_dims());
    if (!kernel.has_value()) continue;
    kernel->BindDictionaries(dict->views.data(), schema.num_dims());
    if (kernel->dict_bound() > 0) {
      ++compiled;
      bits += kernel->dict_bits();
      std::printf("  filter on '%s': %s\n", def.name.c_str(),
                  kernel->Describe().c_str());
    }
  }
  std::printf("  filters compiled to dict bitsets: %d of %d (%zu bits)\n",
              compiled, total, bits);
}

Result<FactTable> LoadFactFile(const SchemaPtr& schema,
                               const std::string& path) {
  if (EndsWith(path, ".csv")) return ReadFactTableCsv(schema, path);
  if (EndsWith(path, ".bin")) return ReadFactTableBinary(schema, path);
  return Status::InvalidArgument("fact file must end in .csv or .bin: " +
                                 path);
}

/// --append mode: run the query cold, append the delta file's rows
/// through Session::AppendAndRefresh, and serve the refreshed result from
/// the patched cache entry — printing the per-measure maintenance
/// classification and the patch-vs-recompute timing.
int RunAppendMode(const SchemaPtr& schema, FactTable fact,
                  const Workflow& workflow, const std::string& append_path,
                  const std::string& engine_name,
                  const EngineOptions& options, bool include_hidden,
                  const std::string& out_dir, bool trace,
                  const std::string& metrics_path) {
  auto report = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  };

  auto delta = LoadFactFile(schema, append_path);
  if (!delta.ok()) return report(delta.status());
  std::printf("loaded %zu append records from %s\n", delta->num_rows(),
              append_path.c_str());

  auto plan = DeltaPlan::Build(workflow);
  if (!plan.ok()) return report(plan.status());
  std::printf("maintenance plan:\n");
  for (const DeltaMeasurePlan& entry : plan->measures) {
    std::printf("  %-16s %-18s %s\n", entry.name.c_str(),
                std::string(DeltaClassName(entry.cls)).c_str(),
                entry.reason.c_str());
  }

  auto kind = ParseEngineKind(engine_name);
  if (!kind.ok()) return report(kind.status());
  SessionOptions session_options;
  session_options.engine_options = options;
  session_options.include_hidden = include_hidden;
  session_options.cache_capacity = 1;
  session_options.delta_patching = true;
  auto session = QuerySession::Create(*kind, session_options);
  if (!session.ok()) return report(session.status());

  Tracer tracer;
  ExecContext ctx;
  ctx.options = options;
  ctx.tracer = &tracer;

  Timer timer;
  auto submit = (*session)->Submit(workflow);
  if (!submit.ok()) return report(submit.status());
  auto cold = (*session)->RunPending(fact, ctx);
  if (!cold.ok()) return report(cold.status());
  const double cold_seconds = timer.Seconds();
  std::printf("cold run over %zu records: %.3fs\n", fact.num_rows(),
              cold_seconds);

  timer.Reset();
  auto appended = (*session)->AppendAndRefresh(fact, *delta, ctx);
  if (!appended.ok()) return report(appended.status());
  const double patch_seconds = timer.Seconds();
  std::printf(
      "append: %zu rows folded in %.6fs (%.1fx vs cold run) — "
      "%zu measure(s) patched across %zu dirty region(s), "
      "%zu recomputed, %zu quer(ies) dropped\n",
      appended->delta_rows, patch_seconds,
      patch_seconds > 0 ? cold_seconds / patch_seconds : 0.0,
      appended->patched_measures, appended->dirty_regions,
      appended->recomputed_measures, appended->dropped_queries);

  // Re-submit: the refreshed result comes from the patched cache entry.
  submit = (*session)->Submit(workflow);
  if (!submit.ok()) return report(submit.status());
  auto refreshed = (*session)->RunPending(fact, ctx);
  if (!refreshed.ok()) return report(refreshed.status());
  const SessionReport rep = (*session)->last_report();
  std::printf("refreshed result: %s\n",
              rep.cache_hits == 1 ? "served from patched cache entry"
                                  : "recomputed (cache miss)");

  const EvalOutput& out = (*refreshed)[0];
  for (const std::string& name : out.table_names()) {
    const MeasureTable* table = out.FindTable(name);
    std::printf("  %-16s %8zu regions", name.c_str(), table->num_rows());
    if (!out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      const std::string path = out_dir + "/" + name + ".csv";
      Status status = WriteMeasureTableCsv(*table, path);
      if (!status.ok()) return report(status);
      std::printf("  -> %s", path.c_str());
    }
    std::printf("\n");
  }

  if (trace) std::fputs(tracer.ToTreeString().c_str(), stderr);
  if (!metrics_path.empty()) {
    std::ofstream metrics(metrics_path);
    if (!metrics) {
      return report(Status::IOError("cannot write " + metrics_path));
    }
    metrics << "{\"delta_rows\":" << appended->delta_rows
            << ",\"dirty_regions\":" << appended->dirty_regions
            << ",\"patched_measures\":" << appended->patched_measures
            << ",\"recomputed_measures\":" << appended->recomputed_measures
            << ",\"cold_seconds\":" << cold_seconds
            << ",\"patch_seconds\":" << patch_seconds
            << ",\n\"spans\":" << tracer.ToJson() << "}\n";
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  return 0;
}

int RealMain(int argc, char** argv) {
  std::string schema_spec, facts_path, query_path, engine_name = "adaptive";
  std::string out_dir, sort_key_text, dot_path, metrics_path, queries_path;
  std::string append_path;
  size_t budget_mb = 256;
  size_t sort_budget_bytes = 0;  // 0 = derive from --budget-mb
  size_t batch_rows = 0;         // 0 = EngineOptions default
  size_t morsel_rows = 0;        // 0 = EngineOptions default
  int threads = 0;
  bool explain = false, include_hidden = false, stream = false;
  bool trace = false, session_cache = false, no_vectorize = false;
  bool no_dict = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--schema")) {
      if (const char* v = next()) schema_spec = v;
    } else if (!std::strcmp(argv[i], "--facts")) {
      if (const char* v = next()) facts_path = v;
    } else if (!std::strcmp(argv[i], "--query")) {
      if (const char* v = next()) query_path = v;
    } else if (!std::strcmp(argv[i], "--queries")) {
      if (const char* v = next()) queries_path = v;
    } else if (!std::strcmp(argv[i], "--append")) {
      if (const char* v = next()) append_path = v;
    } else if (!std::strcmp(argv[i], "--session-cache")) {
      session_cache = true;
    } else if (!std::strcmp(argv[i], "--engine")) {
      if (const char* v = next()) engine_name = v;
    } else if (!std::strcmp(argv[i], "--out")) {
      if (const char* v = next()) out_dir = v;
    } else if (!std::strcmp(argv[i], "--sort-key")) {
      if (const char* v = next()) sort_key_text = v;
    } else if (!std::strcmp(argv[i], "--dot")) {
      if (const char* v = next()) dot_path = v;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      if (const char* v = next()) metrics_path = v;
    } else if (!std::strcmp(argv[i], "--budget-mb")) {
      if (const char* v = next()) budget_mb = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--sort-budget")) {
      // Raw bytes: lets experiments force external sorting at exact
      // thresholds (e.g. smaller than one run, or one row).
      if (const char* v = next()) {
        sort_budget_bytes = std::strtoull(v, nullptr, 10);
      }
    } else if (!std::strcmp(argv[i], "--threads")) {
      if (const char* v = next()) threads = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--batch-rows")) {
      if (const char* v = next()) batch_rows = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--morsel-rows")) {
      if (const char* v = next()) {
        morsel_rows = std::strtoull(v, nullptr, 10);
      }
    } else if (!std::strcmp(argv[i], "--no-vectorize")) {
      // Scalar reference path: per-row interpreter filters and probes.
      // Results are bit-identical to the vectorized default.
      no_vectorize = true;
    } else if (!std::strcmp(argv[i], "--no-dict")) {
      // Raw-value scan: no dictionary codes, memoized generalization
      // LUTs, compiled predicate bitsets, or zone-map batch skipping.
      // Results are bit-identical to the encoded default.
      no_dict = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else if (!std::strcmp(argv[i], "--explain")) {
      explain = true;
    } else if (!std::strcmp(argv[i], "--stream")) {
      stream = true;
    } else if (!std::strcmp(argv[i], "--include-hidden")) {
      include_hidden = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (schema_spec.empty() || facts_path.empty() ||
      (query_path.empty() == queries_path.empty())) {
    return Usage(argv[0]);
  }

  auto report = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  };

  auto schema = ParseSchemaSpec(schema_spec);
  if (!schema.ok()) return report(schema.status());

  if (!queries_path.empty()) {
    // Multi-query session mode: everything flows through QuerySession.
    EngineOptions options;
    options.memory_budget_bytes = budget_mb << 20;
    if (sort_budget_bytes > 0) {
      options.memory_budget_bytes = sort_budget_bytes;
    }
    options.parallel_threads = threads;
    if (batch_rows > 0) options.scan_batch_rows = batch_rows;
    if (morsel_rows > 0) options.morsel_rows = morsel_rows;
    options.vectorized = !no_vectorize;
    options.dict_encoding = !no_dict;
    if (!sort_key_text.empty()) {
      auto key = SortKey::Parse(**schema, sort_key_text);
      if (!key.ok()) return report(key.status());
      options.sort_key = *key;
    }
    Result<FactTable> fact = Status::InvalidArgument(
        "fact file must end in .csv or .bin: " + facts_path);
    if (EndsWith(facts_path, ".csv")) {
      fact = ReadFactTableCsv(*schema, facts_path);
    } else if (EndsWith(facts_path, ".bin")) {
      fact = ReadFactTableBinary(*schema, facts_path);
    }
    if (!fact.ok()) return report(fact.status());
    std::printf("loaded %zu records from %s\n", fact->num_rows(),
                facts_path.c_str());
    return RunSessionMode(*schema, *fact, queries_path, engine_name,
                          options, include_hidden, session_cache, out_dir,
                          trace, metrics_path);
  }

  auto dsl = ReadFile(query_path);
  if (!dsl.ok()) return report(dsl.status());
  auto workflow = Workflow::Parse(*schema, *dsl);
  if (!workflow.ok()) return report(workflow.status());

  if (!dot_path.empty()) {
    // Export the pictorial workflow (paper Fig. 3) for `dot -Tsvg`.
    std::ofstream dot(dot_path);
    if (!dot) return report(Status::IOError("cannot write " + dot_path));
    dot << workflow->ToDot();
    std::printf("wrote workflow graph to %s\n", dot_path.c_str());
  }

  EngineOptions options;
  options.memory_budget_bytes = budget_mb << 20;
  if (sort_budget_bytes > 0) {
    options.memory_budget_bytes = sort_budget_bytes;
  }
  options.include_hidden = include_hidden;
  options.parallel_threads = threads;
  if (batch_rows > 0) options.scan_batch_rows = batch_rows;
  if (morsel_rows > 0) options.morsel_rows = morsel_rows;
  options.vectorized = !no_vectorize;
  options.dict_encoding = !no_dict;
  if (!sort_key_text.empty()) {
    auto key = SortKey::Parse(**schema, sort_key_text);
    if (!key.ok()) return report(key.status());
    options.sort_key = *key;
  }

  if (!append_path.empty()) {
    if (stream) {
      std::fprintf(stderr, "--append is incompatible with --stream\n");
      return 2;
    }
    auto fact = LoadFactFile(*schema, facts_path);
    if (!fact.ok()) return report(fact.status());
    std::printf("loaded %zu records from %s\n", fact->num_rows(),
                facts_path.c_str());
    return RunAppendMode(*schema, std::move(*fact), *workflow, append_path,
                         engine_name, options, include_hidden, out_dir,
                         trace, metrics_path);
  }

  if (explain) {
    // EXPLAIN never executes: lower the physical plan, print it with the
    // cost-model comparison, and exit.
    auto kind = ParseEngineKind(engine_name);
    if (!kind.ok()) return report(kind.status());
    auto key = options.sort_key.empty()
                   ? BruteForceSortKey(*workflow)
                   : Result<SortKey>(options.sort_key);
    if (!key.ok()) return report(key.status());
    auto footprint = EstimateFootprint(*workflow, *key);
    if (!footprint.ok()) return report(footprint.status());
    std::printf("query plan:\n%s", workflow->ToDsl().c_str());
    std::printf("\nsort order: %s\nestimated footprint:\n%s\n",
                key->ToString(**schema).c_str(),
                footprint->ToString(**schema).c_str());
    // §6 cost factors for each strategy (abstract row-op units).
    const double rows = 1e6;  // nominal; ratios are what matter
    auto ss = EstimateSortScanCost(*workflow, *key, rows);
    auto single = EstimateSingleScanCost(*workflow, rows);
    auto db = EstimateRelationalCost(*workflow, rows);
    if (ss.ok() && single.ok() && db.ok()) {
      std::printf("estimated cost per 1M records:\n");
      std::printf("  sort/scan:   %s\n", ss->ToString().c_str());
      std::printf("  single-scan: %s\n", single->ToString().c_str());
      std::printf("  relational:  %s\n", db->ToString().c_str());
    }
    // --stream always executes through the sort/scan engine, so explain
    // the out-of-core sort/scan plan regardless of --engine.
    auto plan = stream
                    ? LowerToPlan(EngineKind::kSortScan, *workflow, options,
                                  /*file_input=*/true)
                    : LowerToPlan(*kind, *workflow, options);
    if (!plan.ok()) return report(plan.status());
    std::printf("physical plan:\n%s", plan->Describe(**schema).c_str());
    if (plan->dict_encoding) {
      auto fact = LoadFactFile(*schema, facts_path);
      if (!fact.ok()) return report(fact.status());
      PrintDictExplain(**schema, *workflow, *fact);
    }
    return 0;
  }

  // Every run records into one tracer; --metrics/--trace export it.
  Tracer tracer;
  ExecContext ctx;
  ctx.options = options;
  ctx.tracer = &tracer;

  Result<EvalOutput> result = Status::Internal("unreachable");
  std::string engine_label;

  if (stream) {
    // Out-of-core path: the dataset is never fully resident. Requires a
    // binary fact file and the sort/scan engine.
    if (!EndsWith(facts_path, ".bin")) {
      std::fprintf(stderr, "--stream requires a .bin fact file\n");
      return 2;
    }
    auto kind = ParseEngineKind(engine_name);
    if (!kind.ok()) return report(kind.status());
    if (*kind != EngineKind::kSortScan && *kind != EngineKind::kAdaptive) {
      std::fprintf(stderr, "--stream supports the sortscan engine only\n");
      return 2;
    }
    SortScanEngine engine;
    engine_label = "sort-scan (streaming)";
    result = engine.RunFile(*workflow, facts_path, ctx);
  } else {
    Result<FactTable> fact = Status::InvalidArgument(
        "fact file must end in .csv or .bin: " + facts_path);
    if (EndsWith(facts_path, ".csv")) {
      fact = ReadFactTableCsv(*schema, facts_path);
    } else if (EndsWith(facts_path, ".bin")) {
      fact = ReadFactTableBinary(*schema, facts_path);
    }
    if (!fact.ok()) return report(fact.status());
    std::printf("loaded %zu records from %s\n", fact->num_rows(),
                facts_path.c_str());

    auto kind = ParseEngineKind(engine_name);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return Usage(argv[0]);
    }
    auto engine = MakeEngine(*kind, options);
    if (!engine.ok()) return report(engine.status());
    engine_label = std::string((*engine)->name());
    result = (*engine)->Run(*workflow, *fact, ctx);
  }
  if (!result.ok()) return report(result.status());

  std::printf("engine %s: %s\n", engine_label.c_str(),
              result->stats.ToString().c_str());

  if (trace) std::fputs(tracer.ToTreeString().c_str(), stderr);
  if (!metrics_path.empty()) {
    std::ofstream metrics(metrics_path);
    if (!metrics) {
      return report(Status::IOError("cannot write " + metrics_path));
    }
    metrics << "{\"engine\":\"" << engine_label << "\",\n\"summary\":"
            << result->stats.ToJson() << ",\n\"spans\":" << tracer.ToJson()
            << "}\n";
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  for (const auto& [name, table] : result->tables) {
    std::printf("  %-16s %8zu regions", name.c_str(), table.num_rows());
    if (!out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      std::string path = out_dir + "/" + name + ".csv";
      Status status = WriteMeasureTableCsv(table, path);
      if (!status.ok()) return report(status);
      std::printf("  -> %s", path.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace csm

int main(int argc, char** argv) { return csm::RealMain(argc, argv); }
