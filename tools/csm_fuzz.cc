// csm_fuzz — differential fuzzing driver: randomized campaigns that run
// every engine (and the out-of-core RunFile path) against the reference
// evaluator, shrink any divergence to a minimal case, and write a
// self-contained reproducer that --repro replays.
//
// Usage:
//   csm_fuzz --campaign [--seed S] [--runs N] [--rows R] [--measures M]
//            [--max-seconds T] [--repro-dir DIR] [--keep-going]
//            [--no-shrink] [--inject-fault ENGINE:MEASURE]
//            [--checkpoint FILE] [--metrics FILE.json] [--trace]
//   csm_fuzz --resume FILE [--max-seconds T] [--repro-dir DIR] ...
//   csm_fuzz --repro PATH [--trace]
//
// Campaigns are seed-deterministic: the same --seed/--runs pair replays
// the same schemas, datasets, workflows and engine configs. Exit codes:
// campaign — 0 no divergence, 1 divergence(s) found (reproducers
// written), 2 usage; repro — 0 the divergence reproduces, 1 it does not
// (fixed), 2 usage. --inject-fault corrupts the named engine's output
// post-run, for exercising the shrink/repro pipeline and CI smoke.
//
// --checkpoint FILE persists the campaign cursor (seed, run index,
// config-matrix cell, counters) after every engine config checked.
// --resume FILE picks a campaign back up from such a checkpoint: the
// seed and run budget come from the file, already-checked cells are
// skipped (determinism makes the skip exact), and progress keeps being
// saved to the same file.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/trace.h"
#include "testing/campaign.h"
#include "testing/repro.h"

namespace csm {
namespace {

using testing_util::CampaignFinding;
using testing_util::CampaignOptions;
using testing_util::CampaignStats;
using testing_util::FaultSpec;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --campaign [--seed S] [--runs N] [--rows R]\n"
      "          [--measures M] [--max-seconds T] [--repro-dir DIR]\n"
      "          [--keep-going] [--no-shrink]\n"
      "          [--inject-fault ENGINE:MEASURE]\n"
      "          [--checkpoint FILE] [--metrics FILE.json] [--trace]\n"
      "       %s --resume FILE [common campaign flags]\n"
      "       %s --repro PATH [--trace]\n",
      argv0, argv0, argv0);
  return 2;
}

int Report(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void WriteMetrics(const std::string& path, const std::string& mode,
                  const std::string& summary, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\"mode\":\"" << mode << "\",\n\"summary\":\"";
  for (char c : summary) {
    if (c == '"' || c == '\\') out.put('\\');
    out.put(c);
  }
  out << "\",\n\"spans\":" << tracer.ToJson() << "}\n";
  std::printf("wrote metrics to %s\n", path.c_str());
}

int RunCampaignMode(const CampaignOptions& options, bool trace,
                    const std::string& metrics_path, Tracer& tracer) {
  auto stats = testing_util::RunCampaign(options);
  if (trace) std::fputs(tracer.ToTreeString().c_str(), stderr);
  if (!stats.ok()) return Report(stats.status());
  if (options.resume) {
    std::printf("campaign resumed from %s: %s\n",
                options.checkpoint_path.c_str(),
                stats->Summary().c_str());
  } else {
    std::printf("campaign seed %llu: %s\n",
                static_cast<unsigned long long>(options.seed),
                stats->Summary().c_str());
  }
  for (const CampaignFinding& finding : stats->findings) {
    std::printf("run %d: %s\n", finding.run,
                finding.divergence.ToString().c_str());
    if (!finding.shrink_summary.empty()) {
      std::printf("  shrunk: %s\n", finding.shrink_summary.c_str());
    }
    std::printf("  repro: %s\n", finding.repro_path.c_str());
  }
  if (!metrics_path.empty()) {
    WriteMetrics(metrics_path, "campaign", stats->Summary(), tracer);
  }
  return stats->findings.empty() ? 0 : 1;
}

int RunReproMode(const std::string& path, bool trace,
                 const std::string& metrics_path, Tracer& tracer) {
  auto repro = testing_util::LoadRepro(path);
  if (!repro.ok()) return Report(repro.status());
  std::printf("replaying %s: schema %s, %zu measure(s), %zu row(s)\n",
              path.c_str(), repro->schema_spec.c_str(),
              repro->workflow.measures().size(), repro->fact.num_rows());
  auto divergence = testing_util::ReplayRepro(*repro, &tracer);
  if (trace) std::fputs(tracer.ToTreeString().c_str(), stderr);
  if (!divergence.ok()) return Report(divergence.status());
  std::string summary;
  int rc;
  if (divergence->has_value()) {
    summary = (*divergence)->ToString();
    std::printf("divergence reproduces: %s\n", summary.c_str());
    rc = 0;
  } else {
    summary = "no divergence (fixed?)";
    std::printf("%s\n", summary.c_str());
    rc = 1;
  }
  if (!metrics_path.empty()) {
    WriteMetrics(metrics_path, "repro", summary, tracer);
  }
  return rc;
}

int RealMain(int argc, char** argv) {
  bool campaign = false, trace = false;
  std::string repro_path, metrics_path, fault_text;
  CampaignOptions options;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--campaign")) {
      campaign = true;
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      if (const char* v = next()) options.checkpoint_path = v;
    } else if (!std::strcmp(argv[i], "--resume")) {
      campaign = true;
      options.resume = true;
      if (const char* v = next()) options.checkpoint_path = v;
    } else if (!std::strcmp(argv[i], "--repro")) {
      if (const char* v = next()) repro_path = v;
    } else if (!std::strcmp(argv[i], "--seed")) {
      if (const char* v = next()) {
        options.seed = std::strtoull(v, nullptr, 10);
      }
    } else if (!std::strcmp(argv[i], "--runs")) {
      if (const char* v = next()) options.runs = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--rows")) {
      if (const char* v = next()) {
        options.max_rows = std::strtoull(v, nullptr, 10);
      }
    } else if (!std::strcmp(argv[i], "--measures")) {
      if (const char* v = next()) {
        options.measures_per_workflow = std::atoi(v);
      }
    } else if (!std::strcmp(argv[i], "--max-seconds")) {
      if (const char* v = next()) {
        options.max_seconds = std::strtod(v, nullptr);
      }
    } else if (!std::strcmp(argv[i], "--repro-dir")) {
      if (const char* v = next()) options.repro_dir = v;
    } else if (!std::strcmp(argv[i], "--keep-going")) {
      options.keep_going = true;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      options.shrink = false;
    } else if (!std::strcmp(argv[i], "--inject-fault")) {
      if (const char* v = next()) fault_text = v;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      if (const char* v = next()) metrics_path = v;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (campaign == !repro_path.empty()) return Usage(argv[0]);
  if (options.runs < 1 || options.max_rows < 1 ||
      options.measures_per_workflow < 1) {
    return Usage(argv[0]);
  }

  if (!fault_text.empty()) {
    auto fault = FaultSpec::Parse(fault_text);
    if (!fault.ok()) {
      std::fprintf(stderr, "%s\n", fault.status().ToString().c_str());
      return Usage(argv[0]);
    }
    options.fault = *fault;
  }

  Tracer tracer;
  options.tracer = &tracer;
  return campaign
             ? RunCampaignMode(options, trace, metrics_path, tracer)
             : RunReproMode(repro_path, trace, metrics_path, tracer);
}

}  // namespace
}  // namespace csm

int main(int argc, char** argv) { return csm::RealMain(argc, argv); }
