// Ablation: dictionary-encoded dimension columns (the PR-10 layer).
//
// Runs a filtered multi-granularity workflow (eight basic measures, all
// with selective dim-range `where` predicates) over 400k synthetic rows
// on the single-scan and sort/scan engines, once with the dictionary
// path (code columns + memoized generalization LUTs + per-dictionary
// predicate bitsets + zone-map batch skipping) and once with
// `EngineOptions::dict_encoding` off — the PR-9 vectorized raw-value
// reference. The two paths are required to be bit-identical, which this
// bench asserts before reporting any timing; the headline number is the
// sort/scan scan-phase speedup of the dictionary path (target >= 1.40x
// at t1), and the zone-map skip counter is asserted > 0 in the
// sorted-input configuration (sorted by d0, filters on d0 ranges, so
// most batches are provably outside every predicate's code range).
//
// Flags:
//   --json FILE          write the flat result JSON (BENCH_pr10.json)
//   --reps N             best-of-N repetitions (default 3)
//   --baseline FILE      committed BENCH_pr10.json to compare against
//   --max-regress FRAC   fail (exit 1) if the dictionary single-scan
//                        scan-phase per-row time regresses more than
//                        FRAC vs the baseline (default 0.10)

#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"

namespace {

// Minimal flat-JSON number lookup ("\"key\": <number>"), enough for the
// files this bench writes itself.
bool JsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

// Exact (bit-level) table comparison: the dictionary path's contract is
// bit-identity with the raw-value scan, not tolerance-level agreement.
bool BitIdentical(const csm::EvalOutput& a, const csm::EvalOutput& b) {
  using csm::MeasureTable;
  using csm::Value;
  if (a.tables.size() != b.tables.size()) return false;
  for (const auto& [name, ta] : a.tables) {
    const MeasureTable* tb = b.FindTable(name);
    if (tb == nullptr || ta.num_rows() != tb->num_rows()) return false;
    auto key_map = [](const MeasureTable& t) {
      std::map<std::vector<Value>, uint64_t> m;
      for (size_t row = 0; row < t.num_rows(); ++row) {
        uint64_t bits;
        const double v = t.value(row);
        std::memcpy(&bits, &v, sizeof(bits));
        m.emplace(std::vector<Value>(t.key_row(row),
                                     t.key_row(row) + t.num_dims()),
                  bits);
      }
      return m;
    };
    if (key_map(ta) != key_map(*tb)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  std::string json_path, baseline_path;
  int reps = 3;
  double max_regress = 0.10;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--baseline")) {
      if (const char* v = next()) baseline_path = v;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (const char* v = next()) reps = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--max-regress")) {
      if (const char* v = next()) max_regress = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("Ablation", "dictionary codes + LUTs + zone maps vs raw "
              "vectorized scan",
              "per-dictionary predicate bitsets and memoized "
              "generalization LUTs beat the raw-value compare + "
              "per-batch gamma sweep; zone maps skip most batches on "
              "sorted input; results are bit-identical by contract");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  // Filtered multi-granularity workload: every measure carries a
  // selective range predicate on d0 (the sort/scan engine's primary
  // sort dimension), so on sorted input most batches fall provably
  // outside every predicate's code range and zone maps skip them.
  // The distinct (granularity, filter) pairs exercise several memoized
  // LUT passes per dimension.
  auto workflow = Workflow::Parse(schema, R"(
    measure LowSum at (d0:L1, d1:L1) =
        agg sum(m) from FACT where d0 < 100;
    measure LowCount at (d0:L2, d2:L1) =
        agg count(*) from FACT where d0 < 100 && d3 < 500;
    measure MidSum at (d0:L2, d1:L1) =
        agg sum(m) from FACT where d0 >= 450 && d0 < 550;
    measure HighMax at (d0:L1, d3:L1) =
        agg max(m) from FACT where d0 >= 800;
    measure HighSum at (d0:L2, d3:L1) =
        agg sum(m) from FACT where d0 >= 800 && m < 80;
    measure TopCount at (d0:L1, d1:L2) =
        agg count(*) from FACT where d0 >= 950;
    measure EdgeSum at (d0:L1, d2:L2) =
        agg sum(m) from FACT where d0 < 30;
    measure BandCount at (d0:L2, d2:L1) =
        agg count(*) from FACT where d0 >= 300 && d0 < 360;
  )");
  if (!workflow.ok()) {
    std::fprintf(stderr, "workflow: %s\n",
                 workflow.status().ToString().c_str());
    return 1;
  }

  SyntheticDataOptions data;
  data.rows = Rows(400e3);
  data.seed = 10100;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records, 4 dims, 8 filtered measures, "
              "batch=1024, t1, best of %d\n\n",
              FmtRows(fact.num_rows()).c_str(), reps);

  struct Cell {
    const char* engine = "";
    bool dict = false;
    double seconds = 0;       // min over timed reps
    double scan_seconds = 0;  // min over timed reps
    double batches_skipped = 0;
    RepStats total_stats;
    RepStats scan_stats;
    EvalOutput output;  // from the warm-up rep, for the identity check
  };
  std::vector<Cell> cells(4);
  cells[0].engine = cells[1].engine = "singlescan";
  cells[2].engine = cells[3].engine = "sortscan";
  cells[0].dict = cells[2].dict = true;

  SingleScanEngine single_scan;
  SortScanEngine sort_scan;
  std::printf("%12s %6s %10s %10s %10s\n", "engine", "dict", "seconds",
              "scan s", "skipped");
  for (Cell& cell : cells) {
    Engine& engine = !std::strcmp(cell.engine, "singlescan")
                         ? static_cast<Engine&>(single_scan)
                         : static_cast<Engine&>(sort_scan);
    std::vector<double> total_secs, scan_secs;
    // rep -1 is the untimed warm-up (first-touch faults, pool spin-up,
    // and the memoized dictionary build); its output still feeds the
    // identity check.
    for (int rep = -1; rep < reps; ++rep) {
      EngineOptions options;
      options.scan_batch_rows = 1024;
      options.parallel_threads = 1;
      options.dict_encoding = cell.dict;
      RunResult run = TimeEngine(engine, *workflow, fact, options);
      if (!run.ok) return 1;
      if (rep < 0) {
        cell.output = std::move(run.output);
        cell.batches_skipped =
            run.trace->SumCounter(run.root, "batches_skipped");
        continue;
      }
      total_secs.push_back(run.seconds);
      scan_secs.push_back(run.PhaseSeconds({"scan", "partition"}));
    }
    cell.total_stats = RepStats::Of(total_secs);
    cell.scan_stats = RepStats::Of(scan_secs);
    cell.seconds = cell.total_stats.min_seconds;
    cell.scan_seconds = cell.scan_stats.min_seconds;
    std::printf("%12s %6s %10.3f %10.3f %10.0f\n", cell.engine,
                cell.dict ? "on" : "off", cell.seconds, cell.scan_seconds,
                cell.batches_skipped);
  }

  // The contract first: dictionary and raw outputs must agree bit for
  // bit on both engines before any speedup claim means anything.
  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    if (!BitIdentical(cells[i].output, cells[i + 1].output)) {
      std::fprintf(stderr,
                   "FAIL: %s dictionary output differs from the raw "
                   "path (bit-identity contract violated)\n",
                   cells[i].engine);
      return 1;
    }
  }
  std::printf("\nbit-identity check: dict == raw on both engines\n");

  // Sorted input + d0-range filters must produce zone-map skips; zero
  // means the zone maps are broken (or the sort order changed), so fail
  // loudly rather than report a meaningless speedup.
  if (cells[2].batches_skipped <= 0) {
    std::fprintf(stderr,
                 "FAIL: sort/scan dictionary run skipped 0 batches "
                 "(zone maps inactive on sorted input)\n");
    return 1;
  }
  std::printf("zone-map skips (sorted input): %.0f batches\n",
              cells[2].batches_skipped);

  const double speedup_single =
      cells[1].scan_seconds / cells[0].scan_seconds;
  const double speedup_sort = cells[3].scan_seconds / cells[2].scan_seconds;
  std::printf("sort/scan scan-phase speedup (dict vs raw): %.2fx "
              "(target >= 1.40x)\n", speedup_sort);
  std::printf("single-scan scan-phase speedup (dict vs raw): %.2fx\n",
              speedup_single);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::string stats;
    const char* cell_names[] = {"singlescan_dict", "singlescan_raw",
                                "sortscan_dict", "sortscan_raw"};
    for (size_t i = 0; i < cells.size(); ++i) {
      stats += cells[i].total_stats.Json(cell_names[i]);
      stats += cells[i].scan_stats.Json(std::string(cell_names[i]) +
                                        "_scan");
    }
    char buf[4096];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"ablation_dict\",\n"
        "  \"rows\": %zu,\n"
        "  \"batch_rows\": 1024,\n"
        "  \"reps\": %d,\n"
        "  \"hardware_threads\": %d,\n"
        "%s"
        "  \"singlescan_dict_seconds\": %.4f,\n"
        "  \"singlescan_dict_scan_seconds\": %.4f,\n"
        "  \"singlescan_raw_seconds\": %.4f,\n"
        "  \"singlescan_raw_scan_seconds\": %.4f,\n"
        "  \"sortscan_dict_seconds\": %.4f,\n"
        "  \"sortscan_dict_scan_seconds\": %.4f,\n"
        "  \"sortscan_raw_seconds\": %.4f,\n"
        "  \"sortscan_raw_scan_seconds\": %.4f,\n"
        "  \"sortscan_batches_skipped\": %.0f,\n"
        "  \"speedup_singlescan_scan\": %.3f,\n"
        "  \"speedup_sortscan_scan\": %.3f\n"
        "}\n",
        fact.num_rows(), reps, HardwareThreads(), stats.c_str(),
        cells[0].seconds, cells[0].scan_seconds, cells[1].seconds,
        cells[1].scan_seconds, cells[2].seconds, cells[2].scan_seconds,
        cells[3].seconds, cells[3].scan_seconds,
        cells[2].batches_skipped, speedup_single, speedup_sort);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    double base_seconds = 0, base_rows = 0;
    if (!JsonNumber(buffer.str(), "singlescan_dict_scan_seconds",
                    &base_seconds) ||
        !JsonNumber(buffer.str(), "rows", &base_rows) || base_rows <= 0) {
      std::fprintf(stderr,
                   "baseline %s lacks singlescan_dict_scan_seconds/rows\n",
                   baseline_path.c_str());
      return 1;
    }
    // Per-row normalization so a CSM_BENCH_SCALE difference between the
    // baseline machine and this one doesn't read as a regression. The
    // single-scan cell is the gate because its scan phase is pure
    // streaming work and per-row stable across scales; the sort/scan
    // scan phase carries the per-region propagation cost, which is
    // group-count- not row-count-proportional, so at CI's reduced scale
    // its per-row time reads ~30% high (see ablation_vector for the
    // same observation about end-to-end times).
    const double base_per_row = base_seconds / base_rows;
    const double cur_per_row =
        cells[0].scan_seconds / static_cast<double>(fact.num_rows());
    const double ratio = cur_per_row / base_per_row;
    std::printf("dictionary single-scan vs committed baseline: %.2fx "
                "scan per-row (max allowed %.2fx)\n", ratio,
                1.0 + max_regress);
    if (ratio > 1.0 + max_regress) {
      std::fprintf(stderr,
                   "REGRESSION: dictionary single-scan scan per-row "
                   "time %.3gs is %.0f%% over the committed baseline "
                   "%.3gs\n",
                   cur_per_row, (ratio - 1.0) * 100, base_per_row);
      return 1;
    }
  }
  return 0;
}
