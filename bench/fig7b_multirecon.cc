// Figure 7(b) — multi-recon detection alone.
//
// Three child/parent match joins over a fine-grained child region set
// (hour x target /24 x source IP). The child state is large, the
// coordination pays off, and the paper reports sort/scan "significantly
// faster than the alternative database approach".

#include "bench_util.h"
#include "data/netlog.h"
#include "data/queries.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 7(b)", "multi-recon detection (3 child/parent joins)",
              "SortScan significantly faster than DB; SingleScan pays a "
              "large memory footprint");

  auto schema = MakeNetworkLogSchema();
  auto workflow = MakeMultiReconQuery(schema);
  if (!workflow.ok()) return 1;

  NetLogOptions data;
  data.rows = Rows(1000e3);
  data.duration_seconds = 3 * 24 * 3600;
  FactTable fact = GenerateNetLog(schema, data);
  std::printf("log: %s records\n\n", FmtRows(fact.num_rows()).c_str());

  RelationalEngine relational;
  SortScanEngine sort_scan;
  SingleScanEngine single_scan;
  RunResult db = TimeEngine(relational, *workflow, fact);
  RunResult ss = TimeEngine(sort_scan, *workflow, fact);
  RunResult one = TimeEngine(single_scan, *workflow, fact);

  std::printf("%12s %10s %16s\n", "engine", "seconds", "peak entries");
  std::printf("%12s %10.3f %16llu\n", "DB", db.seconds,
              static_cast<unsigned long long>(db.stats.peak_hash_entries));
  std::printf("%12s %10.3f %16llu\n", "SortScan", ss.seconds,
              static_cast<unsigned long long>(ss.stats.peak_hash_entries));
  std::printf("%12s %10.3f %16llu\n", "SingleScan", one.seconds,
              static_cast<unsigned long long>(
                  one.stats.peak_hash_entries));
  std::printf("\nDB / SortScan speedup: %.1fx\n",
              db.seconds / std::max(ss.seconds, 1e-9));
  return 0;
}
