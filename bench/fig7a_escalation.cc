// Figure 7(a) — network escalation detection alone.
//
// The paper's counter-example to its own headline: this query's
// intermediate state is small, so the cost of sorting the raw fact table
// dominates and the simple single-scan algorithm wins; sort/scan "does
// not perform particularly well" here. The paper suggests switching to
// single-scan whenever the estimated footprint fits the budget — which is
// exactly what the footprint model of src/opt enables.

#include "bench_util.h"
#include "data/netlog.h"
#include "data/queries.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 7(a)", "escalation detection (small intermediate state)",
              "SingleScan fastest (no sort); SortScan pays the sort; DB "
              "slowest");

  auto schema = MakeNetworkLogSchema();
  auto workflow = MakeEscalationQuery(schema);
  if (!workflow.ok()) return 1;

  NetLogOptions data;
  data.rows = Rows(1000e3);
  data.duration_seconds = 3 * 24 * 3600;
  FactTable fact = GenerateNetLog(schema, data);
  std::printf("log: %s records\n\n", FmtRows(fact.num_rows()).c_str());

  RelationalEngine relational;
  SortScanEngine sort_scan;
  SingleScanEngine single_scan;
  RunResult db = TimeEngine(relational, *workflow, fact);
  RunResult ss = TimeEngine(sort_scan, *workflow, fact);
  RunResult one = TimeEngine(single_scan, *workflow, fact);

  std::printf("%12s %10s %10s %10s %16s\n", "engine", "total", "sort",
              "scan", "peak entries");
  std::printf("%12s %10.3f %10.3f %10.3f %16llu\n", "DB", db.seconds,
              db.stats.sort_seconds, db.stats.scan_seconds,
              static_cast<unsigned long long>(db.stats.peak_hash_entries));
  std::printf("%12s %10.3f %10.3f %10.3f %16llu\n", "SortScan",
              ss.seconds, ss.stats.sort_seconds, ss.stats.scan_seconds,
              static_cast<unsigned long long>(ss.stats.peak_hash_entries));
  std::printf("%12s %10.3f %10.3f %10.3f %16llu\n", "SingleScan",
              one.seconds, one.stats.sort_seconds, one.stats.scan_seconds,
              static_cast<unsigned long long>(
                  one.stats.peak_hash_entries));
  return 0;
}
