// Incremental append maintenance: patching retained per-region state with
// a 1% delta vs recomputing the whole query from scratch (the PR-7
// tentpole's acceptance workload).
//
// A monitoring query over a synthetic network log keeps running while the
// log grows. Full recompute pays a sort and scan of ALL rows on every
// refresh; Session::AppendAndRefresh sorts only the appended rows, merges
// them into the retained aggregate state, re-finalizes only the dirty
// regions, and re-derives the downstream measures from region-sized
// inputs. The bench reports the patch-vs-recompute speedup (target >= 5x
// for a 1% append) plus the latency of serving the refreshed result from
// the patched cache entry.
//
// Flags:
//   --json FILE          write the result JSON (BENCH_pr7.json)
//   --reps N             best-of-N repetitions (default 3)
//   --baseline FILE      committed BENCH_pr7.json to compare against
//   --max-regress FRAC   fail (exit 1) if the incremental per-row time
//                        regresses more than FRAC vs the baseline
//                        (default 0.10)

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "data/netlog.h"
#include "exec/factory.h"
#include "exec/session.h"
#include "model/schema.h"
#include "workflow/workflow.h"

namespace {

// Dashboard query: hidden per-(hour, source) count, three roll-ups of it,
// a match join against the daily total, and a combined ratio. Every
// measure is self-maintainable or derived, so the append path never has
// to re-scan history.
constexpr char kQuery[] =
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure Busy at (t:hour) = agg count(M) from Count where M > 2;
       measure Hourly at (t:hour) = agg sum(M) from Count;
       measure Daily at (t:day) = agg sum(M) from Count;
       measure Share at (t:hour) = match Daily using parentchild agg sum(M);
       measure Frac at (t:hour) = combine(Hourly, Share)
           as Hourly / Share;)";

bool JsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  std::string json_path, baseline_path;
  int reps = 3;
  double max_regress = 0.10;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--baseline")) {
      if (const char* v = next()) baseline_path = v;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (const char* v = next()) reps = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--max-regress")) {
      if (const char* v = next()) max_regress = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("Incremental append", "delta patch vs full recompute",
              "a 1% append touches ~1% of the regions; patching them "
              "beats re-sorting and re-scanning the other 99%");

  SchemaPtr schema = MakeNetworkLogSchema();
  NetLogOptions data;
  data.rows = Rows(400e3);
  data.duration_seconds = 3 * 24 * 3600;
  data.num_sources = 4000;  // dashboard-sized region tables
  const size_t append_rows = data.rows / 100;  // the 1% delta
  data.rows += append_rows;
  FactTable full = GenerateNetLog(schema, data);
  const size_t base_rows = full.num_rows() - append_rows;
  FactTable delta(schema);
  delta.Reserve(append_rows);
  for (size_t row = base_rows; row < full.num_rows(); ++row) {
    delta.AppendRow(full.dim_row(row), full.measure_row(row));
  }

  auto workflow = Workflow::Parse(schema, kQuery);
  if (!workflow.ok()) {
    std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %s base records + %s appended (1%%), "
              "%zu measures, best of %d\n\n",
              FmtRows(base_rows).c_str(), FmtRows(append_rows).c_str(),
              workflow->measures().size(), reps);

  // --- full recompute: one engine run over base + delta.
  auto engine = MakeEngine(EngineKind::kSortScan);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::vector<double> full_secs;
  // rep -1 is the untimed warm-up rep.
  for (int rep = -1; rep < reps; ++rep) {
    RunResult run = TimeEngine(**engine, *workflow, full);
    if (!run.ok) return 1;
    if (rep >= 0) full_secs.push_back(run.seconds);
  }
  const RepStats full_stats = RepStats::Of(full_secs);
  const double full_seconds = full_stats.min_seconds;

  // --- incremental: cold run over the base, then AppendAndRefresh folds
  // the delta into the retained state; the refreshed answer is served
  // from the patched cache entry. Fresh session + base clone per rep
  // (the append mutates both).
  SessionOptions session_options;
  session_options.cache_capacity = 1;
  session_options.delta_patching = true;
  double patch_seconds = 0, serve_seconds = 0;
  std::vector<double> patch_secs, serve_secs;
  SessionAppendReport report;
  // rep -1 is the untimed warm-up rep (session build, pool spin-up).
  for (int rep = -1; rep < reps; ++rep) {
    FactTable base(schema);
    base.Reserve(base_rows);
    for (size_t row = 0; row < base_rows; ++row) {
      base.AppendRow(full.dim_row(row), full.measure_row(row));
    }
    auto session =
        QuerySession::Create(EngineKind::kSortScan, session_options);
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    auto fail = [](const Status& status) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    };
    if (auto s = (*session)->Submit(*workflow); !s.ok()) {
      return fail(s.status());
    }
    if (auto cold = (*session)->RunPending(base); !cold.ok()) {
      return fail(cold.status());
    }

    Timer timer;
    auto patched = (*session)->AppendAndRefresh(base, delta);
    const double rep_patch = timer.Seconds();
    if (!patched.ok()) return fail(patched.status());
    if (patched->patched_queries != 1) {
      std::fprintf(stderr, "append did not patch the cached query\n");
      return 1;
    }
    if (rep < 0 || rep_patch < patch_seconds) {
      patch_seconds = rep_patch;
      report = *patched;
    }
    if (rep >= 0) patch_secs.push_back(rep_patch);

    if (auto s = (*session)->Submit(*workflow); !s.ok()) {
      return fail(s.status());
    }
    timer.Reset();
    auto warm = (*session)->RunPending(base);
    const double rep_serve = timer.Seconds();
    if (!warm.ok()) return fail(warm.status());
    if ((*session)->last_report().cache_hits != 1) {
      std::fprintf(stderr, "refreshed result missed the cache\n");
      return 1;
    }
    if (rep < 0 || rep_serve < serve_seconds) serve_seconds = rep_serve;
    if (rep >= 0) serve_secs.push_back(rep_serve);
  }
  const RepStats patch_stats = RepStats::Of(patch_secs);
  const RepStats serve_stats = RepStats::Of(serve_secs);
  patch_seconds = patch_stats.min_seconds;
  serve_seconds = serve_stats.min_seconds;

  const double speedup = full_seconds / patch_seconds;
  std::printf("%24s %10s\n", "mode", "seconds");
  std::printf("%24s %10.3f\n", "full recompute", full_seconds);
  std::printf("%24s %10.4f   (%zu dirty regions, %zu patched, "
              "%zu re-derived)\n",
              "incremental patch", patch_seconds, report.dirty_regions,
              report.patched_measures, report.recomputed_measures);
  std::printf("%24s %10.4f   (patched cache entry)\n", "serve refreshed",
              serve_seconds);
  std::printf("\nincremental vs full-recompute speedup: %.1fx "
              "(target >= 5x for a 1%% append)\n", speedup);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::string stats;
    stats += full_stats.Json("full_recompute");
    stats += patch_stats.Json("incremental");
    stats += serve_stats.Json("serve");
    char buf[2048];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"incremental_append\",\n"
                  "  \"rows\": %zu,\n"
                  "  \"append_rows\": %zu,\n"
                  "  \"dirty_regions\": %zu,\n"
                  "  \"reps\": %d,\n"
                  "  \"hardware_threads\": %d,\n"
                  "%s"
                  "  \"full_recompute_seconds\": %.4f,\n"
                  "  \"incremental_seconds\": %.5f,\n"
                  "  \"serve_seconds\": %.5f,\n"
                  "  \"speedup_incremental\": %.3f\n"
                  "}\n",
                  base_rows, append_rows, report.dirty_regions, reps,
                  HardwareThreads(), stats.c_str(), full_seconds,
                  patch_seconds,
                  serve_seconds, speedup);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    double base_seconds = 0, base_rows_json = 0;
    if (!JsonNumber(buffer.str(), "incremental_seconds", &base_seconds) ||
        !JsonNumber(buffer.str(), "rows", &base_rows_json) ||
        base_rows_json <= 0) {
      std::fprintf(stderr, "baseline %s lacks incremental_seconds/rows\n",
                   baseline_path.c_str());
      return 1;
    }
    // Per-row normalization so a CSM_BENCH_SCALE difference between the
    // baseline machine and this one doesn't read as a regression.
    const double base_per_row = base_seconds / base_rows_json;
    const double cur_per_row =
        patch_seconds / static_cast<double>(base_rows);
    const double ratio = cur_per_row / base_per_row;
    std::printf("incremental patch vs committed baseline: %.2fx per-row "
                "(max allowed %.2fx)\n", ratio, 1.0 + max_regress);
    if (ratio > 1.0 + max_regress) {
      std::fprintf(stderr,
                   "REGRESSION: incremental per-row time %.3gs is %.0f%% "
                   "over the committed baseline %.3gs\n",
                   cur_per_row, (ratio - 1.0) * 100, base_per_row);
      return 1;
    }
  }
  return 0;
}
