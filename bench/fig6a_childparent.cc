// Figure 6(a) — Q1, child/parent match combination, dataset size sweep.
//
// One composite measure combines seven child/parent aggregations. The
// paper compares a commercial RDBMS ("DB"), the one-pass sort/scan
// algorithm, and the single-scan algorithm (which they only ran at 2M
// rows — beyond that its memory use is prohibitive). Expected shape:
// sort/scan beats the relational baseline at every size and the gap grows
// with the dataset; single-scan is competitive only while its hash tables
// fit comfortably.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 6(a)", "Q1: seven child/parent match aggregations",
              "SortScan < DB at every size, gap widening; SingleScan only "
              "viable at the smallest size");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto workflow = MakeQ1ChildParent(schema, 7);
  if (!workflow.ok()) {
    std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
    return 1;
  }

  // Paper sizes 2M/4M/16M/64M, scaled 1:40 by default.
  const double kBases[] = {50e3, 100e3, 400e3, 1600e3};
  std::printf("%10s %12s %12s %12s\n", "#records", "DB", "SortScan",
              "SingleScan");
  for (size_t i = 0; i < std::size(kBases); ++i) {
    SyntheticDataOptions data;
    data.rows = Rows(kBases[i]);
    data.seed = 1000 + i;
    FactTable fact = GenerateSyntheticFacts(schema, data);

    RelationalEngine relational;
    SortScanEngine sort_scan;
    RunResult db = TimeEngine(relational, *workflow, fact);
    RunResult ss = TimeEngine(sort_scan, *workflow, fact);

    std::string single = "-";
    if (i == 0) {  // the paper, too, only ran single-scan at 2M
      SingleScanEngine single_scan;
      RunResult one = TimeEngine(single_scan, *workflow, fact);
      if (one.ok) single = std::to_string(one.seconds);
    }
    std::printf("%10s %12.3f %12.3f %12s\n",
                FmtRows(fact.num_rows()).c_str(), db.seconds, ss.seconds,
                single.c_str());
  }
  return 0;
}
