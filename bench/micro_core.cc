// Micro-benchmarks for the performance-critical inner loops: aggregate
// update/merge, hierarchy generalization, region-key hashing, scalar
// expression evaluation, and the external sorter.

#include <benchmark/benchmark.h>

#include "agg/aggregate.h"
#include "common/hash.h"
#include "common/rng.h"
#include "expr/scalar_expr.h"
#include "model/schema.h"
#include "storage/external_sorter.h"
#include "storage/temp_file.h"
#include "data/synthetic.h"

namespace csm {
namespace {

void BM_AggUpdate(benchmark::State& state) {
  const AggKind kind = static_cast<AggKind>(state.range(0));
  Rng rng(1);
  std::vector<double> values(4096);
  for (double& v : values) v = static_cast<double>(rng.Uniform(1000));
  AggState agg;
  AggInit(kind, &agg);
  size_t i = 0;
  for (auto _ : state) {
    AggUpdate(kind, &agg, values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(AggFinalize(kind, agg));
}
BENCHMARK(BM_AggUpdate)
    ->Arg(static_cast<int>(AggKind::kCount))
    ->Arg(static_cast<int>(AggKind::kSum))
    ->Arg(static_cast<int>(AggKind::kAvg))
    ->Arg(static_cast<int>(AggKind::kVar));

void BM_AggMerge(benchmark::State& state) {
  AggState a, b;
  AggInit(AggKind::kVar, &a);
  AggInit(AggKind::kVar, &b);
  for (int i = 0; i < 100; ++i) {
    AggUpdate(AggKind::kVar, &a, i);
    AggUpdate(AggKind::kVar, &b, i * 2);
  }
  for (auto _ : state) {
    AggState copy;
    copy.a = a.a;
    copy.b = a.b;
    copy.c = a.c;
    AggMerge(AggKind::kVar, &copy, b);
    benchmark::DoNotOptimize(copy.c);
  }
}
BENCHMARK(BM_AggMerge);

void BM_Generalize(benchmark::State& state) {
  auto h = MakeTimeHierarchy(1e7);
  Rng rng(2);
  std::vector<Value> values(4096);
  for (Value& v : values) v = rng.Uniform(10000000);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->Generalize(values[i++ & 4095], 0, 2));
  }
}
BENCHMARK(BM_Generalize);

void BM_HashRegionKey(benchmark::State& state) {
  Rng rng(3);
  std::vector<Value> key(4);
  for (Value& v : key) v = rng.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashSpan(key.data(), key.size()));
    key[0]++;
  }
}
BENCHMARK(BM_HashRegionKey);

void BM_ScalarExprEval(benchmark::State& state) {
  auto parsed =
      ScalarExpr::Parse("if(a > 5 && b < 100, a * 2 + b / 3, 0)");
  auto bound = BoundExpr::Bind(**parsed, {"a", "b"});
  double slots[2] = {7, 42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bound->Eval(slots));
    slots[0] += 1;
    if (slots[0] > 100) slots[0] = 0;
  }
}
BENCHMARK(BM_ScalarExprEval);

void BM_ExternalSort(benchmark::State& state) {
  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  SyntheticDataOptions options;
  options.rows = static_cast<size_t>(state.range(0));
  auto key = SortKey::Parse(*schema, "<d0:L0, d1:L0>");
  auto temp = TempDir::Make();
  const size_t budget = state.range(1) ? (1 << 20) : (1u << 30);
  for (auto _ : state) {
    state.PauseTiming();
    FactTable fact = GenerateSyntheticFacts(schema, options);
    state.ResumeTiming();
    auto sorted =
        SortFactTable(std::move(fact), *key, budget, &*temp, nullptr);
    benchmark::DoNotOptimize(sorted->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * options.rows);
}
BENCHMARK(BM_ExternalSort)
    ->Args({100000, 0})   // in-memory
    ->Args({100000, 1})   // forced spill
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace csm

BENCHMARK_MAIN();
