// Ablation: morsel-driven work-stealing scheduler (the PR-8 operator
// pipeline).
//
// Sweeps the shared-pool executor count and the morsel size over the
// PR-3/PR-4 reference workload (400k synthetic rows, 4 dims,
// Q1(7 children)) on the single-scan engine — the engine whose scan
// phase the scheduler parallelizes most directly — and reports
// end-to-end plus scan-phase times per cell. Results are required to be
// bit-identical across the thread sweep (the scheduler merges
// per-morsel partials in morsel-index order), which this bench asserts
// as a cheap cross-check of the determinism suite.
//
// Flags:
//   --json FILE          write the flat result JSON (BENCH_pr8.json)
//   --reps N             best-of-N repetitions (default 3)
//   --baseline FILE      committed BENCH_pr8.json to compare against
//   --max-regress FRAC   fail (exit 1) if the t1 default-morsel
//                        end-to-end per-row time regresses more than
//                        FRAC vs the baseline (default 0.10)

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"

namespace {

// Minimal flat-JSON number lookup ("\"key\": <number>"), enough for the
// files this bench writes itself.
bool JsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  std::string json_path, baseline_path;
  int reps = 3;
  double max_regress = 0.10;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--baseline")) {
      if (const char* v = next()) baseline_path = v;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (const char* v = next()) reps = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--max-regress")) {
      if (const char* v = next()) max_regress = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("Ablation", "morsel scheduler thread x morsel-size sweep",
              "scan phase scales with executors until cores saturate; "
              "morsel size trades dispatch overhead against stealing "
              "granularity");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto workflow = MakeQ1ChildParent(schema, 7);
  if (!workflow.ok()) return 1;

  SyntheticDataOptions data;
  data.rows = Rows(400e3);
  data.seed = 8100;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records, 4 dims, Q1(7 children), "
              "batch=1024, best of %d\n\n",
              FmtRows(fact.num_rows()).c_str(), reps);

  struct Cell {
    int threads;
    size_t morsel_rows;
    double seconds = 0;       // min over timed reps
    double scan_seconds = 0;  // min over timed reps
    RepStats total_stats;
    RepStats scan_stats;
  };
  // Thread sweep at the default morsel size, then a morsel sweep at the
  // widest thread count.
  std::vector<Cell> cells = {{1, 16384},  {2, 16384},  {4, 16384},
                             {8, 16384},  {8, 1024},   {8, 131072}};

  SingleScanEngine engine;
  std::printf("%8s %10s %10s %10s\n", "threads", "morsel", "seconds",
              "scan s");
  for (Cell& cell : cells) {
    std::vector<double> total_secs, scan_secs;
    // rep -1 is the untimed warm-up rep.
    for (int rep = -1; rep < reps; ++rep) {
      EngineOptions options;
      options.scan_batch_rows = 1024;
      options.parallel_threads = cell.threads;
      options.morsel_rows = cell.morsel_rows;
      RunResult run = TimeEngine(engine, *workflow, fact, options);
      if (!run.ok) return 1;
      if (rep < 0) continue;
      total_secs.push_back(run.seconds);
      scan_secs.push_back(run.PhaseSeconds({"scan", "partition"}));
    }
    cell.total_stats = RepStats::Of(total_secs);
    cell.scan_stats = RepStats::Of(scan_secs);
    cell.seconds = cell.total_stats.min_seconds;
    cell.scan_seconds = cell.scan_stats.min_seconds;
    std::printf("%8d %10zu %10.3f %10.3f\n", cell.threads,
                cell.morsel_rows, cell.seconds, cell.scan_seconds);
  }

  const Cell& t1 = cells[0];
  const Cell& t8 = cells[3];
  const double speedup_t8 = t1.seconds / t8.seconds;
  const double speedup_scan_t8 = t1.scan_seconds / t8.scan_seconds;
  std::printf("\nend-to-end speedup t8 vs t1: %.2fx\n", speedup_t8);
  std::printf("scan-phase speedup t8 vs t1: %.2fx (target >= 2.00x on "
              "a multi-core host)\n", speedup_scan_t8);
  if (HardwareThreads() == 1) {
    std::printf("NOTE: single-core host (hardware_threads=1) — the t8 "
                "cells measure scheduler overhead, not scaling; a t8 "
                "\"speedup\" below 1.0x here is expected and is not a "
                "regression\n");
  }

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"ablation_morsel\",\n"
        << "  \"rows\": " << fact.num_rows() << ",\n"
        << "  \"batch_rows\": 1024,\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"hardware_threads\": " << HardwareThreads() << ",\n";
    for (const Cell& cell : cells) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  \"t%d_m%zu_seconds\": %.4f,\n"
                    "  \"t%d_m%zu_scan_seconds\": %.4f,\n",
                    cell.threads, cell.morsel_rows, cell.seconds,
                    cell.threads, cell.morsel_rows, cell.scan_seconds);
      out << buf;
      char name[64];
      std::snprintf(name, sizeof(name), "t%d_m%zu", cell.threads,
                    cell.morsel_rows);
      out << cell.total_stats.Json(name)
          << cell.scan_stats.Json(std::string(name) + "_scan");
    }
    char tail[128];
    std::snprintf(tail, sizeof(tail),
                  "  \"speedup_t8_end_to_end\": %.3f,\n"
                  "  \"speedup_t8_scan\": %.3f\n}\n",
                  speedup_t8, speedup_scan_t8);
    out << tail;
    std::ofstream file(json_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    file << out.str();
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    double base_seconds = 0, base_rows = 0;
    if (!JsonNumber(buffer.str(), "t1_m16384_seconds", &base_seconds) ||
        !JsonNumber(buffer.str(), "rows", &base_rows) || base_rows <= 0) {
      std::fprintf(stderr, "baseline %s lacks t1_m16384_seconds/rows\n",
                   baseline_path.c_str());
      return 1;
    }
    // Per-row normalization so a CSM_BENCH_SCALE difference between the
    // baseline machine and this one doesn't read as a regression.
    const double base_per_row = base_seconds / base_rows;
    const double cur_per_row =
        t1.seconds / static_cast<double>(fact.num_rows());
    const double ratio = cur_per_row / base_per_row;
    std::printf("t1 single-scan vs committed baseline: %.2fx per-row "
                "(max allowed %.2fx)\n", ratio, 1.0 + max_regress);
    if (ratio > 1.0 + max_regress) {
      std::fprintf(stderr,
                   "REGRESSION: t1 single-scan per-row time %.3gs is "
                   "%.0f%% over the committed baseline %.3gs\n",
                   cur_per_row, (ratio - 1.0) * 100, base_per_row);
      return 1;
    }
  }
  return 0;
}
