// Ablation: vectorized scan kernels (the PR-9 selection-vector layer).
//
// Runs a filtered multi-measure workflow (four basic measures, three with
// kernel-compilable `where` predicates) over 400k synthetic rows on the
// single-scan and sort/scan engines, once with the vectorized path
// (predicate kernels + batch key encoding + bulk FoldBatch probes /
// run-detected sorted probes) and once with `EngineOptions::vectorized`
// off (the per-row interpreter reference). The two paths are required to
// be bit-identical, which this bench asserts before reporting any
// timing; the headline number is the scan-phase speedup of the
// vectorized path (target >= 1.30x at t1).
//
// Flags:
//   --json FILE          write the flat result JSON (BENCH_pr9.json)
//   --reps N             best-of-N repetitions (default 3)
//   --baseline FILE      committed BENCH_pr9.json to compare against
//   --max-regress FRAC   fail (exit 1) if the vectorized single-scan
//                        scan-phase per-row time regresses more than
//                        FRAC vs the baseline (default 0.10)

#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"

namespace {

// Minimal flat-JSON number lookup ("\"key\": <number>"), enough for the
// files this bench writes itself.
bool JsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

// Exact (bit-level) table comparison: the vectorized path's contract is
// bit-identity with the interpreter, not tolerance-level agreement.
bool BitIdentical(const csm::EvalOutput& a, const csm::EvalOutput& b) {
  using csm::MeasureTable;
  using csm::Value;
  if (a.tables.size() != b.tables.size()) return false;
  for (const auto& [name, ta] : a.tables) {
    const MeasureTable* tb = b.FindTable(name);
    if (tb == nullptr || ta.num_rows() != tb->num_rows()) return false;
    auto key_map = [](const MeasureTable& t) {
      std::map<std::vector<Value>, uint64_t> m;
      for (size_t row = 0; row < t.num_rows(); ++row) {
        uint64_t bits;
        const double v = t.value(row);
        std::memcpy(&bits, &v, sizeof(bits));
        m.emplace(std::vector<Value>(t.key_row(row),
                                     t.key_row(row) + t.num_dims()),
                  bits);
      }
      return m;
    };
    if (key_map(ta) != key_map(*tb)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  std::string json_path, baseline_path;
  int reps = 3;
  double max_regress = 0.10;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--baseline")) {
      if (const char* v = next()) baseline_path = v;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (const char* v = next()) reps = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--max-regress")) {
      if (const char* v = next()) max_regress = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("Ablation", "vectorized scan kernels vs per-row interpreter",
              "predicate kernels + batch key encoding + bulk probes beat "
              "the row-at-a-time scan on filtered multi-measure "
              "workloads; results are bit-identical by contract");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  // Filtered multi-measure workload: every `where` below is in the
  // predicate-kernel fragment (comparisons and AND over fact columns),
  // so the vectorized scan runs fully kernel-compiled. The unfiltered
  // TotalSum keeps the no-filter fast path in the measurement too.
  auto workflow = Workflow::Parse(schema, R"(
    measure FilteredSum at (d0:L1, d1:L1) =
        agg sum(m) from FACT where m < 60;
    measure FilteredCount at (d0:L1, d2:L1) =
        agg count(*) from FACT where m >= 20 && d3 < 500;
    measure BandMax at (d0:L2, d1:L1) =
        agg max(m) from FACT where d2 >= 200 && d2 < 800;
    measure TotalSum at (d0:L1) = agg sum(m) from FACT;
  )");
  if (!workflow.ok()) {
    std::fprintf(stderr, "workflow: %s\n",
                 workflow.status().ToString().c_str());
    return 1;
  }

  SyntheticDataOptions data;
  data.rows = Rows(400e3);
  data.seed = 9100;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records, 4 dims, 4 measures (3 filtered), "
              "batch=1024, t1, best of %d\n\n",
              FmtRows(fact.num_rows()).c_str(), reps);

  struct Cell {
    const char* engine = "";
    bool vectorized = false;
    double seconds = 0;
    double scan_seconds = 0;
    EvalOutput output;  // from the first rep, for the identity check
  };
  std::vector<Cell> cells(4);
  cells[0].engine = cells[1].engine = "singlescan";
  cells[2].engine = cells[3].engine = "sortscan";
  cells[0].vectorized = cells[2].vectorized = true;

  SingleScanEngine single_scan;
  SortScanEngine sort_scan;
  std::printf("%12s %6s %10s %10s\n", "engine", "vec", "seconds",
              "scan s");
  for (Cell& cell : cells) {
    Engine& engine = !std::strcmp(cell.engine, "singlescan")
                         ? static_cast<Engine&>(single_scan)
                         : static_cast<Engine&>(sort_scan);
    for (int rep = 0; rep < reps; ++rep) {
      EngineOptions options;
      options.scan_batch_rows = 1024;
      options.parallel_threads = 1;
      options.vectorized = cell.vectorized;
      RunResult run = TimeEngine(engine, *workflow, fact, options);
      if (!run.ok) return 1;
      const double scan = run.PhaseSeconds({"scan", "partition"});
      if (rep == 0 || run.seconds < cell.seconds) {
        cell.seconds = run.seconds;
      }
      if (rep == 0 || scan < cell.scan_seconds) {
        cell.scan_seconds = scan;
      }
      if (rep == 0) cell.output = std::move(run.output);
    }
    std::printf("%12s %6s %10.3f %10.3f\n", cell.engine,
                cell.vectorized ? "on" : "off", cell.seconds,
                cell.scan_seconds);
  }

  // The contract first: vectorized and scalar outputs must agree bit for
  // bit on both engines before any speedup claim means anything.
  for (size_t i = 0; i + 1 < cells.size(); i += 2) {
    if (!BitIdentical(cells[i].output, cells[i + 1].output)) {
      std::fprintf(stderr,
                   "FAIL: %s vectorized output differs from the scalar "
                   "path (bit-identity contract violated)\n",
                   cells[i].engine);
      return 1;
    }
  }
  std::printf("\nbit-identity check: vectorized == scalar on both "
              "engines\n");

  const double speedup_single =
      cells[1].scan_seconds / cells[0].scan_seconds;
  const double speedup_sort = cells[3].scan_seconds / cells[2].scan_seconds;
  std::printf("single-scan scan-phase speedup (vec vs scalar): %.2fx "
              "(target >= 1.30x)\n", speedup_single);
  std::printf("sort/scan scan-phase speedup (vec vs scalar): %.2fx\n",
              speedup_sort);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"ablation_vector\",\n"
        "  \"rows\": %zu,\n"
        "  \"batch_rows\": 1024,\n"
        "  \"reps\": %d,\n"
        "  \"hardware_threads\": %d,\n"
        "  \"singlescan_vec_seconds\": %.4f,\n"
        "  \"singlescan_vec_scan_seconds\": %.4f,\n"
        "  \"singlescan_scalar_seconds\": %.4f,\n"
        "  \"singlescan_scalar_scan_seconds\": %.4f,\n"
        "  \"sortscan_vec_seconds\": %.4f,\n"
        "  \"sortscan_vec_scan_seconds\": %.4f,\n"
        "  \"sortscan_scalar_seconds\": %.4f,\n"
        "  \"sortscan_scalar_scan_seconds\": %.4f,\n"
        "  \"speedup_singlescan_scan\": %.3f,\n"
        "  \"speedup_sortscan_scan\": %.3f\n"
        "}\n",
        fact.num_rows(), reps, HardwareThreads(), cells[0].seconds,
        cells[0].scan_seconds, cells[1].seconds, cells[1].scan_seconds,
        cells[2].seconds, cells[2].scan_seconds, cells[3].seconds,
        cells[3].scan_seconds, speedup_single, speedup_sort);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    double base_seconds = 0, base_rows = 0;
    if (!JsonNumber(buffer.str(), "singlescan_vec_scan_seconds",
                    &base_seconds) ||
        !JsonNumber(buffer.str(), "rows", &base_rows) || base_rows <= 0) {
      std::fprintf(stderr,
                   "baseline %s lacks singlescan_vec_scan_seconds/rows\n",
                   baseline_path.c_str());
      return 1;
    }
    // Per-row normalization so a CSM_BENCH_SCALE difference between the
    // baseline machine and this one doesn't read as a regression. The
    // SCAN phase is what per-row comparison makes portable across
    // scales: total time carries fixed per-run costs (plan, table
    // setup, group finalization ~ group count, which does not shrink
    // with the row count), so at CI's 0.25 scale the end-to-end
    // per-row time reads ~10% high while the scan per-row is stable.
    const double base_per_row = base_seconds / base_rows;
    const double cur_per_row =
        cells[0].scan_seconds / static_cast<double>(fact.num_rows());
    const double ratio = cur_per_row / base_per_row;
    std::printf("vectorized single-scan vs committed baseline: %.2fx "
                "scan per-row (max allowed %.2fx)\n", ratio,
                1.0 + max_regress);
    if (ratio > 1.0 + max_regress) {
      std::fprintf(stderr,
                   "REGRESSION: vectorized single-scan scan per-row "
                   "time %.3gs is %.0f%% over the committed baseline "
                   "%.3gs\n",
                   cur_per_row, (ratio - 1.0) * 100, base_per_row);
      return 1;
    }
  }
  return 0;
}
