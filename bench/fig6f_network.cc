// Figure 6(f) — both HoneyNet analyses (escalation detection + multi-
// recon detection) fused into a single aggregation workflow, on the
// network attack log.
//
// Because the workflow expresses both analyses at once, the sort/scan
// engine computes everything in one sorted pass; the relational baseline
// evaluates query by query. This is where the paper reports an order of
// magnitude improvement.

#include "bench_util.h"
#include "data/netlog.h"
#include "data/queries.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 6(f)", "combined escalation + multi-recon query",
              "SortScan roughly an order of magnitude below DB; "
              "SingleScan in between (no sort, but larger memory)");

  auto schema = MakeNetworkLogSchema();
  auto workflow = MakeCombinedNetworkQuery(schema);
  if (!workflow.ok()) {
    std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
    return 1;
  }

  NetLogOptions data;
  data.rows = Rows(1000e3);
  data.duration_seconds = 3 * 24 * 3600;
  FactTable fact = GenerateNetLog(schema, data);
  std::printf("log: %s records over %llu hours\n\n",
              FmtRows(fact.num_rows()).c_str(),
              static_cast<unsigned long long>(
                  data.duration_seconds / 3600));

  RelationalEngine relational;
  SortScanEngine sort_scan;
  SingleScanEngine single_scan;
  RunResult db = TimeEngine(relational, *workflow, fact);
  RunResult ss = TimeEngine(sort_scan, *workflow, fact);
  RunResult one = TimeEngine(single_scan, *workflow, fact);

  std::printf("%12s %10s %16s\n", "engine", "seconds", "peak entries");
  std::printf("%12s %10.3f %16llu\n", "DB", db.seconds,
              static_cast<unsigned long long>(db.stats.peak_hash_entries));
  std::printf("%12s %10.3f %16llu\n", "SortScan", ss.seconds,
              static_cast<unsigned long long>(ss.stats.peak_hash_entries));
  std::printf("%12s %10.3f %16llu\n", "SingleScan", one.seconds,
              static_cast<unsigned long long>(
                  one.stats.peak_hash_entries));
  std::printf("\nDB / SortScan speedup: %.1fx\n",
              db.seconds / std::max(ss.seconds, 1e-9));
  return 0;
}
