// Sort-order ablation (§6 and DESIGN.md E9): how much the choice of sort
// order matters, and how well the optimizer's footprint model predicts
// runtime memory.
//
// Compares, on the running-example workflow: the brute-force optimum, the
// greedy optimizer's pick, the engine's default heuristic, and a
// deliberately bad order — each with estimated footprint, measured peak
// entries, and wall time. The early-flush ablation: a bad order disables
// early flushing and memory balloons to the full region count.

#include "bench_util.h"
#include "data/netlog.h"
#include "data/queries.h"
#include "exec/sort_scan.h"
#include "opt/footprint.h"
#include "opt/sort_order.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Opt", "sort-order search and early-flush ablation",
              "brute-force ≈ greedy ≪ bad order in footprint; model ranks "
              "orders like the measured peaks");

  auto schema = MakeNetworkLogSchema(1e6, 1e5);
  auto workflow = MakeRunningExampleQuery(schema);
  if (!workflow.ok()) return 1;

  NetLogOptions data;
  data.rows = Rows(1000e3);
  data.duration_seconds = 3 * 24 * 3600;
  FactTable fact = GenerateNetLog(schema, data);
  std::printf("log: %s records\n\n", FmtRows(fact.num_rows()).c_str());

  auto brute = BruteForceSortKey(*workflow);
  auto greedy = GreedySortKey(*workflow);
  auto bad = SortKey::Parse(*schema, "<P:port, V:ip>");
  if (!brute.ok() || !greedy.ok() || !bad.ok()) return 1;

  struct Candidate {
    const char* label;
    SortKey key;
  } candidates[] = {
      {"brute-force", *brute},
      {"greedy", *greedy},
      {"default", SortScanEngine::DefaultSortKey(*workflow)},
      {"bad-order", *bad},
  };

  std::printf("%12s %-26s %14s %14s %10s\n", "strategy", "order",
              "est. entries", "peak entries", "seconds");
  for (const Candidate& c : candidates) {
    auto estimate = EstimateFootprint(*workflow, c.key);
    if (!estimate.ok()) return 1;
    EngineOptions options;
    options.sort_key = c.key;
    SortScanEngine engine;
    RunResult run = TimeEngine(engine, *workflow, fact, options);
    if (!run.ok) return 1;
    std::printf("%12s %-26s %14llu %14llu %10.3f\n", c.label,
                c.key.ToString(*schema).c_str(),
                static_cast<unsigned long long>(estimate->total_entries),
                static_cast<unsigned long long>(
                    run.stats.peak_hash_entries),
                run.seconds);
  }
  return 0;
}
