// Extension bench: partitioned parallel sort/scan (the paper's §1 future
// work). Thread sweep over the multi-recon workload, which partitions
// cleanly on the target-network dimension.

#include <thread>

#include "bench_util.h"
#include "data/netlog.h"
#include "data/queries.h"
#include "exec/parallel.h"
#include "exec/sort_scan.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Parallel", "partitioned sort/scan thread sweep",
              "near-linear speedup until cores saturate (partitions are "
              "fully independent)");

  auto schema = MakeNetworkLogSchema();
  auto workflow = MakeMultiReconQuery(schema);
  if (!workflow.ok()) return 1;

  NetLogOptions data;
  data.rows = Rows(1000e3);
  FactTable fact = GenerateNetLog(schema, data);
  std::printf("log: %s records (%u hardware threads)\n\n",
              FmtRows(fact.num_rows()).c_str(),
              std::thread::hardware_concurrency());

  SortScanEngine sequential;
  RunResult base = TimeEngine(sequential, *workflow, fact);
  if (!base.ok) return 1;
  std::printf("%10s %10s %10s\n", "threads", "seconds", "speedup");
  std::printf("%10s %10.3f %10s\n", "(seq)", base.seconds, "1.00");
  for (int threads : {2, 4, 8}) {
    ParallelSortScanEngine parallel;
    EngineOptions options;
    options.parallel_threads = threads;
    RunResult run = TimeEngine(parallel, *workflow, fact, options);
    if (!run.ok) return 1;
    std::printf("%10d %10.3f %10.2f\n", threads, run.seconds,
                base.seconds / run.seconds);
  }
  return 0;
}
