// Ablation: flat aggregation hash tables + parallel external sort (the
// measure hot path).
//
// Runs the PR-3 reference workload — 400k synthetic rows, 4 dims,
// Q1(7 children) — through sort/scan and single-scan with the flat
// open-addressing AggTable/FlatKeyMap state (vs the std::map /
// vector-keyed unordered_map state it replaced) and reports best-of-N
// end-to-end and scan-phase times. The committed pr3_* constants are the
// same workload measured on the same machine at the PR 3 head, so the
// speedup_* fields are the tentpole's acceptance numbers
// (>=1.3x sort/scan end-to-end, >=1.5x single-scan scan phase).
//
// Flags:
//   --json FILE          write the flat result JSON (BENCH_pr4.json)
//   --reps N             best-of-N repetitions (default 3)
//   --baseline FILE      committed BENCH_pr4.json to compare against
//   --max-regress FRAC   fail (exit 1) if sort/scan end-to-end per-row
//                        time regresses more than FRAC vs the baseline
//                        (default 0.10)

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"

namespace {

// PR 3 head, this machine, Release, CSM_BENCH_SCALE=1 (400k rows),
// batch_rows=1024: the std::map-based sort/scan and the
// unordered_map<vector<Value>>-based single-scan.
constexpr double kPr3SortScanSeconds = 0.852;
constexpr double kPr3SortScanScanSeconds = 0.667;
constexpr double kPr3SingleScanSeconds = 1.736;
constexpr double kPr3SingleScanScanSeconds = 1.094;

// Minimal flat-JSON number lookup ("\"key\": <number>"), enough for the
// files this bench writes itself.
bool JsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  std::string json_path, baseline_path;
  int reps = 3;
  double max_regress = 0.10;
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--baseline")) {
      if (const char* v = next()) baseline_path = v;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (const char* v = next()) reps = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--max-regress")) {
      if (const char* v = next()) max_regress = std::atof(v);
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("Ablation", "flat agg hash tables + parallel external sort",
              "flat open-addressing state beats node-based maps on both "
              "streaming engines; sort runs generate on parallel workers");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto workflow = MakeQ1ChildParent(schema, 7);
  if (!workflow.ok()) return 1;

  SyntheticDataOptions data;
  data.rows = Rows(400e3);
  data.seed = 8100;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records, 4 dims, Q1(7 children), "
              "batch=1024, best of %d\n\n",
              FmtRows(fact.num_rows()).c_str(), reps);

  struct EngineCase {
    const char* label;
    Engine* engine;
    double pr3_seconds;
    double pr3_scan_seconds;
    double seconds = 0;       // min over timed reps
    double scan_seconds = 0;  // min over timed reps
    RepStats total_stats;
    RepStats scan_stats;
  };
  SortScanEngine sort_scan;
  SingleScanEngine single_scan;
  EngineCase engines[] = {
      {"sortscan", &sort_scan, kPr3SortScanSeconds,
       kPr3SortScanScanSeconds},
      {"singlescan", &single_scan, kPr3SingleScanSeconds,
       kPr3SingleScanScanSeconds}};

  std::printf("%12s %10s %10s %14s %14s\n", "engine", "seconds", "scan s",
              "pr3 end2end", "pr3 scan");
  for (EngineCase& e : engines) {
    std::vector<double> total_secs, scan_secs;
    // rep -1 is the untimed warm-up rep.
    for (int rep = -1; rep < reps; ++rep) {
      EngineOptions options;
      options.scan_batch_rows = 1024;
      RunResult run = TimeEngine(*e.engine, *workflow, fact, options);
      if (!run.ok) return 1;
      if (rep < 0) {
        if (trace) std::printf("%s\n", run.trace->ToTreeString().c_str());
        continue;
      }
      total_secs.push_back(run.seconds);
      scan_secs.push_back(run.PhaseSeconds({"scan"}));
    }
    e.total_stats = RepStats::Of(total_secs);
    e.scan_stats = RepStats::Of(scan_secs);
    e.seconds = e.total_stats.min_seconds;
    e.scan_seconds = e.scan_stats.min_seconds;
    std::printf("%12s %10.3f %10.3f %13.2fx %13.2fx\n", e.label,
                e.seconds, e.scan_seconds, e.pr3_seconds / e.seconds,
                e.pr3_scan_seconds / e.scan_seconds);
  }
  const double speedup_sortscan = engines[0].pr3_seconds /
                                  engines[0].seconds;
  const double speedup_singlescan_scan =
      engines[1].pr3_scan_seconds / engines[1].scan_seconds;
  std::printf("\nsort/scan end-to-end speedup vs PR3: %.2fx "
              "(target >= 1.30x)\n", speedup_sortscan);
  std::printf("single-scan scan-phase speedup vs PR3: %.2fx "
              "(target >= 1.50x)\n", speedup_singlescan_scan);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::string stats;
    stats += engines[0].total_stats.Json("sortscan");
    stats += engines[0].scan_stats.Json("sortscan_scan");
    stats += engines[1].total_stats.Json("singlescan");
    stats += engines[1].scan_stats.Json("singlescan_scan");
    char buf[4096];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"ablation_agg_table\",\n"
        "  \"rows\": %zu,\n"
        "  \"batch_rows\": 1024,\n"
        "  \"reps\": %d,\n"
        "  \"hardware_threads\": %d,\n"
        "%s"
        "  \"sortscan_seconds\": %.4f,\n"
        "  \"sortscan_scan_seconds\": %.4f,\n"
        "  \"singlescan_seconds\": %.4f,\n"
        "  \"singlescan_scan_seconds\": %.4f,\n"
        "  \"pr3_sortscan_seconds\": %.4f,\n"
        "  \"pr3_sortscan_scan_seconds\": %.4f,\n"
        "  \"pr3_singlescan_seconds\": %.4f,\n"
        "  \"pr3_singlescan_scan_seconds\": %.4f,\n"
        "  \"speedup_sortscan_end_to_end\": %.3f,\n"
        "  \"speedup_singlescan_scan\": %.3f\n"
        "}\n",
        fact.num_rows(), reps, HardwareThreads(), stats.c_str(),
        engines[0].seconds,
        engines[0].scan_seconds, engines[1].seconds,
        engines[1].scan_seconds, kPr3SortScanSeconds,
        kPr3SortScanScanSeconds, kPr3SingleScanSeconds,
        kPr3SingleScanScanSeconds, speedup_sortscan,
        speedup_singlescan_scan);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    double base_seconds = 0, base_rows = 0;
    if (!JsonNumber(buffer.str(), "sortscan_seconds", &base_seconds) ||
        !JsonNumber(buffer.str(), "rows", &base_rows) || base_rows <= 0) {
      std::fprintf(stderr, "baseline %s lacks sortscan_seconds/rows\n",
                   baseline_path.c_str());
      return 1;
    }
    // Per-row normalization so a CSM_BENCH_SCALE difference between the
    // baseline machine and this one doesn't read as a regression.
    const double base_per_row = base_seconds / base_rows;
    const double cur_per_row =
        engines[0].seconds / static_cast<double>(fact.num_rows());
    const double ratio = cur_per_row / base_per_row;
    std::printf("sort/scan vs committed baseline: %.2fx per-row "
                "(max allowed %.2fx)\n", ratio, 1.0 + max_regress);
    if (ratio > 1.0 + max_regress) {
      std::fprintf(stderr,
                   "REGRESSION: sort/scan per-row time %.3gs is %.0f%% "
                   "over the committed baseline %.3gs\n",
                   cur_per_row, (ratio - 1.0) * 100, base_per_row);
      return 1;
    }
  }
  return 0;
}
