// Figure 6(b) — Q2, nested sliding windows (sibling chains), size sweep.
//
// A measure computed through 2 and 7 levels of nested moving-window
// aggregation. In the RDBMS this is nested analytic-function queries, one
// evaluation per level; in the sort/scan engine the whole chain pipelines
// through one scan. Expected shape: SortScan below DB everywhere, and the
// 7-chain barely costlier than the 2-chain for SortScan while DB grows
// with nesting depth.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 6(b)", "Q2: nested sliding windows, 2-chain vs 7-chain",
              "SortScan < DB for all sizes; SortScan(7) ≈ SortScan(2) "
              "while DB(7) > DB(2)");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto chain2 = MakeQ2SiblingChain(schema, 2);
  auto chain7 = MakeQ2SiblingChain(schema, 7);
  if (!chain2.ok() || !chain7.ok()) return 1;

  const double kBases[] = {50e3, 100e3, 400e3, 1600e3};
  std::printf("%10s %14s %14s %14s %14s\n", "#records", "DB(2-chain)",
              "SortScan(2)", "DB(7-chain)", "SortScan(7)");
  for (size_t i = 0; i < std::size(kBases); ++i) {
    SyntheticDataOptions data;
    data.rows = Rows(kBases[i]);
    data.seed = 2000 + i;
    FactTable fact = GenerateSyntheticFacts(schema, data);

    RelationalEngine db2, db7;
    SortScanEngine ss2, ss7;
    RunResult r_db2 = TimeEngine(db2, *chain2, fact);
    RunResult r_ss2 = TimeEngine(ss2, *chain2, fact);
    RunResult r_db7 = TimeEngine(db7, *chain7, fact);
    RunResult r_ss7 = TimeEngine(ss7, *chain7, fact);
    std::printf("%10s %14.3f %14.3f %14.3f %14.3f\n",
                FmtRows(fact.num_rows()).c_str(), r_db2.seconds,
                r_ss2.seconds, r_db7.seconds, r_ss7.seconds);
  }
  return 0;
}
