// Ablation: the columnar scan batch size of the streaming engines
// (EngineOptions::scan_batch_rows).
//
// batch=1 is record-at-a-time execution — the pre-batching pipeline,
// where γ runs once per record per consumer granularity. Larger batches
// turn hierarchy mapping into per-dimension column sweeps, amortize the
// hash-table touch pattern, and align watermark-propagation rounds with
// batch boundaries. This sweep shows the scan-phase speedup and the
// footprint cost of propagating less often. Run with several engines to
// confirm the win is pipeline-wide, not sort/scan-specific.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Ablation", "columnar scan batch size (scan_batch_rows)",
              "batch=1 reproduces record-at-a-time cost; batches >=256 "
              "amortize hierarchy mapping and hash updates");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto workflow = MakeQ1ChildParent(schema, 7);
  if (!workflow.ok()) return 1;

  SyntheticDataOptions data;
  data.rows = Rows(400e3);
  data.seed = 8100;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records, 4 dims, Q1(7 children)\n\n",
              FmtRows(fact.num_rows()).c_str());

  struct EngineCase {
    const char* label;
    Engine* engine;
  };
  SortScanEngine sort_scan;
  SingleScanEngine single_scan;
  EngineCase engines[] = {{"sortscan", &sort_scan},
                          {"singlescan", &single_scan}};

  for (const EngineCase& e : engines) {
    std::printf("%s:\n", e.label);
    std::printf("%10s %10s %10s %12s %16s\n", "batch", "seconds",
                "scan s", "vs batch=1", "peak entries");
    double scan_base = 0;
    for (size_t batch : {size_t{1}, size_t{16}, size_t{256}, size_t{1024},
                         size_t{4096}}) {
      EngineOptions options;
      options.scan_batch_rows = batch;
      RunResult run = TimeEngine(*e.engine, *workflow, fact, options);
      if (!run.ok) return 1;
      const double scan = run.PhaseSeconds({"scan"});
      if (batch == 1) scan_base = scan;
      std::printf("%10zu %10.3f %10.3f %11.2fx %16llu\n", batch,
                  run.seconds, scan, scan_base / std::max(scan, 1e-9),
                  static_cast<unsigned long long>(static_cast<uint64_t>(
                      run.trace->MaxGauge(run.root, "peak_hash_entries"))));
    }
    std::printf("\n");
  }
  return 0;
}
