#ifndef CSM_BENCH_BENCH_UTIL_H_
#define CSM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "exec/engine.h"
#include "exec/exec_context.h"
#include "obs/trace.h"

namespace csm {
namespace bench {

/// Global size multiplier. The paper ran 2M-64M rows on 2006 hardware;
/// the defaults here are laptop/CI-sized (the *shapes* are scale-stable
/// because every engine is scan- and sort-bound). Set CSM_BENCH_SCALE=20
/// to reproduce the paper's absolute scale.
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("CSM_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double value = std::atof(env);
    return value > 0 ? value : 1.0;
  }();
  return scale;
}

inline size_t Rows(double base) {
  return static_cast<size_t>(base * Scale());
}

/// Cores visible to this run. Every BENCH_*.json records it so a reader
/// (or the CI gate) can tell a real scaling number from a single-core
/// container run, where thread sweeps only measure scheduler overhead.
inline int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Pretty row count: "100k", "3.2M".
inline std::string FmtRows(size_t rows) {
  char buf[32];
  if (rows >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3gM", rows / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gk", rows / 1e3);
  }
  return buf;
}

inline void PrintHeader(const char* figure, const char* title,
                        const char* expectation) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("paper shape: %s\n", expectation);
  std::printf("(CSM_BENCH_SCALE=%.3g; all times seconds)\n", Scale());
  std::printf("---------------------------------------------------------------"
              "---------\n");
}

struct RunResult {
  bool ok = false;
  double seconds = 0;
  ExecStats stats;
  EvalOutput output;              // the run's measure tables
  std::shared_ptr<Tracer> trace;  // full span tree of the run
  SpanId root = kNoSpan;          // the engine's root span

  /// Exclusive duration sum of the named spans under the run root —
  /// breakdown benches read phase costs straight from the span tree.
  double PhaseSeconds(std::initializer_list<std::string_view> names) const {
    return trace != nullptr && root != kNoSpan
               ? trace->SumDurationExclusive(root, names)
               : 0.0;
  }
};

inline RunResult TimeEngine(Engine& engine, const Workflow& workflow,
                            const FactTable& fact,
                            EngineOptions options = {}) {
  RunResult out;
  out.trace = std::make_shared<Tracer>();
  ExecContext ctx;
  ctx.options = std::move(options);
  ctx.tracer = out.trace.get();
  Timer timer;
  auto result = engine.Run(workflow, fact, ctx);
  out.seconds = timer.Seconds();
  auto roots = out.trace->RootSpans();
  if (!roots.empty()) out.root = roots.front();
  if (!result.ok()) {
    std::fprintf(stderr, "engine %s failed: %s\n",
                 std::string(engine.name()).c_str(),
                 result.status().ToString().c_str());
    return out;
  }
  out.ok = true;
  out.stats = result->stats;
  out.output = std::move(*result);
  return out;
}

}  // namespace bench
}  // namespace csm

#endif  // CSM_BENCH_BENCH_UTIL_H_
