#ifndef CSM_BENCH_BENCH_UTIL_H_
#define CSM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "exec/engine.h"
#include "exec/exec_context.h"
#include "obs/trace.h"

namespace csm {
namespace bench {

/// Global size multiplier. The paper ran 2M-64M rows on 2006 hardware;
/// the defaults here are laptop/CI-sized (the *shapes* are scale-stable
/// because every engine is scan- and sort-bound). Set CSM_BENCH_SCALE=20
/// to reproduce the paper's absolute scale.
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("CSM_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double value = std::atof(env);
    return value > 0 ? value : 1.0;
  }();
  return scale;
}

inline size_t Rows(double base) {
  return static_cast<size_t>(base * Scale());
}

/// Cores visible to this run. Every BENCH_*.json records it so a reader
/// (or the CI gate) can tell a real scaling number from a single-core
/// container run, where thread sweeps only measure scheduler overhead.
inline int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Pretty row count: "100k", "3.2M".
inline std::string FmtRows(size_t rows) {
  char buf[32];
  if (rows >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3gM", rows / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gk", rows / 1e3);
  }
  return buf;
}

inline void PrintHeader(const char* figure, const char* title,
                        const char* expectation) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("paper shape: %s\n", expectation);
  std::printf("(CSM_BENCH_SCALE=%.3g; all times seconds)\n", Scale());
  std::printf("---------------------------------------------------------------"
              "---------\n");
}

struct RunResult {
  bool ok = false;
  double seconds = 0;
  ExecStats stats;
  EvalOutput output;              // the run's measure tables
  std::shared_ptr<Tracer> trace;  // full span tree of the run
  SpanId root = kNoSpan;          // the engine's root span

  /// Exclusive duration sum of the named spans under the run root —
  /// breakdown benches read phase costs straight from the span tree.
  double PhaseSeconds(std::initializer_list<std::string_view> names) const {
    return trace != nullptr && root != kNoSpan
               ? trace->SumDurationExclusive(root, names)
               : 0.0;
  }
};

/// Statistics over one cell's timed repetitions. Benches run one
/// untimed warm-up rep first (first-touch page faults, thread-pool
/// spin-up, memoized dictionary builds) and then `reps` timed reps;
/// every BENCH_*.json reports min/median/stddev so the ±10% CI gates
/// can be read against the run's own noise floor. Gates keep comparing
/// the min — the least noisy statistic on a shared 1-core CI box.
struct RepStats {
  double min_seconds = 0;
  double median_seconds = 0;
  double stddev_seconds = 0;

  static RepStats Of(std::vector<double> seconds) {
    RepStats s;
    const size_t n = seconds.size();
    if (n == 0) return s;
    std::sort(seconds.begin(), seconds.end());
    s.min_seconds = seconds.front();
    s.median_seconds = n % 2 == 1
                           ? seconds[n / 2]
                           : 0.5 * (seconds[n / 2 - 1] + seconds[n / 2]);
    double mean = 0;
    for (double v : seconds) mean += v;
    mean /= static_cast<double>(n);
    double var = 0;
    for (double v : seconds) var += (v - mean) * (v - mean);
    s.stddev_seconds =
        n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
    return s;
  }

  /// JSON fragment (three lines, trailing comma) for one timed series:
  ///   "NAME_min_seconds": ..., "NAME_median_seconds": ...,
  ///   "NAME_stddev_seconds": ...
  std::string Json(const std::string& name, int indent = 2) const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%*s\"%s_min_seconds\": %.6f,\n"
                  "%*s\"%s_median_seconds\": %.6f,\n"
                  "%*s\"%s_stddev_seconds\": %.6f,\n",
                  indent, "", name.c_str(), min_seconds, indent, "",
                  name.c_str(), median_seconds, indent, "", name.c_str(),
                  stddev_seconds);
    return buf;
  }
};

inline RunResult TimeEngine(Engine& engine, const Workflow& workflow,
                            const FactTable& fact,
                            EngineOptions options = {}) {
  RunResult out;
  out.trace = std::make_shared<Tracer>();
  ExecContext ctx;
  ctx.options = std::move(options);
  ctx.tracer = out.trace.get();
  Timer timer;
  auto result = engine.Run(workflow, fact, ctx);
  out.seconds = timer.Seconds();
  auto roots = out.trace->RootSpans();
  if (!roots.empty()) out.root = roots.front();
  if (!result.ok()) {
    std::fprintf(stderr, "engine %s failed: %s\n",
                 std::string(engine.name()).c_str(),
                 result.status().ToString().c_str());
    return out;
  }
  out.ok = true;
  out.stats = result->stats;
  out.output = std::move(*result);
  return out;
}

}  // namespace bench
}  // namespace csm

#endif  // CSM_BENCH_BENCH_UTIL_H_
