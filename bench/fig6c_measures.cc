// Figure 6(c) — increasing the number of dependent child measures at a
// fixed dataset size.
//
// The benefit of coordination: the sort/scan engine shares one sort+scan
// across all child measures, so its cost grows much more slowly than the
// relational baseline, which evaluates each child measure (and each
// region enumerator) with its own pass over the base table.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 6(c)", "#dependent child measures 2..6, fixed |D|",
              "DB grows ~linearly with the number of measures; SortScan "
              "grows far more slowly");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  SyntheticDataOptions data;
  data.rows = Rows(600e3);  // a mid-size stand-in for the paper's 64M
  data.seed = 3000;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records\n\n",
              FmtRows(fact.num_rows()).c_str());

  std::printf("%10s %12s %12s\n", "#measures", "DB", "SortScan");
  for (int children = 2; children <= 6; ++children) {
    auto workflow = MakeQ1ChildParent(schema, children);
    if (!workflow.ok()) return 1;
    RelationalEngine relational;
    SortScanEngine sort_scan;
    RunResult db = TimeEngine(relational, *workflow, fact);
    RunResult ss = TimeEngine(sort_scan, *workflow, fact);
    std::printf("%10d %12.3f %12.3f\n", children, db.seconds, ss.seconds);
  }
  return 0;
}
