// Figure 6(d) — increasing the sibling-chain length at a fixed dataset
// size.
//
// Each extra nesting level costs the relational baseline another pass
// over materialized intermediates, while the sort/scan engine pipelines
// the whole chain through the same scan: its cost should stay nearly
// flat.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/sort_scan.h"
#include "relational/relational_engine.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 6(d)", "sibling-chain length 2..7, fixed |D|",
              "DB grows with chain length; SortScan almost flat (results "
              "pipeline without materialization)");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  SyntheticDataOptions data;
  data.rows = Rows(600e3);
  data.seed = 4000;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records\n\n",
              FmtRows(fact.num_rows()).c_str());

  std::printf("%10s %12s %12s\n", "#chain", "DB", "SortScan");
  for (int chain = 2; chain <= 7; ++chain) {
    auto workflow = MakeQ2SiblingChain(schema, chain);
    if (!workflow.ok()) return 1;
    RelationalEngine relational;
    SortScanEngine sort_scan;
    RunResult db = TimeEngine(relational, *workflow, fact);
    RunResult ss = TimeEngine(sort_scan, *workflow, fact);
    std::printf("%10d %12.3f %12.3f\n", chain, db.seconds, ss.seconds);
  }
  return 0;
}
