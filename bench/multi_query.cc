// Multi-query sessions: N concurrent workflows through one fused
// sort/scan vs N independent engine runs (the PR-6 tentpole's acceptance
// workload).
//
// Four overlapping monitoring queries over a synthetic network log — all
// four build the same hidden per-(hour, source) count, then ask different
// questions of it. Independently each run pays its own sort and
// recomputes the shared base; a QuerySession fingerprints the common
// subgraph away, plans one order for the union, and scans once. The bench
// reports the fused-vs-independent speedup (target >= 1.5x for 4
// overlapping queries) and, separately, the latency of answering the
// whole batch from the session's result cache.
//
// Flags:
//   --json FILE          write the result JSON (BENCH_pr6.json)
//   --reps N             best-of-N repetitions (default 3)
//   --baseline FILE      committed BENCH_pr6.json to compare against
//   --max-regress FRAC   fail (exit 1) if the fused per-row time
//                        regresses more than FRAC vs the baseline
//                        (default 0.10)

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/netlog.h"
#include "exec/factory.h"
#include "exec/session.h"
#include "model/schema.h"
#include "workflow/workflow.h"

namespace {

// Four dashboard-style queries sharing the per-(hour, source) count.
const char* kQueries[] = {
    // Q0: how many loud sources per hour?
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure Busy at (t:hour) = agg count(M) from Count where M > 2;)",
    // Q1: total events from tracked sources per hour.
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure Traffic at (t:hour) = agg sum(M) from Count;)",
    // Q2: hottest source per hour + daily average load.
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure Peak at (t:hour) = agg max(M) from Count;
       measure AvgLoad at (t:day) = agg avg(M) from Count;)",
    // Q3: hourly share of the day's volume.
    R"(measure Count at (t:hour, U:ip) = agg count(*) from FACT hidden;
       measure Hourly at (t:hour) = agg sum(M) from Count;
       measure Daily at (t:day) = agg sum(M) from Count;
       measure Share at (t:hour) = match Daily using parentchild agg sum(M);
       measure Frac at (t:hour) = combine(Hourly, Share)
           as Hourly / Share;)",
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

bool JsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csm;
  using namespace csm::bench;

  std::string json_path, baseline_path;
  int reps = 3;
  double max_regress = 0.10;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--json")) {
      if (const char* v = next()) json_path = v;
    } else if (!std::strcmp(argv[i], "--baseline")) {
      if (const char* v = next()) baseline_path = v;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (const char* v = next()) reps = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--max-regress")) {
      if (const char* v = next()) max_regress = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  PrintHeader("Multi-query", "fused session vs independent runs",
              "4 overlapping queries share one sort and one scan when "
              "fused; independent runs pay the sort 4x");

  SchemaPtr schema = MakeNetworkLogSchema();
  NetLogOptions data;
  data.rows = Rows(400e3);
  data.duration_seconds = 3 * 24 * 3600;
  FactTable fact = GenerateNetLog(schema, data);

  std::vector<Workflow> queries;
  size_t total_measures = 0;
  for (const char* dsl : kQueries) {
    auto workflow = Workflow::Parse(schema, dsl);
    if (!workflow.ok()) {
      std::fprintf(stderr, "%s\n", workflow.status().ToString().c_str());
      return 1;
    }
    total_measures += workflow->measures().size();
    queries.push_back(std::move(*workflow));
  }
  std::printf("dataset: %s records; %zu queries, %zu measures total, "
              "best of %d\n\n",
              FmtRows(fact.num_rows()).c_str(), kNumQueries,
              total_measures, reps);

  // --- independent: each query through its own sort/scan run.
  auto engine = MakeEngine(EngineKind::kSortScan);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::vector<double> independent_secs;
  // rep -1 is the untimed warm-up rep.
  for (int rep = -1; rep < reps; ++rep) {
    double total = 0;
    for (const Workflow& workflow : queries) {
      RunResult run = TimeEngine(**engine, workflow, fact);
      if (!run.ok) return 1;
      total += run.seconds;
    }
    if (rep >= 0) independent_secs.push_back(total);
  }
  const RepStats independent_stats = RepStats::Of(independent_secs);
  const double independent_seconds = independent_stats.min_seconds;

  // --- fused: one session run; cache_capacity covers the batch so a
  // second RunPending answers entirely from cache.
  SessionOptions session_options;
  session_options.cache_capacity = kNumQueries;
  double fused_seconds = 0, cached_seconds = 0;
  std::vector<double> fused_secs, cached_secs;
  SessionReport report;
  // rep -1 is the untimed warm-up rep.
  for (int rep = -1; rep < reps; ++rep) {
    auto session =
        QuerySession::Create(EngineKind::kSortScan, session_options);
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    auto submit_all = [&]() -> bool {
      for (const Workflow& workflow : queries) {
        auto index = (*session)->Submit(workflow);
        if (!index.ok()) {
          std::fprintf(stderr, "%s\n",
                       index.status().ToString().c_str());
          return false;
        }
      }
      return true;
    };

    if (!submit_all()) return 1;
    Timer timer;
    auto cold = (*session)->RunPending(fact);
    const double cold_seconds = timer.Seconds();
    if (!cold.ok()) {
      std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
      return 1;
    }
    if (rep < 0 || cold_seconds < fused_seconds) {
      fused_seconds = cold_seconds;
      report = (*session)->last_report();
    }
    if (rep >= 0) fused_secs.push_back(cold_seconds);

    if (!submit_all()) return 1;
    timer.Reset();
    auto warm = (*session)->RunPending(fact);
    const double warm_seconds = timer.Seconds();
    if (!warm.ok()) {
      std::fprintf(stderr, "%s\n", warm.status().ToString().c_str());
      return 1;
    }
    if ((*session)->last_report().cache_hits != kNumQueries) {
      std::fprintf(stderr, "warm batch was not fully cache-served\n");
      return 1;
    }
    if (rep < 0 || warm_seconds < cached_seconds) {
      cached_seconds = warm_seconds;
    }
    if (rep >= 0) cached_secs.push_back(warm_seconds);
  }
  const RepStats fused_stats = RepStats::Of(fused_secs);
  const RepStats cached_stats = RepStats::Of(cached_secs);
  fused_seconds = fused_stats.min_seconds;
  cached_seconds = cached_stats.min_seconds;

  const double speedup = independent_seconds / fused_seconds;
  std::printf("%22s %10s\n", "mode", "seconds");
  std::printf("%22s %10.3f\n", "independent (4 runs)", independent_seconds);
  std::printf("%22s %10.3f   (%zu measures fused, %zu shared)\n",
              "fused session", fused_seconds, report.fused_measures,
              report.shared_measures);
  std::printf("%22s %10.4f   (all %zu queries from cache)\n",
              "cache-hit batch", cached_seconds, kNumQueries);
  std::printf("\nfused vs independent speedup: %.2fx (target >= 1.50x)\n",
              speedup);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::string stats;
    stats += independent_stats.Json("independent");
    stats += fused_stats.Json("fused");
    stats += cached_stats.Json("cache_hit");
    char buf[2048];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"multi_query\",\n"
                  "  \"rows\": %zu,\n"
                  "  \"queries\": %zu,\n"
                  "  \"total_measures\": %zu,\n"
                  "  \"fused_measures\": %zu,\n"
                  "  \"shared_measures\": %zu,\n"
                  "  \"reps\": %d,\n"
                  "  \"hardware_threads\": %d,\n"
                  "%s"
                  "  \"independent_seconds\": %.4f,\n"
                  "  \"fused_seconds\": %.4f,\n"
                  "  \"cache_hit_seconds\": %.5f,\n"
                  "  \"speedup_fused\": %.3f\n"
                  "}\n",
                  fact.num_rows(), kNumQueries, total_measures,
                  report.fused_measures, report.shared_measures, reps,
                  HardwareThreads(), stats.c_str(), independent_seconds,
                  fused_seconds,
                  cached_seconds,
                  speedup);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    double base_seconds = 0, base_rows = 0;
    if (!JsonNumber(buffer.str(), "fused_seconds", &base_seconds) ||
        !JsonNumber(buffer.str(), "rows", &base_rows) || base_rows <= 0) {
      std::fprintf(stderr, "baseline %s lacks fused_seconds/rows\n",
                   baseline_path.c_str());
      return 1;
    }
    // Per-row normalization so a CSM_BENCH_SCALE difference between the
    // baseline machine and this one doesn't read as a regression.
    const double base_per_row = base_seconds / base_rows;
    const double cur_per_row =
        fused_seconds / static_cast<double>(fact.num_rows());
    const double ratio = cur_per_row / base_per_row;
    std::printf("fused session vs committed baseline: %.2fx per-row "
                "(max allowed %.2fx)\n", ratio, 1.0 + max_regress);
    if (ratio > 1.0 + max_regress) {
      std::fprintf(stderr,
                   "REGRESSION: fused per-row time %.3gs is %.0f%% over "
                   "the committed baseline %.3gs\n",
                   cur_per_row, (ratio - 1.0) * 100, base_per_row);
      return 1;
    }
  }
  return 0;
}
