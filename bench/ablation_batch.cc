// Ablation: the watermark-propagation batch interval of the sort/scan
// engine (EngineOptions::propagation_batch_records).
//
// The paper's one-pass algorithm (Table 7) checks for finalized entries
// after every record; batching the check amortizes the graph walk at the
// price of holding finalized-but-unflushed entries a little longer. This
// sweep shows the time/memory trade-off and that results are unaffected.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/sort_scan.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Ablation", "watermark propagation batch interval",
              "per-record propagation minimizes memory; large batches "
              "amortize bookkeeping at slightly higher peak footprint");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto workflow = MakeQ1ChildParent(schema, 7);
  if (!workflow.ok()) return 1;

  SyntheticDataOptions data;
  data.rows = Rows(400e3);
  data.seed = 8000;
  FactTable fact = GenerateSyntheticFacts(schema, data);
  std::printf("dataset: %s records, Q1(7 children)\n\n",
              FmtRows(fact.num_rows()).c_str());

  std::printf("%10s %10s %10s %16s\n", "batch", "seconds", "scan s",
              "peak entries");
  for (size_t batch : {size_t{1}, size_t{16}, size_t{256}, size_t{4096},
                       size_t{65536}}) {
    EngineOptions options;
    options.propagation_batch_records = batch;
    SortScanEngine engine;
    RunResult run = TimeEngine(engine, *workflow, fact, options);
    if (!run.ok) return 1;
    // The batch interval only affects the scan phase; read its cost and
    // the peak gauge from the span tree rather than the summary view.
    std::printf("%10zu %10.3f %10.3f %16llu\n", batch, run.seconds,
                run.PhaseSeconds({"scan"}),
                static_cast<unsigned long long>(static_cast<uint64_t>(
                    run.trace->MaxGauge(run.root, "peak_hash_entries"))));
  }
  return 0;
}
