// Figure 6(e) — cost breakdown of the sort/scan engine: sorting versus
// scanning, for Q1 and Q2 at a small and a large dataset size.
//
// The paper's observation: although the sort makes two passes over the
// raw data and the scan one, the scan phase dominates because of the
// in-memory operator updates — especially for Q1, whose hash state is
// larger. The same effect should reproduce here.

#include "bench_util.h"
#include "data/queries.h"
#include "data/synthetic.h"
#include "exec/sort_scan.h"

int main() {
  using namespace csm;
  using namespace csm::bench;
  PrintHeader("Fig 6(e)", "sort vs scan cost breakdown (Q1 and Q2)",
              "scan phase dominates the sort phase, more strongly for Q1 "
              "(larger in-memory state)");

  auto schema = MakeSyntheticSchema(4, 3, 10, 1000);
  auto q1 = MakeQ1ChildParent(schema, 7);
  auto q2 = MakeQ2SiblingChain(schema, 7);
  if (!q1.ok() || !q2.ok()) return 1;

  std::printf("%6s %10s %10s %10s %10s\n", "query", "#records", "sort",
              "scan", "scan/sort");
  const double kBases[] = {100e3, 1600e3};
  for (double base : kBases) {
    SyntheticDataOptions data;
    data.rows = Rows(base);
    data.seed = 5000 + static_cast<uint64_t>(base);
    FactTable fact = GenerateSyntheticFacts(schema, data);
    struct Case {
      const char* label;
      const Workflow* workflow;
    } cases[] = {{"Q1", &*q1}, {"Q2", &*q2}};
    for (const Case& c : cases) {
      SortScanEngine engine;
      RunResult run = TimeEngine(engine, *c.workflow, fact);
      if (!run.ok) return 1;
      // Phase costs read straight from the recorded span tree.
      const double sort = run.PhaseSeconds({"sort", "plan"});
      const double scan = run.PhaseSeconds({"scan"});
      std::printf("%6s %10s %10.3f %10.3f %10.2f\n", c.label,
                  FmtRows(fact.num_rows()).c_str(), sort, scan,
                  scan / std::max(sort, 1e-9));
    }
  }
  return 0;
}
