#include "opt/lowering.h"

#include <string>

#include "exec/adaptive.h"
#include "exec/multi_pass.h"
#include "exec/parallel.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "opt/sort_order.h"
#include "relational/relational_engine.h"

namespace csm {

Result<PhysicalPlan> LowerToPlan(EngineKind kind, const Workflow& workflow,
                                 const EngineOptions& options,
                                 bool file_input) {
  if (file_input && kind != EngineKind::kSortScan) {
    return Status::InvalidArgument(
        "only the sort-scan engine lowers an out-of-core plan (got " +
        std::string(EngineKindName(kind)) + ")");
  }
  switch (kind) {
    case EngineKind::kSortScan:
      return BuildSortScanPlan(workflow, options, file_input);
    case EngineKind::kSingleScan:
      return BuildSingleScanPlan(workflow, options);
    case EngineKind::kMultiPass:
      return BuildMultiPassPlan(workflow, options);
    case EngineKind::kParallel:
      return BuildParallelPlan(workflow, options);
    case EngineKind::kRelational:
      return BuildRelationalPlan(workflow, options);
    case EngineKind::kAdaptive: {
      CSM_ASSIGN_OR_RETURN(AdaptiveEngine::Choice choice,
                           AdaptiveEngine::Decide(workflow, options));
      EngineOptions child = options;
      if (choice == AdaptiveEngine::Choice::kSortScan &&
          child.sort_key.empty()) {
        CSM_ASSIGN_OR_RETURN(child.sort_key,
                             BruteForceSortKey(workflow, 20000));
      }
      PhysicalPlan plan;
      switch (choice) {
        case AdaptiveEngine::Choice::kSingleScan:
          plan = BuildSingleScanPlan(workflow, child);
          break;
        case AdaptiveEngine::Choice::kSortScan:
          plan = BuildSortScanPlan(workflow, child, /*file_input=*/false);
          break;
        case AdaptiveEngine::Choice::kMultiPass: {
          CSM_ASSIGN_OR_RETURN(plan, BuildMultiPassPlan(workflow, child));
          break;
        }
      }
      plan.engine = "adaptive -> " + plan.engine;
      return plan;
    }
  }
  return Status::InvalidArgument("LowerToPlan: unknown EngineKind");
}

}  // namespace csm
