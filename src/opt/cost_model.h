#ifndef CSM_OPT_COST_MODEL_H_
#define CSM_OPT_COST_MODEL_H_

#include <string>

#include "common/result.h"
#include "model/sort_key.h"
#include "workflow/workflow.h"

namespace csm {

/// The evaluation cost factors of §6, in abstract row-operation units
/// (calibrate per machine via CostModelParams if absolute predictions are
/// wanted; engine choice only needs ratios):
///   C_sort   — sorting the raw dataset (two data passes + log-factor)
///   C_scan   — streaming the dataset once
///   C_update — maintaining in-memory state per record/update
///   C_write  — emitting finalized measure rows
struct CostEstimate {
  double sort_cost = 0;
  double scan_cost = 0;
  double update_cost = 0;
  double write_cost = 0;

  double total() const {
    return sort_cost + scan_cost + update_cost + write_cost;
  }
  std::string ToString() const;
};

/// Relative weights of the primitive operations.
struct CostModelParams {
  double row_scan = 1.0;       // reading one record
  double row_sort = 3.0;       // one record through an external sort
  double entry_update = 2.0;   // one hash probe+update
  double entry_write = 0.5;    // flushing one finalized row
  /// Cache-pressure penalty applied to updates against hash state larger
  /// than ~cache: multiplies entry_update when resident entries exceed
  /// this count. Models why single-scan loses its "no sort" advantage on
  /// large region sets even when memory suffices.
  double large_state_penalty = 3.0;
  double large_state_entries = 1u << 20;
};

/// Cost of the one-pass sort/scan plan under `key`.
Result<CostEstimate> EstimateSortScanCost(
    const Workflow& workflow, const SortKey& key, double num_rows,
    const CostModelParams& params = {});

/// Cost of the single-scan algorithm (§5.1): no sort, but every region
/// set fully resident.
Result<CostEstimate> EstimateSingleScanCost(
    const Workflow& workflow, double num_rows,
    const CostModelParams& params = {});

/// Cost of the per-measure relational baseline: one scan+sort of the base
/// table per basic measure and per match-join region enumerator, plus
/// materialization of every result.
Result<CostEstimate> EstimateRelationalCost(
    const Workflow& workflow, double num_rows,
    const CostModelParams& params = {});

}  // namespace csm

#endif  // CSM_OPT_COST_MODEL_H_
