#ifndef CSM_OPT_FOOTPRINT_H_
#define CSM_OPT_FOOTPRINT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/sort_key.h"
#include "workflow/workflow.h"

namespace csm {

/// Static footprint estimate for one measure under a given fact-table sort
/// order — the f_memory of §5.2, built from the order/slack algebra of
/// Table 6. `entries` estimates the peak number of simultaneously live
/// hash entries; `covered` lists the sort-key dimensions whose order the
/// measure's stream can exploit; `slack` is the per-dimension slack bound
/// (in units of the measure's granularity) accumulated along its
/// computational arcs.
struct MeasureFootprint {
  std::string name;
  double entries = 0;
  double bytes = 0;
  std::vector<int> covered_level;  // per dim: exploited level, or -1
  std::vector<double> slack;       // per dim, in granularity units
};

struct FootprintReport {
  std::vector<MeasureFootprint> measures;  // includes region enumerators
  double total_entries = 0;
  double total_bytes = 0;

  std::string ToString(const Schema& schema) const;
};

/// Estimates the peak memory footprint of evaluating `workflow` with the
/// one-pass sort/scan engine after sorting by `key`. The estimate uses the
/// hierarchies' cardinality/fan-out statistics only — it never looks at
/// data — and is intended for *ranking* candidate sort orders (§6), not
/// for byte-accurate admission control.
Result<FootprintReport> EstimateFootprint(const Workflow& workflow,
                                          const SortKey& key);

}  // namespace csm

#endif  // CSM_OPT_FOOTPRINT_H_
