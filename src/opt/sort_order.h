#ifndef CSM_OPT_SORT_ORDER_H_
#define CSM_OPT_SORT_ORDER_H_

#include "common/result.h"
#include "model/sort_key.h"
#include "opt/footprint.h"
#include "workflow/workflow.h"

namespace csm {

/// Sort-order search (§6). Candidate components are, per dimension, the
/// levels that appear in some measure granularity; candidate orders are
/// permutations of dimension subsets with one candidate level each.
/// Both searches minimize the estimated total footprint, breaking ties
/// toward shorter keys.

/// Exhaustive search — the paper's experimental configuration ("we used
/// brute force to search all possible sort orders", §7). The enumeration
/// is capped at `max_candidates` orders; for realistic dimension counts
/// (≤ 6) the space is far smaller than the default cap.
Result<SortKey> BruteForceSortKey(const Workflow& workflow,
                                  size_t max_candidates = 200000);

/// The greedy optimizer sketched in the technical report: grow the key
/// one component at a time, at each step appending the (dim, level)
/// component that most reduces the estimated footprint; stop when no
/// component improves it.
Result<SortKey> GreedySortKey(const Workflow& workflow);

}  // namespace csm

#endif  // CSM_OPT_SORT_ORDER_H_
