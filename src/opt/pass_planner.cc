#include "opt/pass_planner.h"

#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "opt/footprint.h"
#include "opt/sort_order.h"

namespace csm {

namespace {

/// Builds a sub-workflow from a subset of measure indices (which must be
/// dependency-closed) for footprint estimation.
Result<Workflow> SubWorkflow(const Workflow& workflow,
                             const std::vector<int>& indices) {
  Workflow sub(workflow.schema());
  for (int idx : indices) {
    MeasureDef def = workflow.measures()[idx];
    def.is_output = true;
    CSM_RETURN_NOT_OK(sub.AddMeasure(std::move(def)));
  }
  return sub;
}

Result<double> BestEntries(const Workflow& workflow,
                           const std::vector<int>& indices,
                           SortKey* best_key) {
  CSM_ASSIGN_OR_RETURN(Workflow sub, SubWorkflow(workflow, indices));
  CSM_ASSIGN_OR_RETURN(SortKey key, BruteForceSortKey(sub, 5000));
  CSM_ASSIGN_OR_RETURN(FootprintReport report,
                       EstimateFootprint(sub, key));
  *best_key = std::move(key);
  return report.total_entries;
}

}  // namespace

Result<PassPlan> PlanPasses(const Workflow& workflow, double entry_budget) {
  PassPlan plan;
  const auto& measures = workflow.measures();

  // Names already assigned to a *previous* pass or deferred.
  std::set<std::string> in_earlier_pass;
  std::set<std::string> deferred;

  PassPlan::Pass current;
  std::set<std::string> in_current;

  auto close_pass = [&]() -> Status {
    if (current.measure_indices.empty()) return Status::OK();
    SortKey key;
    CSM_ASSIGN_OR_RETURN(
        current.estimated_entries,
        BestEntries(workflow, current.measure_indices, &key));
    current.sort_key = std::move(key);
    for (const std::string& name : in_current) {
      in_earlier_pass.insert(name);
    }
    in_current.clear();
    plan.passes.push_back(std::move(current));
    current = PassPlan::Pass();
    return Status::OK();
  };

  for (int idx = 0; idx < static_cast<int>(measures.size()); ++idx) {
    const MeasureDef& def = measures[idx];
    const std::string lower = ToLower(def.name);

    // A measure can stream in a pass only if every input streams in the
    // same pass (base measures always can).
    bool inputs_in_current = true;
    bool inputs_available = true;  // somewhere (earlier pass or deferred)
    for (const std::string& input : def.Inputs()) {
      const std::string in_lower = ToLower(input);
      if (!in_current.count(in_lower)) inputs_in_current = false;
      if (!in_current.count(in_lower) &&
          !in_earlier_pass.count(in_lower) && !deferred.count(in_lower)) {
        inputs_available = false;
      }
    }
    CSM_CHECK(inputs_available) << "workflow not topologically ordered";

    if (def.op != MeasureOp::kBaseAgg && !inputs_in_current) {
      // Inputs were flushed in an earlier pass (or deferred): combine
      // after the scans from materialized tables.
      plan.post_pass_indices.push_back(idx);
      deferred.insert(lower);
      continue;
    }

    // Try adding to the current pass.
    current.measure_indices.push_back(idx);
    in_current.insert(lower);
    SortKey key;
    CSM_ASSIGN_OR_RETURN(
        double entries,
        BestEntries(workflow, current.measure_indices, &key));
    if (entries > entry_budget && current.measure_indices.size() > 1) {
      // Overflow: pull it back out and start a new pass with it — unless
      // its inputs were inside the current pass, in which case it cannot
      // stream anywhere and goes to the post-pass combiner.
      current.measure_indices.pop_back();
      in_current.erase(lower);
      CSM_RETURN_NOT_OK(close_pass());
      if (def.op == MeasureOp::kBaseAgg) {
        current.measure_indices.push_back(idx);
        in_current.insert(lower);
      } else {
        plan.post_pass_indices.push_back(idx);
        deferred.insert(lower);
      }
    }
  }
  CSM_RETURN_NOT_OK(close_pass());

  if (plan.passes.empty()) {
    // Degenerate workflow (everything deferred — cannot happen with at
    // least one base measure, but keep the invariant).
    plan.passes.push_back(PassPlan::Pass());
  }
  return plan;
}

}  // namespace csm
