#include "opt/sort_order.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace csm {

namespace {

/// Candidate levels per dimension: every level some measure granularity
/// uses (the only levels whose order any stream can exploit).
std::vector<std::vector<int>> CandidateLevels(const Workflow& workflow) {
  const Schema& schema = *workflow.schema();
  std::vector<std::set<int>> sets(schema.num_dims());
  for (const MeasureDef& def : workflow.measures()) {
    for (int i = 0; i < schema.num_dims(); ++i) {
      const int all = schema.dim(i).hierarchy->all_level();
      if (def.gran.level(i) < all) sets[i].insert(def.gran.level(i));
    }
  }
  std::vector<std::vector<int>> out(schema.num_dims());
  for (int i = 0; i < schema.num_dims(); ++i) {
    out[i].assign(sets[i].begin(), sets[i].end());
  }
  return out;
}

double Score(const Workflow& workflow, const SortKey& key) {
  auto report = EstimateFootprint(workflow, key);
  CSM_CHECK(report.ok()) << report.status().ToString();
  return report->total_entries;
}

/// Recursively extends `current` with every unused dimension/candidate
/// level, recording each candidate order.
void Enumerate(const std::vector<std::vector<int>>& levels,
               std::vector<SortKeyPart>* current, uint32_t used_mask,
               size_t max_candidates, std::vector<SortKey>* out) {
  if (out->size() >= max_candidates) return;
  out->push_back(SortKey(*current));
  for (size_t dim = 0; dim < levels.size(); ++dim) {
    if (used_mask & (1u << dim)) continue;
    for (int level : levels[dim]) {
      current->push_back({static_cast<int>(dim), level});
      Enumerate(levels, current, used_mask | (1u << dim), max_candidates,
                out);
      current->pop_back();
      if (out->size() >= max_candidates) return;
    }
  }
}

}  // namespace

Result<SortKey> BruteForceSortKey(const Workflow& workflow,
                                  size_t max_candidates) {
  if (workflow.schema()->num_dims() > 31) {
    return Status::InvalidArgument("too many dimensions for enumeration");
  }
  auto levels = CandidateLevels(workflow);
  std::vector<SortKey> candidates;
  std::vector<SortKeyPart> scratch;
  Enumerate(levels, &scratch, 0, max_candidates, &candidates);

  const SortKey* best = nullptr;
  double best_score = 0;
  for (const SortKey& key : candidates) {
    const double score = Score(workflow, key);
    if (best == nullptr || score < best_score ||
        (score == best_score && key.size() < best->size())) {
      best = &key;
      best_score = score;
    }
  }
  CSM_CHECK(best != nullptr);
  return *best;
}

Result<SortKey> GreedySortKey(const Workflow& workflow) {
  auto levels = CandidateLevels(workflow);
  std::vector<SortKeyPart> parts;
  uint32_t used_mask = 0;
  double current_score = Score(workflow, SortKey(parts));

  for (;;) {
    double best_score = current_score;
    SortKeyPart best_part{-1, 0};
    for (size_t dim = 0; dim < levels.size(); ++dim) {
      if (used_mask & (1u << dim)) continue;
      for (int level : levels[dim]) {
        parts.push_back({static_cast<int>(dim), level});
        const double score = Score(workflow, SortKey(parts));
        parts.pop_back();
        if (score < best_score) {
          best_score = score;
          best_part = {static_cast<int>(dim), level};
        }
      }
    }
    if (best_part.dim < 0) break;
    parts.push_back(best_part);
    used_mask |= 1u << best_part.dim;
    current_score = best_score;
  }
  return SortKey(parts);
}

}  // namespace csm
