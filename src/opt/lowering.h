#ifndef CSM_OPT_LOWERING_H_
#define CSM_OPT_LOWERING_H_

#include "common/result.h"
#include "exec/factory.h"
#include "exec/op/physical_plan.h"
#include "workflow/workflow.h"

namespace csm {

/// Lowers (engine kind, workflow, options) into the PhysicalPlan that
/// engine's Run would execute: sort/scan -> scan+generalize+propagate+
/// emit, single-scan -> scan+generalize+aggregate+emit, multi-pass ->
/// pass planner output, parallel -> partition+shards+merge, relational ->
/// per-measure query stages. All planning decisions (sort order, pass
/// assignment, partition dimension) are made here, at lowering time.
///
/// kAdaptive resolves its engine choice (AdaptiveEngine::Decide) and
/// returns the chosen plan with an "adaptive -> " engine label; this is
/// what `csm_query --explain` prints. AdaptiveEngine::Run itself keeps
/// delegating to the nested engine so its spans stay nested.
///
/// `file_input` lowers the out-of-core form (only the sort/scan engine
/// supports it).
Result<PhysicalPlan> LowerToPlan(EngineKind kind, const Workflow& workflow,
                                 const EngineOptions& options,
                                 bool file_input = false);

}  // namespace csm

#endif  // CSM_OPT_LOWERING_H_
