#ifndef CSM_OPT_PASS_PLANNER_H_
#define CSM_OPT_PASS_PLANNER_H_

#include <vector>

#include "common/result.h"
#include "model/sort_key.h"
#include "workflow/workflow.h"

namespace csm {

/// A multi-pass evaluation plan (§5.4): the workflow's measures are
/// partitioned into Sort/Scan iterations, each with its own sort order and
/// an estimated footprint that fits the memory budget. Measures whose
/// inputs land in earlier passes cannot stream and are evaluated after the
/// scans, with traditional (hash) join strategies over the materialized
/// measure tables — the paper's fallback for cross-pass dependencies.
struct PassPlan {
  struct Pass {
    /// Indices into Workflow::measures(), in topological order. Region
    /// enumerators needed by post-pass match joins ride along
    /// automatically inside the engine.
    std::vector<int> measure_indices;
    SortKey sort_key;
    double estimated_entries = 0;
  };
  std::vector<Pass> passes;
  /// Measures combined after the scans from materialized inputs.
  std::vector<int> post_pass_indices;
};

/// Greedy pass assignment: walk the measures in topological order, adding
/// each to the current pass while the pass's estimated footprint (under
/// its best sort order) stays within `entry_budget` live hash entries.
/// A measure that would overflow the pass starts a new one when its inputs
/// allow streaming there; otherwise it is deferred to the post-pass
/// combiner. Always emits at least one pass.
Result<PassPlan> PlanPasses(const Workflow& workflow, double entry_budget);

}  // namespace csm

#endif  // CSM_OPT_PASS_PLANNER_H_
