#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "opt/footprint.h"

namespace csm {

namespace {

/// Estimated number of regions (output rows) of one measure: the product
/// of its non-ALL dimension cardinalities, capped by the row count that
/// feeds it.
double EstimateRegions(const Schema& schema, const Granularity& gran,
                       double upstream_rows) {
  double regions = 1.0;
  for (int i = 0; i < schema.num_dims(); ++i) {
    const Hierarchy& h = *schema.dim(i).hierarchy;
    if (gran.level(i) == h.all_level()) continue;
    regions *= h.EstimatedCardinality(gran.level(i));
  }
  return std::min(regions, upstream_rows);
}

/// Rows flowing along each measure's update stream, by name.
std::map<std::string, double> StreamRows(const Workflow& workflow,
                                         double num_rows) {
  const Schema& schema = *workflow.schema();
  std::map<std::string, double> rows;
  for (const MeasureDef& def : workflow.measures()) {
    double upstream = 0;
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        upstream = num_rows;
        break;
      case MeasureOp::kRollup:
      case MeasureOp::kMatch:
        upstream = rows.count(def.input) ? rows.at(def.input) : num_rows;
        if (def.op == MeasureOp::kMatch &&
            def.match.type == MatchType::kSibling) {
          double box = 1.0;
          for (const SiblingWindow& w : def.match.windows) {
            box *= static_cast<double>(w.hi - w.lo + 1);
          }
          upstream *= box;  // fan-out of the window
        }
        break;
      case MeasureOp::kCombine: {
        upstream = 0;
        for (const std::string& in : def.combine_inputs) {
          upstream += rows.count(in) ? rows.at(in) : 0;
        }
        break;
      }
    }
    rows[def.name] = EstimateRegions(schema, def.gran, upstream);
  }
  return rows;
}

/// Total hash updates across the computation graph: one per record per
/// scan-side node, one per update-stream row for composite nodes.
double TotalUpdates(const Workflow& workflow, double num_rows,
                    const std::map<std::string, double>& rows) {
  double updates = 0;
  std::map<std::vector<int>, bool> enum_grans;
  for (const MeasureDef& def : workflow.measures()) {
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        updates += num_rows;
        break;
      case MeasureOp::kMatch:
        if (!enum_grans[def.gran.levels()]) {
          enum_grans[def.gran.levels()] = true;
          updates += num_rows;  // the implicit region enumerator
        }
        [[fallthrough]];
      case MeasureOp::kRollup: {
        auto it = rows.find(def.input);
        double in_rows = it != rows.end() ? it->second : 0;
        if (def.op == MeasureOp::kMatch &&
            def.match.type == MatchType::kSibling) {
          for (const SiblingWindow& w : def.match.windows) {
            in_rows *= static_cast<double>(w.hi - w.lo + 1);
          }
        }
        updates += in_rows;
        break;
      }
      case MeasureOp::kCombine:
        for (const std::string& in : def.combine_inputs) {
          auto it = rows.find(in);
          updates += it != rows.end() ? it->second : 0;
        }
        break;
    }
  }
  return updates;
}

double WriteRows(const std::map<std::string, double>& rows) {
  double total = 0;
  for (const auto& [name, count] : rows) total += count;
  return total;
}

}  // namespace

std::string CostEstimate::ToString() const {
  std::ostringstream out;
  out << "sort " << static_cast<uint64_t>(sort_cost) << " + scan "
      << static_cast<uint64_t>(scan_cost) << " + update "
      << static_cast<uint64_t>(update_cost) << " + write "
      << static_cast<uint64_t>(write_cost) << " = "
      << static_cast<uint64_t>(total()) << " row-ops";
  return out.str();
}

Result<CostEstimate> EstimateSortScanCost(const Workflow& workflow,
                                          const SortKey& key,
                                          double num_rows,
                                          const CostModelParams& params) {
  CostEstimate cost;
  cost.sort_cost = key.empty() ? 0 : num_rows * params.row_sort;
  cost.scan_cost = num_rows * params.row_scan;
  auto rows = StreamRows(workflow, num_rows);
  double update_unit = params.entry_update;
  CSM_ASSIGN_OR_RETURN(FootprintReport footprint,
                       EstimateFootprint(workflow, key));
  if (footprint.total_entries > params.large_state_entries) {
    update_unit *= params.large_state_penalty;
  }
  cost.update_cost = TotalUpdates(workflow, num_rows, rows) * update_unit;
  cost.write_cost = WriteRows(rows) * params.entry_write;
  return cost;
}

Result<CostEstimate> EstimateSingleScanCost(const Workflow& workflow,
                                            double num_rows,
                                            const CostModelParams& params) {
  CostEstimate cost;
  cost.scan_cost = num_rows * params.row_scan;
  auto rows = StreamRows(workflow, num_rows);
  // Single-scan holds every region set fully resident: apply the cache
  // penalty when the combined state is large.
  CSM_ASSIGN_OR_RETURN(FootprintReport footprint,
                       EstimateFootprint(workflow, SortKey()));
  double update_unit = params.entry_update;
  if (footprint.total_entries > params.large_state_entries) {
    update_unit *= params.large_state_penalty;
  }
  cost.update_cost = TotalUpdates(workflow, num_rows, rows) * update_unit;
  cost.write_cost = WriteRows(rows) * params.entry_write;
  return cost;
}

Result<CostEstimate> EstimateRelationalCost(const Workflow& workflow,
                                            double num_rows,
                                            const CostModelParams& params) {
  CostEstimate cost;
  auto rows = StreamRows(workflow, num_rows);
  for (const MeasureDef& def : workflow.measures()) {
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        // Re-scan and re-sort the base table for this one query.
        cost.scan_cost += num_rows * params.row_scan;
        cost.sort_cost += num_rows * params.row_sort;
        break;
      case MeasureOp::kMatch:
        // The region enumerator is recomputed from the base table.
        cost.scan_cost += num_rows * params.row_scan;
        cost.sort_cost += num_rows * params.row_sort;
        [[fallthrough]];
      case MeasureOp::kRollup: {
        auto it = rows.find(def.input);
        const double in_rows = it != rows.end() ? it->second : 0;
        cost.scan_cost += in_rows * params.row_scan;
        cost.sort_cost += in_rows * params.row_sort;
        cost.update_cost += in_rows * params.entry_update;
        break;
      }
      case MeasureOp::kCombine:
        for (const std::string& in : def.combine_inputs) {
          auto it = rows.find(in);
          const double in_rows = it != rows.end() ? it->second : 0;
          cost.scan_cost += in_rows * params.row_scan;
          cost.sort_cost += in_rows * params.row_sort;
        }
        break;
    }
    // Every measure's result is materialized to disk.
    auto out_it = rows.find(def.name);
    if (out_it != rows.end()) {
      cost.write_cost += out_it->second * params.entry_write * 2;
    }
  }
  return cost;
}

}  // namespace csm
