#include "opt/footprint.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace csm {

namespace {

/// Per-dimension slack of a measure's update stream, in units of the
/// measure's own granularity levels. Mirrors the runtime frontier
/// transforms: siblings add their window reach, parent/child arcs make
/// children wait for a whole parent block, roll-ups shrink slack by the
/// fan-out.
std::vector<double> ComputeSlack(
    const Workflow& workflow, const MeasureDef& def,
    std::map<std::string, std::vector<double>>& memo) {
  const Schema& schema = *workflow.schema();
  const int d = schema.num_dims();
  auto it = memo.find(def.name);
  if (it != memo.end()) return it->second;

  std::vector<double> slack(d, 0.0);
  auto input_slack = [&](const std::string& name) -> std::vector<double> {
    auto found = workflow.Find(name);
    CSM_CHECK(found.ok());
    return ComputeSlack(workflow, **found, memo);
  };

  switch (def.op) {
    case MeasureOp::kBaseAgg:
      break;  // fed directly by the scan: no slack
    case MeasureOp::kRollup: {
      auto in = workflow.Find(def.input);
      CSM_CHECK(in.ok());
      std::vector<double> s = input_slack(def.input);
      for (int i = 0; i < d; ++i) {
        const Hierarchy& h = *schema.dim(i).hierarchy;
        if (def.gran.level(i) == h.all_level()) continue;
        const double fan = h.FanOut((*in)->gran.level(i),
                                    def.gran.level(i));
        slack[i] = s[i] / std::max(fan, 1.0);
      }
      break;
    }
    case MeasureOp::kMatch: {
      auto in = workflow.Find(def.input);
      CSM_CHECK(in.ok());
      std::vector<double> s = input_slack(def.input);
      switch (def.match.type) {
        case MatchType::kSelf:
          slack = s;
          break;
        case MatchType::kChildParent: {
          for (int i = 0; i < d; ++i) {
            const Hierarchy& h = *schema.dim(i).hierarchy;
            if (def.gran.level(i) == h.all_level()) continue;
            const double fan = h.FanOut((*in)->gran.level(i),
                                        def.gran.level(i));
            slack[i] = s[i] / std::max(fan, 1.0);
          }
          break;
        }
        case MatchType::kParentChild: {
          // A child entry waits until its whole parent block has passed
          // (the -31..0 day/month slack of §5.3).
          for (int i = 0; i < d; ++i) {
            const Hierarchy& h = *schema.dim(i).hierarchy;
            if (def.gran.level(i) == h.all_level()) continue;
            const double fan = h.FanOut(def.gran.level(i),
                                        (*in)->gran.level(i));
            slack[i] = s[i] * fan + (fan - 1.0);
          }
          break;
        }
        case MatchType::kSibling: {
          slack = s;
          for (const SiblingWindow& w : def.match.windows) {
            slack[w.dim] += static_cast<double>(std::max<int64_t>(0, w.hi));
          }
          break;
        }
      }
      break;
    }
    case MeasureOp::kCombine: {
      for (const std::string& input : def.combine_inputs) {
        std::vector<double> s = input_slack(input);
        for (int i = 0; i < d; ++i) slack[i] = std::max(slack[i], s[i]);
      }
      break;
    }
  }
  memo[def.name] = slack;
  return slack;
}

MeasureFootprint EstimateOne(const Schema& schema, const Granularity& gran,
                             const SortKey& key, std::string name,
                             std::vector<double> slack) {
  const int d = schema.num_dims();
  MeasureFootprint fp;
  fp.name = std::move(name);
  fp.covered_level.assign(d, -1);
  fp.slack = slack;

  // The usable order prefix at this granularity (Table 6 / PosCalc
  // semantics): components stop at the first coarsening or rolled-away
  // dimension, and slack on a component ends the exploitable order after
  // it.
  for (const SortKeyPart& p : key.parts()) {
    const Hierarchy& h = *schema.dim(p.dim).hierarchy;
    const int from = gran.level(p.dim);
    if (from >= h.all_level()) break;
    if (from > p.level) {  // stream coarser than the component: coarsen+stop
      fp.covered_level[p.dim] = from;
      break;
    }
    fp.covered_level[p.dim] = p.level;
    if (slack[p.dim] > 0) break;  // disorder ends the usable prefix
  }

  double entries = 1.0;
  for (int i = 0; i < d; ++i) {
    const Hierarchy& h = *schema.dim(i).hierarchy;
    const int level = gran.level(i);
    if (level == h.all_level()) continue;
    const double card = h.EstimatedCardinality(level);
    double live;
    if (fp.covered_level[i] < 0) {
      live = card;  // unordered dimension: all values stay live
    } else {
      const double block = h.FanOut(level, fp.covered_level[i]);
      live = block + slack[i];
    }
    entries *= std::min(card, std::max(live, 1.0));
  }
  fp.entries = entries;
  fp.bytes = entries * (static_cast<double>(d) * 8 + 64);
  return fp;
}

}  // namespace

std::string FootprintReport::ToString(const Schema& schema) const {
  std::ostringstream out;
  for (const MeasureFootprint& fp : measures) {
    out << "  " << fp.name << ": ~" << static_cast<uint64_t>(fp.entries)
        << " entries";
    // Stream order (Table 6): the sort-key prefix this measure exploits,
    // and any slack on its update stream.
    std::string order;
    std::string slack_text;
    for (int i = 0; i < schema.num_dims(); ++i) {
      if (fp.covered_level[i] >= 0) {
        if (!order.empty()) order += ", ";
        order += schema.dim(i).name;
        order += ":";
        order += schema.dim(i).hierarchy->level_name(fp.covered_level[i]);
      }
      if (i < static_cast<int>(fp.slack.size()) && fp.slack[i] > 0) {
        if (!slack_text.empty()) slack_text += ", ";
        slack_text += schema.dim(i).name + "±" +
                      std::to_string(static_cast<int64_t>(fp.slack[i]));
      }
    }
    out << "  order <" << order << ">";
    if (!slack_text.empty()) out << "  slack {" << slack_text << "}";
    out << "\n";
  }
  out << "  total: ~" << static_cast<uint64_t>(total_entries)
      << " entries, ~" << static_cast<uint64_t>(total_bytes) << " bytes\n";
  return out.str();
}

Result<FootprintReport> EstimateFootprint(const Workflow& workflow,
                                          const SortKey& key) {
  const Schema& schema = *workflow.schema();
  FootprintReport report;
  std::map<std::string, std::vector<double>> slack_memo;
  std::map<std::vector<int>, bool> enum_added;

  for (const MeasureDef& def : workflow.measures()) {
    std::vector<double> slack = ComputeSlack(workflow, def, slack_memo);
    report.measures.push_back(
        EstimateOne(schema, def.gran, key, def.name, slack));
    // Match joins also hold the implicit region enumerator at the same
    // granularity (shared across matches on one region set).
    if (def.op == MeasureOp::kMatch &&
        !enum_added[def.gran.levels()]) {
      enum_added[def.gran.levels()] = true;
      report.measures.push_back(EstimateOne(
          schema, def.gran, key,
          "__regions" + def.gran.ToString(schema),
          std::vector<double>(schema.num_dims(), 0.0)));
    }
  }
  for (const MeasureFootprint& fp : report.measures) {
    report.total_entries += fp.entries;
    report.total_bytes += fp.bytes;
  }
  return report;
}

}  // namespace csm
