#include "testing/random_workflow.h"

#include <utility>

#include "common/logging.h"
#include "testing/mutate.h"

namespace csm {
namespace testing_util {

Workflow RandomWorkflowGen::Generate(int num_measures) {
  Workflow workflow(schema_);
  defined_.clear();
  int added = 0;
  int attempts = 0;
  while (added < num_measures && attempts < num_measures * 20) {
    ++attempts;
    MeasureDef def = ProposeMeasure(added);
    // count_distinct over an order-sensitive (var/stddev-derived) value
    // stream would turn engine-legitimate ULP wobble into integer
    // divergences — reject the draw and try again.
    std::vector<MeasureDef> candidate = workflow.measures();
    candidate.push_back(def);
    if (!CountDistinctInputsExact(candidate)) continue;
    if (workflow.AddMeasure(def).ok()) {
      defined_.push_back({def.name, def.gran});
      ++added;
    }
  }
  // Guarantee at least one measure.
  if (workflow.measures().empty()) {
    MeasureDef def;
    def.name = "m0";
    def.gran = RandomGran();
    def.op = MeasureOp::kBaseAgg;
    def.agg = {AggKind::kCount, -1};
    CSM_CHECK(workflow.AddMeasure(def).ok());
  }
  return workflow;
}

Granularity RandomWorkflowGen::RandomGran() {
  std::vector<int> levels(schema_->num_dims());
  bool any_non_all = false;
  for (int i = 0; i < schema_->num_dims(); ++i) {
    const int all = schema_->dim(i).hierarchy->all_level();
    levels[i] = static_cast<int>(rng_.Uniform(all + 1));
    if (levels[i] < all) any_non_all = true;
  }
  if (!any_non_all) levels[0] = 0;  // keep at least one real dimension
  return Granularity(std::move(levels));
}

Granularity RandomWorkflowGen::Coarsen(const Granularity& gran,
                                       bool strict) {
  std::vector<int> levels(gran.levels());
  for (int i = 0; i < schema_->num_dims(); ++i) {
    const int all = schema_->dim(i).hierarchy->all_level();
    levels[i] = gran.level(i) +
                static_cast<int>(rng_.Uniform(all - gran.level(i) + 1));
  }
  Granularity out(std::move(levels));
  if (strict && out == gran) {
    // Force at least one coarsening if possible.
    for (int i = 0; i < schema_->num_dims(); ++i) {
      const int all = schema_->dim(i).hierarchy->all_level();
      if (out.level(i) < all) {
        out.set_level(i, out.level(i) + 1);
        break;
      }
    }
  }
  return out;
}

Granularity RandomWorkflowGen::Refine(const Granularity& gran) {
  std::vector<int> levels(gran.levels());
  for (int i = 0; i < schema_->num_dims(); ++i) {
    levels[i] = static_cast<int>(rng_.Uniform(gran.level(i) + 1));
  }
  return Granularity(std::move(levels));
}

AggSpec RandomWorkflowGen::RandomAgg(bool over_fact) {
  // Holistic / multi-register aggregates (count_distinct, stddev, var)
  // are deliberately over-weighted: their per-entry state (distinct sets,
  // sum-of-squares registers) is where batched hash-table update loops
  // and entry caching are most likely to go wrong.
  static const AggKind kKinds[] = {
      AggKind::kCount,  AggKind::kSum,           AggKind::kMin,
      AggKind::kMax,    AggKind::kAvg,           AggKind::kCountDistinct,
      AggKind::kStddev, AggKind::kCountDistinct, AggKind::kVar};
  AggSpec agg;
  agg.kind = kKinds[rng_.Uniform(std::size(kKinds))];
  if (agg.kind == AggKind::kCount) {
    agg.arg = -1;
  } else {
    agg.arg = over_fact && schema_->num_measures() > 0
                  ? static_cast<int>(rng_.Uniform(schema_->num_measures()))
                  : 0;
  }
  return agg;
}

ScalarExprPtr RandomWorkflowGen::MaybeWhere(bool over_fact) {
  if (!rng_.Bernoulli(0.4)) return nullptr;
  std::string var;
  if (over_fact && schema_->num_measures() > 0 && rng_.Bernoulli(0.5)) {
    var = schema_->measure_name(0);
  } else if (!over_fact) {
    var = "M";
  } else {
    var = schema_->dim(0).name;
  }
  const char* op = rng_.Bernoulli(0.5) ? ">" : "<=";
  auto expr = ScalarExpr::Parse(var + " " + op + " " +
                                std::to_string(rng_.Uniform(50)));
  CSM_CHECK(expr.ok());
  return *expr;
}

MeasureDef RandomWorkflowGen::ProposeMeasure(int index) {
  MeasureDef def;
  def.name = "m" + std::to_string(index);
  def.is_output = rng_.Bernoulli(0.7);
  const int roll =
      defined_.empty() ? 0 : static_cast<int>(rng_.Uniform(10));
  if (roll < 3) {  // base measure
    def.op = MeasureOp::kBaseAgg;
    def.gran = RandomGran();
    def.agg = RandomAgg(/*over_fact=*/true);
    def.where = MaybeWhere(/*over_fact=*/true);
    return def;
  }
  const Defined& input = defined_[rng_.Uniform(defined_.size())];
  def.input = input.name;
  if (roll < 5) {  // roll-up
    def.op = MeasureOp::kRollup;
    def.gran = Coarsen(input.gran, /*strict=*/false);
    def.agg = RandomAgg(/*over_fact=*/false);
    def.where = MaybeWhere(/*over_fact=*/false);
    return def;
  }
  if (roll < 9) {  // match join
    def.op = MeasureOp::kMatch;
    def.agg = RandomAgg(/*over_fact=*/false);
    def.where = MaybeWhere(/*over_fact=*/false);
    switch (rng_.Uniform(4)) {
      case 0:
        def.match = MatchCond::Self();
        def.gran = input.gran;
        break;
      case 1:
        def.match = MatchCond::ChildParent();
        def.gran = Coarsen(input.gran, /*strict=*/false);
        break;
      case 2:
        def.match = MatchCond::ParentChild();
        def.gran = Refine(input.gran);
        break;
      default: {
        def.gran = input.gran;
        std::vector<SiblingWindow> windows;
        for (int i = 0; i < schema_->num_dims(); ++i) {
          if (def.gran.level(i) ==
              schema_->dim(i).hierarchy->all_level()) {
            continue;
          }
          if (!windows.empty() && !rng_.Bernoulli(0.4)) continue;
          SiblingWindow w;
          w.dim = i;
          w.lo = rng_.UniformInt(-2, 0);
          w.hi = w.lo + rng_.UniformInt(0, 3);
          windows.push_back(w);
          if (windows.size() == 2) break;
        }
        if (windows.empty()) {
          def.match = MatchCond::Self();
        } else {
          def.match = MatchCond::Sibling(std::move(windows));
        }
        break;
      }
    }
    return def;
  }
  // Combine join over measures sharing the input's granularity.
  def.op = MeasureOp::kCombine;
  def.gran = input.gran;
  std::string expr = input.name;
  def.combine_inputs.push_back(input.name);
  for (const Defined& other : defined_) {
    if (other.name != input.name && other.gran == input.gran &&
        def.combine_inputs.size() < 3 && rng_.Bernoulli(0.6)) {
      def.combine_inputs.push_back(other.name);
      expr += rng_.Bernoulli(0.5) ? " + coalesce(" + other.name + ", 0)"
                                  : " - coalesce(" + other.name + ", 1)";
    }
  }
  auto parsed = ScalarExpr::Parse(expr);
  CSM_CHECK(parsed.ok());
  def.fc = *parsed;
  return def;
}

}  // namespace testing_util
}  // namespace csm
