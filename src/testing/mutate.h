#ifndef CSM_TESTING_MUTATE_H_
#define CSM_TESTING_MUTATE_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/fact_table.h"
#include "workflow/workflow.h"

namespace csm {
namespace testing_util {

/// Rebuilds a workflow from an explicit measure list (in dependency
/// order). Fails when the list is invalid — dangling inputs, granularity
/// violations — which is how the shrinker discards illegal mutations.
Result<Workflow> RebuildWorkflow(const SchemaPtr& schema,
                                 const std::vector<MeasureDef>& defs);

/// All valid one-step simplifications of `workflow`, most aggressive
/// first: drop one measure (only succeeds for measures nothing depends
/// on), remove one filter, narrow or drop one sibling window, coarsen one
/// measure's granularity on one dimension by one level. The shrinker
/// accepts the first candidate that still diverges and iterates to a
/// fixed point.
std::vector<Workflow> ShrinkWorkflowCandidates(const Workflow& workflow);

/// True when no count_distinct aggregates over values that are only
/// reproducible up to floating-point accumulation order. var/stddev
/// finalize Welford registers whose rounding depends on the order rows
/// were folded, so engines legitimately disagree in the last ULP —
/// within the differential comparison's tolerance for the values
/// themselves, but count_distinct compares *bits* and turns a 1-ULP
/// wobble into an off-by-one distinct count. The taint is transitive
/// (a max over a var-valued measure still carries a var value), so both
/// the random generator and MutateHolistic reject candidates this
/// predicate fails. Exact producers — count, sum/min/max/avg over the
/// integer-valued fuzz measures, count_distinct itself — don't taint.
bool CountDistinctInputsExact(const std::vector<MeasureDef>& defs);

/// Seed-deterministic mutation pass pushing the holistic /
/// multi-register aggregates — count_distinct, stddev, var — onto more
/// arcs of an existing workflow (the aggressive-coverage half of the
/// ROADMAP fuzzer item; RandomWorkflowGen already over-weights them at
/// generation time). Applies up to `max_mutations` of:
///
///   - retarget: switch the aggregate of an existing base-agg / roll-up /
///     match measure to a holistic kind (distinct sets and Welford
///     registers then flow through whatever arc shape the generator
///     built);
///   - inject roll-up arc: add a new coarser holistic roll-up over a
///     random existing measure;
///   - inject match arc: add a new self- or sibling-match measure with a
///     holistic aggregate over a random existing measure.
///
/// Candidates that fail workflow validation are discarded and retried;
/// the returned workflow is always valid (the input workflow when
/// nothing applies). Mutations draw only from `rng`, so campaigns stay
/// replayable from their seed.
Workflow MutateHolistic(const Workflow& workflow, Rng& rng,
                        int max_mutations = 2);

/// Copy of `fact` without rows [begin, begin + count).
FactTable DropRows(const FactTable& fact, size_t begin, size_t count);

/// Coarsens the hierarchy *inside the data*: every base value of `dim` is
/// replaced by a canonical representative of its level-`level` ancestor
/// (the first base value of that ancestor's block), so the dimension
/// effectively has the level-`level` domain while staying a valid base
/// column. Shrinks the distinct-value count without dropping rows —
/// reproducers keep their row pattern but the hierarchy collapses.
/// Returns nullopt when the hierarchy is irregular (no exact divisor) or
/// `level` is not a real coarsening (level 0 or >= ALL).
std::optional<FactTable> CollapseDimToLevel(const FactTable& fact, int dim,
                                            int level);

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_MUTATE_H_
