#ifndef CSM_TESTING_REPRO_H_
#define CSM_TESTING_REPRO_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "obs/trace.h"
#include "storage/fact_table.h"
#include "testing/differential.h"
#include "workflow/workflow.h"

namespace csm {
namespace testing_util {

/// A self-contained reproducer loaded from disk: everything needed to
/// replay one failing differential case without the campaign that found
/// it — schema spec, workflow DSL, engine config, optional fault hook,
/// and the (shrunken) fact rows.
struct ReproCase {
  std::string schema_spec;
  SchemaPtr schema;
  std::string workflow_dsl;
  Workflow workflow;
  EngineConfig config;
  FaultSpec fault;
  uint64_t seed = 0;  // campaign seed that found the case (informational)
  FactTable fact;
};

/// Writes a repro directory: `dir/repro.txt` (a small "key: value" header
/// followed by the workflow DSL) plus `dir/case.facts.bin`
/// (WriteFactTableBinary). Creates `dir` (and parents). Returns the path
/// to repro.txt. The format is plain text so a reproducer can be read,
/// edited and mailed around; see docs/fuzzing.md.
Result<std::string> WriteRepro(const std::string& dir,
                               const Workflow& workflow,
                               const FactTable& fact,
                               const EngineConfig& config,
                               const FaultSpec& fault, uint64_t seed,
                               const std::string& schema_spec);

/// Loads a reproducer. `path` may name the repro.txt file or its
/// directory.
Result<ReproCase> LoadRepro(const std::string& path);

/// Replays a reproducer: recomputes the reference and re-checks the
/// case's config. Returns the divergence, or nullopt when the case no
/// longer diverges (i.e. the bug is fixed). Deterministic: identical
/// calls produce byte-identical divergence text. Engine spans land on
/// `tracer` when set.
Result<std::optional<Divergence>> ReplayRepro(const ReproCase& repro,
                                              Tracer* tracer = nullptr);

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_REPRO_H_
