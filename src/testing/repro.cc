#include "testing/repro.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "storage/table_io.h"

namespace csm {
namespace testing_util {

namespace {

constexpr std::string_view kMagic = "csm-fuzz-repro v1";
constexpr std::string_view kFactsFileName = "case.facts.bin";

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<std::string> WriteRepro(const std::string& dir,
                               const Workflow& workflow,
                               const FactTable& fact,
                               const EngineConfig& config,
                               const FaultSpec& fault, uint64_t seed,
                               const std::string& schema_spec) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create repro dir " + dir + ": " +
                           ec.message());
  }
  const std::string facts_path = dir + "/" + std::string(kFactsFileName);
  CSM_RETURN_NOT_OK(WriteFactTableBinary(fact, facts_path));

  const std::string repro_path = dir + "/repro.txt";
  std::ofstream out(repro_path);
  if (!out) return Status::IOError("cannot write " + repro_path);
  out << kMagic << "\n";
  out << "seed: " << seed << "\n";
  out << "schema: " << schema_spec << "\n";
  out << "engine: " << EngineKindName(config.kind) << "\n";
  out << "path: " << (config.run_file ? "runfile" : "memory") << "\n";
  out << "threads: " << config.threads << "\n";
  out << "budget_bytes: " << config.memory_budget_bytes << "\n";
  if (config.scan_batch_rows > 0) {
    out << "batch_rows: " << config.scan_batch_rows << "\n";
  }
  if (config.morsel_rows > 0) {
    out << "morsel_rows: " << config.morsel_rows << "\n";
  }
  if (config.session_queries > 1) {
    out << "session_queries: " << config.session_queries << "\n";
  }
  if (config.append_splits > 0) {
    out << "append_splits: " << config.append_splits << "\n";
  }
  if (config.no_vectorize) out << "vectorize: off\n";
  if (config.no_dict) out << "dict: off\n";
  if (!config.sort_key.empty()) {
    out << "sort_key: " << config.sort_key.ToString(*workflow.schema())
        << "\n";
  }
  if (fault.enabled) out << "fault: " << fault.ToText() << "\n";
  out << "facts: " << kFactsFileName << "\n";
  out << "workflow:\n";
  out << workflow.ToDsl();
  out.close();
  if (!out) return Status::IOError("short write to " + repro_path);
  return repro_path;
}

Result<ReproCase> LoadRepro(const std::string& path) {
  namespace fs = std::filesystem;
  std::string repro_path = path;
  if (fs::is_directory(repro_path)) repro_path += "/repro.txt";
  std::ifstream in(repro_path);
  if (!in) return Status::IOError("cannot open " + repro_path);
  const std::string base_dir =
      fs::path(repro_path).parent_path().string();

  std::string line;
  if (!std::getline(in, line) || Trim(line) != kMagic) {
    return Status::ParseError(repro_path + ": not a " +
                              std::string(kMagic) + " file");
  }

  std::string schema_spec, engine = "sortscan", path_kind = "memory";
  std::string sort_key_text, fault_text, facts_name, vectorize = "on";
  std::string dict = "on";
  uint64_t seed = 0, budget = 0, batch_rows = 0, morsel_rows = 0;
  int64_t threads = 0, session_queries = 0, append_splits = 0;
  std::ostringstream dsl;
  bool in_workflow = false;
  while (std::getline(in, line)) {
    if (in_workflow) {
      dsl << line << "\n";
      continue;
    }
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#') continue;
    if (view == "workflow:") {
      in_workflow = true;
      continue;
    }
    const size_t colon = view.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError(repro_path + ": bad line '" + line + "'");
    }
    const std::string key(Trim(view.substr(0, colon)));
    const std::string value(Trim(view.substr(colon + 1)));
    if (key == "seed") {
      if (!ParseUint64(value, &seed)) {
        return Status::ParseError("bad seed: " + value);
      }
    } else if (key == "schema") {
      schema_spec = value;
    } else if (key == "engine") {
      engine = value;
    } else if (key == "path") {
      path_kind = value;
    } else if (key == "threads") {
      if (!ParseInt64(value, &threads)) {
        return Status::ParseError("bad threads: " + value);
      }
    } else if (key == "budget_bytes") {
      if (!ParseUint64(value, &budget)) {
        return Status::ParseError("bad budget_bytes: " + value);
      }
    } else if (key == "batch_rows") {
      if (!ParseUint64(value, &batch_rows)) {
        return Status::ParseError("bad batch_rows: " + value);
      }
    } else if (key == "morsel_rows") {
      if (!ParseUint64(value, &morsel_rows)) {
        return Status::ParseError("bad morsel_rows: " + value);
      }
    } else if (key == "session_queries") {
      if (!ParseInt64(value, &session_queries)) {
        return Status::ParseError("bad session_queries: " + value);
      }
    } else if (key == "append_splits") {
      if (!ParseInt64(value, &append_splits)) {
        return Status::ParseError("bad append_splits: " + value);
      }
    } else if (key == "vectorize") {
      vectorize = value;
    } else if (key == "dict") {
      dict = value;
    } else if (key == "sort_key") {
      sort_key_text = value;
    } else if (key == "fault") {
      fault_text = value;
    } else if (key == "facts") {
      facts_name = value;
    } else {
      return Status::ParseError(repro_path + ": unknown key '" + key +
                                "'");
    }
  }
  if (!in_workflow) {
    return Status::ParseError(repro_path + ": missing workflow section");
  }
  if (schema_spec.empty()) {
    return Status::ParseError(repro_path + ": missing schema spec");
  }
  if (facts_name.empty()) facts_name = std::string(kFactsFileName);

  CSM_ASSIGN_OR_RETURN(SchemaPtr schema, ParseSchemaSpec(schema_spec));
  std::string workflow_dsl = dsl.str();
  CSM_ASSIGN_OR_RETURN(Workflow workflow,
                       Workflow::Parse(schema, workflow_dsl));
  EngineConfig config;
  CSM_ASSIGN_OR_RETURN(config.kind, ParseEngineKind(engine));
  if (path_kind == "runfile") {
    config.run_file = true;
  } else if (path_kind != "memory") {
    return Status::ParseError("bad path kind: " + path_kind);
  }
  config.threads = static_cast<int>(threads);
  config.memory_budget_bytes = budget;
  config.scan_batch_rows = batch_rows;
  config.morsel_rows = morsel_rows;
  config.session_queries = static_cast<int>(session_queries);
  config.append_splits = static_cast<int>(append_splits);
  if (vectorize == "off") {
    config.no_vectorize = true;
  } else if (vectorize != "on") {
    return Status::ParseError("bad vectorize value: " + vectorize);
  }
  if (dict == "off") {
    config.no_dict = true;
  } else if (dict != "on") {
    return Status::ParseError("bad dict value: " + dict);
  }
  if (!sort_key_text.empty()) {
    CSM_ASSIGN_OR_RETURN(config.sort_key,
                         SortKey::Parse(*schema, sort_key_text));
  }
  FaultSpec fault;
  if (!fault_text.empty()) {
    CSM_ASSIGN_OR_RETURN(fault, FaultSpec::Parse(fault_text));
  }
  CSM_ASSIGN_OR_RETURN(
      FactTable fact,
      ReadFactTableBinary(schema, base_dir.empty()
                                      ? facts_name
                                      : base_dir + "/" + facts_name));
  return ReproCase{schema_spec,
                   std::move(schema),
                   std::move(workflow_dsl),
                   std::move(workflow),
                   config,
                   fault,
                   seed,
                   std::move(fact)};
}

Result<std::optional<Divergence>> ReplayRepro(const ReproCase& repro,
                                              Tracer* tracer) {
  CSM_ASSIGN_OR_RETURN(auto reference,
                       ComputeReference(repro.workflow, repro.fact));
  return CheckConfig(repro.workflow, repro.fact, reference, repro.config,
                     repro.fault, tracer);
}

}  // namespace testing_util
}  // namespace csm
