#ifndef CSM_TESTING_DATA_GEN_H_
#define CSM_TESTING_DATA_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/fact_table.h"

namespace csm {
namespace testing_util {

/// Shape of the dimension-value distribution a generated fact table uses.
/// Uniform data rarely tickles frontier/watermark corner cases; the skewed
/// and edge-heavy shapes concentrate rows on hierarchy block boundaries and
/// hot keys where off-by-one bugs in the streaming machinery live.
enum class FactDist {
  kUniform,    // independent uniform draws (the §7.1 evaluation shape)
  kZipf,       // heavy skew: a few hot values dominate every dimension
  kClustered,  // rows arrive in runs of near-identical keys (pre-sorted-ish)
  kEdgeHeavy,  // boundary values: 0, card-1, hierarchy block edges
};

struct FactGenOptions {
  size_t rows = 2000;
  uint64_t cardinality = 512;  // base-domain values per dimension
  uint64_t seed = 1;
  FactDist dist = FactDist::kUniform;
  double zipf_theta = 0.8;          // skew for kZipf
  double duplicate_fraction = 0.05; // chance a row repeats its predecessor
  double edge_fraction = 0.25;      // kEdgeHeavy: boundary-value density
  bool negative_measures = false;   // draw measures from [-50, 50)
};

/// Generates a fact table for any schema whose base domains accept values
/// in [0, cardinality). Measure attributes are always integer-valued
/// doubles, so sums are exact in any accumulation order and differential
/// comparisons never trip over floating-point associativity.
/// Deterministic per options (including seed).
FactTable GenerateFacts(const SchemaPtr& schema,
                        const FactGenOptions& options);

/// Seed-derived random generation options for one fuzz-campaign run: rows
/// in [1, max_rows], a random distribution, random skew/duplicate knobs.
FactGenOptions RandomFactOptions(size_t max_rows, uint64_t cardinality,
                                 Rng& rng);

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_DATA_GEN_H_
