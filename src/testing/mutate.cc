#include "testing/mutate.h"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace csm {
namespace testing_util {

namespace {

/// Pushes the rebuild of `defs` onto `out` when it validates.
void TryCandidate(const SchemaPtr& schema,
                  const std::vector<MeasureDef>& defs,
                  std::vector<Workflow>* out) {
  auto rebuilt = RebuildWorkflow(schema, defs);
  if (rebuilt.ok()) out->push_back(std::move(*rebuilt));
}

}  // namespace

Result<Workflow> RebuildWorkflow(const SchemaPtr& schema,
                                 const std::vector<MeasureDef>& defs) {
  Workflow workflow(schema);
  for (const MeasureDef& def : defs) {
    CSM_RETURN_NOT_OK(workflow.AddMeasure(def));
  }
  if (workflow.measures().empty()) {
    return Status::InvalidArgument("workflow would become empty");
  }
  return workflow;
}

bool CountDistinctInputsExact(const std::vector<MeasureDef>& defs) {
  // defs are in dependency order (inputs precede their consumers), so a
  // single forward pass settles the taint set.
  std::set<std::string> tainted;
  auto is_tainted = [&](const std::string& name) {
    return tainted.count(name) > 0;
  };
  for (const MeasureDef& def : defs) {
    bool input_tainted = false;
    if (def.op == MeasureOp::kCombine) {
      for (const std::string& in : def.combine_inputs) {
        input_tainted = input_tainted || is_tainted(in);
      }
    } else if (!def.input.empty()) {  // empty input = FACT (exact)
      input_tainted = is_tainted(def.input);
    }
    if (def.agg.kind == AggKind::kCountDistinct && input_tainted) {
      return false;
    }
    const bool order_sensitive =
        def.op != MeasureOp::kCombine &&
        (def.agg.kind == AggKind::kVar ||
         def.agg.kind == AggKind::kStddev);
    if (order_sensitive || input_tainted) tainted.insert(def.name);
  }
  return true;
}

std::vector<Workflow> ShrinkWorkflowCandidates(const Workflow& workflow) {
  const SchemaPtr& schema = workflow.schema();
  const std::vector<MeasureDef>& defs = workflow.measures();
  std::vector<Workflow> out;

  // 1. Drop one measure. Rebuild validation rejects drops of measures
  // that still have dependents, so only true leaves succeed. Later
  // measures are more likely to be leaves — iterate in reverse.
  for (size_t i = defs.size(); i-- > 0;) {
    std::vector<MeasureDef> candidate;
    candidate.reserve(defs.size() - 1);
    for (size_t j = 0; j < defs.size(); ++j) {
      if (j != i) candidate.push_back(defs[j]);
    }
    if (!candidate.empty()) TryCandidate(schema, candidate, &out);
  }

  // 2. Remove one filter.
  for (size_t i = 0; i < defs.size(); ++i) {
    if (defs[i].where == nullptr) continue;
    std::vector<MeasureDef> candidate = defs;
    candidate[i].where = nullptr;
    TryCandidate(schema, candidate, &out);
  }

  // 3. Drop one sibling window, or narrow one toward a point window.
  for (size_t i = 0; i < defs.size(); ++i) {
    const MeasureDef& def = defs[i];
    if (def.op != MeasureOp::kMatch ||
        def.match.type != MatchType::kSibling) {
      continue;
    }
    for (size_t w = 0; w < def.match.windows.size(); ++w) {
      {  // drop window w entirely (Self when it was the last one)
        std::vector<MeasureDef> candidate = defs;
        std::vector<SiblingWindow> windows = def.match.windows;
        windows.erase(windows.begin() + w);
        candidate[i].match = windows.empty()
                                 ? MatchCond::Self()
                                 : MatchCond::Sibling(std::move(windows));
        TryCandidate(schema, candidate, &out);
      }
      const SiblingWindow& win = def.match.windows[w];
      if (win.lo < 0 && win.lo + 1 <= win.hi) {  // pull lower edge in
        std::vector<MeasureDef> candidate = defs;
        candidate[i].match.windows[w].lo = win.lo + 1;
        TryCandidate(schema, candidate, &out);
      }
      if (win.hi > win.lo) {  // pull the upper edge in
        std::vector<MeasureDef> candidate = defs;
        candidate[i].match.windows[w].hi = win.hi - 1;
        TryCandidate(schema, candidate, &out);
      }
    }
  }

  // 4. Coarsen one measure's granularity on one dimension by one level.
  // Coarser granularities mean fewer regions and shallower hierarchies in
  // the reproducer; invalid coarsenings (dependents need the finer form)
  // fail the rebuild and drop out.
  for (size_t i = 0; i < defs.size(); ++i) {
    for (int dim = 0; dim < schema->num_dims(); ++dim) {
      const int all = schema->dim(dim).hierarchy->all_level();
      if (defs[i].gran.level(dim) >= all) continue;
      std::vector<MeasureDef> candidate = defs;
      candidate[i].gran.set_level(dim, defs[i].gran.level(dim) + 1);
      TryCandidate(schema, candidate, &out);
    }
  }

  return out;
}

namespace {

AggKind RandomHolisticKind(Rng& rng) {
  static const AggKind kKinds[] = {AggKind::kCountDistinct,
                                   AggKind::kStddev, AggKind::kVar};
  return kKinds[rng.Uniform(std::size(kKinds))];
}

/// Retargets the aggregate of one random base-agg / roll-up / match
/// measure to a holistic kind. Returns false when the workflow has no
/// eligible measure.
bool ProposeRetarget(const std::vector<MeasureDef>& defs, Rng& rng,
                     std::vector<MeasureDef>* out) {
  std::vector<size_t> eligible;
  for (size_t i = 0; i < defs.size(); ++i) {
    if (defs[i].op != MeasureOp::kCombine) eligible.push_back(i);
  }
  if (eligible.empty()) return false;
  const size_t i = eligible[rng.Uniform(eligible.size())];
  *out = defs;
  MeasureDef& def = (*out)[i];
  def.agg.kind = RandomHolisticKind(rng);
  // count(*)-style arg (-1) becomes an explicit column: holistic
  // aggregates need a value stream (the distinct set / Welford
  // registers fold actual inputs, not row counts).
  if (def.agg.arg < 0) def.agg.arg = 0;
  return true;
}

/// Appends a new holistic roll-up or self/sibling-match measure over a
/// random existing measure.
bool ProposeInject(const SchemaPtr& schema,
                   const std::vector<MeasureDef>& defs, Rng& rng,
                   std::vector<MeasureDef>* out) {
  const MeasureDef& input = defs[rng.Uniform(defs.size())];
  MeasureDef def;
  def.name = "hz" + std::to_string(defs.size());
  def.input = input.name;
  def.agg = {RandomHolisticKind(rng), 0};
  if (rng.Bernoulli(0.5)) {
    // Roll-up arc: coarsen each dimension by a random amount.
    def.op = MeasureOp::kRollup;
    std::vector<int> levels(input.gran.levels());
    for (int d = 0; d < schema->num_dims(); ++d) {
      const int all = schema->dim(d).hierarchy->all_level();
      levels[d] += static_cast<int>(rng.Uniform(all - levels[d] + 1));
    }
    def.gran = Granularity(std::move(levels));
  } else {
    // Match arc at the input's own granularity: a sibling window on the
    // first non-ALL dimension when one exists, self-match otherwise.
    def.op = MeasureOp::kMatch;
    def.gran = input.gran;
    def.match = MatchCond::Self();
    for (int d = 0; d < schema->num_dims(); ++d) {
      if (def.gran.level(d) >= schema->dim(d).hierarchy->all_level()) {
        continue;
      }
      SiblingWindow w;
      w.dim = d;
      w.lo = static_cast<int>(rng.UniformInt(-2, 0));
      w.hi = w.lo + static_cast<int>(rng.UniformInt(0, 2));
      def.match = MatchCond::Sibling({w});
      break;
    }
  }
  *out = defs;
  out->push_back(std::move(def));
  return true;
}

}  // namespace

Workflow MutateHolistic(const Workflow& workflow, Rng& rng,
                        int max_mutations) {
  Workflow current = workflow;
  for (int applied = 0; applied < max_mutations;) {
    bool progressed = false;
    // A handful of attempts per slot: most rejections are validation
    // failures (e.g. a roll-up target coarser than a dependent needs),
    // and a different random draw usually lands.
    for (int attempt = 0; attempt < 4 && !progressed; ++attempt) {
      std::vector<MeasureDef> candidate;
      const bool proposed =
          rng.Bernoulli(0.5)
              ? ProposeRetarget(current.measures(), rng, &candidate)
              : ProposeInject(current.schema(), current.measures(), rng,
                              &candidate);
      if (!proposed) continue;
      if (!CountDistinctInputsExact(candidate)) continue;
      auto rebuilt = RebuildWorkflow(current.schema(), candidate);
      if (!rebuilt.ok()) continue;
      current = std::move(*rebuilt);
      progressed = true;
    }
    if (!progressed) break;
    ++applied;
  }
  return current;
}

FactTable DropRows(const FactTable& fact, size_t begin, size_t count) {
  FactTable out(fact.schema());
  const size_t end = std::min(begin + count, fact.num_rows());
  out.Reserve(fact.num_rows() - (end - begin));
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    if (row >= begin && row < end) continue;
    out.AppendRow(fact.dim_row(row), fact.measure_row(row));
  }
  return out;
}

std::optional<FactTable> CollapseDimToLevel(const FactTable& fact, int dim,
                                            int level) {
  const Schema& schema = *fact.schema();
  if (dim < 0 || dim >= schema.num_dims()) return std::nullopt;
  const Hierarchy& h = *schema.dim(dim).hierarchy;
  if (level <= 0 || level >= h.all_level()) return std::nullopt;
  // The representative of an ancestor block is its first base value:
  // (v / div) * div. Only regular (stepped) hierarchies expose the block
  // width; irregular ones report 0 and cannot be collapsed this way.
  const uint64_t div = h.ExactDivisor(0, level);
  if (div == 0) return std::nullopt;
  FactTable out(fact.schema());
  out.Reserve(fact.num_rows());
  std::vector<Value> dims(schema.num_dims());
  bool changed = false;
  for (size_t row = 0; row < fact.num_rows(); ++row) {
    const Value* in = fact.dim_row(row);
    for (int i = 0; i < schema.num_dims(); ++i) dims[i] = in[i];
    const Value collapsed = (dims[dim] / div) * div;
    if (collapsed != dims[dim]) changed = true;
    dims[dim] = collapsed;
    out.AppendRow(dims.data(), fact.measure_row(row));
  }
  if (!changed) return std::nullopt;  // no-op collapse: nothing to try
  return out;
}

}  // namespace testing_util
}  // namespace csm
