#include "testing/shrink.h"

#include <optional>
#include <utility>

#include "testing/mutate.h"

namespace csm {
namespace testing_util {

namespace {

/// Re-derives the oracle and re-checks the failing config on a candidate.
/// nullopt = candidate does not diverge (or is not even evaluable) and
/// must be rejected.
std::optional<Divergence> Diverges(const Workflow& workflow,
                                   const FactTable& fact,
                                   const EngineConfig& config,
                                   const FaultSpec& fault) {
  auto reference = ComputeReference(workflow, fact);
  if (!reference.ok()) return std::nullopt;
  auto check = CheckConfig(workflow, fact, *reference, config, fault);
  if (!check.ok()) return std::nullopt;
  return *check;
}

}  // namespace

std::string ShrinkStats::ToString() const {
  return "measures " + std::to_string(measures_before) + " -> " +
         std::to_string(measures_after) + ", rows " +
         std::to_string(rows_before) + " -> " +
         std::to_string(rows_after) + " (" +
         std::to_string(candidates_tried) + " candidates, " +
         std::to_string(accepted) + " accepted)";
}

Result<ShrunkCase> ShrinkCase(const Workflow& workflow,
                              const FactTable& fact,
                              const EngineConfig& config,
                              const FaultSpec& fault,
                              const ShrinkOptions& options) {
  auto initial = Diverges(workflow, fact, config, fault);
  if (!initial.has_value()) {
    return Status::InvalidArgument(
        "ShrinkCase called on a case that does not diverge");
  }

  ShrinkStats stats;
  stats.measures_before = workflow.measures().size();
  stats.rows_before = fact.num_rows();

  Workflow current = workflow;
  FactTable rows = fact.Clone();
  Divergence divergence = *initial;
  const auto budget_left = [&] {
    return stats.candidates_tried < options.max_candidates;
  };

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;

    // Workflow pass: accept the first simplification that still diverges
    // and restart, so drops compound until a fixed point.
    bool workflow_progress = true;
    while (workflow_progress && budget_left()) {
      workflow_progress = false;
      for (Workflow& candidate : ShrinkWorkflowCandidates(current)) {
        if (!budget_left()) break;
        ++stats.candidates_tried;
        auto d = Diverges(candidate, rows, config, fault);
        if (d.has_value()) {
          current = std::move(candidate);
          divergence = std::move(*d);
          ++stats.accepted;
          workflow_progress = true;
          progress = true;
          break;
        }
      }
    }

    // Data pass: classic ddmin over row chunks, largest chunks first.
    for (size_t chunk = std::max<size_t>(rows.num_rows() / 2, 1);
         chunk >= 1 && rows.num_rows() > 1 && budget_left();
         chunk = chunk / 2) {
      bool dropped = true;
      while (dropped && budget_left()) {
        dropped = false;
        for (size_t begin = 0;
             begin < rows.num_rows() && budget_left();
             begin += chunk) {
          FactTable candidate = DropRows(rows, begin, chunk);
          if (candidate.num_rows() == 0) continue;
          ++stats.candidates_tried;
          auto d = Diverges(current, candidate, config, fault);
          if (d.has_value()) {
            rows = std::move(candidate);
            divergence = std::move(*d);
            ++stats.accepted;
            dropped = true;
            progress = true;
          }
        }
      }
      if (chunk == 1) break;
    }

    // Hierarchy pass: coarsen the hierarchy *inside* the fact data.
    // Collapsing a dimension's base values onto level-k representatives
    // leaves the row count alone but crushes the distinct-value structure
    // — often the real trigger of a divergence is a hierarchy boundary,
    // and the collapsed reproducer makes that obvious. Try the coarsest
    // collapse first (deepest level), per dimension.
    {
      const Schema& schema = *current.schema();
      for (int dim = 0; dim < schema.num_dims() && budget_left(); ++dim) {
        const int all = schema.dim(dim).hierarchy->all_level();
        for (int level = all - 1; level >= 1 && budget_left(); --level) {
          std::optional<FactTable> candidate =
              CollapseDimToLevel(rows, dim, level);
          if (!candidate.has_value()) continue;
          ++stats.candidates_tried;
          auto d = Diverges(current, *candidate, config, fault);
          if (d.has_value()) {
            rows = std::move(*candidate);
            divergence = std::move(*d);
            ++stats.accepted;
            progress = true;
            break;  // coarsest accepted collapse wins for this dim
          }
        }
      }
    }
  }

  stats.measures_after = current.measures().size();
  stats.rows_after = rows.num_rows();
  return ShrunkCase{std::move(current), std::move(rows),
                    std::move(divergence), stats};
}

}  // namespace testing_util
}  // namespace csm
