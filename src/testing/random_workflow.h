#ifndef CSM_TESTING_RANDOM_WORKFLOW_H_
#define CSM_TESTING_RANDOM_WORKFLOW_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "workflow/workflow.h"

namespace csm {
namespace testing_util {

/// Generates random — but always valid — aggregation workflows over an
/// arbitrary schema: random granularities, every operator family, random
/// aggregates, filters, sibling windows, and combine expressions. The
/// property-based conformance tests and the differential fuzzer both rely
/// on the invariant that for any workflow this produces, all engines must
/// agree with the reference evaluator.
class RandomWorkflowGen {
 public:
  RandomWorkflowGen(SchemaPtr schema, uint64_t seed)
      : schema_(std::move(schema)), rng_(seed) {}

  /// Produces a workflow with up to `num_measures` measures (at least one).
  Workflow Generate(int num_measures);

 private:
  struct Defined {
    std::string name;
    Granularity gran;
  };

  Granularity RandomGran();
  Granularity Coarsen(const Granularity& gran, bool strict);
  Granularity Refine(const Granularity& gran);
  AggSpec RandomAgg(bool over_fact);
  ScalarExprPtr MaybeWhere(bool over_fact);
  MeasureDef ProposeMeasure(int index);

  SchemaPtr schema_;
  Rng rng_;
  std::vector<Defined> defined_;
};

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_RANDOM_WORKFLOW_H_
