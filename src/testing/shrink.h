#ifndef CSM_TESTING_SHRINK_H_
#define CSM_TESTING_SHRINK_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "storage/fact_table.h"
#include "testing/differential.h"
#include "workflow/workflow.h"

namespace csm {
namespace testing_util {

struct ShrinkOptions {
  /// Cap on candidate evaluations (each one re-derives the reference and
  /// re-runs the failing config), bounding shrink time on pathological
  /// cases.
  int max_candidates = 400;
};

struct ShrinkStats {
  size_t measures_before = 0;
  size_t measures_after = 0;
  size_t rows_before = 0;
  size_t rows_after = 0;
  int candidates_tried = 0;
  int accepted = 0;

  std::string ToString() const;
};

/// A minimized failing case: the divergence still reproduces on
/// (workflow, fact) under the original config/fault.
struct ShrunkCase {
  Workflow workflow;
  FactTable fact;
  Divergence divergence;
  ShrinkStats stats;
};

/// Greedy fixed-point minimization of a known-divergent case: repeatedly
/// applies the first workflow simplification (drop measure, drop filter,
/// narrow window, coarsen granularity — see ShrinkWorkflowCandidates)
/// that still diverges, then delta-debugs the fact rows in halving chunks,
/// until no single step reduces the case further. InvalidArgument when
/// the input does not diverge in the first place.
Result<ShrunkCase> ShrinkCase(const Workflow& workflow,
                              const FactTable& fact,
                              const EngineConfig& config,
                              const FaultSpec& fault,
                              const ShrinkOptions& options = {});

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_SHRINK_H_
