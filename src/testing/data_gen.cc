#include "testing/data_gen.h"

#include <algorithm>
#include <vector>

#include "model/hierarchy.h"

namespace csm {
namespace testing_util {

namespace {

/// A boundary-flavored value: domain extremes and hierarchy block edges,
/// where generalization changes parents and frontier math is most fragile.
Value EdgeValue(const Hierarchy& h, uint64_t card, Rng& rng) {
  const uint64_t divisor =
      h.num_levels() > 2 ? std::max<uint64_t>(h.ExactDivisor(0, 1), 1) : 1;
  switch (rng.Uniform(5)) {
    case 0:
      return 0;
    case 1:
      return card - 1;
    case 2: {  // first value of a random block
      const uint64_t blocks = std::max<uint64_t>(card / divisor, 1);
      return std::min<Value>(rng.Uniform(blocks) * divisor, card - 1);
    }
    case 3: {  // last value of a random block
      const uint64_t blocks = std::max<uint64_t>(card / divisor, 1);
      const uint64_t block = rng.Uniform(blocks);
      return std::min<Value>(block * divisor + divisor - 1, card - 1);
    }
    default:
      return rng.Uniform(card);
  }
}

}  // namespace

FactTable GenerateFacts(const SchemaPtr& schema,
                        const FactGenOptions& options) {
  Rng rng(options.seed);
  FactTable fact(schema);
  fact.Reserve(options.rows);
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  const uint64_t card = std::max<uint64_t>(options.cardinality, 1);

  std::vector<Value> dims(d, 0);
  std::vector<Value> cluster_center(d, 0);
  std::vector<double> measures(m, 0);
  size_t cluster_left = 0;

  for (size_t row = 0; row < options.rows; ++row) {
    const bool duplicate =
        row > 0 && rng.Bernoulli(options.duplicate_fraction);
    if (!duplicate) {
      switch (options.dist) {
        case FactDist::kUniform:
          for (int i = 0; i < d; ++i) dims[i] = rng.Uniform(card);
          break;
        case FactDist::kZipf:
          for (int i = 0; i < d; ++i) {
            dims[i] = rng.Zipf(card, options.zipf_theta);
          }
          break;
        case FactDist::kClustered:
          if (cluster_left == 0) {
            cluster_left = 1 + rng.Uniform(16);
            for (int i = 0; i < d; ++i) {
              cluster_center[i] = rng.Uniform(card);
            }
          }
          --cluster_left;
          for (int i = 0; i < d; ++i) {
            const uint64_t jitter = rng.Uniform(4);
            dims[i] = std::min<Value>(cluster_center[i] + jitter, card - 1);
          }
          break;
        case FactDist::kEdgeHeavy:
          for (int i = 0; i < d; ++i) {
            dims[i] = rng.Bernoulli(options.edge_fraction)
                          ? EdgeValue(*schema->dim(i).hierarchy, card, rng)
                          : rng.Uniform(card);
          }
          break;
      }
    }
    for (int i = 0; i < m; ++i) {
      // Integer-valued doubles keep every aggregate exactly reproducible
      // across engines regardless of accumulation order.
      measures[i] =
          options.negative_measures
              ? static_cast<double>(rng.UniformInt(-50, 49))
              : static_cast<double>(rng.Uniform(100));
    }
    fact.AppendRow(dims.data(), measures.data());
  }
  return fact;
}

FactGenOptions RandomFactOptions(size_t max_rows, uint64_t cardinality,
                                 Rng& rng) {
  FactGenOptions options;
  options.rows = 1 + rng.Uniform(std::max<size_t>(max_rows, 1));
  options.cardinality = cardinality;
  options.seed = rng.Next();
  static const FactDist kDists[] = {FactDist::kUniform, FactDist::kZipf,
                                    FactDist::kClustered,
                                    FactDist::kEdgeHeavy};
  options.dist = kDists[rng.Uniform(std::size(kDists))];
  options.zipf_theta = 0.5 + 0.4 * rng.NextDouble();
  options.duplicate_fraction = 0.1 * rng.NextDouble();
  options.edge_fraction = 0.1 + 0.4 * rng.NextDouble();
  options.negative_measures = rng.Bernoulli(0.3);
  return options;
}

}  // namespace testing_util
}  // namespace csm
