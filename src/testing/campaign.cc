#include "testing/campaign.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/timer.h"
#include "testing/data_gen.h"
#include "testing/mutate.h"
#include "testing/random_workflow.h"
#include "testing/repro.h"
#include "testing/shrink.h"

namespace csm {
namespace testing_util {

namespace {
constexpr char kCheckpointHeader[] = "csm-fuzz-checkpoint v1";
}  // namespace

std::string CampaignStats::Summary() const {
  return std::to_string(runs_completed) + " runs, " +
         std::to_string(configs_checked) + " configs checked, " +
         std::to_string(rows_generated) + " rows generated, " +
         std::to_string(prior_findings + findings.size()) +
         " divergence(s)";
}

Result<CampaignCheckpoint> CampaignCheckpoint::Load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open checkpoint: " + path);
  }
  std::string header;
  if (!std::getline(in, header) || header != kCheckpointHeader) {
    return Status::InvalidArgument("not a fuzz checkpoint: " + path);
  }
  CampaignCheckpoint cp;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string name;
    long long value = 0;
    if (!(fields >> name >> value)) {
      return Status::InvalidArgument("malformed checkpoint line: " + line);
    }
    if (name == "seed") {
      cp.seed = static_cast<uint64_t>(value);
    } else if (name == "runs") {
      cp.runs = static_cast<int>(value);
    } else if (name == "next_run") {
      cp.next_run = static_cast<int>(value);
    } else if (name == "next_config") {
      cp.next_config = static_cast<int>(value);
    } else if (name == "runs_completed") {
      cp.runs_completed = static_cast<int>(value);
    } else if (name == "configs_checked") {
      cp.configs_checked = value;
    } else if (name == "rows_generated") {
      cp.rows_generated = static_cast<uint64_t>(value);
    } else if (name == "findings") {
      cp.findings = static_cast<int>(value);
    }
    // Unknown keys are ignored so newer writers stay readable.
  }
  return cp;
}

Status CampaignCheckpoint::Save(const std::string& path) const {
  // Write-then-rename so an interrupt mid-write never corrupts the
  // checkpoint being replaced.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot write checkpoint: " + tmp);
    }
    out << kCheckpointHeader << "\n"
        << "seed " << seed << "\n"
        << "runs " << runs << "\n"
        << "next_run " << next_run << "\n"
        << "next_config " << next_config << "\n"
        << "runs_completed " << runs_completed << "\n"
        << "configs_checked " << configs_checked << "\n"
        << "rows_generated " << rows_generated << "\n"
        << "findings " << findings << "\n";
    if (!out.flush()) {
      return Status::IOError("cannot write checkpoint: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename checkpoint into place: " + path);
  }
  return Status::OK();
}

Result<CampaignStats> RunCampaign(const CampaignOptions& options) {
  CampaignStats stats;
  Timer timer;
  Tracer* tracer = options.tracer;

  uint64_t seed = options.seed;
  int runs = options.runs;
  int start_run = 0;
  int start_config = 0;
  if (options.resume) {
    if (options.checkpoint_path.empty()) {
      return Status::InvalidArgument(
          "campaign resume requires a checkpoint path");
    }
    CSM_ASSIGN_OR_RETURN(CampaignCheckpoint cp,
                         CampaignCheckpoint::Load(options.checkpoint_path));
    seed = cp.seed;
    runs = cp.runs;
    start_run = cp.next_run;
    start_config = cp.next_config;
    stats.runs_completed = cp.runs_completed;
    stats.configs_checked = cp.configs_checked;
    stats.rows_generated = cp.rows_generated;
    stats.prior_findings = cp.findings;
  }
  auto save_checkpoint = [&](int next_run, int next_config) -> Status {
    if (options.checkpoint_path.empty()) return Status::OK();
    CampaignCheckpoint cp;
    cp.seed = seed;
    cp.runs = runs;
    cp.next_run = next_run;
    cp.next_config = next_config;
    cp.runs_completed = stats.runs_completed;
    cp.configs_checked = stats.configs_checked;
    cp.rows_generated = stats.rows_generated;
    cp.findings =
        stats.prior_findings + static_cast<int>(stats.findings.size());
    return cp.Save(options.checkpoint_path);
  };

  ScopedSpan campaign_span(tracer, "fuzz-campaign");
  if (tracer != nullptr) {
    tracer->SetAttr(campaign_span.id(), "seed", std::to_string(seed));
    if (options.resume) {
      tracer->SetAttr(campaign_span.id(), "resumed_from",
                      std::to_string(start_run) + ":" +
                          std::to_string(start_config));
    }
    if (options.fault.enabled) {
      tracer->SetAttr(campaign_span.id(), "fault",
                      options.fault.ToText());
    }
  }

  for (int run = start_run; run < runs; ++run) {
    if (options.max_seconds > 0 && timer.Seconds() > options.max_seconds) {
      break;
    }
    // One independent generator per run: campaigns replay run-for-run
    // from the seed alone, and a single run can be re-derived without
    // replaying its predecessors.
    Rng rng(Mix64(seed) ^ Mix64(0x5eedf00d + run));

    // Random small schema. Low fan-outs and shallow hierarchies keep
    // regions colliding, which is where frontier bugs hide.
    const int dims = 2 + static_cast<int>(rng.Uniform(2));
    const int levels = 2 + static_cast<int>(rng.Uniform(2));
    const uint64_t fanout = 2 + rng.Uniform(7);
    const uint64_t card = 64ull << rng.Uniform(4);
    const std::string spec =
        SyntheticSchemaSpec(dims, levels, fanout, card);
    CSM_ASSIGN_OR_RETURN(SchemaPtr schema, ParseSchemaSpec(spec));

    const FactGenOptions data_options =
        RandomFactOptions(options.max_rows, card, rng);
    const FactTable fact = GenerateFacts(schema, data_options);
    RandomWorkflowGen gen(schema, rng.Next());
    Workflow workflow = gen.Generate(options.measures_per_workflow);
    // Holistic-pressure pass on half the runs: retarget aggregates to
    // count_distinct/stddev/var and inject holistic roll-up/match arcs,
    // beyond what the generator's own weighting produces. Deterministic
    // per seed, so checkpoints replay run-for-run.
    if (rng.Bernoulli(0.5)) {
      workflow = MutateHolistic(workflow, rng, /*max_mutations=*/2);
    }

    ScopedSpan run_span(tracer, "fuzz-run", campaign_span.id());
    if (tracer != nullptr) {
      tracer->SetAttr(run_span.id(), "schema", spec);
      tracer->SetAttr(run_span.id(), "rows",
                      std::to_string(fact.num_rows()));
      tracer->SetAttr(run_span.id(), "measures",
                      std::to_string(workflow.measures().size()));
    }
    // On a mid-run resume the previous segment already counted this
    // run's rows when it first generated them.
    const bool resumed_mid_run = run == start_run && start_config > 0;
    if (!resumed_mid_run) stats.rows_generated += fact.num_rows();

    auto reference = ComputeReference(workflow, fact);
    CSM_RETURN_NOT_OK(reference.status().WithContext(
        "run " + std::to_string(run) + " reference"));

    bool stop = false;
    int config_index = -1;
    for (const EngineConfig& config :
         BuildConfigMatrix(schema, rng)) {
      ++config_index;
      if (resumed_mid_run && config_index < start_config) continue;
      CSM_ASSIGN_OR_RETURN(
          std::optional<Divergence> divergence,
          CheckConfig(workflow, fact, *reference, config, options.fault));
      ++stats.configs_checked;
      if (tracer != nullptr) {
        tracer->AddCounter(run_span.id(), "configs_checked", 1);
      }
      if (!divergence.has_value()) {
        CSM_RETURN_NOT_OK(save_checkpoint(run, config_index + 1));
        continue;
      }

      CampaignFinding finding;
      finding.run = run;
      finding.divergence = *divergence;
      if (tracer != nullptr) {
        tracer->AddCounter(campaign_span.id(), "divergences", 1);
        tracer->SetAttr(run_span.id(), "divergence",
                        divergence->ToString());
      }

      // Minimize, then persist a replayable reproducer.
      const Workflow* repro_workflow = &workflow;
      const FactTable* repro_fact = &fact;
      Result<ShrunkCase> shrunk = Status::Internal("shrink disabled");
      if (options.shrink) {
        shrunk = ShrinkCase(workflow, fact, config, options.fault);
        if (shrunk.ok()) {
          repro_workflow = &shrunk->workflow;
          repro_fact = &shrunk->fact;
          finding.divergence = shrunk->divergence;
          finding.shrink_summary = shrunk->stats.ToString();
        }
      }
      const std::string dir = options.repro_dir + "/fuzz-repro-" +
                              std::to_string(seed) + "-" +
                              std::to_string(run) + "-" +
                              std::to_string(config_index);
      CSM_ASSIGN_OR_RETURN(
          finding.repro_path,
          WriteRepro(dir, *repro_workflow, *repro_fact, config,
                     options.fault, seed, spec));
      stats.findings.push_back(std::move(finding));
      // The checkpoint already points past this cell, so a later resume
      // continues the campaign instead of rediscovering the divergence.
      CSM_RETURN_NOT_OK(save_checkpoint(run, config_index + 1));
      if (!options.keep_going) {
        stop = true;
        break;
      }
    }
    if (!stop) {
      ++stats.runs_completed;
      CSM_RETURN_NOT_OK(save_checkpoint(run + 1, 0));
    }
    run_span.End();
    if (stop) break;
  }

  if (tracer != nullptr) {
    tracer->AddCounter(campaign_span.id(), "runs",
                       static_cast<double>(stats.runs_completed));
    tracer->SetAttr(campaign_span.id(), "summary", stats.Summary());
  }
  return stats;
}

}  // namespace testing_util
}  // namespace csm
