#include "testing/campaign.h"

#include <utility>

#include "common/hash.h"
#include "common/timer.h"
#include "testing/data_gen.h"
#include "testing/random_workflow.h"
#include "testing/repro.h"
#include "testing/shrink.h"

namespace csm {
namespace testing_util {

std::string CampaignStats::Summary() const {
  return std::to_string(runs_completed) + " runs, " +
         std::to_string(configs_checked) + " configs checked, " +
         std::to_string(rows_generated) + " rows generated, " +
         std::to_string(findings.size()) + " divergence(s)";
}

Result<CampaignStats> RunCampaign(const CampaignOptions& options) {
  CampaignStats stats;
  Timer timer;
  Tracer* tracer = options.tracer;
  ScopedSpan campaign_span(tracer, "fuzz-campaign");
  if (tracer != nullptr) {
    tracer->SetAttr(campaign_span.id(), "seed",
                    std::to_string(options.seed));
    if (options.fault.enabled) {
      tracer->SetAttr(campaign_span.id(), "fault",
                      options.fault.ToText());
    }
  }

  for (int run = 0; run < options.runs; ++run) {
    if (options.max_seconds > 0 && timer.Seconds() > options.max_seconds) {
      break;
    }
    // One independent generator per run: campaigns replay run-for-run
    // from the seed alone, and a single run can be re-derived without
    // replaying its predecessors.
    Rng rng(Mix64(options.seed) ^ Mix64(0x5eedf00d + run));

    // Random small schema. Low fan-outs and shallow hierarchies keep
    // regions colliding, which is where frontier bugs hide.
    const int dims = 2 + static_cast<int>(rng.Uniform(2));
    const int levels = 2 + static_cast<int>(rng.Uniform(2));
    const uint64_t fanout = 2 + rng.Uniform(7);
    const uint64_t card = 64ull << rng.Uniform(4);
    const std::string spec =
        SyntheticSchemaSpec(dims, levels, fanout, card);
    CSM_ASSIGN_OR_RETURN(SchemaPtr schema, ParseSchemaSpec(spec));

    const FactGenOptions data_options =
        RandomFactOptions(options.max_rows, card, rng);
    const FactTable fact = GenerateFacts(schema, data_options);
    RandomWorkflowGen gen(schema, rng.Next());
    const Workflow workflow =
        gen.Generate(options.measures_per_workflow);

    ScopedSpan run_span(tracer, "fuzz-run", campaign_span.id());
    if (tracer != nullptr) {
      tracer->SetAttr(run_span.id(), "schema", spec);
      tracer->SetAttr(run_span.id(), "rows",
                      std::to_string(fact.num_rows()));
      tracer->SetAttr(run_span.id(), "measures",
                      std::to_string(workflow.measures().size()));
    }
    stats.rows_generated += fact.num_rows();

    auto reference = ComputeReference(workflow, fact);
    CSM_RETURN_NOT_OK(reference.status().WithContext(
        "run " + std::to_string(run) + " reference"));

    bool stop = false;
    int config_index = -1;
    for (const EngineConfig& config :
         BuildConfigMatrix(schema, rng)) {
      ++config_index;
      CSM_ASSIGN_OR_RETURN(
          std::optional<Divergence> divergence,
          CheckConfig(workflow, fact, *reference, config, options.fault));
      ++stats.configs_checked;
      if (tracer != nullptr) {
        tracer->AddCounter(run_span.id(), "configs_checked", 1);
      }
      if (!divergence.has_value()) continue;

      CampaignFinding finding;
      finding.run = run;
      finding.divergence = *divergence;
      if (tracer != nullptr) {
        tracer->AddCounter(campaign_span.id(), "divergences", 1);
        tracer->SetAttr(run_span.id(), "divergence",
                        divergence->ToString());
      }

      // Minimize, then persist a replayable reproducer.
      const Workflow* repro_workflow = &workflow;
      const FactTable* repro_fact = &fact;
      Result<ShrunkCase> shrunk = Status::Internal("shrink disabled");
      if (options.shrink) {
        shrunk = ShrinkCase(workflow, fact, config, options.fault);
        if (shrunk.ok()) {
          repro_workflow = &shrunk->workflow;
          repro_fact = &shrunk->fact;
          finding.divergence = shrunk->divergence;
          finding.shrink_summary = shrunk->stats.ToString();
        }
      }
      const std::string dir = options.repro_dir + "/fuzz-repro-" +
                              std::to_string(options.seed) + "-" +
                              std::to_string(run) + "-" +
                              std::to_string(config_index);
      CSM_ASSIGN_OR_RETURN(
          finding.repro_path,
          WriteRepro(dir, *repro_workflow, *repro_fact, config,
                     options.fault, options.seed, spec));
      stats.findings.push_back(std::move(finding));
      if (!options.keep_going) {
        stop = true;
        break;
      }
    }
    ++stats.runs_completed;
    run_span.End();
    if (stop) break;
  }

  if (tracer != nullptr) {
    tracer->AddCounter(campaign_span.id(), "runs",
                       static_cast<double>(stats.runs_completed));
    tracer->SetAttr(campaign_span.id(), "summary", stats.Summary());
  }
  return stats;
}

}  // namespace testing_util
}  // namespace csm
