#ifndef CSM_TESTING_CAMPAIGN_H_
#define CSM_TESTING_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "testing/differential.h"

namespace csm {
namespace testing_util {

/// Knobs of one differential fuzzing campaign. Campaigns are
/// seed-deterministic: the same (seed, runs) pair replays the same
/// schemas, datasets, workflows and config matrices.
struct CampaignOptions {
  uint64_t seed = 1;
  int runs = 100;
  double max_seconds = 0;  // wall-clock cap; 0 = no cap (CI smoke uses 30)
  int measures_per_workflow = 8;
  size_t max_rows = 2000;          // rows per run drawn from [1, max_rows]
  std::string repro_dir = ".";     // parent dir for fuzz-repro-* output
  bool keep_going = false;         // continue past the first divergence
  bool shrink = true;              // minimize failing cases before writing
  FaultSpec fault;                 // test hook (csm_fuzz --inject-fault)
  Tracer* tracer = nullptr;        // per-run spans/counters land here

  /// When non-empty, campaign progress (seed, run index, config-matrix
  /// cursor, cumulative counters) is persisted here after every config
  /// cell, so an interrupted campaign can resume exactly where it left
  /// off (runs are seed-deterministic, so skipped work is never redone
  /// differently).
  std::string checkpoint_path;
  /// When true, checkpoint_path is loaded before the campaign starts:
  /// seed and runs are taken from the checkpoint, runs before its cursor
  /// are skipped, and the cumulative counters carry over.
  bool resume = false;
};

/// Persistent cursor of a campaign, written to options.checkpoint_path.
/// Text format ("csm-fuzz-checkpoint v1" header + key/value lines) so a
/// human can inspect or hand-edit it.
struct CampaignCheckpoint {
  uint64_t seed = 1;
  int runs = 0;          // the campaign's --runs (sanity check on resume)
  int next_run = 0;      // first run not yet fully checked
  int next_config = 0;   // first config cell of next_run not yet checked
  int runs_completed = 0;
  int64_t configs_checked = 0;
  uint64_t rows_generated = 0;
  int findings = 0;      // cumulative divergences across segments

  static Result<CampaignCheckpoint> Load(const std::string& path);
  Status Save(const std::string& path) const;
};

/// One divergence found by a campaign, with where its reproducer went.
struct CampaignFinding {
  int run = 0;
  Divergence divergence;
  std::string repro_path;  // repro.txt of the written reproducer
  std::string shrink_summary;
};

struct CampaignStats {
  int runs_completed = 0;
  int64_t configs_checked = 0;
  uint64_t rows_generated = 0;
  int prior_findings = 0;  // divergences from segments before a resume
  std::vector<CampaignFinding> findings;

  /// One-line human summary.
  std::string Summary() const;
};

/// Runs a randomized differential campaign: per run, a random synthetic
/// schema, a random skewed/edge-case dataset, a random workflow, and the
/// full engine-config matrix checked against the reference evaluator. On
/// divergence the case is shrunk to a minimal reproducer and written as a
/// fuzz-repro-<seed>-<run>/ directory under repro_dir. Per-run spans and
/// campaign counters are recorded on options.tracer.
Result<CampaignStats> RunCampaign(const CampaignOptions& options);

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_CAMPAIGN_H_
