#ifndef CSM_TESTING_CAMPAIGN_H_
#define CSM_TESTING_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "testing/differential.h"

namespace csm {
namespace testing_util {

/// Knobs of one differential fuzzing campaign. Campaigns are
/// seed-deterministic: the same (seed, runs) pair replays the same
/// schemas, datasets, workflows and config matrices.
struct CampaignOptions {
  uint64_t seed = 1;
  int runs = 100;
  double max_seconds = 0;  // wall-clock cap; 0 = no cap (CI smoke uses 30)
  int measures_per_workflow = 8;
  size_t max_rows = 2000;          // rows per run drawn from [1, max_rows]
  std::string repro_dir = ".";     // parent dir for fuzz-repro-* output
  bool keep_going = false;         // continue past the first divergence
  bool shrink = true;              // minimize failing cases before writing
  FaultSpec fault;                 // test hook (csm_fuzz --inject-fault)
  Tracer* tracer = nullptr;        // per-run spans/counters land here
};

/// One divergence found by a campaign, with where its reproducer went.
struct CampaignFinding {
  int run = 0;
  Divergence divergence;
  std::string repro_path;  // repro.txt of the written reproducer
  std::string shrink_summary;
};

struct CampaignStats {
  int runs_completed = 0;
  int64_t configs_checked = 0;
  uint64_t rows_generated = 0;
  std::vector<CampaignFinding> findings;

  /// One-line human summary.
  std::string Summary() const;
};

/// Runs a randomized differential campaign: per run, a random synthetic
/// schema, a random skewed/edge-case dataset, a random workflow, and the
/// full engine-config matrix checked against the reference evaluator. On
/// divergence the case is shrunk to a minimal reproducer and written as a
/// fuzz-repro-<seed>-<run>/ directory under repro_dir. Per-run spans and
/// campaign counters are recorded on options.tracer.
Result<CampaignStats> RunCampaign(const CampaignOptions& options);

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_CAMPAIGN_H_
