#ifndef CSM_TESTING_DIFFERENTIAL_H_
#define CSM_TESTING_DIFFERENTIAL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "exec/engine.h"
#include "exec/factory.h"
#include "obs/trace.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"
#include "workflow/workflow.h"

namespace csm {
namespace testing_util {

/// One cell of the differential matrix: an engine plus the execution
/// variant under test — explicit sort order, the out-of-core RunFile path,
/// worker-thread count, memory budget.
struct EngineConfig {
  EngineKind kind = EngineKind::kSortScan;
  bool run_file = false;           // SortScanEngine::RunFile out-of-core
  SortKey sort_key;                // sortscan: explicit order (empty = default)
  int threads = 0;                 // parallel: workers (0 = hardware)
  size_t memory_budget_bytes = 0;  // 0 = EngineOptions default
  size_t scan_batch_rows = 0;      // 0 = EngineOptions default; 1 =
                                   // record-at-a-time execution
  size_t morsel_rows = 0;          // 0 = EngineOptions default; the
                                   // work-stealing scan's morsel size —
                                   // results must stay within oracle
                                   // tolerance at any value (boundaries
                                   // move FP partial-sum split points, so
                                   // only thread count is bit-invariant)
  int session_queries = 0;         // > 1: run through QuerySession as N
                                   // fused prefix queries (0/1 = direct)
  int append_splits = 0;           // > 0: evaluate incrementally — base
                                   // chunk plus N appended batches through
                                   // a delta-patching session; the final
                                   // patched result is what gets compared
  bool no_vectorize = false;       // true: force the per-row interpreter
                                   // scan (EngineOptions::vectorized off).
                                   // The vectorized default must match it
                                   // bit for bit, so these cells pin the
                                   // kernel/scalar equivalence contract.
  bool no_dict = false;            // true: scan raw values instead of
                                   // dictionary codes (no memoized LUTs,
                                   // predicate bitsets, or zone-map
                                   // skipping). The encoded default must
                                   // match bit for bit, so these cells pin
                                   // the dict/raw equivalence contract.

  /// Stable human-readable label, e.g. "sortscan@<d0:L1>+runfile/64KB"
  /// or "parallel/t8" or "sortscan/b1" or "adaptive+session/q4" or
  /// "sortscan+append/k8" or "singlescan+morsel/m64" or
  /// "sortscan+vec/off" or "sortscan+dict/off". Doubles as the config's
  /// serialized identity in divergence reports.
  std::string Label(const Schema& schema) const;
};

/// Deliberate post-run corruption, the test hook behind
/// `csm_fuzz --inject-fault`: adds +1.0 to the first row of `measure` in
/// the output of engines of kind `kind`. Measure "*" targets the first
/// output measure the engine produced, whatever the random workflow named
/// it. Exercises the divergence / shrink / repro pipeline end to end
/// without planting a real engine bug.
struct FaultSpec {
  bool enabled = false;
  EngineKind kind = EngineKind::kSortScan;
  std::string measure;

  /// "engine:measure", or "" when disabled.
  std::string ToText() const;

  /// Parses "engine:measure" (e.g. "sortscan:m0", "parallel:*").
  static Result<FaultSpec> Parse(std::string_view text);
};

/// One observed disagreement with the reference evaluator.
struct Divergence {
  std::string config_label;  // EngineConfig::Label of the failing cell
  std::string measure;       // diverging measure; "" = the run itself failed
  std::string detail;        // deterministic description of the first diff

  std::string ToString() const;
};

/// Reference results for every measure of the workflow, computed by the
/// AW-RA evaluator measure by measure — the oracle all engines must match.
Result<std::map<std::string, MeasureTable>> ComputeReference(
    const Workflow& workflow, const FactTable& fact);

/// Deterministic table diff: nullopt when equal (NaN == NaN, values
/// compared with 1e-9 relative tolerance), otherwise a description of the
/// row-count mismatch or the first differing region.
std::optional<std::string> DiffTables(const MeasureTable& got,
                                      const MeasureTable& expected);

/// Runs one config. For run_file configs the fact table is dumped to a
/// scratch binary file and evaluated through SortScanEngine::RunFile, so
/// the external-sort streaming path is exercised. The fault hook is
/// applied to the output before returning. Engine spans land under
/// `parent` when `tracer` is set.
Result<EvalOutput> RunEngineConfig(const Workflow& workflow,
                                   const FactTable& fact,
                                   const EngineConfig& config,
                                   const FaultSpec& fault,
                                   Tracer* tracer = nullptr,
                                   SpanId parent = kNoSpan);

/// Runs one config and compares every output measure against the
/// reference. An engine error is itself a divergence (the oracle
/// succeeded); infrastructure failures (scratch-file IO) are errors.
Result<std::optional<Divergence>> CheckConfig(
    const Workflow& workflow, const FactTable& fact,
    const std::map<std::string, MeasureTable>& reference,
    const EngineConfig& config, const FaultSpec& fault,
    Tracer* tracer = nullptr, SpanId parent = kNoSpan);

/// The campaign matrix for one run: every engine, the sort/scan engine
/// under several random sort orders, the RunFile out-of-core path under a
/// small budget, the parallel engine at 1/2/8 threads, a tight-budget
/// multi-pass, multi-query sessions fusing 2 and 4 overlapping prefix
/// queries of the workflow (fused results must match independent runs
/// bit-for-bit), and incremental-append cells feeding the same rows as a
/// base chunk plus 2 / 8 appended batches through a delta-patching
/// session (patched results must match the single-shot reference).
/// Randomized parts draw from `rng` (seed-deterministic).
std::vector<EngineConfig> BuildConfigMatrix(const SchemaPtr& schema,
                                            Rng& rng);

}  // namespace testing_util
}  // namespace csm

#endif  // CSM_TESTING_DIFFERENTIAL_H_
