#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "algebra/evaluator.h"
#include "exec/exec_context.h"
#include "exec/session.h"
#include "exec/sort_scan.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"

namespace csm {
namespace testing_util {

namespace {

std::string FormatBudget(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zuKB", bytes >> 10);
  return buf;
}

std::string FormatValue(double v) {
  if (std::isnan(v)) return "nan";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatKey(const MeasureTable& table, const Value* key) {
  const Schema& schema = *table.schema();
  std::string out = "(";
  for (int i = 0; i < table.num_dims(); ++i) {
    if (i > 0) out += ",";
    if (table.granularity().level(i) >=
        schema.dim(i).hierarchy->all_level()) {
      out += "*";
    } else {
      out += std::to_string(key[i]);
    }
  }
  out += ")";
  return out;
}

bool ValuesMatch(double got, double want) {
  if (std::isnan(got) || std::isnan(want)) {
    return std::isnan(got) && std::isnan(want);
  }
  return std::fabs(got - want) <= 1e-9 * (1.0 + std::fabs(want));
}

/// The test hook: corrupts the first row of the target measure. A "*"
/// measure resolves to the first non-empty output table, so random
/// workflows can be faulted without knowing their measure names.
void ApplyFault(const FaultSpec& fault, const EngineConfig& config,
                const Workflow& workflow, EvalOutput* out) {
  if (!fault.enabled || fault.kind != config.kind) return;
  std::string target = fault.measure;
  if (target == "*") {
    for (const MeasureDef& def : workflow.measures()) {
      if (!def.is_output) continue;
      const MeasureTable* table = out->FindTable(def.name);
      if (table != nullptr && table->num_rows() > 0) {
        target = def.name;
        break;
      }
    }
  }
  MeasureTable* table = out->FindTable(target);
  if (table == nullptr || table->num_rows() == 0) return;
  table->set_value(0, table->value(0) + 1.0);
}

/// The session cell: splits the workflow into `config.session_queries`
/// overlapping prefix queries (prefixes are always valid — measures are
/// in dependency order; the last query is the whole workflow), fuses
/// them through a QuerySession, and returns the union of the
/// demultiplexed per-query outputs. Matching the reference therefore
/// checks both the fused execution and the demux mapping.
Result<EvalOutput> RunAsSession(const Workflow& workflow,
                                const FactTable& fact,
                                const EngineConfig& config,
                                ExecContext& ctx) {
  const size_t n = workflow.measures().size();
  const size_t k = static_cast<size_t>(config.session_queries);
  SessionOptions options;
  options.engine_options = ctx.options;
  CSM_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                       QuerySession::Create(config.kind, options));
  for (size_t j = 0; j < k; ++j) {
    const size_t take =
        std::max<size_t>(1, std::min(n, (n * (j + 1) + k - 1) / k));
    Workflow query(workflow.schema());
    for (size_t m = 0; m < take; ++m) {
      CSM_RETURN_NOT_OK(query.AddMeasure(workflow.measures()[m]));
    }
    CSM_RETURN_NOT_OK(session->Submit(std::move(query)).status());
  }
  CSM_ASSIGN_OR_RETURN(std::vector<EvalOutput> outs,
                       session->RunPending(fact, ctx));
  // Union of the demuxed outputs; prefix queries share measure names and
  // fused measures, so first-wins merging is exact.
  EvalOutput merged;
  for (EvalOutput& out : outs) {
    merged.stats = out.stats;
    for (auto& [name, table] : out.tables) {
      if (merged.FindTable(name) == nullptr) {
        merged.tables.emplace(name, std::move(table));
      }
    }
  }
  return merged;
}

/// The incremental cell: replays the fact table as a base chunk plus
/// `config.append_splits` appended batches through a delta-patching
/// QuerySession, then re-submits the query and returns the patched cache
/// entry. A final answer NOT served from the patched entry is reported as
/// an internal error (it would silently test nothing), and the patched
/// tables must match the single-shot reference — any drift is an
/// incremental-maintenance bug. Chunk boundaries are even splits, so
/// shrunken cases naturally exercise empty append batches too.
Result<EvalOutput> RunIncremental(const Workflow& workflow,
                                  const FactTable& fact,
                                  const EngineConfig& config,
                                  ExecContext& ctx) {
  const size_t batches = static_cast<size_t>(config.append_splits);
  const size_t rows = fact.num_rows();
  auto chunk_of = [&](size_t c) {
    FactTable part(fact.schema());
    const size_t begin = rows * c / (batches + 1);
    const size_t end = rows * (c + 1) / (batches + 1);
    part.Reserve(end - begin);
    for (size_t row = begin; row < end; ++row) {
      part.AppendRow(fact.dim_row(row), fact.measure_row(row));
    }
    return part;
  };

  SessionOptions options;
  options.engine_options = ctx.options;
  options.cache_capacity = 1;
  options.delta_patching = true;
  CSM_ASSIGN_OR_RETURN(std::unique_ptr<QuerySession> session,
                       QuerySession::Create(config.kind, options));

  FactTable base = chunk_of(0);
  CSM_RETURN_NOT_OK(session->Submit(workflow).status());
  CSM_RETURN_NOT_OK(session->RunPending(base, ctx).status());
  for (size_t c = 1; c <= batches; ++c) {
    const FactTable delta = chunk_of(c);
    CSM_RETURN_NOT_OK(session->AppendAndRefresh(base, delta, ctx).status());
  }
  CSM_RETURN_NOT_OK(session->Submit(workflow).status());
  CSM_ASSIGN_OR_RETURN(std::vector<EvalOutput> outs,
                       session->RunPending(base, ctx));
  if (session->last_report().cache_hits != 1) {
    return Status::Internal(
        "incremental run was not served from the patched cache entry "
        "(delta maintenance silently fell back to a fresh run)");
  }
  return std::move(outs[0]);
}

}  // namespace

std::string EngineConfig::Label(const Schema& schema) const {
  std::string label(EngineKindName(kind));
  if (!sort_key.empty()) label += "@" + sort_key.ToString(schema);
  if (run_file) label += "+runfile";
  if (session_queries > 1) {
    label += "+session/q" + std::to_string(session_queries);
  }
  if (append_splits > 0) {
    label += "+append/k" + std::to_string(append_splits);
  }
  if (threads > 0) label += "/t" + std::to_string(threads);
  if (memory_budget_bytes > 0) {
    label += "/" + FormatBudget(memory_budget_bytes);
  }
  if (scan_batch_rows > 0) {
    label += "/b" + std::to_string(scan_batch_rows);
  }
  if (morsel_rows > 0) {
    label += "+morsel/m" + std::to_string(morsel_rows);
  }
  if (no_vectorize) label += "+vec/off";
  if (no_dict) label += "+dict/off";
  return label;
}

std::string FaultSpec::ToText() const {
  if (!enabled) return "";
  return std::string(EngineKindName(kind)) + ":" + measure;
}

Result<FaultSpec> FaultSpec::Parse(std::string_view text) {
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon + 1 >= text.size()) {
    return Status::InvalidArgument(
        "fault spec must be ENGINE:MEASURE, got '" + std::string(text) +
        "'");
  }
  FaultSpec fault;
  CSM_ASSIGN_OR_RETURN(fault.kind, ParseEngineKind(text.substr(0, colon)));
  fault.measure = std::string(text.substr(colon + 1));
  fault.enabled = true;
  return fault;
}

std::string Divergence::ToString() const {
  std::string out = config_label;
  out += measure.empty() ? " failed" : " diverged on " + measure;
  out += ": " + detail;
  return out;
}

Result<std::map<std::string, MeasureTable>> ComputeReference(
    const Workflow& workflow, const FactTable& fact) {
  std::map<std::string, MeasureTable> computed;
  for (const MeasureDef& def : workflow.measures()) {
    CSM_ASSIGN_OR_RETURN(AwExpr::Ptr expr,
                         workflow.ToAlgebra(def.name, /*deep=*/false));
    MeasureEnv env;
    for (const auto& [name, table] : computed) env[name] = &table;
    auto result = EvalAwExpr(*expr, fact, env);
    CSM_RETURN_NOT_OK(
        result.status().WithContext("reference eval of " + def.name));
    computed.emplace(def.name, std::move(*result));
  }
  return computed;
}

std::optional<std::string> DiffTables(const MeasureTable& got,
                                      const MeasureTable& expected) {
  // Region sets are keyed uniquely, so canonical maps give a stable,
  // order-independent comparison.
  std::map<std::vector<Value>, double> mg, me;
  for (size_t row = 0; row < got.num_rows(); ++row) {
    mg.emplace(std::vector<Value>(got.key_row(row),
                                  got.key_row(row) + got.num_dims()),
               got.value(row));
  }
  for (size_t row = 0; row < expected.num_rows(); ++row) {
    me.emplace(std::vector<Value>(
                   expected.key_row(row),
                   expected.key_row(row) + expected.num_dims()),
               expected.value(row));
  }
  if (mg.size() != me.size()) {
    return "row count: got " + std::to_string(mg.size()) + " want " +
           std::to_string(me.size());
  }
  size_t mismatches = 0;
  std::string first;
  for (const auto& [key, want] : me) {
    auto it = mg.find(key);
    if (it == mg.end()) {
      if (first.empty()) {
        first = "region " + FormatKey(expected, key.data()) + " missing";
      }
      ++mismatches;
      continue;
    }
    if (!ValuesMatch(it->second, want)) {
      if (first.empty()) {
        first = "region " + FormatKey(expected, key.data()) + ": got " +
                FormatValue(it->second) + " want " + FormatValue(want);
      }
      ++mismatches;
    }
  }
  if (mismatches == 0) return std::nullopt;
  return first + " (" + std::to_string(mismatches) + " of " +
         std::to_string(me.size()) + " regions differ)";
}

Result<EvalOutput> RunEngineConfig(const Workflow& workflow,
                                   const FactTable& fact,
                                   const EngineConfig& config,
                                   const FaultSpec& fault, Tracer* tracer,
                                   SpanId parent) {
  ExecContext ctx;
  ctx.tracer = tracer;
  ctx.trace_parent = parent;
  if (config.memory_budget_bytes > 0) {
    ctx.options.memory_budget_bytes = config.memory_budget_bytes;
  }
  ctx.options.sort_key = config.sort_key;
  ctx.options.parallel_threads = config.threads;
  if (config.scan_batch_rows > 0) {
    ctx.options.scan_batch_rows = config.scan_batch_rows;
  }
  if (config.morsel_rows > 0) {
    ctx.options.morsel_rows = config.morsel_rows;
  }
  ctx.options.vectorized = !config.no_vectorize;
  ctx.options.dict_encoding = !config.no_dict;

  Result<EvalOutput> result = Status::Internal("config not run");
  if (config.run_file) {
    // Out-of-core path: dump the facts to a scratch binary file and
    // stream it back through RunFile's external sort.
    CSM_ASSIGN_OR_RETURN(TempDir scratch, TempDir::Make());
    const std::string path = scratch.NewFilePath("fuzz-facts");
    CSM_RETURN_NOT_OK(WriteFactTableBinary(fact, path));
    SortScanEngine engine;
    result = engine.RunFile(workflow, path, ctx);
  } else if (config.append_splits > 0) {
    result = RunIncremental(workflow, fact, config, ctx);
  } else if (config.session_queries > 1) {
    result = RunAsSession(workflow, fact, config, ctx);
  } else {
    CSM_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                         MakeEngine(config.kind, ctx.options));
    result = engine->Run(workflow, fact, ctx);
  }
  if (result.ok()) ApplyFault(fault, config, workflow, &*result);
  return result;
}

Result<std::optional<Divergence>> CheckConfig(
    const Workflow& workflow, const FactTable& fact,
    const std::map<std::string, MeasureTable>& reference,
    const EngineConfig& config, const FaultSpec& fault, Tracer* tracer,
    SpanId parent) {
  const std::string label = config.Label(*workflow.schema());
  auto got = RunEngineConfig(workflow, fact, config, fault, tracer, parent);
  if (!got.ok()) {
    // Scratch-file trouble is an infrastructure error; anything the
    // engine itself reports on oracle-clean input is a finding.
    if (got.status().IsIOError()) return got.status();
    return std::optional<Divergence>(
        Divergence{label, "", got.status().ToString()});
  }
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output) continue;
    const MeasureTable* table = got->FindTable(def.name);
    if (table == nullptr) {
      return std::optional<Divergence>(
          Divergence{label, def.name, "output table missing"});
    }
    auto diff = DiffTables(*table, reference.at(def.name));
    if (diff.has_value()) {
      return std::optional<Divergence>(
          Divergence{label, def.name, *diff});
    }
  }
  return std::optional<Divergence>(std::nullopt);
}

std::vector<EngineConfig> BuildConfigMatrix(const SchemaPtr& schema,
                                            Rng& rng) {
  std::vector<EngineConfig> configs;
  auto with_kind = [](EngineKind kind) {
    EngineConfig config;
    config.kind = kind;
    return config;
  };
  configs.push_back(with_kind(EngineKind::kSingleScan));
  configs.push_back(with_kind(EngineKind::kRelational));
  configs.push_back(with_kind(EngineKind::kAdaptive));
  // Optimizer-chosen order.
  configs.push_back(with_kind(EngineKind::kSortScan));

  // Sort/scan under random explicit orders: random dimension prefix,
  // random non-ALL level per component.
  const int d = schema->num_dims();
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<int> dims(d);
    for (int i = 0; i < d; ++i) dims[i] = i;
    for (int i = d; i > 1; --i) {
      std::swap(dims[i - 1], dims[rng.Uniform(i)]);
    }
    EngineConfig config = with_kind(EngineKind::kSortScan);
    std::vector<SortKeyPart> parts;
    const int prefix = 1 + static_cast<int>(rng.Uniform(d));
    for (int i = 0; i < prefix; ++i) {
      const int non_all = schema->dim(dims[i]).hierarchy->all_level();
      parts.push_back(
          {dims[i], static_cast<int>(rng.Uniform(std::max(non_all, 1)))});
    }
    config.sort_key = SortKey(parts);
    configs.push_back(std::move(config));
  }

  // Batch-boundary sweep: record-at-a-time (b1), a deliberately awkward
  // batch size that never divides typical row counts (b7), and the
  // default-sized batch stated explicitly (b1024). Any disagreement
  // between these cells is a batch-boundary bug (entry caching,
  // propagation alignment, short final batches).
  for (size_t batch_rows : {size_t{1}, size_t{7}, size_t{1024}}) {
    EngineConfig config = with_kind(EngineKind::kSortScan);
    config.scan_batch_rows = batch_rows;
    configs.push_back(std::move(config));
  }

  // Morsel-size sweep over the work-stealing scan: tiny morsels (m64,
  // maximal stealing and merge steps) and morsels larger than typical
  // fuzz tables (m4096, degenerate single-morsel case). Any disagreement
  // between these cells and the reference is a scheduler determinism bug
  // (merge-order dependence, double-counted boundary rows).
  for (size_t morsel_rows : {size_t{64}, size_t{4096}}) {
    EngineConfig config = with_kind(EngineKind::kSingleScan);
    config.morsel_rows = morsel_rows;
    configs.push_back(std::move(config));
  }

  // Out-of-core RunFile under a small budget: forces external sort runs
  // and the merged-stream scan.
  {
    EngineConfig config = with_kind(EngineKind::kSortScan);
    config.run_file = true;
    config.memory_budget_bytes = (64 + rng.Uniform(192)) << 10;
    configs.push_back(std::move(config));
  }

  // RunFile with a tiny odd batch: merge-stream batches end mid-run, so
  // the short-final-batch path of the external merge is on the hot path.
  {
    EngineConfig config = with_kind(EngineKind::kSortScan);
    config.run_file = true;
    config.memory_budget_bytes = (64 + rng.Uniform(192)) << 10;
    config.scan_batch_rows = 7;
    configs.push_back(std::move(config));
  }

  // Multi-pass at a tight random budget.
  {
    EngineConfig config = with_kind(EngineKind::kMultiPass);
    config.memory_budget_bytes = (16 + rng.Uniform(512)) << 10;
    configs.push_back(std::move(config));
  }

  // Parallel at several worker counts (1 = degenerate single shard).
  for (int threads : {1, 2, 8}) {
    EngineConfig config = with_kind(EngineKind::kParallel);
    config.threads = threads;
    configs.push_back(std::move(config));
  }

  // Multi-query sessions: the workflow as 2 and 4 overlapping prefix
  // queries fused into one run. Any disagreement with the reference is a
  // fusion bug (fingerprint collision, bad rename, demux mix-up).
  for (int session_queries : {2, 4}) {
    EngineConfig config = with_kind(EngineKind::kSortScan);
    config.session_queries = session_queries;
    configs.push_back(std::move(config));
  }

  // Scalar reference cells: the same engines with the vectorized scan
  // disabled. The kernel/scalar contract is bit-identity, so any
  // disagreement between a +vec/off cell and its vectorized sibling (or
  // the reference) is a vectorization bug — a kernel mishandling NaN
  // truthiness, a run boundary folded into the wrong entry, a selection
  // vector dropping or duplicating rows.
  for (EngineKind kind : {EngineKind::kSingleScan, EngineKind::kSortScan}) {
    EngineConfig config = with_kind(kind);
    config.no_vectorize = true;
    configs.push_back(std::move(config));
  }

  // Raw-value reference cells: the vectorized scan with the dictionary
  // encoding disabled. The dict/raw contract is also bit-identity, so
  // any disagreement between a +dict/off cell and its encoded sibling is
  // a dictionary bug — a stale code column after an append, a LUT built
  // from the wrong hierarchy level, a predicate bitset disagreeing with
  // the interpreter's double fold, a zone map skipping a batch that
  // contained matches.
  for (EngineKind kind : {EngineKind::kSingleScan, EngineKind::kSortScan}) {
    EngineConfig config = with_kind(kind);
    config.no_dict = true;
    configs.push_back(std::move(config));
  }

  // Incremental append maintenance: the same rows arriving as a base
  // chunk plus 2 (and 8) appended batches, patched through a
  // delta-maintaining session. Any disagreement with the single-shot
  // reference is an incremental-maintenance bug (stale retained state,
  // missed dirty region, bad recompute fallback, cache rekey mix-up).
  for (int append_splits : {2, 8}) {
    EngineConfig config = with_kind(EngineKind::kSortScan);
    config.append_splits = append_splits;
    configs.push_back(std::move(config));
  }
  return configs;
}

}  // namespace testing_util
}  // namespace csm
