#ifndef CSM_RELATIONAL_RELATIONAL_ENGINE_H_
#define CSM_RELATIONAL_RELATIONAL_ENGINE_H_

#include "exec/engine.h"
#include "exec/op/physical_plan.h"

namespace csm {

/// The relational baseline ("DB" in the paper's Figs. 6 and 7).
///
/// The paper compared against a commercial RDBMS executing the SQL
/// translation of each composite measure query (Tables 2-4): nested
/// subqueries, one evaluation per measure, every intermediate result
/// materialized. This engine reproduces that *architecture* with classic
/// relational machinery so the comparison measures the same thing the
/// paper measured:
///
///  - the fact table lives in a disk file and is re-read (and re-sorted)
///    for every basic measure and every match-join region enumerator —
///    no cross-measure scan sharing;
///  - group-by is sort-based (external sort under the memory budget
///    followed by streaming aggregation);
///  - match joins are sort-merge joins (band probes via binary search for
///    sibling windows, the index-nested-loop analog);
///  - every measure's result is written to disk and read back by its
///    consumers.
///
/// Substitution note (DESIGN.md §3): the original baseline is closed-
/// source; what the paper's experiments exercise is per-query
/// materialization versus the sort/scan engine's shared streaming passes,
/// which this engine preserves.
class RelationalEngine : public Engine {
 public:
  RelationalEngine() = default;

  std::string_view name() const override { return "relational"; }

  using Engine::Run;
  Result<EvalOutput> Run(const Workflow& workflow, const FactTable& fact,
                         ExecContext& ctx) override;
};

/// Lowers a workflow into the relational pipeline: a load stage that
/// writes the fact table into "database storage", one stage per measure
/// (each its own SQL-query analog: scan, external group-by sort,
/// sort-merge join, materialize), and a fetch stage that reads the
/// requested outputs back from disk.
PhysicalPlan BuildRelationalPlan(const Workflow& workflow,
                                 const EngineOptions& options);

}  // namespace csm

#endif  // CSM_RELATIONAL_RELATIONAL_ENGINE_H_
