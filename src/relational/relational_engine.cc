#include "relational/relational_engine.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "algebra/evaluator.h"
#include "algebra/measure_ops.h"
#include "common/logging.h"
#include "exec/exec_context.h"
#include "obs/trace.h"
#include "storage/external_sorter.h"
#include "storage/record_batch.h"
#include "storage/table_io.h"
#include "storage/temp_file.h"

namespace csm {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Order vector grouping by `gran`: the non-ALL dimensions in schema
/// order, each at its granularity level.
SortKey GroupOrder(const Schema& schema, const Granularity& gran) {
  std::vector<SortKeyPart> parts;
  for (int i = 0; i < schema.num_dims(); ++i) {
    if (gran.level(i) == schema.dim(i).hierarchy->all_level()) continue;
    parts.push_back({i, gran.level(i)});
  }
  return SortKey(std::move(parts));
}

/// Cross-operator state of one relational run: the scratch directory the
/// load stage created, the fact table's on-disk home, and the disk
/// locations of already-computed measures.
struct RelState {
  std::optional<TempDir> temp;
  std::string fact_path;
  std::map<std::string, std::string> measure_paths;
};

/// Per-query execution state handed to the helpers below.
struct RunContext {
  const Workflow* workflow = nullptr;
  const Schema* schema = nullptr;
  SchemaPtr schema_ptr;
  TempDir* temp = nullptr;
  std::string fact_path;  // the fact table's on-disk home
  size_t memory_budget = 0;
  size_t batch_rows = 1024;
  int sort_threads = 1;
  Tracer* tracer = nullptr;
  SpanId span = kNoSpan;  // current "measure:<name>" span
  const std::atomic<bool>* cancel = nullptr;
  // Disk locations of already-computed measures (lives in RelState).
  std::map<std::string, std::string>* measure_paths = nullptr;

  void ChargePeakRows(size_t rows) {
    tracer->SetGaugeMax(span, "peak_hash_entries",
                        static_cast<double>(rows));
  }
};

/// Builds the per-query context from the plan bus and shared run state.
RunContext MakeRunContext(PlanContext& ctx, RelState& state) {
  RunContext rc;
  rc.workflow = ctx.workflow;
  rc.schema_ptr = ctx.workflow->schema();
  rc.schema = rc.schema_ptr.get();
  rc.temp = &*state.temp;
  rc.fact_path = state.fact_path;
  rc.memory_budget = ctx.exec->options.memory_budget_bytes;
  rc.batch_rows = ctx.exec->options.scan_batch_rows;
  rc.sort_threads = ctx.exec->options.parallel_threads;
  rc.tracer = &ctx.tracer();
  rc.span = ctx.root();
  rc.cancel = ctx.exec->cancel;
  rc.measure_paths = &state.measure_paths;
  return rc;
}

/// Reads a previously materialized measure from disk (charging nothing but
/// wall time, which is what the paper measures).
Result<MeasureTable> LoadMeasure(RunContext& ctx, const std::string& name) {
  auto it = ctx.measure_paths->find(name);
  if (it == ctx.measure_paths->end()) {
    return Status::Internal("measure '" + name + "' not yet materialized");
  }
  CSM_ASSIGN_OR_RETURN(const MeasureDef* def, ctx.workflow->Find(name));
  return ReadMeasureTableBinary(ctx.schema_ptr, def->gran, def->name,
                                it->second);
}

/// Writes a measure's result to disk and records its location.
Status StoreMeasure(RunContext& ctx, const MeasureTable& table) {
  std::string path = ctx.temp->NewFilePath("rel-" + table.name());
  CSM_RETURN_NOT_OK(WriteMeasureTableBinary(table, path));
  (*ctx.measure_paths)[table.name()] = path;
  ctx.tracer->AddCounter(ctx.span, "materialized_rows",
                         static_cast<double>(table.num_rows()));
  ctx.tracer->AddCounter(
      ctx.span, "spilled_bytes",
      static_cast<double>(table.num_rows() *
                              (table.num_dims() * sizeof(Value) +
                               sizeof(double)) +
                          24));
  return Status::OK();
}

/// SELECT gran, agg FROM fact [WHERE ...] GROUP BY gran — evaluated the
/// classic way: scan the stored fact file, filter, external-sort by the
/// grouping key, stream-aggregate.
Result<MeasureTable> SortGroupByFact(RunContext& ctx,
                                     const Granularity& gran, AggSpec agg,
                                     const ScalarExprPtr& where,
                                     const std::string& name) {
  const Schema& schema = *ctx.schema;
  const int d = schema.num_dims();
  const int m = schema.num_measures();

  // Scan from disk (every query re-reads the base table).
  ScopedSpan scan_span(ctx.tracer, "scan", ctx.span);
  CSM_ASSIGN_OR_RETURN(FactTable fact,
                       ReadFactTableBinary(ctx.schema_ptr, ctx.fact_path));
  ctx.tracer->AddCounter(scan_span.id(), "rows_scanned",
                         static_cast<double>(fact.num_rows()));

  if (where != nullptr) {
    CSM_ASSIGN_OR_RETURN(BoundExpr cond,
                         BoundExpr::Bind(*where, FactRowVars(schema)));
    FactTable filtered(ctx.schema_ptr);
    std::vector<double> slots(d + m);
    for (size_t row = 0; row < fact.num_rows(); ++row) {
      const Value* dims = fact.dim_row(row);
      const double* measures = fact.measure_row(row);
      for (int i = 0; i < d; ++i) slots[i] = static_cast<double>(dims[i]);
      for (int i = 0; i < m; ++i) slots[d + i] = measures[i];
      if (cond.EvalBool(slots.data())) filtered.AppendRow(dims, measures);
    }
    fact = std::move(filtered);
  }
  ctx.ChargePeakRows(fact.num_rows());
  scan_span.End();

  SortKey order = GroupOrder(schema, gran);
  ScopedSpan sort_span(ctx.tracer, "sort", ctx.span);
  SortStats sort_stats;
  SortOptions sort_options;
  sort_options.memory_budget_bytes = ctx.memory_budget;
  sort_options.temp_dir = ctx.temp;
  sort_options.threads = ctx.sort_threads;
  sort_options.cancel = ctx.cancel;
  CSM_ASSIGN_OR_RETURN(
      fact, SortFactTable(std::move(fact), order, sort_options, &sort_stats));
  ctx.tracer->AddCounter(sort_span.id(), "spilled_bytes",
                         static_cast<double>(sort_stats.spilled_bytes));
  ctx.tracer->AddCounter(sort_span.id(), "sort_runs",
                         static_cast<double>(sort_stats.runs));
  ctx.tracer->AddCounter(sort_span.id(), "overlapped_runs",
                         static_cast<double>(sort_stats.overlapped_runs));
  ctx.tracer->SetAttr(sort_span.id(), "sort_threads",
                      std::to_string(sort_stats.threads_used));
  sort_span.End();

  // Streaming aggregation over the sorted run, batch-at-a-time: the
  // grouping key is generalized with one column sweep per dimension per
  // batch, then group boundaries are detected on the key columns.
  ScopedSpan agg_span(ctx.tracer, "scan", ctx.span);
  MeasureTable out(ctx.schema_ptr, gran, name);
  const Granularity base = Granularity::Base(schema);
  const size_t cap = std::max<size_t>(1, ctx.batch_rows);
  std::unique_ptr<BatchCursor> cursor = MakeFactTableBatchCursor(fact);
  RecordBatch batch(d, m, cap);
  std::vector<std::vector<Value>> key_cols(d, std::vector<Value>(cap));
  std::vector<const Value*> in_ptrs(d);
  std::vector<Value*> out_ptrs(d);
  for (int i = 0; i < d; ++i) out_ptrs[i] = key_cols[i].data();
  RegionKey current(d), key(d);
  AggState state;
  bool open = false;
  uint64_t batches = 0;
  for (;;) {
    CSM_ASSIGN_OR_RETURN(size_t n, cursor->NextBatch(&batch));
    if (n == 0) break;
    ++batches;
    for (int i = 0; i < d; ++i) in_ptrs[i] = batch.dim_col(i);
    GeneralizeColumns(schema, base, gran, in_ptrs.data(), n,
                      out_ptrs.data());
    const double* arg_col =
        agg.arg >= 0 ? batch.measure_col(agg.arg) : nullptr;
    for (size_t r = 0; r < n; ++r) {
      for (int i = 0; i < d; ++i) key[i] = key_cols[i][r];
      if (!open || key != current) {
        if (open) out.Append(current, AggFinalize(agg.kind, state));
        current = key;
        AggInit(agg.kind, &state);
        open = true;
      }
      AggUpdate(agg.kind, &state, arg_col != nullptr ? arg_col[r] : 1.0);
    }
  }
  if (open) out.Append(current, AggFinalize(agg.kind, state));
  ctx.tracer->AddCounter(agg_span.id(), "batches",
                         static_cast<double>(batches));
  ctx.tracer->SetAttr(agg_span.id(), "batch_rows", std::to_string(cap));
  return out;
}

/// Sorted streaming roll-up of a measure table to `gran`.
Result<MeasureTable> SortGroupByMeasure(RunContext& ctx,
                                        MeasureTable input,
                                        const Granularity& gran,
                                        AggSpec agg,
                                        const std::string& name) {
  const Schema& schema = *ctx.schema;
  const int d = schema.num_dims();
  {
    ScopedSpan sort_span(ctx.tracer, "sort", ctx.span);
    input.SortBy(GroupOrder(schema, gran));
  }
  ctx.ChargePeakRows(input.num_rows());

  // Chunked roll-up: gather the sorted keys into per-dimension columns,
  // generalize each column in one hierarchy sweep, then stream group
  // boundaries off the generalized columns.
  ScopedSpan agg_span(ctx.tracer, "combine", ctx.span);
  MeasureTable out(ctx.schema_ptr, gran, name);
  const size_t cap = std::max<size_t>(1, ctx.batch_rows);
  std::vector<std::vector<Value>> key_cols(d, std::vector<Value>(cap));
  RegionKey current(d), key(d);
  AggState state;
  bool open = false;
  for (size_t begin = 0; begin < input.num_rows(); begin += cap) {
    const size_t n = std::min(cap, input.num_rows() - begin);
    for (int i = 0; i < d; ++i) {
      Value* col = key_cols[i].data();
      for (size_t r = 0; r < n; ++r) col[r] = input.key_row(begin + r)[i];
      schema.dim(i).hierarchy->GeneralizeColumn(
          col, n, input.granularity().level(i), gran.level(i), col);
    }
    for (size_t r = 0; r < n; ++r) {
      for (int i = 0; i < d; ++i) key[i] = key_cols[i][r];
      if (!open || key != current) {
        if (open) out.Append(current, AggFinalize(agg.kind, state));
        current = key;
        AggInit(agg.kind, &state);
        open = true;
      }
      AggUpdate(agg.kind, &state,
                agg.arg >= 0 ? input.value(begin + r) : 1.0);
    }
  }
  if (open) out.Append(current, AggFinalize(agg.kind, state));
  return out;
}

/// Applies a measure-row filter, streaming.
Result<MeasureTable> FilterTable(const MeasureTable& input,
                                 const ScalarExprPtr& where) {
  if (where == nullptr) return input.Clone();
  return FilterMeasure(input, *where, nullptr, input.name());
}

/// Binary search for `probe` in a lex-sorted measure table; returns row
/// index or -1.
int64_t FindRow(const MeasureTable& table, const RegionKey& probe) {
  const int d = table.num_dims();
  int64_t lo = 0, hi = static_cast<int64_t>(table.num_rows()) - 1;
  while (lo <= hi) {
    int64_t mid = lo + (hi - lo) / 2;
    int cmp = CompareKeys(table.key_row(mid), probe.data(), d);
    if (cmp == 0) return mid;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

/// SELECT S.X̄, agg(T) FROM S LEFT OUTER JOIN T ... GROUP BY S.X̄, as a
/// sort-merge (self / parent-child / child-parent) or index-probe
/// (sibling) join. `source` enumerates the output regions.
Result<MeasureTable> MergeMatchJoin(RunContext& ctx, MeasureTable source,
                                    MeasureTable target,
                                    const MatchCond& cond, AggSpec agg,
                                    const std::string& name) {
  const Schema& schema = *ctx.schema;
  const int d = schema.num_dims();
  const AggKind kind = agg.kind;

  if (cond.type == MatchType::kChildParent) {
    // Roll the finer target up to the source granularity first.
    CSM_ASSIGN_OR_RETURN(
        target, SortGroupByMeasure(ctx, std::move(target),
                                   source.granularity(), agg, "t_up"));
    // Now a plain self merge below.
  }

  {
    ScopedSpan sort_span(ctx.tracer, "sort", ctx.span);
    source.SortByKeyLex();
    target.SortByKeyLex();
  }
  ctx.ChargePeakRows(source.num_rows() + target.num_rows());

  ScopedSpan join_span(ctx.tracer, "combine", ctx.span);
  MeasureTable out(ctx.schema_ptr, source.granularity(), name);
  out.Reserve(source.num_rows());

  switch (cond.type) {
    case MatchType::kSelf:
    case MatchType::kChildParent: {
      // Merge on identical keys (unique per side).
      size_t t_row = 0;
      for (size_t s_row = 0; s_row < source.num_rows(); ++s_row) {
        const Value* skey = source.key_row(s_row);
        while (t_row < target.num_rows() &&
               CompareKeys(target.key_row(t_row), skey, d) < 0) {
          ++t_row;
        }
        AggState state;
        AggInit(kind, &state);
        if (cond.type == MatchType::kChildParent) {
          // t_up already holds the final aggregate per region.
          if (t_row < target.num_rows() &&
              CompareKeys(target.key_row(t_row), skey, d) == 0) {
            out.Append(skey, target.value(t_row));
          } else {
            out.Append(skey, AggFinalize(kind, state));
          }
        } else {
          size_t probe = t_row;
          while (probe < target.num_rows() &&
                 CompareKeys(target.key_row(probe), skey, d) == 0) {
            // count(*) counts NULL-valued partners; count(M) skips them.
            AggUpdate(kind, &state,
                      agg.arg >= 0 ? target.value(probe) : 1.0);
            ++probe;
          }
          out.Append(skey, AggFinalize(kind, state));
        }
      }
      break;
    }
    case MatchType::kParentChild: {
      // Probe the coarser target with each source key generalized; the
      // generalized probes are not lex-ordered under the child order, so
      // use binary search (index analog).
      RegionKey probe(d);
      for (size_t s_row = 0; s_row < source.num_rows(); ++s_row) {
        const Value* skey = source.key_row(s_row);
        GeneralizeKeyInto(schema, skey, source.granularity(),
                          target.granularity(), &probe);
        AggState state;
        AggInit(kind, &state);
        int64_t row = FindRow(target, probe);
        if (row >= 0) {
          AggUpdate(kind, &state,
                    agg.arg >= 0 ? target.value(row) : 1.0);
        }
        out.Append(skey, AggFinalize(kind, state));
      }
      break;
    }
    case MatchType::kSibling: {
      RegionKey probe(d);
      for (size_t s_row = 0; s_row < source.num_rows(); ++s_row) {
        const Value* skey = source.key_row(s_row);
        AggState state;
        AggInit(kind, &state);
        ForEachSiblingProbe(skey, d, cond, &probe,
                            [&](const RegionKey& k) {
                              int64_t row = FindRow(target, k);
                              if (row >= 0) {
                                AggUpdate(kind, &state,
                                          agg.arg >= 0 ? target.value(row)
                                                       : 1.0);
                              }
                            });
        out.Append(skey, AggFinalize(kind, state));
      }
      break;
    }
  }
  return out;
}

/// SELECT S.X̄, fc(...) FROM S LEFT OUTER JOIN T_1 ... T_n — an n-way
/// merge over lex-sorted inputs.
Result<MeasureTable> MergeCombine(RunContext& ctx,
                                  std::vector<MeasureTable> inputs,
                                  const ScalarExprPtr& fc,
                                  const std::string& name) {
  const Schema& schema = *ctx.schema;
  const int d = schema.num_dims();
  size_t total_rows = 0;
  std::vector<std::string> names;
  {
    ScopedSpan sort_span(ctx.tracer, "sort", ctx.span);
    for (MeasureTable& t : inputs) {
      t.SortByKeyLex();
      total_rows += t.num_rows();
      names.push_back(t.name());
    }
  }
  ctx.ChargePeakRows(total_rows);

  ScopedSpan join_span(ctx.tracer, "combine", ctx.span);
  CSM_ASSIGN_OR_RETURN(BoundExpr bound,
                       BoundExpr::Bind(*fc, CombineVars(schema, names)));
  const MeasureTable& source = inputs[0];
  MeasureTable out(ctx.schema_ptr, source.granularity(), name);
  out.Reserve(source.num_rows());
  std::vector<size_t> cursor(inputs.size(), 0);
  std::vector<double> slots(d + inputs.size());
  for (size_t s_row = 0; s_row < source.num_rows(); ++s_row) {
    const Value* skey = source.key_row(s_row);
    for (int i = 0; i < d; ++i) slots[i] = static_cast<double>(skey[i]);
    slots[d] = source.value(s_row);
    for (size_t i = 1; i < inputs.size(); ++i) {
      const MeasureTable& t = inputs[i];
      size_t& c = cursor[i];
      while (c < t.num_rows() &&
             CompareKeys(t.key_row(c), skey, d) < 0) {
        ++c;
      }
      slots[d + i] = (c < t.num_rows() &&
                      CompareKeys(t.key_row(c), skey, d) == 0)
                         ? t.value(c)
                         : kNaN;
    }
    out.Append(skey, bound.Eval(slots.data()));
  }
  return out;
}

/// "Loads" the base table into database storage (a scratch binary file
/// every per-measure query re-reads).
class RelSetupOp : public PhysicalOp {
 public:
  explicit RelSetupOp(std::shared_ptr<RelState> state)
      : state_(std::move(state)) {}

  std::string_view name() const override { return "load"; }

  std::string Describe(const Schema&) const override {
    return "write the fact table into database storage";
  }

  Status Run(PlanContext& ctx) override {
    CSM_ASSIGN_OR_RETURN(state_->temp,
                         TempDir::Make(ctx.exec->options.temp_dir));
    ScopedSpan load_span(&ctx.tracer(), "materialize", ctx.root());
    state_->fact_path = state_->temp->NewFilePath("fact");
    return WriteFactTableBinary(*ctx.fact, state_->fact_path);
  }

 private:
  std::shared_ptr<RelState> state_;
};

/// One measure = one SQL query: scan/sort/aggregate or join over
/// previously materialized measures, then materialize the result.
class RelMeasureOp : public PhysicalOp {
 public:
  RelMeasureOp(std::shared_ptr<RelState> state, int measure_idx)
      : state_(std::move(state)), measure_idx_(measure_idx) {}

  std::string_view name() const override { return "measure"; }

  std::string Describe(const Schema&) const override { return describe_; }

  void set_describe(std::string text) { describe_ = std::move(text); }

  Status Run(PlanContext& ctx) override {
    const Workflow& workflow = *ctx.workflow;
    const MeasureDef& def = workflow.measures()[measure_idx_];
    Tracer& tracer = ctx.tracer();
    CSM_RETURN_NOT_OK(ctx.exec->CheckCancelled("relational measure '" +
                                               def.name + "'"));
    ScopedSpan measure_span(&tracer, "measure:" + def.name, ctx.root());
    RunContext rc = MakeRunContext(ctx, *state_);
    rc.span = measure_span.id();

    MeasureTable result(rc.schema_ptr, def.gran, def.name);
    switch (def.op) {
      case MeasureOp::kBaseAgg: {
        CSM_ASSIGN_OR_RETURN(result,
                             SortGroupByFact(rc, def.gran, def.agg,
                                             def.where, def.name));
        break;
      }
      case MeasureOp::kRollup: {
        CSM_ASSIGN_OR_RETURN(MeasureTable input,
                             LoadMeasure(rc, def.input));
        CSM_ASSIGN_OR_RETURN(input, FilterTable(input, def.where));
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            result, SortGroupByMeasure(rc, std::move(input), def.gran,
                                       agg, def.name));
        break;
      }
      case MeasureOp::kMatch: {
        // The SQL translation re-derives the region list per query; no
        // sharing with other measures.
        CSM_ASSIGN_OR_RETURN(
            MeasureTable regions,
            SortGroupByFact(rc, def.gran, AggSpec{AggKind::kNone, -1},
                            nullptr, def.name + "_base"));
        CSM_ASSIGN_OR_RETURN(MeasureTable target,
                             LoadMeasure(rc, def.input));
        CSM_ASSIGN_OR_RETURN(target, FilterTable(target, def.where));
        AggSpec agg = def.agg;
        if (agg.arg > 0) agg.arg = 0;
        CSM_ASSIGN_OR_RETURN(
            result, MergeMatchJoin(rc, std::move(regions),
                                   std::move(target), def.match, agg,
                                   def.name));
        break;
      }
      case MeasureOp::kCombine: {
        std::vector<MeasureTable> inputs;
        for (const std::string& input : def.combine_inputs) {
          CSM_ASSIGN_OR_RETURN(MeasureTable t, LoadMeasure(rc, input));
          inputs.push_back(std::move(t));
        }
        CSM_ASSIGN_OR_RETURN(result, MergeCombine(rc, std::move(inputs),
                                                  def.fc, def.name));
        break;
      }
    }
    CSM_RETURN_NOT_OK(StoreMeasure(rc, result));
    tracer.SetGaugeMax(measure_span.id(),
                       "hash_entries_hw/" + def.name,
                       static_cast<double>(result.num_rows()));
    return Status::OK();
  }

 private:
  std::shared_ptr<RelState> state_;
  int measure_idx_;
  std::string describe_;
};

/// Fetches the requested outputs back from disk.
class RelEmitOp : public PhysicalOp {
 public:
  explicit RelEmitOp(std::shared_ptr<RelState> state)
      : state_(std::move(state)) {}

  std::string_view name() const override { return "fetch"; }

  std::string Describe(const Schema&) const override {
    return "read the requested output tables back from disk";
  }

  Status Run(PlanContext& ctx) override {
    const Workflow& workflow = *ctx.workflow;
    RunContext rc = MakeRunContext(ctx, *state_);
    for (const MeasureDef& def : workflow.measures()) {
      if (!def.is_output && !ctx.exec->options.include_hidden) continue;
      CSM_ASSIGN_OR_RETURN(MeasureTable table, LoadMeasure(rc, def.name));
      table.SortByKeyLex();
      ctx.out->tables.emplace(def.name, std::move(table));
    }
    ctx.tracer().SetAttr(ctx.root(), "sort_key",
                         "(per-query group-by sorts)");
    return Status::OK();
  }

 private:
  std::shared_ptr<RelState> state_;
};

std::string DescribeMeasure(const MeasureDef& def) {
  switch (def.op) {
    case MeasureOp::kBaseAgg:
      return "query " + def.name + ": scan fact, external group-by sort";
    case MeasureOp::kRollup:
      return "query " + def.name + ": roll up " + def.input +
             " via sorted group-by";
    case MeasureOp::kMatch:
      return "query " + def.name + ": sort-merge match join over " +
             def.input;
    case MeasureOp::kCombine:
      return "query " + def.name + ": n-way merge combine";
  }
  return "query " + def.name;
}

}  // namespace

PhysicalPlan BuildRelationalPlan(const Workflow& workflow,
                                 const EngineOptions& options) {
  auto state = std::make_shared<RelState>();
  PhysicalPlan plan;
  plan.engine = "relational";
  // The relational lowering materializes views row-wise and never scans
  // through code columns, so the encoding knob has no effect here.
  plan.dict_encoding = false;
  plan.scan_batch_rows = options.scan_batch_rows;
  plan.threads = options.parallel_threads;
  plan.engine_state = state;
  plan.ops.push_back(std::make_unique<RelSetupOp>(state));
  for (size_t i = 0; i < workflow.measures().size(); ++i) {
    auto op = std::make_unique<RelMeasureOp>(state, static_cast<int>(i));
    op->set_describe(DescribeMeasure(workflow.measures()[i]));
    plan.ops.push_back(std::move(op));
  }
  plan.ops.push_back(std::make_unique<RelEmitOp>(state));
  return plan;
}

Result<EvalOutput> RelationalEngine::Run(const Workflow& workflow,
                                         const FactTable& fact,
                                         ExecContext& exec_ctx) {
  PhysicalPlan plan = BuildRelationalPlan(workflow, exec_ctx.options);
  return plan.Execute(workflow, fact, exec_ctx);
}

}  // namespace csm
