#include "model/schema.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

Result<std::shared_ptr<Schema>> Schema::Make(
    std::vector<DimensionDef> dims, std::vector<std::string> measures) {
  if (dims.empty()) {
    return Status::InvalidArgument("schema needs at least one dimension");
  }
  std::unordered_set<std::string> seen;
  for (const auto& d : dims) {
    if (d.hierarchy == nullptr) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has no hierarchy");
    }
    if (!seen.insert(ToLower(d.name)).second) {
      return Status::InvalidArgument("duplicate dimension name '" + d.name +
                                     "'");
    }
  }
  for (const auto& m : measures) {
    if (!seen.insert(ToLower(m)).second) {
      return Status::InvalidArgument("duplicate attribute name '" + m + "'");
    }
  }
  return std::shared_ptr<Schema>(
      new Schema(std::move(dims), std::move(measures)));
}

Result<int> Schema::DimIndex(std::string_view name) const {
  std::string lower = ToLower(name);
  for (int i = 0; i < num_dims(); ++i) {
    if (ToLower(dims_[i].name) == lower) return i;
  }
  return Status::NotFound("no dimension named '" + std::string(name) + "'");
}

Result<int> Schema::MeasureIndex(std::string_view name) const {
  std::string lower = ToLower(name);
  for (int i = 0; i < num_measures(); ++i) {
    if (ToLower(measures_[i]) == lower) return i;
  }
  return Status::NotFound("no measure named '" + std::string(name) + "'");
}

SchemaPtr MakeNetworkLogSchema(double time_cardinality,
                               double ip_cardinality) {
  // Table 1 of the paper names these t / U / T / P; the target dimension
  // is V here because attribute matching is case-insensitive and "T"
  // would collide with "t".
  std::vector<DimensionDef> dims;
  dims.push_back({"t", MakeTimeHierarchy(time_cardinality)});
  dims.push_back({"U", MakeIpv4Hierarchy(ip_cardinality)});
  dims.push_back({"V", MakeIpv4Hierarchy(ip_cardinality)});
  dims.push_back({"P", MakePortHierarchy()});
  auto result = Schema::Make(std::move(dims), {"bytes"});
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

SchemaPtr MakeSyntheticSchema(int num_dims, int non_all_levels,
                              uint64_t fanout, double base_cardinality) {
  std::vector<DimensionDef> dims;
  for (int i = 0; i < num_dims; ++i) {
    dims.push_back({"d" + std::to_string(i),
                    MakeUniformHierarchy(non_all_levels, fanout,
                                         base_cardinality)});
  }
  auto result = Schema::Make(std::move(dims), {"m"});
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

}  // namespace csm
