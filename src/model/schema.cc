#include "model/schema.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

Result<std::shared_ptr<Schema>> Schema::Make(
    std::vector<DimensionDef> dims, std::vector<std::string> measures) {
  if (dims.empty()) {
    return Status::InvalidArgument("schema needs at least one dimension");
  }
  std::unordered_set<std::string> seen;
  for (const auto& d : dims) {
    if (d.hierarchy == nullptr) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' has no hierarchy");
    }
    if (!seen.insert(ToLower(d.name)).second) {
      return Status::InvalidArgument("duplicate dimension name '" + d.name +
                                     "'");
    }
  }
  for (const auto& m : measures) {
    if (!seen.insert(ToLower(m)).second) {
      return Status::InvalidArgument("duplicate attribute name '" + m + "'");
    }
  }
  return std::shared_ptr<Schema>(
      new Schema(std::move(dims), std::move(measures)));
}

Result<int> Schema::DimIndex(std::string_view name) const {
  std::string lower = ToLower(name);
  for (int i = 0; i < num_dims(); ++i) {
    if (ToLower(dims_[i].name) == lower) return i;
  }
  return Status::NotFound("no dimension named '" + std::string(name) + "'");
}

Result<int> Schema::MeasureIndex(std::string_view name) const {
  std::string lower = ToLower(name);
  for (int i = 0; i < num_measures(); ++i) {
    if (ToLower(measures_[i]) == lower) return i;
  }
  return Status::NotFound("no measure named '" + std::string(name) + "'");
}

SchemaPtr MakeNetworkLogSchema(double time_cardinality,
                               double ip_cardinality) {
  // Table 1 of the paper names these t / U / T / P; the target dimension
  // is V here because attribute matching is case-insensitive and "T"
  // would collide with "t".
  std::vector<DimensionDef> dims;
  dims.push_back({"t", MakeTimeHierarchy(time_cardinality)});
  dims.push_back({"U", MakeIpv4Hierarchy(ip_cardinality)});
  dims.push_back({"V", MakeIpv4Hierarchy(ip_cardinality)});
  dims.push_back({"P", MakePortHierarchy()});
  auto result = Schema::Make(std::move(dims), {"bytes"});
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

SchemaPtr MakeSyntheticSchema(int num_dims, int non_all_levels,
                              uint64_t fanout, double base_cardinality) {
  std::vector<DimensionDef> dims;
  for (int i = 0; i < num_dims; ++i) {
    dims.push_back({"d" + std::to_string(i),
                    MakeUniformHierarchy(non_all_levels, fanout,
                                         base_cardinality)});
  }
  auto result = Schema::Make(std::move(dims), {"m"});
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

Result<SchemaPtr> ParseSchemaSpec(std::string_view spec) {
  if (spec == "net") return MakeNetworkLogSchema();
  if (StartsWith(spec, "synthetic")) {
    int dims = 4, levels = 3;
    uint64_t fanout = 10, card = 1000;
    const size_t colon = spec.find(':');
    if (colon != std::string_view::npos) {
      auto parts = Split(spec.substr(colon + 1), ',');
      if (parts.size() != 4) {
        return Status::InvalidArgument(
            "synthetic schema spec needs 4 parameters: d,l,f,c");
      }
      int64_t d, l;
      if (!ParseInt64(parts[0], &d) || !ParseInt64(parts[1], &l) ||
          !ParseUint64(parts[2], &fanout) || !ParseUint64(parts[3], &card) ||
          d < 1 || l < 1 || fanout < 1 || card < 1) {
        return Status::InvalidArgument("bad synthetic schema parameters");
      }
      dims = static_cast<int>(d);
      levels = static_cast<int>(l);
    }
    return MakeSyntheticSchema(dims, levels, fanout,
                               static_cast<double>(card));
  }
  return Status::InvalidArgument("unknown schema '" + std::string(spec) +
                                 "' (expected net or synthetic[:d,l,f,c])");
}

std::string SyntheticSchemaSpec(int num_dims, int non_all_levels,
                                uint64_t fanout, uint64_t base_cardinality) {
  return "synthetic:" + std::to_string(num_dims) + "," +
         std::to_string(non_all_levels) + "," + std::to_string(fanout) +
         "," + std::to_string(base_cardinality);
}

}  // namespace csm
