#ifndef CSM_MODEL_SORT_KEY_H_
#define CSM_MODEL_SORT_KEY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/granularity.h"
#include "model/schema.h"

namespace csm {

/// One component of an order vector: sort by dimension `dim` generalized to
/// hierarchy level `level` (paper §5.2's K_i:D_i pairs).
struct SortKeyPart {
  int dim = 0;
  int level = 0;

  bool operator==(const SortKeyPart& other) const {
    return dim == other.dim && level == other.level;
  }
};

/// An order vector <K_1:D_1, ..., K_m:D_m>: the dataset (or a stream) is
/// sorted lexicographically by the listed dimensions, each generalized to
/// the listed level. Trailing dimensions not mentioned are unconstrained
/// (equivalently, padded with D_ALL — Proposition 2).
class SortKey {
 public:
  SortKey() = default;
  explicit SortKey(std::vector<SortKeyPart> parts)
      : parts_(std::move(parts)) {}

  /// Parses "<t:hour, U:ip>" or "t:hour, U:ip".
  static Result<SortKey> Parse(const Schema& schema, std::string_view text);

  int size() const { return static_cast<int>(parts_.size()); }
  bool empty() const { return parts_.empty(); }
  const SortKeyPart& part(int i) const { return parts_[i]; }
  const std::vector<SortKeyPart>& parts() const { return parts_; }

  bool operator==(const SortKey& other) const {
    return parts_ == other.parts_;
  }

  /// "<t:hour, U:ip>".
  std::string ToString(const Schema& schema) const;

  /// Comparator over base-granularity dimension values: compares two
  /// records' dim arrays under this order vector. Returns <0, 0, >0.
  int CompareBaseKeys(const Schema& schema, const Value* a,
                      const Value* b) const;

  /// True if keys sorted by this order remain sorted when every component
  /// is generalized per `gran` (i.e. this order is usable for streams at
  /// granularity `gran`). Holds by Proposition 1 for any coarsening of the
  /// listed levels.
  bool CompatibleWith(const Schema& schema, const Granularity& gran) const;

 private:
  std::vector<SortKeyPart> parts_;
};

}  // namespace csm

#endif  // CSM_MODEL_SORT_KEY_H_
