#ifndef CSM_MODEL_HIERARCHY_H_
#define CSM_MODEL_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace csm {

/// Encoded dimension value. Values are integers within a single domain
/// (level); the pair (level, value) identifies a node of the value
/// hierarchy. The single value of the ALL domain is encoded as 0.
using Value = uint64_t;

inline constexpr Value kAllValue = 0;

/// A linear domain generalization hierarchy for one dimension attribute
/// (paper §2.1). Level 0 is the base domain; levels increase toward the
/// special top domain D_ALL at level `num_levels() - 1`.
///
/// Implementations must keep the value generalization function γ
/// *monotone*: u < v at level i implies γ(u) <= γ(v) at every coarser
/// level. This is Proposition 1's total-order requirement, and the
/// sort/scan engine's correctness depends on it (sorted scans stay sorted
/// under roll-up). `MappedHierarchy::BuildMonotone` re-encodes arbitrary
/// hierarchies to restore the property.
class Hierarchy {
 public:
  virtual ~Hierarchy() = default;

  /// Number of domains including base and ALL; always >= 2.
  virtual int num_levels() const = 0;

  /// Name of the domain at `level` (e.g. "hour"). Unique within the
  /// hierarchy.
  virtual std::string_view level_name(int level) const = 0;

  /// Maps `value` from `from_level` up to `to_level` (γ in the paper).
  /// Requires 0 <= from_level <= to_level < num_levels(). Generalizing to
  /// the same level is the identity; generalizing to ALL yields kAllValue.
  virtual Value Generalize(Value value, int from_level,
                           int to_level) const = 0;

  /// Columnar γ: maps `n` values in one sweep, `out[i] =
  /// Generalize(in[i], from_level, to_level)`. `in` and `out` may alias
  /// exactly (in == out) but must not otherwise overlap. The default
  /// loops over Generalize; SteppedHierarchy overrides it to hoist the
  /// level arithmetic out of the loop — the batched scan pipeline calls
  /// this once per dimension per batch instead of γ once per record.
  virtual void GeneralizeColumn(const Value* in, size_t n, int from_level,
                                int to_level, Value* out) const;

  /// card(D_from, D_to) from Table 6: the (typical) number of values of the
  /// finer domain `from_level` that map to one value of `to_level`. Used
  /// only for memory-footprint estimation, never for correctness.
  virtual double FanOut(int from_level, int to_level) const = 0;

  /// Estimated number of distinct values in the domain at `level`.
  virtual double EstimatedCardinality(int level) const = 0;

  /// Exact number of level-`from` values mapping to one level-`to` value
  /// when the hierarchy is perfectly regular (stepped); 0 when the fan-out
  /// varies (table-driven hierarchies) and callers must be conservative.
  virtual uint64_t ExactDivisor(int from_level, int to_level) const {
    (void)from_level;
    (void)to_level;
    return 0;
  }

  /// Level index of ALL.
  int all_level() const { return num_levels() - 1; }

  /// Finds a level by (case-insensitive) name.
  Result<int> LevelByName(std::string_view name) const;
};

/// Hierarchy whose levels are nested fixed-size blocks: each value of level
/// i+1 covers `step_fanout[i]` consecutive values of level i, so γ is
/// integer division and trivially monotone. Covers the paper's synthetic
/// hierarchies (fan-out 10), time (second/hour/day/month/year on a
/// simplified 30-day calendar, exactly as the paper linearizes time by
/// dropping weeks), IPv4 prefixes and port ranges.
class SteppedHierarchy : public Hierarchy {
 public:
  /// `level_names` must include the ALL domain as its last element;
  /// `step_fanouts` has one entry per adjacent non-ALL pair, i.e.
  /// level_names.size() - 2 entries. `base_cardinality` estimates the
  /// number of distinct base values (for footprint estimation).
  static Result<std::shared_ptr<SteppedHierarchy>> Make(
      std::vector<std::string> level_names,
      std::vector<uint64_t> step_fanouts, double base_cardinality);

  int num_levels() const override {
    return static_cast<int>(level_names_.size());
  }
  std::string_view level_name(int level) const override {
    return level_names_[level];
  }
  Value Generalize(Value value, int from_level, int to_level) const override;
  void GeneralizeColumn(const Value* in, size_t n, int from_level,
                        int to_level, Value* out) const override;
  double FanOut(int from_level, int to_level) const override;
  double EstimatedCardinality(int level) const override;
  uint64_t ExactDivisor(int from_level, int to_level) const override {
    if (to_level >= all_level()) return 0;
    return Divisor(from_level, to_level);
  }

  /// Product of step fan-outs between two non-ALL levels; exposed for the
  /// sibling-window arithmetic in the executor.
  uint64_t Divisor(int from_level, int to_level) const;

 private:
  SteppedHierarchy(std::vector<std::string> level_names,
                   std::vector<uint64_t> step_fanouts,
                   double base_cardinality);

  std::vector<std::string> level_names_;
  std::vector<uint64_t> step_fanouts_;
  // cum_divisor_[i] = product of step_fanouts_[0..i-1]; divisor from base
  // to level i.
  std::vector<uint64_t> cum_divisor_;
  double base_cardinality_;
};

/// Hierarchy backed by explicit parent lookup tables (a dimension table in
/// the paper's terms, §3.2 note on value-mapping via in-memory dimension
/// tables). Values at each level must be dense-enough integers; parents are
/// given per level as a map child value -> parent value.
class MappedHierarchy : public Hierarchy {
 public:
  /// `parent_maps[i]` maps level-i values to level-(i+1) values, for
  /// i in [0, num_levels - 3]; the step into ALL is implicit. Fails if any
  /// referenced parent is missing from the next map's key set (when that
  /// map exists).
  static Result<std::shared_ptr<MappedHierarchy>> Make(
      std::vector<std::string> level_names,
      std::vector<std::unordered_map<Value, Value>> parent_maps);

  int num_levels() const override {
    return static_cast<int>(level_names_.size());
  }
  std::string_view level_name(int level) const override {
    return level_names_[level];
  }
  Value Generalize(Value value, int from_level, int to_level) const override;
  double FanOut(int from_level, int to_level) const override;
  double EstimatedCardinality(int level) const override;

  /// True iff γ is monotone between every adjacent pair of levels, i.e.
  /// the encoding satisfies Proposition 1.
  bool IsMonotone() const;

  /// Re-encodes a (possibly non-monotone) hierarchy so that γ becomes
  /// monotone: values at every level are renumbered 0..n-1 in the order of
  /// a depth-first traversal from the root. Returns the re-encoded
  /// hierarchy plus, for each level, the map old value -> new value, so
  /// callers can translate fact data. This implements the paper's remark
  /// that an ordering can always be imposed by encoding the extended
  /// domain.
  struct MonotoneEncoding {
    std::shared_ptr<MappedHierarchy> hierarchy;
    std::vector<std::unordered_map<Value, Value>> value_translation;
  };
  Result<MonotoneEncoding> BuildMonotone() const;

 private:
  MappedHierarchy(std::vector<std::string> level_names,
                  std::vector<std::unordered_map<Value, Value>> parent_maps);

  std::vector<std::string> level_names_;
  std::vector<std::unordered_map<Value, Value>> parent_maps_;
};

/// The paper's synthetic hierarchy (§7.1): `non_all_levels` domains below
/// ALL, each value covering `fanout` values of the next finer domain.
std::shared_ptr<Hierarchy> MakeUniformHierarchy(int non_all_levels,
                                                uint64_t fanout,
                                                double base_cardinality);

/// second -> hour -> day -> month -> year -> ALL on a simplified calendar
/// (fixed 30-day months), matching the paper's linearized Time dimension.
std::shared_ptr<Hierarchy> MakeTimeHierarchy(double base_cardinality);

/// ip -> /24 -> /16 -> /8 -> ALL.
std::shared_ptr<Hierarchy> MakeIpv4Hierarchy(double base_cardinality);

/// port -> range(256) -> ALL.
std::shared_ptr<Hierarchy> MakePortHierarchy();

}  // namespace csm

#endif  // CSM_MODEL_HIERARCHY_H_
