#include "model/hierarchy.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

void Hierarchy::GeneralizeColumn(const Value* in, size_t n,
                                 int from_level, int to_level,
                                 Value* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Generalize(in[i], from_level, to_level);
  }
}

Result<int> Hierarchy::LevelByName(std::string_view name) const {
  std::string lower = ToLower(name);
  for (int i = 0; i < num_levels(); ++i) {
    if (ToLower(level_name(i)) == lower) return i;
  }
  return Status::NotFound("no level named '" + std::string(name) + "'");
}

// ---------------------------------------------------------------------------
// SteppedHierarchy

Result<std::shared_ptr<SteppedHierarchy>> SteppedHierarchy::Make(
    std::vector<std::string> level_names, std::vector<uint64_t> step_fanouts,
    double base_cardinality) {
  if (level_names.size() < 2) {
    return Status::InvalidArgument(
        "hierarchy needs at least a base level and ALL");
  }
  if (step_fanouts.size() + 2 != level_names.size()) {
    return Status::InvalidArgument(
        "SteppedHierarchy: expected one fan-out per adjacent non-ALL level "
        "pair");
  }
  for (uint64_t f : step_fanouts) {
    if (f == 0) return Status::InvalidArgument("step fan-out must be > 0");
  }
  if (base_cardinality <= 0) {
    return Status::InvalidArgument("base cardinality must be positive");
  }
  return std::shared_ptr<SteppedHierarchy>(new SteppedHierarchy(
      std::move(level_names), std::move(step_fanouts), base_cardinality));
}

SteppedHierarchy::SteppedHierarchy(std::vector<std::string> level_names,
                                   std::vector<uint64_t> step_fanouts,
                                   double base_cardinality)
    : level_names_(std::move(level_names)),
      step_fanouts_(std::move(step_fanouts)),
      base_cardinality_(base_cardinality) {
  cum_divisor_.resize(step_fanouts_.size() + 1);
  cum_divisor_[0] = 1;
  for (size_t i = 0; i < step_fanouts_.size(); ++i) {
    cum_divisor_[i + 1] = cum_divisor_[i] * step_fanouts_[i];
  }
}

uint64_t SteppedHierarchy::Divisor(int from_level, int to_level) const {
  CSM_DCHECK(from_level <= to_level && to_level < all_level() + 1);
  CSM_DCHECK(to_level < all_level());
  return cum_divisor_[to_level] / cum_divisor_[from_level];
}

Value SteppedHierarchy::Generalize(Value value, int from_level,
                                   int to_level) const {
  CSM_DCHECK(0 <= from_level && from_level <= to_level &&
             to_level < num_levels());
  if (to_level == all_level()) return kAllValue;
  if (from_level == to_level) return value;
  return value / Divisor(from_level, to_level);
}

void SteppedHierarchy::GeneralizeColumn(const Value* in, size_t n,
                                        int from_level, int to_level,
                                        Value* out) const {
  CSM_DCHECK(0 <= from_level && from_level <= to_level &&
             to_level < num_levels());
  if (to_level == all_level()) {
    std::fill_n(out, n, kAllValue);
    return;
  }
  if (from_level == to_level) {
    if (out != in) std::copy_n(in, n, out);
    return;
  }
  const uint64_t div = Divisor(from_level, to_level);
  for (size_t i = 0; i < n; ++i) out[i] = in[i] / div;
}

double SteppedHierarchy::FanOut(int from_level, int to_level) const {
  CSM_DCHECK(from_level <= to_level);
  if (from_level == to_level) return 1.0;
  if (to_level == all_level()) {
    return EstimatedCardinality(from_level);
  }
  return static_cast<double>(Divisor(from_level, to_level));
}

double SteppedHierarchy::EstimatedCardinality(int level) const {
  if (level == all_level()) return 1.0;
  double card = base_cardinality_ / static_cast<double>(cum_divisor_[level]);
  return std::max(card, 1.0);
}

// ---------------------------------------------------------------------------
// MappedHierarchy

Result<std::shared_ptr<MappedHierarchy>> MappedHierarchy::Make(
    std::vector<std::string> level_names,
    std::vector<std::unordered_map<Value, Value>> parent_maps) {
  if (level_names.size() < 2) {
    return Status::InvalidArgument(
        "hierarchy needs at least a base level and ALL");
  }
  if (parent_maps.size() + 2 != level_names.size()) {
    return Status::InvalidArgument(
        "MappedHierarchy: expected one parent map per adjacent non-ALL "
        "level pair");
  }
  // Every parent referenced at level i must exist as a key of the level
  // i+1 map (consistency of the value hierarchy graph).
  for (size_t i = 0; i + 1 < parent_maps.size(); ++i) {
    for (const auto& [child, parent] : parent_maps[i]) {
      if (parent_maps[i + 1].find(parent) == parent_maps[i + 1].end()) {
        return Status::InvalidArgument(
            "MappedHierarchy: value " + std::to_string(parent) +
            " at level " + std::to_string(i + 1) +
            " has no parent mapping");
      }
    }
  }
  return std::shared_ptr<MappedHierarchy>(new MappedHierarchy(
      std::move(level_names), std::move(parent_maps)));
}

MappedHierarchy::MappedHierarchy(
    std::vector<std::string> level_names,
    std::vector<std::unordered_map<Value, Value>> parent_maps)
    : level_names_(std::move(level_names)),
      parent_maps_(std::move(parent_maps)) {}

Value MappedHierarchy::Generalize(Value value, int from_level,
                                  int to_level) const {
  CSM_DCHECK(0 <= from_level && from_level <= to_level &&
             to_level < num_levels());
  if (to_level == all_level()) return kAllValue;
  Value v = value;
  for (int lvl = from_level; lvl < to_level; ++lvl) {
    auto it = parent_maps_[lvl].find(v);
    CSM_CHECK(it != parent_maps_[lvl].end())
        << "MappedHierarchy: value " << v << " missing at level " << lvl;
    v = it->second;
  }
  return v;
}

double MappedHierarchy::FanOut(int from_level, int to_level) const {
  if (from_level == to_level) return 1.0;
  double from_card = EstimatedCardinality(from_level);
  double to_card = EstimatedCardinality(to_level);
  return std::max(from_card / std::max(to_card, 1.0), 1.0);
}

double MappedHierarchy::EstimatedCardinality(int level) const {
  if (level == all_level()) return 1.0;
  if (level < static_cast<int>(parent_maps_.size())) {
    return static_cast<double>(parent_maps_[level].size());
  }
  // Topmost non-ALL level: count distinct parents of the level below.
  if (parent_maps_.empty()) return 1.0;
  std::unordered_map<Value, bool> distinct;
  for (const auto& [child, parent] : parent_maps_.back()) {
    distinct[parent] = true;
  }
  return static_cast<double>(distinct.size());
}

bool MappedHierarchy::IsMonotone() const {
  for (const auto& level_map : parent_maps_) {
    // Sort children; parents must be non-decreasing along that order.
    std::map<Value, Value> sorted(level_map.begin(), level_map.end());
    Value prev_parent = 0;
    bool first = true;
    for (const auto& [child, parent] : sorted) {
      if (!first && parent < prev_parent) return false;
      prev_parent = parent;
      first = false;
    }
  }
  return true;
}

Result<MappedHierarchy::MonotoneEncoding> MappedHierarchy::BuildMonotone()
    const {
  const int steps = static_cast<int>(parent_maps_.size());
  // children_by_level[lvl][parent] = sorted children (old encoding).
  std::vector<std::map<Value, std::vector<Value>>> children(steps);
  for (int lvl = 0; lvl < steps; ++lvl) {
    for (const auto& [child, parent] : parent_maps_[lvl]) {
      children[lvl][parent].push_back(child);
    }
    for (auto& [parent, kids] : children[lvl]) {
      std::sort(kids.begin(), kids.end());
    }
  }

  std::vector<std::unordered_map<Value, Value>> translation(steps + 1);
  std::vector<std::unordered_map<Value, Value>> new_parent_maps(steps);

  // Roots: distinct values of the topmost non-ALL level, in old-value
  // order; assign new ids 0..n-1, then recurse depth-first so each
  // subtree's leaves are numbered contiguously — this is what makes γ
  // monotone in the new encoding.
  std::vector<Value> roots;
  if (steps == 0) {
    return MonotoneEncoding{
        std::shared_ptr<MappedHierarchy>(
            new MappedHierarchy(level_names_, {})),
        std::move(translation)};
  }
  for (const auto& [parent, kids] : children[steps - 1]) {
    roots.push_back(parent);
  }
  std::sort(roots.begin(), roots.end());

  std::vector<Value> next_id(steps + 1, 0);

  // Depth-first traversal: each subtree's descendants receive contiguous
  // new ids at every level, which is exactly what makes γ monotone in the
  // new encoding.
  struct Rec {
    const std::vector<std::map<Value, std::vector<Value>>>& children;
    std::vector<std::unordered_map<Value, Value>>& translation;
    std::vector<std::unordered_map<Value, Value>>& new_maps;
    std::vector<Value>& next_id;

    void Visit(int level, Value value) {
      translation[level][value] = next_id[level]++;
      if (level == 0) return;
      auto it = children[level - 1].find(value);
      if (it == children[level - 1].end()) return;
      for (Value kid : it->second) {
        Visit(level - 1, kid);
        new_maps[level - 1][translation[level - 1][kid]] =
            translation[level][value];
      }
    }
  };
  Rec rec{children, translation, new_parent_maps, next_id};
  for (Value root : roots) rec.Visit(steps, root);

  auto result = MappedHierarchy::Make(level_names_, new_parent_maps);
  CSM_RETURN_NOT_OK(result.status());
  return MonotoneEncoding{std::move(result).ValueOrDie(),
                          std::move(translation)};
}

// ---------------------------------------------------------------------------
// Factories

std::shared_ptr<Hierarchy> MakeUniformHierarchy(int non_all_levels,
                                                uint64_t fanout,
                                                double base_cardinality) {
  CSM_CHECK(non_all_levels >= 1);
  std::vector<std::string> names;
  for (int i = 0; i < non_all_levels; ++i) {
    names.push_back("L" + std::to_string(i));
  }
  names.push_back("ALL");
  std::vector<uint64_t> fanouts(
      static_cast<size_t>(non_all_levels > 0 ? non_all_levels - 1 : 0),
      fanout);
  auto result = SteppedHierarchy::Make(std::move(names), std::move(fanouts),
                                       base_cardinality);
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

std::shared_ptr<Hierarchy> MakeTimeHierarchy(double base_cardinality) {
  auto result = SteppedHierarchy::Make(
      {"second", "hour", "day", "month", "year", "ALL"},
      {3600, 24, 30, 12}, base_cardinality);
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

std::shared_ptr<Hierarchy> MakeIpv4Hierarchy(double base_cardinality) {
  auto result = SteppedHierarchy::Make({"ip", "net24", "net16", "net8",
                                        "ALL"},
                                       {256, 256, 256}, base_cardinality);
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

std::shared_ptr<Hierarchy> MakePortHierarchy() {
  auto result = SteppedHierarchy::Make({"port", "range", "ALL"}, {256},
                                       65536.0);
  CSM_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

}  // namespace csm
