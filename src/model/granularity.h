#ifndef CSM_MODEL_GRANULARITY_H_
#define CSM_MODEL_GRANULARITY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "model/schema.h"

namespace csm {

/// A granularity vector (X_1:D_1, ..., X_d:D_d) — one hierarchy level per
/// dimension of the schema (paper §2.2). Dimensions at their ALL level are
/// "rolled away"; the base granularity has every dimension at level 0.
class Granularity {
 public:
  Granularity() = default;
  explicit Granularity(std::vector<int> levels)
      : levels_(std::move(levels)) {}

  /// Granularity of the raw fact table: every dimension at its base level.
  static Granularity Base(const Schema& schema);

  /// Every dimension at ALL (a single region covering the whole dataset).
  static Granularity All(const Schema& schema);

  /// Parses "(t:hour, U:ip)"-style text: dimensions not mentioned default
  /// to ALL, matching the paper's shorthand (U:IP) == (t:ALL, U:IP, ...).
  static Result<Granularity> Parse(const Schema& schema,
                                   std::string_view text);

  int num_dims() const { return static_cast<int>(levels_.size()); }
  int level(int dim) const { return levels_[dim]; }
  void set_level(int dim, int level) { levels_[dim] = level; }
  const std::vector<int>& levels() const { return levels_; }

  bool operator==(const Granularity& other) const {
    return levels_ == other.levels_;
  }
  bool operator!=(const Granularity& other) const {
    return !(*this == other);
  }

  /// True iff this granularity is finer than or equal to `coarser` on every
  /// dimension — the ≤_G partial order. A table at this granularity can be
  /// rolled up to `coarser`.
  bool FinerOrEqual(const Granularity& coarser) const;

  /// True iff every dimension is at its ALL level.
  bool IsAll(const Schema& schema) const;

  /// True iff every dimension is at its base level.
  bool IsBase() const;

  /// "(t:hour, U:ip)" — dimensions at ALL are omitted; "(ALL)" if none
  /// remain.
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<int> levels_;
};

/// A region key: the dimension-value coordinates (v_1..v_d) of one region,
/// each value expressed in the domain given by the region's granularity.
/// Dimensions at ALL hold kAllValue.
using RegionKey = std::vector<Value>;

/// Rolls `key` (at granularity `from`) up to granularity `to`; requires
/// from.FinerOrEqual(to).
RegionKey GeneralizeKey(const Schema& schema, const RegionKey& key,
                        const Granularity& from, const Granularity& to);

/// In-place variant writing into `out` (resized to d).
void GeneralizeKeyInto(const Schema& schema, const Value* key,
                       const Granularity& from, const Granularity& to,
                       RegionKey* out);

/// Columnar variant for the batched scan pipeline: rolls `n` region keys,
/// laid out as one column per dimension (`in_cols[i]` / `out_cols[i]`
/// hold n values of dimension i), from `from` up to `to` with one
/// hierarchy sweep per dimension instead of one virtual γ call per key
/// component. in_cols[i] may equal out_cols[i] (in-place per column).
void GeneralizeColumns(const Schema& schema, const Granularity& from,
                       const Granularity& to, const Value* const* in_cols,
                       size_t n, Value* const* out_cols);

}  // namespace csm

#endif  // CSM_MODEL_GRANULARITY_H_
