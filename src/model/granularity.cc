#include "model/granularity.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

Granularity Granularity::Base(const Schema& schema) {
  return Granularity(std::vector<int>(schema.num_dims(), 0));
}

Granularity Granularity::All(const Schema& schema) {
  std::vector<int> levels(schema.num_dims());
  for (int i = 0; i < schema.num_dims(); ++i) {
    levels[i] = schema.dim(i).hierarchy->all_level();
  }
  return Granularity(std::move(levels));
}

Result<Granularity> Granularity::Parse(const Schema& schema,
                                       std::string_view text) {
  std::string_view body = StripWhitespace(text);
  if (body.size() >= 2 && body.front() == '(' && body.back() == ')') {
    body = body.substr(1, body.size() - 2);
  }
  Granularity g = All(schema);
  body = StripWhitespace(body);
  if (body.empty() || ToLower(body) == "all") return g;
  for (std::string_view piece : SplitTopLevel(body, ',')) {
    piece = StripWhitespace(piece);
    auto parts = Split(piece, ':');
    if (parts.size() != 2) {
      return Status::ParseError("bad granularity component '" +
                                std::string(piece) +
                                "'; expected dim:level");
    }
    CSM_ASSIGN_OR_RETURN(int dim,
                         schema.DimIndex(StripWhitespace(parts[0])));
    CSM_ASSIGN_OR_RETURN(
        int level,
        schema.dim(dim).hierarchy->LevelByName(StripWhitespace(parts[1])));
    g.set_level(dim, level);
  }
  return g;
}

bool Granularity::FinerOrEqual(const Granularity& coarser) const {
  CSM_DCHECK(num_dims() == coarser.num_dims());
  for (int i = 0; i < num_dims(); ++i) {
    if (levels_[i] > coarser.levels_[i]) return false;
  }
  return true;
}

bool Granularity::IsAll(const Schema& schema) const {
  for (int i = 0; i < num_dims(); ++i) {
    if (levels_[i] != schema.dim(i).hierarchy->all_level()) return false;
  }
  return true;
}

bool Granularity::IsBase() const {
  for (int level : levels_) {
    if (level != 0) return false;
  }
  return true;
}

std::string Granularity::ToString(const Schema& schema) const {
  std::string out = "(";
  bool first = true;
  for (int i = 0; i < num_dims(); ++i) {
    if (levels_[i] == schema.dim(i).hierarchy->all_level()) continue;
    if (!first) out += ", ";
    out += schema.dim(i).name;
    out += ":";
    out += schema.dim(i).hierarchy->level_name(levels_[i]);
    first = false;
  }
  if (first) out += "ALL";
  out += ")";
  return out;
}

RegionKey GeneralizeKey(const Schema& schema, const RegionKey& key,
                        const Granularity& from, const Granularity& to) {
  RegionKey out;
  GeneralizeKeyInto(schema, key.data(), from, to, &out);
  return out;
}

void GeneralizeKeyInto(const Schema& schema, const Value* key,
                       const Granularity& from, const Granularity& to,
                       RegionKey* out) {
  const int d = schema.num_dims();
  out->resize(d);
  for (int i = 0; i < d; ++i) {
    CSM_DCHECK(from.level(i) <= to.level(i));
    (*out)[i] = schema.dim(i).hierarchy->Generalize(key[i], from.level(i),
                                                    to.level(i));
  }
}

void GeneralizeColumns(const Schema& schema, const Granularity& from,
                       const Granularity& to, const Value* const* in_cols,
                       size_t n, Value* const* out_cols) {
  const int d = schema.num_dims();
  for (int i = 0; i < d; ++i) {
    CSM_DCHECK(from.level(i) <= to.level(i));
    schema.dim(i).hierarchy->GeneralizeColumn(in_cols[i], n, from.level(i),
                                              to.level(i), out_cols[i]);
  }
}

}  // namespace csm
