#include "model/sort_key.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

Result<SortKey> SortKey::Parse(const Schema& schema, std::string_view text) {
  std::string_view body = StripWhitespace(text);
  if (body.size() >= 2 && body.front() == '<' && body.back() == '>') {
    body = body.substr(1, body.size() - 2);
  }
  body = StripWhitespace(body);
  std::vector<SortKeyPart> parts;
  if (body.empty()) return SortKey(std::move(parts));
  for (std::string_view piece : SplitTopLevel(body, ',')) {
    piece = StripWhitespace(piece);
    auto halves = Split(piece, ':');
    if (halves.size() != 2) {
      return Status::ParseError("bad sort key component '" +
                                std::string(piece) +
                                "'; expected dim:level");
    }
    SortKeyPart part;
    CSM_ASSIGN_OR_RETURN(part.dim,
                         schema.DimIndex(StripWhitespace(halves[0])));
    CSM_ASSIGN_OR_RETURN(part.level,
                         schema.dim(part.dim).hierarchy->LevelByName(
                             StripWhitespace(halves[1])));
    parts.push_back(part);
  }
  return SortKey(std::move(parts));
}

std::string SortKey::ToString(const Schema& schema) const {
  std::string out = "<";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.dim(parts_[i].dim).name;
    out += ":";
    out += schema.dim(parts_[i].dim).hierarchy->level_name(parts_[i].level);
  }
  out += ">";
  return out;
}

int SortKey::CompareBaseKeys(const Schema& schema, const Value* a,
                             const Value* b) const {
  for (const SortKeyPart& p : parts_) {
    const Hierarchy& h = *schema.dim(p.dim).hierarchy;
    Value va = h.Generalize(a[p.dim], 0, p.level);
    Value vb = h.Generalize(b[p.dim], 0, p.level);
    if (va < vb) return -1;
    if (va > vb) return 1;
  }
  return 0;
}

bool SortKey::CompatibleWith(const Schema& schema,
                             const Granularity& gran) const {
  // A stream at granularity `gran` carries values at gran's levels. The
  // sort key component on dim i is meaningful iff gran.level(i) <= the
  // component level (the stream value can be generalized up to the sort
  // level) — otherwise the component refers to detail the stream no
  // longer has.
  for (const SortKeyPart& p : parts_) {
    const int all = schema.dim(p.dim).hierarchy->all_level();
    if (gran.level(p.dim) == all) continue;  // rolled away: fine
    if (gran.level(p.dim) > p.level) return false;
  }
  return true;
}

}  // namespace csm
