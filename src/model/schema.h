#ifndef CSM_MODEL_SCHEMA_H_
#define CSM_MODEL_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "model/hierarchy.h"

namespace csm {

/// One dimension attribute of a multidimensional dataset: a name plus its
/// linear domain generalization hierarchy.
struct DimensionDef {
  std::string name;
  std::shared_ptr<const Hierarchy> hierarchy;
};

/// Schema of a multidimensional dataset D (paper §2): an ordered dimension
/// vector X = (X_1..X_d) and optional measure attributes. Immutable after
/// construction; shared by fact tables, measure tables, and plans.
class Schema {
 public:
  static Result<std::shared_ptr<Schema>> Make(
      std::vector<DimensionDef> dims, std::vector<std::string> measures);

  int num_dims() const { return static_cast<int>(dims_.size()); }
  int num_measures() const { return static_cast<int>(measures_.size()); }

  const DimensionDef& dim(int i) const { return dims_[i]; }
  const std::string& measure_name(int i) const { return measures_[i]; }

  /// Index of the dimension named `name` (case-insensitive).
  Result<int> DimIndex(std::string_view name) const;

  /// Index of the raw measure attribute named `name` (case-insensitive).
  Result<int> MeasureIndex(std::string_view name) const;

 private:
  Schema(std::vector<DimensionDef> dims, std::vector<std::string> measures)
      : dims_(std::move(dims)), measures_(std::move(measures)) {}

  std::vector<DimensionDef> dims_;
  std::vector<std::string> measures_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// The network-log schema used throughout the paper (Table 1): Time (t),
/// Source (U), Target (V — the paper's "T", renamed because attribute
/// lookup is case-insensitive), TargetPort (P), plus a raw "bytes"
/// measure. `time_cardinality` / `ip_cardinality` size the footprint
/// estimates.
SchemaPtr MakeNetworkLogSchema(double time_cardinality = 1e6,
                               double ip_cardinality = 1e5);

/// The synthetic evaluation schema (§7.1): `num_dims` dimensions sharing a
/// `non_all_levels`-deep uniform hierarchy with the given fan-out.
SchemaPtr MakeSyntheticSchema(int num_dims = 4, int non_all_levels = 3,
                              uint64_t fanout = 10,
                              double base_cardinality = 1000.0);

/// Parses a schema spec as accepted by the CLI tools (csm_query, csm_fuzz)
/// and fuzz repro files: "net" for the Table-1 network-log schema, or
/// "synthetic[:d,l,f,c]" (dims, non-ALL levels, fan-out, base
/// cardinality; defaults 4,3,10,1000).
Result<SchemaPtr> ParseSchemaSpec(std::string_view spec);

/// The round-trippable spec text for a synthetic schema, e.g.
/// "synthetic:3,3,8,512".
std::string SyntheticSchemaSpec(int num_dims, int non_all_levels,
                                uint64_t fanout, uint64_t base_cardinality);

}  // namespace csm

#endif  // CSM_MODEL_SCHEMA_H_
