#include "obs/trace.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace csm {

namespace {

uint64_t ThisThreadHash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

TraceMetric* FindMetric(std::vector<TraceMetric>& metrics,
                        std::string_view name) {
  for (TraceMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace

SpanId Tracer::BeginSpan(std::string_view name, SpanId parent) {
  const uint64_t thread_hash = ThisThreadHash();
  std::lock_guard<std::mutex> lock(mu_);
  SpanData span;
  span.name = std::string(name);
  span.id = static_cast<SpanId>(spans_.size());
  span.parent = parent;
  span.start_seconds = timer_.Seconds();
  span.thread_hash = thread_hash;
  if (parent >= 0 && parent < static_cast<SpanId>(spans_.size())) {
    spans_[parent].children.push_back(span.id);
  } else {
    span.parent = kNoSpan;
  }
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  SpanData& span = spans_[id];
  if (!span.open) return;
  span.duration_seconds = timer_.Seconds() - span.start_seconds;
  span.open = false;
}

void Tracer::AddCounter(SpanId id, std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  if (TraceMetric* m = FindMetric(spans_[id].counters, name)) {
    m->value += delta;
  } else {
    spans_[id].counters.push_back({std::string(name), delta});
  }
}

void Tracer::SetGaugeMax(SpanId id, std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  if (TraceMetric* m = FindMetric(spans_[id].gauges, name)) {
    m->value = std::max(m->value, value);
  } else {
    spans_[id].gauges.push_back({std::string(name), value});
  }
}

void Tracer::SetAttr(SpanId id, std::string_view name, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  for (TraceAttr& a : spans_[id].attrs) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  spans_[id].attrs.push_back({std::string(name), std::move(value)});
}

size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

SpanData Tracer::GetSpan(SpanId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return SpanData();
  return spans_[id];
}

std::vector<SpanId> Tracer::RootSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanId> roots;
  for (const SpanData& span : spans_) {
    if (span.parent == kNoSpan) roots.push_back(span.id);
  }
  return roots;
}

std::vector<SpanData> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanData>(spans_.begin(), spans_.end());
}

double Tracer::SumCounter(SpanId root, std::string_view name) const {
  std::vector<SpanData> spans = Snapshot();
  if (root < 0 || root >= static_cast<SpanId>(spans.size())) return 0;
  double total = 0;
  std::vector<SpanId> stack = {root};
  while (!stack.empty()) {
    const SpanData& span = spans[stack.back()];
    stack.pop_back();
    for (const TraceMetric& m : span.counters) {
      if (m.name == name) total += m.value;
    }
    stack.insert(stack.end(), span.children.begin(), span.children.end());
  }
  return total;
}

double Tracer::MaxGauge(SpanId root, std::string_view name,
                        double fallback) const {
  std::vector<SpanData> spans = Snapshot();
  if (root < 0 || root >= static_cast<SpanId>(spans.size())) return fallback;
  double best = fallback;
  bool found = false;
  std::vector<SpanId> stack = {root};
  while (!stack.empty()) {
    const SpanData& span = spans[stack.back()];
    stack.pop_back();
    for (const TraceMetric& m : span.gauges) {
      if (m.name == name) {
        best = found ? std::max(best, m.value) : m.value;
        found = true;
      }
    }
    stack.insert(stack.end(), span.children.begin(), span.children.end());
  }
  return found ? best : fallback;
}

double Tracer::SumDurationExclusive(
    SpanId root, std::initializer_list<std::string_view> names) const {
  std::vector<SpanData> spans = Snapshot();
  if (root < 0 || root >= static_cast<SpanId>(spans.size())) return 0;
  auto named = [&names](const SpanData& span) {
    return std::find(names.begin(), names.end(), span.name) != names.end();
  };
  double total = 0;
  // (id, inside-counted-ancestor) pairs.
  std::vector<std::pair<SpanId, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    auto [id, covered] = stack.back();
    stack.pop_back();
    const SpanData& span = spans[id];
    bool counts = !covered && named(span);
    if (counts) total += span.duration_seconds;
    for (SpanId child : span.children) {
      stack.push_back({child, covered || counts});
    }
  }
  return total;
}

std::string Tracer::AttrOrEmpty(SpanId id, std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return "";
  for (const TraceAttr& a : spans_[id].attrs) {
    if (a.name == name) return a.value;
  }
  return "";
}

}  // namespace csm
