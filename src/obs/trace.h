#ifndef CSM_OBS_TRACE_H_
#define CSM_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/timer.h"

namespace csm {

/// Index of a span within its Tracer. Spans are never deleted, so ids stay
/// valid for the lifetime of the tracer.
using SpanId = int32_t;
inline constexpr SpanId kNoSpan = -1;

/// A named numeric annotation on a span. Counters accumulate deltas;
/// gauges keep the high-water maximum.
struct TraceMetric {
  std::string name;
  double value = 0;
};

/// A named string annotation on a span (sort keys, engine choices, ...).
struct TraceAttr {
  std::string name;
  std::string value;
};

/// One node of the span tree: a wall-clock interval attributed to the
/// thread that opened it, with counters/gauges/attrs attached.
struct SpanData {
  std::string name;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  double start_seconds = 0;     // relative to tracer construction
  double duration_seconds = 0;  // 0 until EndSpan
  bool open = true;
  uint64_t thread_hash = 0;  // hashed std::thread::id of the opener
  std::vector<TraceMetric> counters;
  std::vector<TraceMetric> gauges;
  std::vector<TraceAttr> attrs;
  std::vector<SpanId> children;
};

/// Thread-safe span/metric recorder for one (or more) engine runs.
///
/// Engines open a root span per Run and nest phase spans (sort, scan,
/// combine, ...) beneath it; worker threads open their own shard spans
/// under the shared root. All mutation goes through a single mutex — the
/// engines are careful to record at batch granularity, not per row, so
/// contention is negligible.
///
/// After the run, the tree can be queried (SumCounter / MaxGauge /
/// SumDurationExclusive) or exported (ToJson / ToTreeString). The legacy
/// ExecStats view is derived from exactly these queries.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span. `parent` == kNoSpan makes it a root of the forest.
  SpanId BeginSpan(std::string_view name, SpanId parent = kNoSpan);

  /// Closes a span, fixing its duration. Ending twice is a no-op.
  void EndSpan(SpanId id);

  /// Adds `delta` to the named monotonic counter on `id`.
  void AddCounter(SpanId id, std::string_view name, double delta);

  /// Raises the named high-water gauge on `id` to at least `value`.
  void SetGaugeMax(SpanId id, std::string_view name, double value);

  /// Sets (or overwrites) a string attribute on `id`.
  void SetAttr(SpanId id, std::string_view name, std::string value);

  // --- post-hoc queries (safe while other threads still record) ---

  size_t num_spans() const;

  /// Copy of one span's data; invalid ids return a default SpanData.
  SpanData GetSpan(SpanId id) const;

  /// Ids of all spans with no parent, in creation order.
  std::vector<SpanId> RootSpans() const;

  /// Sum of the named counter over `root`'s subtree (root included).
  double SumCounter(SpanId root, std::string_view name) const;

  /// Max of the named gauge over `root`'s subtree; `fallback` if absent.
  double MaxGauge(SpanId root, std::string_view name,
                  double fallback = 0) const;

  /// Sum of durations of spans in `root`'s subtree whose name is in
  /// `names`, skipping spans with an ancestor already counted — nested
  /// same-bucket spans contribute only their outermost interval.
  double SumDurationExclusive(SpanId root,
                              std::initializer_list<std::string_view> names)
      const;

  /// Value of a string attribute on `id`, or "" if absent.
  std::string AttrOrEmpty(SpanId id, std::string_view name) const;

  // --- exporters ---

  /// The span forest as a JSON array of nested span objects.
  std::string ToJson() const;

  /// Indented human-readable tree, one span per line with duration,
  /// counters, gauges and attrs.
  std::string ToTreeString() const;

 private:
  std::vector<SpanData> Snapshot() const;

  mutable std::mutex mu_;
  Timer timer_;                  // epoch for start_seconds
  std::deque<SpanData> spans_;   // deque: stable ids, no realloc moves
};

/// RAII span: opens on construction, closes on destruction (or End()).
/// A null tracer makes every operation a no-op, so call sites don't need
/// "is tracing on" branches.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name, SpanId parent = kNoSpan)
      : tracer_(tracer),
        id_(tracer ? tracer->BeginSpan(name, parent) : kNoSpan) {}
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void End() {
    if (tracer_ != nullptr && !ended_) {
      tracer_->EndSpan(id_);
      ended_ = true;
    }
  }

  /// Convenience pass-throughs (no-ops on a null tracer), so call sites
  /// annotating their own span don't need tracer null checks.
  void SetAttr(std::string_view name, std::string value) {
    if (tracer_ != nullptr) tracer_->SetAttr(id_, name, std::move(value));
  }
  void AddCounter(std::string_view name, double delta) {
    if (tracer_ != nullptr) tracer_->AddCounter(id_, name, delta);
  }

  SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_;
  bool ended_ = false;
};

}  // namespace csm

#endif  // CSM_OBS_TRACE_H_
