// JSON and human-readable exporters for the span tree. No external JSON
// dependency: output is assembled by hand and kept deliberately simple
// (objects, arrays, strings, numbers).

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace csm {

namespace {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendMetricMap(std::string* out, const char* key,
                     const std::vector<TraceMetric>& metrics) {
  if (metrics.empty()) return;
  *out += ",\"";
  *out += key;
  *out += "\":{";
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, metrics[i].name);
    out->push_back(':');
    AppendJsonNumber(out, metrics[i].value);
  }
  out->push_back('}');
}

void AppendSpanJson(std::string* out, const std::vector<SpanData>& spans,
                    SpanId id) {
  const SpanData& span = spans[id];
  *out += "{\"name\":";
  AppendJsonString(out, span.name);
  *out += ",\"start_seconds\":";
  AppendJsonNumber(out, span.start_seconds);
  *out += ",\"duration_seconds\":";
  AppendJsonNumber(out, span.duration_seconds);
  char buf[32];
  std::snprintf(buf, sizeof(buf), ",\"thread\":\"%016" PRIx64 "\"",
                span.thread_hash);
  *out += buf;
  AppendMetricMap(out, "counters", span.counters);
  AppendMetricMap(out, "gauges", span.gauges);
  if (!span.attrs.empty()) {
    *out += ",\"attrs\":{";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendJsonString(out, span.attrs[i].name);
      out->push_back(':');
      AppendJsonString(out, span.attrs[i].value);
    }
    out->push_back('}');
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendSpanJson(out, spans, span.children[i]);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

void AppendSpanTree(std::string* out, const std::vector<SpanData>& spans,
                    SpanId id, int depth) {
  const SpanData& span = spans[id];
  for (int i = 0; i < depth; ++i) *out += "  ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", span.duration_seconds);
  *out += span.name;
  *out += span.open ? " (open)" : " ";
  if (!span.open) *out += buf;
  for (const TraceMetric& m : span.counters) {
    std::snprintf(buf, sizeof(buf), " %s=%.0f", m.name.c_str(), m.value);
    *out += buf;
  }
  for (const TraceMetric& m : span.gauges) {
    std::snprintf(buf, sizeof(buf), " %s^%.0f", m.name.c_str(), m.value);
    *out += buf;
  }
  for (const TraceAttr& a : span.attrs) {
    *out += " ";
    *out += a.name;
    *out += "=";
    *out += a.value;
  }
  *out += "\n";
  for (SpanId child : span.children) {
    AppendSpanTree(out, spans, child, depth + 1);
  }
}

std::vector<SpanData> CopyAll(const Tracer& tracer) {
  std::vector<SpanData> spans;
  const size_t n = tracer.num_spans();
  spans.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    spans.push_back(tracer.GetSpan(static_cast<SpanId>(i)));
  }
  return spans;
}

}  // namespace

std::string Tracer::ToJson() const {
  std::vector<SpanData> spans = CopyAll(*this);
  std::string out = "[";
  bool first = true;
  for (const SpanData& span : spans) {
    if (span.parent != kNoSpan) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendSpanJson(&out, spans, span.id);
  }
  out.push_back(']');
  return out;
}

std::string Tracer::ToTreeString() const {
  std::vector<SpanData> spans = CopyAll(*this);
  std::string out;
  for (const SpanData& span : spans) {
    if (span.parent != kNoSpan) continue;
    AppendSpanTree(&out, spans, span.id, 0);
  }
  return out;
}

}  // namespace csm
