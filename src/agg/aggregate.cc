#include "agg/aggregate.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
}  // namespace

bool IsDistributive(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kNone:
      return true;
    default:
      return false;
  }
}

bool IsAlgebraic(AggKind kind) {
  switch (kind) {
    case AggKind::kCountDistinct:
      return false;  // holistic
    default:
      return true;
  }
}

Result<AggKind> AggKindFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "avg" || lower == "average") return AggKind::kAvg;
  if (lower == "var" || lower == "variance") return AggKind::kVar;
  if (lower == "stddev") return AggKind::kStddev;
  if (lower == "count_distinct" || lower == "countdistinct") {
    return AggKind::kCountDistinct;
  }
  if (lower == "none" || lower == "zero") return AggKind::kNone;
  return Status::NotFound("unknown aggregate function '" +
                          std::string(name) + "'");
}

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kVar:
      return "var";
    case AggKind::kStddev:
      return "stddev";
    case AggKind::kCountDistinct:
      return "count_distinct";
    case AggKind::kNone:
      return "none";
  }
  return "?";
}

void AggInit(AggKind kind, AggState* state) {
  state->a = 0;
  state->b = 0;
  state->c = 0;
  if (kind == AggKind::kCountDistinct) {
    if (state->distinct == nullptr) {
      state->distinct = std::make_unique<std::unordered_set<uint64_t>>();
    } else {
      state->distinct->clear();
    }
  } else {
    state->distinct.reset();
  }
  if (kind == AggKind::kMin) state->a = kNaN;
  if (kind == AggKind::kMax) state->a = kNaN;
}

void AggUpdate(AggKind kind, AggState* state, double value) {
  if (std::isnan(value) && kind != AggKind::kNone) {
    return;  // NULL input: skipped, as in SQL (count(*) feeds literal 1.0)
  }
  switch (kind) {
    case AggKind::kCount:
      state->a += 1;
      break;
    case AggKind::kSum:
      state->a += value;
      break;
    case AggKind::kMin:
      if (std::isnan(state->a) || value < state->a) state->a = value;
      break;
    case AggKind::kMax:
      if (std::isnan(state->a) || value > state->a) state->a = value;
      break;
    case AggKind::kAvg:
      state->a += value;
      state->b += 1;
      break;
    case AggKind::kVar:
    case AggKind::kStddev: {
      // Welford: a = n, b = mean, c = M2.
      state->a += 1;
      const double delta = value - state->b;
      state->b += delta / state->a;
      state->c += delta * (value - state->b);
      break;
    }
    case AggKind::kCountDistinct:
      state->distinct->insert(DoubleBits(value));
      break;
    case AggKind::kNone:
      break;
  }
}

void AggMerge(AggKind kind, AggState* state, const AggState& other) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kSum:
      state->a += other.a;
      break;
    case AggKind::kMin:
      if (!std::isnan(other.a) &&
          (std::isnan(state->a) || other.a < state->a)) {
        state->a = other.a;
      }
      break;
    case AggKind::kMax:
      if (!std::isnan(other.a) &&
          (std::isnan(state->a) || other.a > state->a)) {
        state->a = other.a;
      }
      break;
    case AggKind::kAvg:
      state->a += other.a;
      state->b += other.b;
      break;
    case AggKind::kVar:
    case AggKind::kStddev: {
      // Chan et al. parallel variance combination.
      const double n1 = state->a;
      const double n2 = other.a;
      if (n2 == 0) return;
      if (n1 == 0) {
        state->a = other.a;
        state->b = other.b;
        state->c = other.c;
        return;
      }
      const double delta = other.b - state->b;
      const double n = n1 + n2;
      state->b += delta * n2 / n;
      state->c += other.c + delta * delta * n1 * n2 / n;
      state->a = n;
      break;
    }
    case AggKind::kCountDistinct:
      CSM_DCHECK(state->distinct && other.distinct);
      if (other.distinct) {
        state->distinct->insert(other.distinct->begin(),
                                other.distinct->end());
      }
      break;
    case AggKind::kNone:
      break;
  }
}

double AggFinalize(AggKind kind, const AggState& state) {
  switch (kind) {
    case AggKind::kCount:
      return state.a;
    case AggKind::kSum:
      return state.a;
    case AggKind::kMin:
    case AggKind::kMax:
      return state.a;  // NaN when empty
    case AggKind::kAvg:
      return state.b > 0 ? state.a / state.b : kNaN;
    case AggKind::kVar:
      return state.a > 0 ? state.c / state.a : kNaN;
    case AggKind::kStddev:
      return state.a > 0 ? std::sqrt(state.c / state.a) : kNaN;
    case AggKind::kCountDistinct:
      return state.distinct ? static_cast<double>(state.distinct->size())
                            : 0.0;
    case AggKind::kNone:
      return 0.0;
  }
  return kNaN;
}

}  // namespace csm
