#ifndef CSM_AGG_AGGREGATE_H_
#define CSM_AGG_AGGREGATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/result.h"

namespace csm {

/// Aggregation functions available to AW-RA operators. All are
/// distributive or algebraic (paper §5.1 requires this for incremental
/// hash-table maintenance); COUNT DISTINCT is holistic and is supported by
/// keeping the distinct set in the aggregation state, which the footprint
/// estimator charges for.
enum class AggKind {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kVar,
  kStddev,
  kCountDistinct,
  kNone,  // the paper's g_{G,0}: enumerate regions, measure fixed at 0
};

/// An aggregation call agg(arg): `arg` is the index of the input's measure
/// column, or -1 for count(*)-style aggregation over rows. For single-
/// measure AW-RA tables arg is 0 ("M") or -1.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  int arg = -1;

  bool operator==(const AggSpec& other) const {
    return kind == other.kind && arg == other.arg;
  }
};

/// Distributive: state merges losslessly by combining partial aggregates
/// of disjoint inputs (SUM, COUNT, MIN, MAX).
bool IsDistributive(AggKind kind);

/// Algebraic: finalized from a constant number of distributive components
/// (AVG, VAR, STDDEV). Distributive functions are also algebraic.
bool IsAlgebraic(AggKind kind);

Result<AggKind> AggKindFromName(std::string_view name);
std::string_view AggKindName(AggKind kind);

/// Mutable aggregation state. The three scalar registers cover every
/// algebraic function (e.g. Welford's n/mean/M2 for variance); the
/// distinct set is allocated only for COUNT DISTINCT.
struct AggState {
  double a = 0;
  double b = 0;
  double c = 0;
  std::unique_ptr<std::unordered_set<uint64_t>> distinct;

  AggState() = default;
  AggState(AggState&&) = default;
  AggState& operator=(AggState&&) = default;
  AggState(const AggState&) = delete;
  AggState& operator=(const AggState&) = delete;

  /// Approximate heap footprint in bytes, for memory accounting.
  size_t FootprintBytes() const {
    size_t bytes = sizeof(AggState);
    if (distinct) bytes += distinct->size() * 16 + 64;
    return bytes;
  }
};

/// Resets `state` to the empty aggregate for `kind`.
void AggInit(AggKind kind, AggState* state);

/// Folds one input value into the state. NaN inputs are skipped (NULL
/// semantics: aggregates ignore NULLs, as in SQL).
void AggUpdate(AggKind kind, AggState* state, double value);

/// Merges `other` (a partial aggregate over disjoint input) into `state`.
/// Valid for every supported kind, including the algebraic ones.
void AggMerge(AggKind kind, AggState* state, const AggState& other);

/// Produces the final measure value. Empty aggregates finalize to 0 for
/// COUNT / COUNT DISTINCT / NONE, to 0 for SUM, and to NaN (NULL) for
/// MIN / MAX / AVG / VAR / STDDEV — mirroring SQL over an empty left-outer
/// match (paper Tables 3 and 4).
double AggFinalize(AggKind kind, const AggState& state);

}  // namespace csm

#endif  // CSM_AGG_AGGREGATE_H_
