#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"
#include "workflow/workflow.h"

namespace csm {

namespace {

/// Word-oriented cursor over one DSL statement.
class StatementCursor {
 public:
  explicit StatementCursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Reads an identifier-like word; empty if none.
  std::string_view ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Consumes `word` case-insensitively; false (no move) otherwise.
  bool ConsumeWord(std::string_view word) {
    size_t saved = pos_;
    std::string_view got = ReadWord();
    if (ToLower(got) == ToLower(word)) return true;
    pos_ = saved;
    return false;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads a balanced "(...)" group including the parentheses.
  Result<std::string_view> ReadParenGroup() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Status::ParseError("expected '('");
    }
    size_t start = pos_;
    int depth = 0;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '(') ++depth;
      if (text_[pos_] == ')') {
        --depth;
        if (depth == 0) {
          ++pos_;
          return text_.substr(start, pos_ - start);
        }
      }
      ++pos_;
    }
    return Status::ParseError("unbalanced '('");
  }

  /// Everything from the cursor to the next top-level occurrence of the
  /// keyword (word-bounded, outside parens/brackets), or to the end.
  /// Advances past the keyword if found.
  std::string_view ReadUntilKeyword(std::string_view keyword, bool* found) {
    SkipSpace();
    const size_t start = pos_;
    int depth = 0;
    const std::string kw = ToLower(keyword);
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') --depth;
      if (depth == 0 &&
          (std::isalpha(static_cast<unsigned char>(c)) || c == '_') &&
          (pos_ == 0 || (!std::isalnum(static_cast<unsigned char>(
                             text_[pos_ - 1])) &&
                         text_[pos_ - 1] != '_' &&
                         text_[pos_ - 1] != '.'))) {
        size_t word_end = pos_;
        while (word_end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[word_end])) ||
                text_[word_end] == '_')) {
          ++word_end;
        }
        if (ToLower(text_.substr(pos_, word_end - pos_)) == kw) {
          std::string_view result = text_.substr(start, pos_ - start);
          pos_ = word_end;
          *found = true;
          return StripWhitespace(result);
        }
        pos_ = word_end;
        continue;
      }
      ++pos_;
    }
    *found = false;
    return StripWhitespace(text_.substr(start));
  }

  std::string_view Rest() {
    SkipSpace();
    return StripWhitespace(text_.substr(pos_));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Parses "fn(arg)" where arg is "*", "M", or a raw measure name.
Status ParseAggCall(StatementCursor* cur, const Schema& schema,
                    bool from_fact, AggSpec* out) {
  std::string_view fn = cur->ReadWord();
  if (fn.empty()) return Status::ParseError("expected aggregate function");
  CSM_ASSIGN_OR_RETURN(out->kind, AggKindFromName(fn));
  CSM_ASSIGN_OR_RETURN(std::string_view group, cur->ReadParenGroup());
  std::string_view arg =
      StripWhitespace(group.substr(1, group.size() - 2));
  if (arg.empty() || arg == "*") {
    out->arg = -1;
    return Status::OK();
  }
  if (ToLower(arg) == "m") {
    if (from_fact) {
      // For fact tables "M" means the first raw measure, if any.
      if (schema.num_measures() == 0) {
        return Status::ParseError(
            "aggregate argument 'M' but the schema has no measures");
      }
      out->arg = 0;
      return Status::OK();
    }
    out->arg = 0;
    return Status::OK();
  }
  if (!from_fact) {
    return Status::ParseError("measure tables have a single measure 'M'; "
                              "got aggregate argument '" +
                              std::string(arg) + "'");
  }
  CSM_ASSIGN_OR_RETURN(out->arg, schema.MeasureIndex(arg));
  return Status::OK();
}

/// Parses "self" | "parentchild" | "childparent" |
/// "sibling(dim in [lo, hi], ...)".
Status ParseMatchSpec(StatementCursor* cur, const Schema& schema,
                      MatchCond* out) {
  std::string_view word = cur->ReadWord();
  std::string lower = ToLower(word);
  if (lower == "self") {
    *out = MatchCond::Self();
    return Status::OK();
  }
  if (lower == "parentchild" || lower == "parent_child") {
    *out = MatchCond::ParentChild();
    return Status::OK();
  }
  if (lower == "childparent" || lower == "child_parent") {
    *out = MatchCond::ChildParent();
    return Status::OK();
  }
  if (lower != "sibling") {
    return Status::ParseError("unknown match condition '" +
                              std::string(word) + "'");
  }
  CSM_ASSIGN_OR_RETURN(std::string_view group, cur->ReadParenGroup());
  std::string_view body =
      StripWhitespace(group.substr(1, group.size() - 2));
  std::vector<SiblingWindow> windows;
  for (std::string_view piece : SplitTopLevel(body, ',')) {
    StatementCursor wc{StripWhitespace(piece)};
    std::string_view dim_name = wc.ReadWord();
    SiblingWindow w;
    CSM_ASSIGN_OR_RETURN(w.dim, schema.DimIndex(dim_name));
    if (!wc.ConsumeWord("in")) {
      return Status::ParseError("expected 'in' in sibling window");
    }
    if (!wc.ConsumeChar('[')) {
      return Status::ParseError("expected '[' in sibling window");
    }
    std::string_view rest = wc.Rest();
    size_t close = rest.find(']');
    if (close == std::string_view::npos) {
      return Status::ParseError("expected ']' in sibling window");
    }
    auto bounds = Split(rest.substr(0, close), ',');
    if (bounds.size() != 2) {
      return Status::ParseError("sibling window needs [lo, hi]");
    }
    if (!ParseInt64(bounds[0], &w.lo) || !ParseInt64(bounds[1], &w.hi)) {
      return Status::ParseError("bad sibling window bounds");
    }
    windows.push_back(w);
  }
  *out = MatchCond::Sibling(std::move(windows));
  return Status::OK();
}

Status ParseStatement(std::string_view statement, Workflow* workflow) {
  const Schema& schema = *workflow->schema();
  StatementCursor cur(statement);
  if (!cur.ConsumeWord("measure")) {
    return Status::ParseError("statement must start with 'measure': '" +
                              std::string(statement) + "'");
  }
  MeasureDef def;
  def.name = std::string(cur.ReadWord());
  if (def.name.empty()) return Status::ParseError("expected measure name");
  if (!cur.ConsumeWord("at")) {
    return Status::ParseError("expected 'at' after measure name");
  }
  CSM_ASSIGN_OR_RETURN(std::string_view gran_text, cur.ReadParenGroup());
  CSM_ASSIGN_OR_RETURN(def.gran, Granularity::Parse(schema, gran_text));
  if (!cur.ConsumeChar('=')) {
    return Status::ParseError("expected '=' after granularity");
  }

  if (cur.ConsumeWord("agg")) {
    AggSpec agg;
    // "fn(arg) from NAME": the argument's meaning depends on whether the
    // source is FACT, so look ahead for the source name first.
    StatementCursor probe = cur;
    probe.ReadWord();  // function name
    CSM_ASSIGN_OR_RETURN(std::string_view skipped_call,
                         probe.ReadParenGroup());
    (void)skipped_call;
    if (!probe.ConsumeWord("from")) {
      return Status::ParseError("expected 'from' after aggregate call");
    }
    std::string_view source = probe.ReadWord();
    const bool from_fact = ToLower(source) == "fact";
    CSM_RETURN_NOT_OK(ParseAggCall(&cur, schema, from_fact, &agg));
    if (!cur.ConsumeWord("from")) {
      return Status::ParseError("expected 'from' after aggregate call");
    }
    cur.ReadWord();  // the source name, already captured
    def.agg = agg;
    if (from_fact) {
      def.op = MeasureOp::kBaseAgg;
    } else {
      def.op = MeasureOp::kRollup;
      def.input = std::string(source);
    }
  } else if (cur.ConsumeWord("match")) {
    def.op = MeasureOp::kMatch;
    def.input = std::string(cur.ReadWord());
    if (def.input.empty()) {
      return Status::ParseError("expected source measure after 'match'");
    }
    if (!cur.ConsumeWord("using")) {
      return Status::ParseError("expected 'using' in match statement");
    }
    CSM_RETURN_NOT_OK(ParseMatchSpec(&cur, schema, &def.match));
    if (!cur.ConsumeWord("agg")) {
      return Status::ParseError("expected 'agg' in match statement");
    }
    CSM_RETURN_NOT_OK(ParseAggCall(&cur, schema, /*from_fact=*/false,
                                   &def.agg));
  } else if (cur.ConsumeWord("combine")) {
    def.op = MeasureOp::kCombine;
    CSM_ASSIGN_OR_RETURN(std::string_view group, cur.ReadParenGroup());
    std::string_view body =
        StripWhitespace(group.substr(1, group.size() - 2));
    for (std::string_view piece : SplitTopLevel(body, ',')) {
      def.combine_inputs.emplace_back(StripWhitespace(piece));
    }
    if (!cur.ConsumeWord("as")) {
      return Status::ParseError("expected 'as' in combine statement");
    }
    bool found_hidden = false;
    std::string_view expr_text = cur.ReadUntilKeyword("hidden",
                                                      &found_hidden);
    CSM_ASSIGN_OR_RETURN(def.fc, ScalarExpr::Parse(expr_text));
    def.is_output = !found_hidden;
    if (found_hidden && !cur.AtEnd()) {
      return Status::ParseError("unexpected input after 'hidden'");
    }
    return workflow->AddMeasure(std::move(def));
  } else {
    return Status::ParseError(
        "expected 'agg', 'match' or 'combine' after '='");
  }

  // Optional "where <expr>" then optional "hidden".
  if (cur.ConsumeWord("where")) {
    bool found_hidden = false;
    std::string_view expr_text = cur.ReadUntilKeyword("hidden",
                                                      &found_hidden);
    CSM_ASSIGN_OR_RETURN(def.where, ScalarExpr::Parse(expr_text));
    def.is_output = !found_hidden;
    if (found_hidden && !cur.AtEnd()) {
      return Status::ParseError("unexpected input after 'hidden'");
    }
  } else if (cur.ConsumeWord("hidden")) {
    def.is_output = false;
    if (!cur.AtEnd()) {
      return Status::ParseError("unexpected input after 'hidden'");
    }
  } else if (!cur.AtEnd()) {
    return Status::ParseError("unexpected trailing input: '" +
                              std::string(cur.Rest()) + "'");
  }
  return workflow->AddMeasure(std::move(def));
}

}  // namespace

Result<Workflow> Workflow::Parse(SchemaPtr schema, std::string_view dsl) {
  Workflow workflow(std::move(schema));
  // Strip comments (# and // to end of line), then split on ';'.
  std::string cleaned;
  cleaned.reserve(dsl.size());
  for (std::string_view line : Split(dsl, '\n')) {
    size_t cut = line.size();
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) cut = std::min(cut, hash);
    size_t slashes = line.find("//");
    if (slashes != std::string_view::npos) cut = std::min(cut, slashes);
    cleaned.append(line.substr(0, cut));
    cleaned.push_back('\n');
  }
  int statement_no = 0;
  for (std::string_view statement : SplitTopLevel(cleaned, ';')) {
    statement = StripWhitespace(statement);
    ++statement_no;
    if (statement.empty()) continue;
    CSM_RETURN_NOT_OK(ParseStatement(statement, &workflow)
                          .WithContext("statement " +
                                       std::to_string(statement_no)));
  }
  if (workflow.measures().empty()) {
    return Status::InvalidArgument("workflow defines no measures");
  }
  return workflow;
}

}  // namespace csm
