#include "workflow/fuse.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"

namespace csm {

namespace {

uint64_t HashStr(uint64_t h, std::string_view s) {
  h = HashCombine(h, s.size());
  for (char c : s) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

/// Canonical text of a filter / combine expression: measure references
/// replaced by positional placeholders, everything lower-cased. Two
/// expressions with the same canonical text compute the same function of
/// the same inputs regardless of what the inputs are named.
std::string CanonicalExpr(
    const ScalarExprPtr& expr,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  if (expr == nullptr) return "";
  return ToLower(RenameVars(expr, renames)->ToString());
}

/// The canonical aggregate argument: every non-fact operator reads the
/// single "M" column of its input table, so ToAlgebra clamps arg > 0 to 0
/// — fingerprints hash the clamped form so spelling differences ("agg
/// sum(M)" parsed with arg 0 vs a programmatic arg 1) cannot split
/// structurally identical measures.
int CanonicalAggArg(const MeasureDef& def) {
  if (def.op == MeasureOp::kBaseAgg) return def.agg.arg;
  return def.agg.arg > 0 ? 0 : def.agg.arg;
}

uint64_t FingerprintDef(const MeasureDef& def,
                        const std::vector<uint64_t>& input_fps) {
  uint64_t h = Mix64(0xc5a4f05eull ^ static_cast<uint64_t>(def.op));
  for (int level : def.gran.levels()) {
    h = HashCombine(h, static_cast<uint64_t>(level));
  }
  h = HashCombine(h, static_cast<uint64_t>(def.agg.kind));
  h = HashCombine(h, static_cast<uint64_t>(CanonicalAggArg(def) + 1));
  h = HashCombine(h, static_cast<uint64_t>(def.match.type));
  for (const SiblingWindow& w : def.match.windows) {
    h = HashCombine(h, static_cast<uint64_t>(w.dim));
    h = HashCombine(h, static_cast<uint64_t>(w.lo));
    h = HashCombine(h, static_cast<uint64_t>(w.hi));
  }

  // Expression canonicalization: references to the input measure(s) —
  // by name or via the interchangeable "M" alias — become positional
  // placeholders.
  std::vector<std::pair<std::string, std::string>> renames;
  if (def.op == MeasureOp::kRollup || def.op == MeasureOp::kMatch) {
    renames.emplace_back(def.input, "$0");
    renames.emplace_back("M", "$0");
  } else if (def.op == MeasureOp::kCombine) {
    for (size_t i = 0; i < def.combine_inputs.size(); ++i) {
      renames.emplace_back(def.combine_inputs[i],
                           "$" + std::to_string(i));
    }
  }
  h = HashStr(h, CanonicalExpr(def.where, renames));
  h = HashStr(h, CanonicalExpr(def.fc, renames));

  for (uint64_t fp : input_fps) h = HashCombine(h, fp);
  return h;
}

std::vector<uint64_t> InputFingerprints(
    const MeasureDef& def, const std::map<std::string, uint64_t>& by_name) {
  std::vector<uint64_t> fps;
  for (const std::string& input : def.Inputs()) {
    auto it = by_name.find(ToLower(input));
    // Inputs always precede their consumers (Workflow validates at
    // AddMeasure time), so a miss cannot happen on a valid workflow.
    fps.push_back(it == by_name.end() ? 0 : it->second);
  }
  return fps;
}

}  // namespace

std::map<std::string, uint64_t> WorkflowFingerprints(
    const Workflow& workflow) {
  std::map<std::string, uint64_t> by_name;
  for (const MeasureDef& def : workflow.measures()) {
    by_name[ToLower(def.name)] =
        FingerprintDef(def, InputFingerprints(def, by_name));
  }
  return by_name;
}

Result<uint64_t> MeasureFingerprint(const Workflow& workflow,
                                    std::string_view measure) {
  CSM_ASSIGN_OR_RETURN(const MeasureDef* def, workflow.Find(measure));
  auto by_name = WorkflowFingerprints(workflow);
  return by_name.at(ToLower(def->name));
}

uint64_t QueryFingerprint(const Workflow& workflow, bool include_hidden) {
  const auto by_name = WorkflowFingerprints(workflow);
  // (name, fingerprint) of every emitted measure, in name-sorted order so
  // the hash is independent of definition order.
  std::vector<std::pair<std::string, uint64_t>> emitted;
  for (const MeasureDef& def : workflow.measures()) {
    if (!def.is_output && !include_hidden) continue;
    emitted.emplace_back(ToLower(def.name), by_name.at(ToLower(def.name)));
  }
  std::sort(emitted.begin(), emitted.end());
  uint64_t h = Mix64(0x9e5e5510ull + emitted.size());
  for (const auto& [name, fp] : emitted) {
    h = HashStr(h, name);
    h = HashCombine(h, fp);
  }
  return h;
}

Result<FusedPlan> FuseWorkflows(
    const std::vector<const Workflow*>& queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("FuseWorkflows: no queries");
  }
  const SchemaPtr& schema = queries[0]->schema();
  for (size_t i = 1; i < queries.size(); ++i) {
    if (queries[i]->schema() != schema) {
      return Status::InvalidArgument(
          "FuseWorkflows: query " + std::to_string(i) +
          " is over a different schema object");
    }
  }

  FusedPlan plan{Workflow(schema), {}, 0, 0};
  std::map<uint64_t, size_t> fused_by_fp;  // fingerprint -> fused def idx
  std::vector<MeasureDef> fused_defs;      // built first so is_output can
                                           // be widened on dedup hits

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Workflow& query = *queries[qi];
    FusedQuery mapping;
    std::map<std::string, uint64_t> fp_by_name;   // this query, by name
    std::map<std::string, std::string> fused_name;  // orig -> fused

    for (const MeasureDef& def : query.measures()) {
      ++plan.total_measures;
      const uint64_t fp =
          FingerprintDef(def, InputFingerprints(def, fp_by_name));
      fp_by_name[ToLower(def.name)] = fp;

      std::string name;
      auto hit = fused_by_fp.find(fp);
      if (hit != fused_by_fp.end()) {
        // Structurally identical measure already fused: reuse it, and
        // widen its visibility if this query emits it.
        ++plan.shared_measures;
        MeasureDef& fused = fused_defs[hit->second];
        fused.is_output |= def.is_output;
        name = fused.name;
      } else {
        MeasureDef fused = def;
        fused.name = "q" + std::to_string(qi) + "_" + def.name;
        // Re-point input references (and the variable references inside
        // filter / combine expressions) at the fused measure names.
        std::vector<std::pair<std::string, std::string>> renames;
        if (!fused.input.empty()) {
          auto it = fused_name.find(ToLower(fused.input));
          if (it == fused_name.end()) {
            return Status::Internal("FuseWorkflows: dangling input '" +
                                    fused.input + "'");
          }
          renames.emplace_back(fused.input, it->second);
          fused.input = it->second;
        }
        for (std::string& input : fused.combine_inputs) {
          auto it = fused_name.find(ToLower(input));
          if (it == fused_name.end()) {
            return Status::Internal("FuseWorkflows: dangling input '" +
                                    input + "'");
          }
          renames.emplace_back(input, it->second);
          input = it->second;
        }
        fused.where = RenameVars(fused.where, renames);
        fused.fc = RenameVars(fused.fc, renames);
        fused_by_fp.emplace(fp, fused_defs.size());
        name = fused.name;
        fused_defs.push_back(std::move(fused));
      }

      fused_name[ToLower(def.name)] = name;
      mapping.measures.emplace_back(def.name, name);
      if (def.is_output) mapping.outputs.emplace_back(def.name, name);
    }
    plan.queries.push_back(std::move(mapping));
  }

  for (MeasureDef& def : fused_defs) {
    CSM_RETURN_NOT_OK(plan.combined.AddMeasure(std::move(def))
                          .WithContext("FuseWorkflows"));
  }
  return plan;
}

}  // namespace csm
