#ifndef CSM_WORKFLOW_FUSE_H_
#define CSM_WORKFLOW_FUSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/workflow.h"

namespace csm {

/// Workflow fusion: canonicalize a batch of workflows over one schema,
/// deduplicate structurally identical measures across them, and merge the
/// remainder into one combined workflow DAG whose single sorted scan
/// serves every query — the paper's shared-scan argument (§5) lifted from
/// "all measures of one workflow" to "all measures of all concurrent
/// workflows". QuerySession (src/exec/session.h) executes the fused graph
/// once and demultiplexes the outputs.

/// Stable structural fingerprint of one measure: a 64-bit hash over the
/// measure's operator, granularity, aggregate, match condition, canonical
/// filter/combine expressions, and — recursively — the fingerprints of
/// its inputs. Names do not participate (input references hash as their
/// own fingerprints; expression references to the input measures are
/// replaced by positional placeholders), so the fingerprint is invariant
/// under measure renaming and under reordering of unrelated measures.
/// Two measures with equal fingerprints compute identical tables over any
/// fact table. `is_output` is not hashed: hidden-ness affects emission,
/// not values.
///
/// Fingerprints for every measure of `workflow`, keyed by lower-cased
/// measure name.
std::map<std::string, uint64_t> WorkflowFingerprints(
    const Workflow& workflow);

/// Fingerprint of one measure (convenience over WorkflowFingerprints).
Result<uint64_t> MeasureFingerprint(const Workflow& workflow,
                                    std::string_view measure);

/// Identity of a whole query for result caching: hashes the (name,
/// fingerprint) pairs of every measure the query would emit —
/// output measures, or all measures when `include_hidden` — in
/// name-sorted order. Names are included because cached results are keyed
/// tables: the same structure under different output names is a
/// different result.
uint64_t QueryFingerprint(const Workflow& workflow, bool include_hidden);

/// Where one input query's measures ended up in the fused workflow.
struct FusedQuery {
  /// Original measure name -> fused (namespaced or deduplicated) name,
  /// for every measure of the query, in the query's definition order.
  std::vector<std::pair<std::string, std::string>> measures;

  /// Subset of `measures` the query emits (is_output, in order).
  std::vector<std::pair<std::string, std::string>> outputs;
};

/// A fused multi-query plan.
struct FusedPlan {
  Workflow combined;              // the merged DAG, one measure per
                                  // distinct fingerprint
  std::vector<FusedQuery> queries;  // one mapping per input query
  size_t total_measures = 0;      // sum of input measure counts
  size_t shared_measures = 0;     // measures deduplicated away
};

/// Fuses `queries` (all over the same schema object) into one combined
/// workflow. Measures are namespaced "q<i>_<name>" after the first query
/// that defines their structure; a measure whose fingerprint was already
/// fused maps to the existing fused measure instead of being added again.
/// A fused measure is an output iff any query outputs it. Input
/// references — including variable references inside filter and combine
/// expressions — are rewritten to the fused names.
Result<FusedPlan> FuseWorkflows(const std::vector<const Workflow*>& queries);

}  // namespace csm

#endif  // CSM_WORKFLOW_FUSE_H_
