#include "workflow/workflow.h"

#include <map>
#include <unordered_set>

#include "algebra/evaluator.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

std::vector<std::string> MeasureDef::Inputs() const {
  switch (op) {
    case MeasureOp::kBaseAgg:
      return {};
    case MeasureOp::kRollup:
    case MeasureOp::kMatch:
      return {input};
    case MeasureOp::kCombine:
      return combine_inputs;
  }
  return {};
}

Result<const MeasureDef*> Workflow::Find(std::string_view name) const {
  std::string lower = ToLower(name);
  for (const MeasureDef& def : measures_) {
    if (ToLower(def.name) == lower) return &def;
  }
  return Status::NotFound("no measure named '" + std::string(name) + "'");
}

std::vector<const MeasureDef*> Workflow::TopoOrder() const {
  std::vector<const MeasureDef*> order;
  order.reserve(measures_.size());
  for (const MeasureDef& def : measures_) order.push_back(&def);
  return order;
}

Status Workflow::ValidateMeasure(const MeasureDef& def) const {
  const Schema& schema = *schema_;
  if (def.name.empty()) {
    return Status::InvalidArgument("measure needs a name");
  }
  // Names must not collide with measures, dimensions, raw measures, or the
  // reserved words that appear in predicate variable layouts.
  std::string lower = ToLower(def.name);
  if (lower == "m" || lower == "fact") {
    return Status::InvalidArgument("measure name '" + def.name +
                                   "' is reserved");
  }
  if (schema.DimIndex(def.name).ok() || schema.MeasureIndex(def.name).ok()) {
    return Status::InvalidArgument(
        "measure name '" + def.name + "' collides with a schema attribute");
  }
  if (Find(def.name).ok()) {
    return Status::AlreadyExists("duplicate measure '" + def.name + "'");
  }
  if (def.gran.num_dims() != schema.num_dims()) {
    return Status::InvalidArgument("measure '" + def.name +
                                   "': granularity arity mismatch");
  }

  auto check_where_fact = [&]() -> Status {
    if (def.where == nullptr) return Status::OK();
    auto bound = BoundExpr::Bind(*def.where, FactRowVars(schema));
    return bound.status().WithContext("measure '" + def.name + "' where");
  };
  auto check_where_measure = [&](const std::string& input) -> Status {
    if (def.where == nullptr) return Status::OK();
    auto bound =
        BoundExpr::Bind(*def.where, MeasureRowVars(schema, input));
    return bound.status().WithContext("measure '" + def.name + "' where");
  };

  switch (def.op) {
    case MeasureOp::kBaseAgg: {
      if (def.agg.arg >= schema.num_measures()) {
        return Status::InvalidArgument(
            "measure '" + def.name + "': aggregate argument out of range");
      }
      CSM_RETURN_NOT_OK(check_where_fact());
      break;
    }
    case MeasureOp::kRollup: {
      CSM_ASSIGN_OR_RETURN(const MeasureDef* in, Find(def.input));
      if (!in->gran.FinerOrEqual(def.gran)) {
        return Status::InvalidArgument(
            "measure '" + def.name + "': roll-up input " + in->name +
            " at " + in->gran.ToString(schema) +
            " is not finer than target " + def.gran.ToString(schema));
      }
      CSM_RETURN_NOT_OK(check_where_measure(in->name));
      break;
    }
    case MeasureOp::kMatch: {
      CSM_ASSIGN_OR_RETURN(const MeasureDef* in, Find(def.input));
      switch (def.match.type) {
        case MatchType::kSelf:
        case MatchType::kSibling:
          if (in->gran != def.gran) {
            return Status::InvalidArgument(
                "measure '" + def.name + "': " +
                std::string(MatchTypeName(def.match.type)) +
                " match requires equal granularities");
          }
          break;
        case MatchType::kParentChild:
          if (!def.gran.FinerOrEqual(in->gran)) {
            return Status::InvalidArgument(
                "measure '" + def.name +
                "': parent/child match requires the input to be coarser");
          }
          break;
        case MatchType::kChildParent:
          if (!in->gran.FinerOrEqual(def.gran)) {
            return Status::InvalidArgument(
                "measure '" + def.name +
                "': child/parent match requires the input to be finer");
          }
          break;
      }
      if (def.match.type == MatchType::kSibling) {
        for (const SiblingWindow& w : def.match.windows) {
          if (w.dim < 0 || w.dim >= schema.num_dims()) {
            return Status::InvalidArgument("measure '" + def.name +
                                           "': window dim out of range");
          }
          if (def.gran.level(w.dim) ==
              schema.dim(w.dim).hierarchy->all_level()) {
            return Status::InvalidArgument(
                "measure '" + def.name +
                "': sibling window on a dimension at ALL");
          }
          if (w.lo > w.hi) {
            return Status::InvalidArgument("measure '" + def.name +
                                           "': window lo > hi");
          }
        }
      }
      CSM_RETURN_NOT_OK(check_where_measure(in->name));
      break;
    }
    case MeasureOp::kCombine: {
      if (def.combine_inputs.empty()) {
        return Status::InvalidArgument("measure '" + def.name +
                                       "': combine needs inputs");
      }
      if (def.fc == nullptr) {
        return Status::InvalidArgument("measure '" + def.name +
                                       "': combine needs an expression");
      }
      std::vector<std::string> names;
      for (const std::string& input : def.combine_inputs) {
        CSM_ASSIGN_OR_RETURN(const MeasureDef* in, Find(input));
        if (in->gran != def.gran) {
          return Status::InvalidArgument(
              "measure '" + def.name + "': combine input " + in->name +
              " has a different granularity");
        }
        names.push_back(in->name);
      }
      auto bound = BoundExpr::Bind(*def.fc, CombineVars(schema, names));
      CSM_RETURN_NOT_OK(bound.status().WithContext("measure '" + def.name +
                                                   "' combine expression"));
      break;
    }
  }
  return Status::OK();
}

Status Workflow::AddMeasure(MeasureDef def) {
  CSM_RETURN_NOT_OK(ValidateMeasure(def));
  measures_.push_back(std::move(def));
  return Status::OK();
}

Result<AwExpr::Ptr> Workflow::ToAlgebra(std::string_view measure,
                                        bool deep) const {
  CSM_ASSIGN_OR_RETURN(const MeasureDef* def, Find(measure));

  auto input_expr = [&](const std::string& name) -> Result<AwExpr::Ptr> {
    CSM_ASSIGN_OR_RETURN(const MeasureDef* in, Find(name));
    if (deep) return ToAlgebra(in->name, /*deep=*/true);
    return AwExpr::MeasureRef(schema_, in->name, in->gran);
  };

  switch (def->op) {
    case MeasureOp::kBaseAgg: {
      CSM_ASSIGN_OR_RETURN(AwExpr::Ptr fact, AwExpr::FactTable(schema_));
      AwExpr::Ptr source = fact;
      if (def->where != nullptr) {
        CSM_ASSIGN_OR_RETURN(source, AwExpr::Select(source, def->where));
      }
      return AwExpr::Aggregate(source, def->gran, def->agg, def->name);
    }
    case MeasureOp::kRollup: {
      CSM_ASSIGN_OR_RETURN(AwExpr::Ptr source, input_expr(def->input));
      if (def->where != nullptr) {
        CSM_ASSIGN_OR_RETURN(source, AwExpr::Select(source, def->where));
      }
      AggSpec agg = def->agg;
      if (agg.arg > 0) agg.arg = 0;  // measure tables have a single M
      return AwExpr::Aggregate(source, def->gran, agg, def->name);
    }
    case MeasureOp::kMatch: {
      // S_base = g_{G,none}(D) enumerates the output regions (paper 4.2).
      CSM_ASSIGN_OR_RETURN(AwExpr::Ptr fact, AwExpr::FactTable(schema_));
      CSM_ASSIGN_OR_RETURN(
          AwExpr::Ptr s_base,
          AwExpr::Aggregate(fact, def->gran, AggSpec{AggKind::kNone, -1},
                            def->name + "_base"));
      CSM_ASSIGN_OR_RETURN(AwExpr::Ptr target, input_expr(def->input));
      if (def->where != nullptr) {
        CSM_ASSIGN_OR_RETURN(target, AwExpr::Select(target, def->where));
      }
      AggSpec agg = def->agg;
      if (agg.arg > 0) agg.arg = 0;
      return AwExpr::MatchJoin(s_base, target, def->match, agg, def->name);
    }
    case MeasureOp::kCombine: {
      std::vector<AwExpr::Ptr> targets;
      CSM_ASSIGN_OR_RETURN(AwExpr::Ptr source,
                           input_expr(def->combine_inputs[0]));
      for (size_t i = 1; i < def->combine_inputs.size(); ++i) {
        CSM_ASSIGN_OR_RETURN(AwExpr::Ptr t,
                             input_expr(def->combine_inputs[i]));
        targets.push_back(std::move(t));
      }
      return AwExpr::CombineJoin(source, std::move(targets), def->fc,
                                 def->name);
    }
  }
  return Status::Internal("bad measure op");
}

std::string Workflow::ToDsl() const {
  const Schema& schema = *schema_;
  std::string out;
  for (const MeasureDef& def : measures_) {
    out += "measure " + def.name + " at " + def.gran.ToString(schema) +
           " = ";
    switch (def.op) {
      case MeasureOp::kBaseAgg:
      case MeasureOp::kRollup: {
        out += "agg ";
        out += AggKindName(def.agg.kind);
        if (def.op == MeasureOp::kBaseAgg) {
          out += def.agg.arg >= 0
                     ? "(" + schema.measure_name(def.agg.arg) + ")"
                     : "(*)";
          out += " from FACT";
        } else {
          out += def.agg.arg >= 0 ? "(M)" : "(*)";
          out += " from " + def.input;
        }
        break;
      }
      case MeasureOp::kMatch: {
        out += "match " + def.input + " using " +
               def.match.ToString(schema, def.gran) + " agg ";
        out += AggKindName(def.agg.kind);
        out += def.agg.arg >= 0 ? "(M)" : "(*)";
        break;
      }
      case MeasureOp::kCombine: {
        out += "combine(";
        for (size_t i = 0; i < def.combine_inputs.size(); ++i) {
          if (i > 0) out += ", ";
          out += def.combine_inputs[i];
        }
        out += ") as " + def.fc->ToString();
        break;
      }
    }
    if (def.where != nullptr) out += " where " + def.where->ToString();
    if (!def.is_output) out += " hidden";
    out += ";\n";
  }
  return out;
}

std::string Workflow::ToDot() const {
  const Schema& schema = *schema_;
  std::string out = "digraph workflow {\n  rankdir=BT;\n"
                    "  node [shape=ellipse, fontsize=10];\n";

  // Group measures by region set — the rectangles.
  std::map<std::vector<int>, std::vector<const MeasureDef*>> by_gran;
  for (const MeasureDef& def : measures_) {
    by_gran[def.gran.levels()].push_back(&def);
  }
  int cluster = 0;
  for (const auto& [levels, defs] : by_gran) {
    const Granularity gran(levels);
    out += "  subgraph cluster_" + std::to_string(cluster++) + " {\n";
    out += "    label=\"" + gran.ToString(schema) + "\";\n";
    out += "    style=rounded;\n";
    for (const MeasureDef* def : defs) {
      std::string label = def->name + "\\n";
      switch (def->op) {
        case MeasureOp::kBaseAgg:
        case MeasureOp::kRollup:
          label += std::string(AggKindName(def->agg.kind)) +
                   (def->agg.arg >= 0 ? "(M)" : "(*)");
          break;
        case MeasureOp::kMatch:
          label += std::string(AggKindName(def->agg.kind)) + "(M)";
          break;
        case MeasureOp::kCombine:
          label += def->fc->ToString();
          break;
      }
      if (def->where != nullptr) {
        label += "\\nwhere " + def->where->ToString();
      }
      out += "    \"" + def->name + "\" [label=\"" + label + "\"";
      if (!def->is_output) out += ", style=dashed";
      out += "];\n";
    }
    out += "  }\n";
  }

  // Computational arcs.
  for (const MeasureDef& def : measures_) {
    switch (def.op) {
      case MeasureOp::kBaseAgg:
        break;  // basic measure: no incoming arc (fed by D)
      case MeasureOp::kRollup:
        out += "  \"" + def.input + "\" -> \"" + def.name +
               "\" [label=\"roll-up\"];\n";
        break;
      case MeasureOp::kMatch:
        out += "  \"" + def.input + "\" -> \"" + def.name +
               "\" [label=\"" + def.match.ToString(schema, def.gran) +
               "\"];\n";
        break;
      case MeasureOp::kCombine:
        for (const std::string& input : def.combine_inputs) {
          out += "  \"" + input + "\" -> \"" + def.name +
                 "\" [label=\"combine\"];\n";
        }
        break;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace csm
