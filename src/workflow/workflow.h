#ifndef CSM_WORKFLOW_WORKFLOW_H_
#define CSM_WORKFLOW_WORKFLOW_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/aw_expr.h"
#include "common/result.h"
#include "model/granularity.h"
#include "model/schema.h"

namespace csm {

/// How one measure (one oval of the aggregation workflow) is computed.
enum class MeasureOp {
  kBaseAgg,  // basic measure: aggregate the fact table
  kRollup,   // aggregate another measure to a coarser granularity
             // (child/parent match join, paper's simplified g form)
  kMatch,    // match join against another measure (self / parent-child /
             // sibling / child-parent)
  kCombine,  // combine join over measures of the same region set
};

/// One measure definition — an oval attached to a region-set rectangle,
/// with its computational arcs (paper §4).
struct MeasureDef {
  std::string name;
  Granularity gran;
  MeasureOp op = MeasureOp::kBaseAgg;

  AggSpec agg;                        // kBaseAgg / kRollup / kMatch
  std::string input;                  // kRollup / kMatch: source measure
  std::vector<std::string> combine_inputs;  // kCombine (first is S)
  MatchCond match;                    // kMatch
  ScalarExprPtr where;                // optional filter on input rows
  ScalarExprPtr fc;                   // kCombine function
  bool is_output = true;              // false = intermediate ("hidden")

  /// Names of the measures this one depends on.
  std::vector<std::string> Inputs() const;
};

/// An aggregation workflow: a DAG of measures over one schema. This is the
/// engine-facing query representation; Theorem 2's translation to AW-RA is
/// provided by ToAlgebra().
///
/// The paper presents workflows pictorially; here the same graph is
/// written in a small text DSL (one statement per measure):
///
///   # basic measure (Example 1)
///   measure Count at (t:hour, U:ip) = agg count(*) from FACT;
///   # roll-up with filter (Examples 2 and 3)
///   measure SCount at (t:hour) = agg count(M) from Count where M > 5;
///   measure STraffic at (t:hour) = agg sum(M) from Count where M > 5;
///   # sibling match join — 6-hour moving average (Example 4)
///   measure AvgCount at (t:hour) =
///       match SCount using sibling(t in [0, 5]) agg avg(M);
///   # combine join (Example 5)
///   measure Ratio at (t:hour) = combine(AvgCount, STraffic, SCount)
///       as AvgCount / (STraffic / SCount);
///
/// `hidden` after a statement marks the measure as intermediate.
class Workflow {
 public:
  explicit Workflow(SchemaPtr schema) : schema_(std::move(schema)) {}

  /// Parses the DSL; validates the full graph.
  static Result<Workflow> Parse(SchemaPtr schema, std::string_view dsl);

  /// Adds one measure (programmatic construction); validates it against
  /// the measures added so far (inputs must already exist — add in
  /// dependency order).
  Status AddMeasure(MeasureDef def);

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<MeasureDef>& measures() const { return measures_; }

  Result<const MeasureDef*> Find(std::string_view name) const;

  /// Measures in a dependency-respecting order (inputs before consumers).
  /// Construction order already satisfies this; returned for clarity.
  std::vector<const MeasureDef*> TopoOrder() const;

  /// Theorem 2: the AW-RA expression for `measure`. With `deep` false,
  /// input measures appear as kMeasureRef leaves (one workflow oval = one
  /// named table); with `deep` true the references are expanded
  /// recursively into a single closed expression over D.
  Result<AwExpr::Ptr> ToAlgebra(std::string_view measure,
                                bool deep = false) const;

  /// Round-trippable DSL text.
  std::string ToDsl() const;

  /// Graphviz rendering of the pictorial language (paper Fig. 3): one
  /// cluster (rectangle) per region set, one oval per measure labelled
  /// with its aggregation formula and optional selection condition, and
  /// computational arcs labelled with their match conditions. Render with
  /// `dot -Tsvg`.
  std::string ToDot() const;

 private:
  Status ValidateMeasure(const MeasureDef& def) const;

  SchemaPtr schema_;
  std::vector<MeasureDef> measures_;  // in insertion (= topological) order
};

}  // namespace csm

#endif  // CSM_WORKFLOW_WORKFLOW_H_
