#include "storage/measure_table.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace csm {

MeasureTable MeasureTable::Clone() const {
  return CloneAs(name_);
}

MeasureTable MeasureTable::CloneAs(std::string name) const {
  MeasureTable copy(schema_, gran_, std::move(name));
  copy.keys_ = keys_;
  copy.values_ = values_;
  copy.num_rows_ = num_rows_;
  return copy;
}

std::vector<uint32_t> MeasureTable::LexOrder() const {
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint32_t x, uint32_t y) {
    return CompareKeys(key_row(x), key_row(y), num_dims_) < 0;
  });
  return order;
}

namespace {

void ApplyPermutation(const std::vector<uint32_t>& perm, int num_dims,
                      std::vector<Value>* keys,
                      std::vector<double>* values) {
  std::vector<Value> new_keys(keys->size());
  std::vector<double> new_values(values->size());
  for (size_t i = 0; i < perm.size(); ++i) {
    const Value* src = keys->data() + static_cast<size_t>(perm[i]) *
                                          static_cast<size_t>(num_dims);
    std::copy(src, src + num_dims,
              new_keys.begin() +
                  static_cast<ptrdiff_t>(i * static_cast<size_t>(num_dims)));
    new_values[i] = (*values)[perm[i]];
  }
  *keys = std::move(new_keys);
  *values = std::move(new_values);
}

}  // namespace

void MeasureTable::SortByKeyLex() {
  std::vector<uint32_t> order = LexOrder();
  ApplyPermutation(order, num_dims_, &keys_, &values_);
}

void MeasureTable::SortBy(const SortKey& sort_key) {
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  const Schema& schema = *schema_;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    const Value* a = key_row(x);
    const Value* b = key_row(y);
    for (const SortKeyPart& p : sort_key.parts()) {
      const Hierarchy& h = *schema.dim(p.dim).hierarchy;
      const int from = gran_.level(p.dim);
      // A component finer than the table's granularity degrades to the
      // table's level (the stream has no finer detail).
      const int to = std::max(p.level, from);
      Value va = h.Generalize(a[p.dim], from, to);
      Value vb = h.Generalize(b[p.dim], from, to);
      if (va != vb) return va < vb;
    }
    return CompareKeys(a, b, num_dims_) < 0;
  });
  ApplyPermutation(order, num_dims_, &keys_, &values_);
}

}  // namespace csm
