#include "storage/external_sorter.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"
#include "exec/scheduler.h"

namespace csm {

namespace {

int ResolveSortThreads(int threads, const ThreadPool& pool) {
  if (threads > 0) return threads;
  return pool.workers() + 1;  // resident workers plus the calling thread
}

/// Precomputes, for rows [begin, end), the generalized sort-key columns
/// followed by the full base dim tuple (tie breaker). Column-major layout
/// would save nothing here; the comparator touches a prefix most of the
/// time.
void BuildSortColumnsRange(const FactTable& table, const SortKey& key,
                           size_t begin, size_t end,
                           std::vector<Value>* cols, int* width_out) {
  const Schema& schema = *table.schema();
  const int k = key.size();
  const int d = table.num_dims();
  const int width = k + d;
  *width_out = width;
  cols->resize((end - begin) * static_cast<size_t>(width));
  for (size_t row = begin; row < end; ++row) {
    const Value* dims = table.dim_row(row);
    Value* out = cols->data() + (row - begin) * static_cast<size_t>(width);
    for (int i = 0; i < k; ++i) {
      const SortKeyPart& p = key.part(i);
      out[i] = schema.dim(p.dim).hierarchy->Generalize(dims[p.dim], 0,
                                                       p.level);
    }
    std::copy(dims, dims + d, out + k);
  }
}

struct RowCursor {
  SpillReader reader;
  std::vector<Value> dims;
  std::vector<double> measures;
  std::vector<Value> sort_cols;  // generalized key of the head row
  bool exhausted = false;

  Status Advance(const Schema& schema, const SortKey& key) {
    Status status;
    if (!reader.Read(dims.data(), dims.size() * sizeof(Value), &status)) {
      exhausted = true;
      return status;
    }
    if (!measures.empty() &&
        !reader.Read(measures.data(), measures.size() * sizeof(double),
                     &status)) {
      return status.ok()
                 ? Status::IOError("run file truncated mid-row")
                 : status;
    }
    for (int i = 0; i < key.size(); ++i) {
      const SortKeyPart& p = key.part(i);
      sort_cols[i] = schema.dim(p.dim).hierarchy->Generalize(dims[p.dim], 0,
                                                             p.level);
    }
    std::copy(dims.begin(), dims.end(),
              sort_cols.begin() + key.size());
    return Status::OK();
  }
};

}  // namespace

Result<FactTable> SortFactTable(FactTable&& input, const SortKey& key,
                                const SortOptions& options,
                                SortStats* stats) {
  Timer timer;
  const std::atomic<bool>* cancel = options.cancel;
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  if (cancelled()) return Status::Cancelled("sort cancelled before start");
  SortStats local;
  local.rows = input.num_rows();
  const Schema& schema = *input.schema();
  const int d = input.num_dims();
  const int m = input.num_measures();
  const size_t row_bytes = input.RowBytes();

  // The in-memory path needs the table plus sort columns plus a
  // permutation; charge ~2.5x the raw data.
  const size_t in_memory_need =
      input.num_rows() * row_bytes * 5 / 2 + (1 << 20);

  if (in_memory_need <= options.memory_budget_bytes ||
      options.temp_dir == nullptr) {
    int width = 0;
    std::vector<Value> cols;
    BuildSortColumnsRange(input, key, 0, input.num_rows(), &cols, &width);
    std::vector<uint32_t> perm(input.num_rows());
    std::iota(perm.begin(), perm.end(), 0);
    // Row-index tie-break makes this the stable sort of the input, so the
    // partitioned path below (and the external path) reproduce it exactly.
    auto less = [&](uint32_t x, uint32_t y) {
      const Value* a = cols.data() + static_cast<size_t>(x) * width;
      const Value* b = cols.data() + static_cast<size_t>(y) * width;
      for (int i = 0; i < width; ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
      }
      return x < y;
    };
    const size_t n = perm.size();
    ThreadPool& pool = ThreadPool::Global();
    size_t t =
        static_cast<size_t>(ResolveSortThreads(options.threads, pool));
    t = std::min(t, n / 4096);  // below ~4k rows/worker threads cost more
    if (t > 1) {
      std::vector<size_t> bounds(t + 1);
      for (size_t i = 0; i <= t; ++i) bounds[i] = n * i / t;
      // Each partition sort is one claimable task on the shared pool; the
      // output does not depend on which executor sorts which partition.
      std::vector<std::function<Status()>> tasks;
      tasks.reserve(t);
      for (size_t i = 0; i < t; ++i) {
        tasks.push_back([&, i]() -> Status {
          std::sort(perm.begin() + bounds[i], perm.begin() + bounds[i + 1],
                    less);
          return Status::OK();
        });
      }
      CSM_RETURN_NOT_OK(
          ParallelTasks(pool, static_cast<int>(t), cancel, tasks));
      // Pairwise stable merges: each range holds a contiguous block of
      // row indices, so left-biased ties keep the global row order —
      // identical output to the single sort with the index tie-break.
      auto cols_less = [&](uint32_t x, uint32_t y) {
        const Value* a = cols.data() + static_cast<size_t>(x) * width;
        const Value* b = cols.data() + static_cast<size_t>(y) * width;
        for (int i = 0; i < width; ++i) {
          if (a[i] != b[i]) return a[i] < b[i];
        }
        return false;
      };
      for (size_t step = 1; step < t; step *= 2) {
        if (cancelled()) {
          return Status::Cancelled("sort cancelled during merge");
        }
        for (size_t i = 0; i + step < t; i += 2 * step) {
          std::inplace_merge(perm.begin() + bounds[i],
                             perm.begin() + bounds[i + step],
                             perm.begin() + bounds[std::min(i + 2 * step, t)],
                             cols_less);
        }
      }
      local.threads_used = static_cast<int>(t);
    } else {
      std::sort(perm.begin(), perm.end(), less);
    }
    input.Permute(perm);
    local.seconds = timer.Seconds();
    if (stats != nullptr) *stats = local;
    return std::move(input);
  }

  // External path: workers pull fixed row ranges of the input, sort them
  // via a local permutation (the chunk rows are never copied), and spill
  // sorted runs concurrently — one worker's spill I/O overlaps another's
  // sort. A single multi-way merge pass follows.
  const size_t rows = input.num_rows();
  if (rows == 0) {
    local.seconds = timer.Seconds();
    if (stats != nullptr) *stats = local;
    return std::move(input);
  }
  ThreadPool& pool = ThreadPool::Global();
  int t = ResolveSortThreads(options.threads, pool);
  const size_t run_rows = std::max<size_t>(
      1024, options.memory_budget_bytes / 2 / row_bytes /
                static_cast<size_t>(t));
  const size_t num_chunks = (rows + run_rows - 1) / run_rows;
  t = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(t), num_chunks));
  local.threads_used = t;

  std::vector<std::string> run_paths(num_chunks);
  for (size_t g = 0; g < num_chunks; ++g) {
    run_paths[g] = options.temp_dir->NewFilePath("sort-run");
  }

  std::atomic<size_t> next_chunk{0};
  std::atomic<int> active_workers{0};
  std::atomic<uint64_t> spilled_bytes{0};
  std::atomic<uint64_t> overlapped_runs{0};
  std::atomic<bool> failed{false};

  auto run_worker = [&]() -> Status {
    std::vector<Value> cols;
    std::vector<uint32_t> perm;
    for (;;) {
      if (cancelled() || failed.load(std::memory_order_relaxed)) {
        return Status::OK();
      }
      const size_t g = next_chunk.fetch_add(1);
      if (g >= num_chunks) return Status::OK();
      active_workers.fetch_add(1);
      const size_t begin = g * run_rows;
      const size_t end = std::min(rows, begin + run_rows);
      int width = 0;
      BuildSortColumnsRange(input, key, begin, end, &cols, &width);
      perm.resize(end - begin);
      std::iota(perm.begin(), perm.end(), 0);
      // Local-index ties equal global row order (the chunk is one
      // contiguous row range), and the merge breaks ties by run index,
      // so the merged output is the stable sort of the whole input —
      // byte-identical for any thread count or budget.
      std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
        const Value* a = cols.data() + static_cast<size_t>(x) * width;
        const Value* b = cols.data() + static_cast<size_t>(y) * width;
        for (int i = 0; i < width; ++i) {
          if (a[i] != b[i]) return a[i] < b[i];
        }
        return x < y;
      });
      Status status = [&]() -> Status {
        SpillWriter writer;
        CSM_RETURN_NOT_OK(writer.Open(run_paths[g]));
        if (active_workers.load(std::memory_order_relaxed) > 1) {
          overlapped_runs.fetch_add(1, std::memory_order_relaxed);
        }
        size_t written = 0;
        for (uint32_t src : perm) {
          if ((written++ & 4095) == 4095 && cancelled()) {
            return Status::Cancelled("sort cancelled while spilling runs");
          }
          CSM_RETURN_NOT_OK(writer.Write(input.dim_row(begin + src),
                                         d * sizeof(Value)));
          if (m > 0) {
            CSM_RETURN_NOT_OK(writer.Write(
                input.measure_row(begin + src), m * sizeof(double)));
          }
        }
        spilled_bytes.fetch_add(writer.bytes_written(),
                                std::memory_order_relaxed);
        return writer.Close();
      }();
      active_workers.fetch_sub(1);
      if (!status.ok()) return status;
    }
  };

  // run_worker is a chunk-claiming loop, so any subset of the requested
  // executors (down to just the caller) completes the job; extra
  // executors only add spill/sort overlap.
  std::vector<Status> worker_status(t);
  pool.RunOnExecutors(t, [&](int e) {
    worker_status[e] = run_worker();
    if (!worker_status[e].ok()) {
      failed.store(true, std::memory_order_relaxed);
    }
  });
  auto cleanup_runs = [&] {
    for (const auto& path : run_paths) RemoveFileIfExists(path);
  };
  for (const Status& status : worker_status) {
    if (!status.ok() && !status.IsCancelled()) {
      cleanup_runs();
      return status;
    }
  }
  if (cancelled() || failed.load()) {
    cleanup_runs();
    return Status::Cancelled("sort cancelled while spilling runs");
  }
  local.runs = num_chunks;
  local.spilled_bytes = spilled_bytes.load();
  local.overlapped_runs = overlapped_runs.load();
  input.Clear();

  // Merge.
  std::vector<RowCursor> cursors(run_paths.size());
  const int width = key.size() + d;
  for (size_t i = 0; i < run_paths.size(); ++i) {
    cursors[i].dims.resize(d);
    cursors[i].measures.resize(m);
    cursors[i].sort_cols.resize(width);
    CSM_RETURN_NOT_OK(cursors[i].reader.Open(run_paths[i]));
    CSM_RETURN_NOT_OK(cursors[i].Advance(schema, key));
  }

  auto greater = [&](size_t x, size_t y) {
    const auto& a = cursors[x].sort_cols;
    const auto& b = cursors[y].sort_cols;
    for (int i = 0; i < width; ++i) {
      if (a[i] != b[i]) return a[i] > b[i];
    }
    return x > y;  // run index order = global row order on full ties
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
      greater);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i].exhausted) heap.push(i);
  }

  FactTable out(input.schema());
  out.Reserve(local.rows);
  size_t merged = 0;
  while (!heap.empty()) {
    if ((merged++ & 4095) == 0 && cancelled()) {
      cleanup_runs();
      return Status::Cancelled("sort cancelled during merge");
    }
    size_t i = heap.top();
    heap.pop();
    out.AppendRow(cursors[i].dims.data(), cursors[i].measures.data());
    CSM_RETURN_NOT_OK(cursors[i].Advance(schema, key));
    if (!cursors[i].exhausted) heap.push(i);
  }
  for (auto& cursor : cursors) {
    CSM_RETURN_NOT_OK(cursor.reader.Close());
  }
  cleanup_runs();

  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace csm
