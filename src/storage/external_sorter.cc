#include "storage/external_sorter.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"

namespace csm {

namespace {

/// Precomputes, for every row, the generalized sort-key columns followed by
/// the full base dim tuple (tie breaker). Column-major layout would save
/// nothing here; the comparator touches a prefix most of the time.
std::vector<Value> BuildSortColumns(const FactTable& table,
                                    const SortKey& key, int* width_out) {
  const Schema& schema = *table.schema();
  const int k = key.size();
  const int d = table.num_dims();
  const int width = k + d;
  *width_out = width;
  std::vector<Value> cols(table.num_rows() * static_cast<size_t>(width));
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const Value* dims = table.dim_row(row);
    Value* out = cols.data() + row * static_cast<size_t>(width);
    for (int i = 0; i < k; ++i) {
      const SortKeyPart& p = key.part(i);
      out[i] = schema.dim(p.dim).hierarchy->Generalize(dims[p.dim], 0,
                                                       p.level);
    }
    std::copy(dims, dims + d, out + k);
  }
  return cols;
}

struct RowCursor {
  SpillReader reader;
  std::vector<Value> dims;
  std::vector<double> measures;
  std::vector<Value> sort_cols;  // generalized key of the head row
  bool exhausted = false;

  Status Advance(const Schema& schema, const SortKey& key) {
    Status status;
    if (!reader.Read(dims.data(), dims.size() * sizeof(Value), &status)) {
      exhausted = true;
      return status;
    }
    if (!measures.empty() &&
        !reader.Read(measures.data(), measures.size() * sizeof(double),
                     &status)) {
      return status.ok()
                 ? Status::IOError("run file truncated mid-row")
                 : status;
    }
    for (int i = 0; i < key.size(); ++i) {
      const SortKeyPart& p = key.part(i);
      sort_cols[i] = schema.dim(p.dim).hierarchy->Generalize(dims[p.dim], 0,
                                                             p.level);
    }
    std::copy(dims.begin(), dims.end(),
              sort_cols.begin() + key.size());
    return Status::OK();
  }
};

}  // namespace

Result<FactTable> SortFactTable(FactTable&& input, const SortKey& key,
                                size_t memory_budget_bytes,
                                TempDir* temp_dir, SortStats* stats,
                                const std::atomic<bool>* cancel) {
  Timer timer;
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  if (cancelled()) return Status::Cancelled("sort cancelled before start");
  SortStats local;
  local.rows = input.num_rows();
  const Schema& schema = *input.schema();
  const int d = input.num_dims();
  const int m = input.num_measures();
  const size_t row_bytes = input.RowBytes();

  // The in-memory path needs the table plus sort columns plus a
  // permutation; charge ~2.5x the raw data.
  const size_t in_memory_need =
      input.num_rows() * row_bytes * 5 / 2 + (1 << 20);

  if (in_memory_need <= memory_budget_bytes || temp_dir == nullptr) {
    int width = 0;
    std::vector<Value> cols = BuildSortColumns(input, key, &width);
    std::vector<uint32_t> perm(input.num_rows());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
      const Value* a = cols.data() + static_cast<size_t>(x) * width;
      const Value* b = cols.data() + static_cast<size_t>(y) * width;
      for (int i = 0; i < width; ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
      }
      return false;
    });
    input.Permute(perm);
    local.seconds = timer.Seconds();
    if (stats != nullptr) *stats = local;
    return std::move(input);
  }

  // External path: spill sorted runs of ~budget/2, then k-way merge.
  const size_t run_rows =
      std::max<size_t>(1024, memory_budget_bytes / 2 / row_bytes);
  std::vector<std::string> run_paths;

  {
    FactTable chunk(input.schema());
    chunk.Reserve(run_rows);
    size_t row = 0;
    while (row < input.num_rows()) {
      if (cancelled()) {
        for (const auto& path : run_paths) RemoveFileIfExists(path);
        return Status::Cancelled("sort cancelled while spilling runs");
      }
      chunk.Clear();
      const size_t end = std::min(input.num_rows(), row + run_rows);
      for (; row < end; ++row) {
        chunk.AppendRow(input.dim_row(row), input.measure_row(row));
      }
      int width = 0;
      std::vector<Value> cols = BuildSortColumns(chunk, key, &width);
      std::vector<uint32_t> perm(chunk.num_rows());
      std::iota(perm.begin(), perm.end(), 0);
      std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
        const Value* a = cols.data() + static_cast<size_t>(x) * width;
        const Value* b = cols.data() + static_cast<size_t>(y) * width;
        for (int i = 0; i < width; ++i) {
          if (a[i] != b[i]) return a[i] < b[i];
        }
        return false;
      });
      SpillWriter writer;
      std::string path = temp_dir->NewFilePath("sort-run");
      CSM_RETURN_NOT_OK(writer.Open(path));
      for (uint32_t src : perm) {
        CSM_RETURN_NOT_OK(
            writer.Write(chunk.dim_row(src), d * sizeof(Value)));
        if (m > 0) {
          CSM_RETURN_NOT_OK(
              writer.Write(chunk.measure_row(src), m * sizeof(double)));
        }
      }
      local.spilled_bytes += writer.bytes_written();
      CSM_RETURN_NOT_OK(writer.Close());
      run_paths.push_back(std::move(path));
    }
  }
  local.runs = run_paths.size();
  input.Clear();

  // Merge.
  std::vector<RowCursor> cursors(run_paths.size());
  const int width = key.size() + d;
  for (size_t i = 0; i < run_paths.size(); ++i) {
    cursors[i].dims.resize(d);
    cursors[i].measures.resize(m);
    cursors[i].sort_cols.resize(width);
    CSM_RETURN_NOT_OK(cursors[i].reader.Open(run_paths[i]));
    CSM_RETURN_NOT_OK(cursors[i].Advance(schema, key));
  }

  auto greater = [&](size_t x, size_t y) {
    const auto& a = cursors[x].sort_cols;
    const auto& b = cursors[y].sort_cols;
    for (int i = 0; i < width; ++i) {
      if (a[i] != b[i]) return a[i] > b[i];
    }
    return x > y;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
      greater);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i].exhausted) heap.push(i);
  }

  FactTable out(input.schema());
  out.Reserve(local.rows);
  size_t merged = 0;
  while (!heap.empty()) {
    if ((merged++ & 4095) == 0 && cancelled()) {
      for (const auto& path : run_paths) RemoveFileIfExists(path);
      return Status::Cancelled("sort cancelled during merge");
    }
    size_t i = heap.top();
    heap.pop();
    out.AppendRow(cursors[i].dims.data(), cursors[i].measures.data());
    CSM_RETURN_NOT_OK(cursors[i].Advance(schema, key));
    if (!cursors[i].exhausted) heap.push(i);
  }
  for (auto& cursor : cursors) {
    CSM_RETURN_NOT_OK(cursor.reader.Close());
  }
  for (const auto& path : run_paths) RemoveFileIfExists(path);

  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace csm
