#include "storage/dim_dictionary.h"

#include <algorithm>

namespace csm {

void DimDictionary::Build(const Value* vals, size_t n, size_t stride) {
  values_.clear();
  values_.reserve(n);
  for (size_t i = 0; i < n; ++i) values_.push_back(vals[i * stride]);
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
  values_.shrink_to_fit();

  const Value max_value = values_.empty() ? 0 : values_.back();
  dense_ = max_value < kDenseLimit;
  dense_codes_.clear();
  sparse_codes_.clear();
  if (dense_) {
    dense_codes_.assign(static_cast<size_t>(max_value) + 1, UINT32_MAX);
    for (size_t c = 0; c < values_.size(); ++c) {
      dense_codes_[values_[c]] = static_cast<uint32_t>(c);
    }
  } else {
    sparse_codes_.reserve(values_.size());
    for (size_t c = 0; c < values_.size(); ++c) {
      sparse_codes_.emplace(values_[c], static_cast<uint32_t>(c));
    }
  }
}

uint32_t DimDictionary::CodeOf(Value v) const {
  if (dense_) {
    return v < dense_codes_.size() ? dense_codes_[v] : UINT32_MAX;
  }
  auto it = sparse_codes_.find(v);
  return it == sparse_codes_.end() ? UINT32_MAX : it->second;
}

uint32_t DimDictionary::CodeOrAdd(Value v) {
  uint32_t code = CodeOf(v);
  if (code != UINT32_MAX) return code;
  code = static_cast<uint32_t>(values_.size());
  values_.push_back(v);
  if (dense_ && v < kDenseLimit) {
    if (v >= dense_codes_.size()) {
      dense_codes_.resize(static_cast<size_t>(v) + 1, UINT32_MAX);
    }
    dense_codes_[v] = code;
  } else if (dense_) {
    // A huge value arrived after a dense build: migrate to the hash map.
    sparse_codes_.reserve(values_.size());
    for (size_t c = 0; c + 1 < values_.size(); ++c) {
      sparse_codes_.emplace(values_[c], static_cast<uint32_t>(c));
    }
    sparse_codes_.emplace(v, code);
    dense_ = false;
    dense_codes_.clear();
    dense_codes_.shrink_to_fit();
  } else {
    sparse_codes_.emplace(v, code);
  }
  return code;
}

}  // namespace csm
