#include "storage/fact_table.h"

#include "common/logging.h"

namespace csm {

uint64_t FactTable::ContentHash() const {
  if (hash_ == nullptr) hash_ = std::make_unique<HashCache>();
  if (!hash_->valid.load(std::memory_order_acquire)) {
    uint64_t sum = 0;
    for (size_t row = 0; row < num_rows_; ++row) {
      sum += RowHash(dim_row(row), measure_row(row));
    }
    hash_->row_sum.store(sum, std::memory_order_relaxed);
    hash_->valid.store(true, std::memory_order_release);
  }
  uint64_t h = Mix64(0xfac7ab1eull);
  h = HashCombine(h, num_rows_);
  h = HashCombine(h, static_cast<uint64_t>(num_dims_));
  h = HashCombine(h, static_cast<uint64_t>(num_measures_));
  h = HashCombine(h, hash_->row_sum.load(std::memory_order_relaxed));
  return h;
}

Status FactTable::AppendBatch(const FactTable& delta) {
  if (delta.num_dims_ != num_dims_ ||
      delta.num_measures_ != num_measures_) {
    return Status::InvalidArgument(
        "FactTable::AppendBatch: batch shape (" +
        std::to_string(delta.num_dims_) + " dims, " +
        std::to_string(delta.num_measures_) +
        " measures) does not match the table (" +
        std::to_string(num_dims_) + " dims, " +
        std::to_string(num_measures_) + " measures)");
  }
  if (&delta == this) {
    return Status::InvalidArgument(
        "FactTable::AppendBatch: cannot append a table to itself");
  }
  dims_.insert(dims_.end(), delta.dims_.begin(), delta.dims_.end());
  measures_.insert(measures_.end(), delta.measures_.begin(),
                   delta.measures_.end());
  if (dict_ != nullptr && dict_->valid.load(std::memory_order_relaxed)) {
    // Extend the encoding in place: never-seen values take fresh codes at
    // the end of their dictionary, existing codes stay put (delta
    // sessions patch against code columns built before the append).
    for (int i = 0; i < num_dims_; ++i) {
      DimDictionary& dict = dict_->enc.dicts[i];
      std::vector<uint32_t>& codes = dict_->enc.codes[i];
      codes.reserve(codes.size() + delta.num_rows_);
      const Value* src = delta.dims_.data() + i;
      for (size_t row = 0; row < delta.num_rows_; ++row) {
        codes.push_back(dict.CodeOrAdd(src[row * delta.num_dims_]));
      }
    }
  }
  if (hash_ != nullptr && hash_->valid.load(std::memory_order_relaxed)) {
    if (delta.hash_ != nullptr &&
        delta.hash_->valid.load(std::memory_order_acquire)) {
      // The row sum is commutative and associative, so a memoized batch
      // folds in with one add.
      hash_->row_sum.fetch_add(
          delta.hash_->row_sum.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    } else {
      uint64_t sum = 0;
      for (size_t row = 0; row < delta.num_rows_; ++row) {
        sum += RowHash(delta.dim_row(row), delta.measure_row(row));
      }
      hash_->row_sum.fetch_add(sum, std::memory_order_relaxed);
    }
  }
  num_rows_ += delta.num_rows_;
  return Status::OK();
}

void FactTable::Permute(const std::vector<uint32_t>& perm) {
  CSM_CHECK(perm.size() == num_rows_);
  std::vector<Value> new_dims(dims_.size());
  for (size_t i = 0; i < num_rows_; ++i) {
    const Value* src = dim_row(perm[i]);
    std::copy(src, src + num_dims_,
              new_dims.begin() + static_cast<ptrdiff_t>(i * num_dims_));
  }
  dims_ = std::move(new_dims);
  if (num_measures_ > 0) {
    std::vector<double> new_measures(measures_.size());
    for (size_t i = 0; i < num_rows_; ++i) {
      const double* src = measure_row(perm[i]);
      std::copy(src, src + num_measures_,
                new_measures.begin() +
                    static_cast<ptrdiff_t>(i * num_measures_));
    }
    measures_ = std::move(new_measures);
  }
  // The multiset of rows is unchanged, so the memoized hash stands.
  if (dict_ != nullptr && dict_->valid.load(std::memory_order_relaxed)) {
    // Dictionaries are row-order independent; only the code columns move.
    for (int d = 0; d < num_dims_; ++d) {
      std::vector<uint32_t>& codes = dict_->enc.codes[d];
      std::vector<uint32_t> reordered(codes.size());
      for (size_t i = 0; i < num_rows_; ++i) reordered[i] = codes[perm[i]];
      codes = std::move(reordered);
    }
  }
}

const DictEncoding& FactTable::EnsureDictEncoding() const {
  if (dict_ == nullptr) dict_ = std::make_unique<DictState>();
  if (dict_->valid.load(std::memory_order_acquire)) return dict_->enc;
  std::lock_guard<std::mutex> lock(dict_->mu);
  if (dict_->valid.load(std::memory_order_relaxed)) return dict_->enc;
  DictEncoding enc;
  enc.dicts.resize(num_dims_);
  enc.codes.resize(num_dims_);
  for (int d = 0; d < num_dims_; ++d) {
    DimDictionary& dict = enc.dicts[d];
    dict.Build(dims_.data() + d, num_rows_, num_dims_);
    std::vector<uint32_t>& codes = enc.codes[d];
    codes.resize(num_rows_);
    const Value* src = dims_.data() + d;
    for (size_t row = 0; row < num_rows_; ++row) {
      codes[row] = dict.CodeOf(src[row * num_dims_]);
    }
  }
  dict_->enc = std::move(enc);
  dict_->valid.store(true, std::memory_order_release);
  return dict_->enc;
}

}  // namespace csm
