#include "storage/fact_table.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace csm {

uint64_t FactTable::ContentHash() const {
  uint64_t h = Mix64(0xfac7ab1eull);
  h = HashCombine(h, num_rows_);
  h = HashCombine(h, static_cast<uint64_t>(num_dims_));
  h = HashCombine(h, static_cast<uint64_t>(num_measures_));
  for (Value v : dims_) h = HashCombine(h, static_cast<uint64_t>(v));
  for (double m : measures_) {
    uint64_t bits;
    std::memcpy(&bits, &m, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

void FactTable::Permute(const std::vector<uint32_t>& perm) {
  CSM_CHECK(perm.size() == num_rows_);
  std::vector<Value> new_dims(dims_.size());
  for (size_t i = 0; i < num_rows_; ++i) {
    const Value* src = dim_row(perm[i]);
    std::copy(src, src + num_dims_,
              new_dims.begin() + static_cast<ptrdiff_t>(i * num_dims_));
  }
  dims_ = std::move(new_dims);
  if (num_measures_ > 0) {
    std::vector<double> new_measures(measures_.size());
    for (size_t i = 0; i < num_rows_; ++i) {
      const double* src = measure_row(perm[i]);
      std::copy(src, src + num_measures_,
                new_measures.begin() +
                    static_cast<ptrdiff_t>(i * num_measures_));
    }
    measures_ = std::move(new_measures);
  }
}

}  // namespace csm
