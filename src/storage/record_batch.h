#ifndef CSM_STORAGE_RECORD_BATCH_H_
#define CSM_STORAGE_RECORD_BATCH_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/fact_table.h"

namespace csm {

class RecordCursor;

/// A columnar chunk of fact records: one contiguous `Value` array per
/// dimension and one contiguous `double` array per measure, typically
/// ~1024 rows (EngineOptions::scan_batch_rows). The batch is the unit of
/// work of the scan pipeline — engines hoist per-record virtual dispatch
/// (cursor calls, hierarchy mapping) into one pass per column per batch,
/// which is where the scan-throughput win over row-at-a-time execution
/// comes from.
///
/// Storage is column-major with a fixed capacity; a batch is reused
/// across NextBatch() calls without reallocating.
class RecordBatch {
 public:
  RecordBatch(int num_dims, int num_measures, size_t capacity)
      : d_(num_dims),
        m_(num_measures),
        capacity_(capacity == 0 ? 1 : capacity),
        dims_(static_cast<size_t>(d_) * capacity_),
        measures_(static_cast<size_t>(m_) * capacity_) {}

  int num_dims() const { return d_; }
  int num_measures() const { return m_; }
  size_t capacity() const { return capacity_; }
  size_t num_rows() const { return num_rows_; }
  void set_num_rows(size_t n) {
    num_rows_ = n;
    // Per-row producers (ScatterRow paths) don't carry code views; any
    // views from an earlier FillFromTable are stale for the new rows.
    has_codes_ = false;
    zones_valid_ = false;
  }

  Value* dim_col(int i) { return dims_.data() + i * capacity_; }
  const Value* dim_col(int i) const {
    return dims_.data() + i * capacity_;
  }
  double* measure_col(int i) {
    return measures_.data() + i * capacity_;
  }
  const double* measure_col(int i) const {
    return measures_.data() + i * capacity_;
  }

  /// Scatters one row-major record into column position `row`.
  void ScatterRow(size_t row, const Value* dims, const double* measures) {
    for (int i = 0; i < d_; ++i) dim_col(i)[row] = dims[i];
    for (int i = 0; i < m_; ++i) measure_col(i)[row] = measures[i];
  }

  /// Gathers column position `row` into row-major buffers (`dims` holds
  /// num_dims() values, `measures` num_measures(); either may be null
  /// when the corresponding width is 0).
  void GatherRow(size_t row, Value* dims, double* measures) const {
    for (int i = 0; i < d_; ++i) dims[i] = dim_col(i)[row];
    for (int i = 0; i < m_; ++i) measures[i] = measure_col(i)[row];
  }

  /// Bulk transpose of `n` contiguous table rows starting at `begin`
  /// into this batch (n <= capacity; sets num_rows). One pass per
  /// column with contiguous writes — the column-wise replacement for a
  /// ScatterRow-per-row loop, shared by every scan that reads straight
  /// out of an in-memory FactTable. When the table carries a memoized
  /// dictionary encoding, the batch additionally picks up zero-copy
  /// code-column views into the table's code arrays.
  void FillFromTable(const FactTable& table, size_t begin, size_t n);

  /// True when code-column views are attached (FillFromTable over a
  /// dictionary-encoded table).
  bool has_codes() const { return has_codes_; }

  /// Zero-copy view of dimension `i`'s uint32 code column (num_rows
  /// entries), or nullptr when has_codes() is false.
  const uint32_t* code_col(int i) const {
    return has_codes_ ? code_cols_[i] : nullptr;
  }
  const uint32_t* const* code_cols() const {
    return has_codes_ ? code_cols_.data() : nullptr;
  }

  /// Per-batch zone maps: min/max code per dimension column, computed
  /// lazily (one pass per column, memoized until the batch is refilled).
  /// Returns false when the batch has no code views or no rows.
  bool CodeZones(const uint32_t** mins, const uint32_t** maxs) const;

 private:
  int d_;
  int m_;
  size_t capacity_;
  size_t num_rows_ = 0;
  std::vector<Value> dims_;      // column-major: d_ runs of capacity_
  std::vector<double> measures_;  // column-major: m_ runs of capacity_
  bool has_codes_ = false;
  std::vector<const uint32_t*> code_cols_;   // [d_] views into the table
  mutable bool zones_valid_ = false;
  mutable std::vector<uint32_t> zone_min_;   // [d_]
  mutable std::vector<uint32_t> zone_max_;   // [d_]
};

/// Pull-based batch stream: the batched counterpart of RecordCursor.
/// Engines consume the fact stream through this interface whether it
/// comes from an in-memory table, the external-sort merge, or (via the
/// per-record adapter) any legacy RecordCursor.
class BatchCursor {
 public:
  virtual ~BatchCursor() = default;

  /// Fills `batch` with up to batch->capacity() records (setting
  /// batch->set_num_rows) and returns the number of rows produced.
  /// 0 means clean end of stream; short batches before the end are not
  /// produced except by adapters with slow sources.
  virtual Result<size_t> NextBatch(RecordBatch* batch) = 0;

  /// True when the stream is served row-at-a-time through the
  /// per-record adapter; engines count such batches so the
  /// `adapter_batches` span counter exposes unconverted sources.
  virtual bool per_record_fallback() const { return false; }
};

/// Batch cursor over a (typically already sorted) in-memory fact table:
/// transposes row-major ranges into columns, one batch per call. The
/// table must outlive the cursor.
std::unique_ptr<BatchCursor> MakeFactTableBatchCursor(
    const FactTable& table);

/// Thin per-record adapter: serves any RecordCursor through the batch
/// interface by pulling one record at a time. Keeps unconverted sources
/// working at the cost of a virtual call per row;
/// per_record_fallback() reports true so the fallback is observable.
std::unique_ptr<BatchCursor> MakeBatchCursorOverRecords(
    std::unique_ptr<RecordCursor> records, int num_dims,
    int num_measures);

/// The inverse adapter: serves a BatchCursor record-at-a-time for
/// consumers that still walk rows (e.g. the legacy SortFactFileCursor
/// API). Gathers each row out of the current batch.
std::unique_ptr<RecordCursor> MakeRecordCursorOverBatches(
    std::unique_ptr<BatchCursor> batches, int num_dims, int num_measures,
    size_t batch_capacity);

}  // namespace csm

#endif  // CSM_STORAGE_RECORD_BATCH_H_
