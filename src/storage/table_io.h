#ifndef CSM_STORAGE_TABLE_IO_H_
#define CSM_STORAGE_TABLE_IO_H_

#include <string>

#include "common/result.h"
#include "storage/fact_table.h"
#include "storage/measure_table.h"

namespace csm {

/// Writes a fact table as a flat binary file (little-endian; header of
/// dims/measures/rows then raw rows). This is the paper's on-disk shape:
/// plain files streamed by the engine, no DBMS import.
Status WriteFactTableBinary(const FactTable& table, const std::string& path);

/// Reads a binary fact table; the file's column counts must match `schema`.
Result<FactTable> ReadFactTableBinary(SchemaPtr schema,
                                      const std::string& path);

/// CSV with a header row (dimension names then measure names); dimension
/// values are raw base-domain integers.
Status WriteFactTableCsv(const FactTable& table, const std::string& path);
Result<FactTable> ReadFactTableCsv(SchemaPtr schema,
                                   const std::string& path);

/// CSV for measure tables: key columns (dimensions at ALL are written as
/// "*"), then the measure value. NaN is written as "null".
Status WriteMeasureTableCsv(const MeasureTable& table,
                            const std::string& path);

/// Flat binary measure-table format (header + key/value rows); used by the
/// relational baseline and the multi-pass engine to materialize
/// intermediates on disk.
Status WriteMeasureTableBinary(const MeasureTable& table,
                               const std::string& path);
Result<MeasureTable> ReadMeasureTableBinary(SchemaPtr schema,
                                            Granularity gran,
                                            std::string name,
                                            const std::string& path);

}  // namespace csm

#endif  // CSM_STORAGE_TABLE_IO_H_
