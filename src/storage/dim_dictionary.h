#ifndef CSM_STORAGE_DIM_DICTIONARY_H_
#define CSM_STORAGE_DIM_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/schema.h"

namespace csm {

/// Per-dimension value dictionary: the sorted set of distinct base-domain
/// values seen in a column, mapped to dense uint32 codes. Codes assigned
/// at Build() time are monotone in the value (code order == value order),
/// which is what makes per-batch zone maps ([min_code, max_code]) usable
/// for range-predicate batch skipping on value-sorted input. Values that
/// arrive later through CodeOrAdd() (incremental appends) take the next
/// free code — appended codes are *not* value-ordered, but existing codes
/// never move, so code columns built before an append stay valid (the
/// code-stability contract delta sessions rely on).
class DimDictionary {
 public:
  /// Builds the dictionary from `n` values read at `stride` (in Values)
  /// from `vals`. Codes are assigned in sorted value order.
  void Build(const Value* vals, size_t n, size_t stride);

  /// Code for `v`, adding a new code (== size()) if never seen. Existing
  /// codes are never remapped.
  uint32_t CodeOrAdd(Value v);

  /// Code for `v`, or UINT32_MAX when absent. O(1).
  uint32_t CodeOf(Value v) const;

  Value value(uint32_t code) const { return values_[code]; }
  const std::vector<Value>& values() const { return values_; }
  size_t size() const { return values_.size(); }

  /// Narrowest standard code width (8/16/32 bits) that holds every code.
  int bits() const {
    if (values_.size() <= (1u << 8)) return 8;
    if (values_.size() <= (1u << 16)) return 16;
    return 32;
  }

 private:
  static constexpr Value kDenseLimit = 1u << 20;

  // code -> value
  std::vector<Value> values_;
  // value -> code. Small dense domains (the common case: hierarchy base
  // domains are fan_out^levels) use a flat array; anything larger falls
  // back to a hash map.
  bool dense_ = false;
  std::vector<uint32_t> dense_codes_;  // index by value, UINT32_MAX = absent
  std::unordered_map<Value, uint32_t> sparse_codes_;
};

/// A FactTable's full dictionary encoding: one dictionary plus one dense
/// uint32 code column per dimension, row-aligned with the table.
struct DictEncoding {
  std::vector<DimDictionary> dicts;           // [dim]
  std::vector<std::vector<uint32_t>> codes;   // [dim][row]

  size_t MemoryBytes() const {
    size_t total = 0;
    for (const auto& col : codes) total += col.capacity() * sizeof(uint32_t);
    for (const auto& d : dicts) total += d.values().capacity() * sizeof(Value);
    return total;
  }
};

}  // namespace csm

#endif  // CSM_STORAGE_DIM_DICTIONARY_H_
