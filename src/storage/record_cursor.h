#ifndef CSM_STORAGE_RECORD_CURSOR_H_
#define CSM_STORAGE_RECORD_CURSOR_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "model/sort_key.h"
#include "storage/fact_table.h"
#include "storage/external_sorter.h"
#include "storage/record_batch.h"

namespace csm {

/// Pull-based record stream: the scan-side abstraction that lets the
/// engines consume either an in-memory fact table or a disk-resident one
/// (merged from external-sort runs) through the same loop.
class RecordCursor {
 public:
  virtual ~RecordCursor() = default;

  /// Advances to the next record. Returns false at clean end of input.
  /// After a true return, dims() / measures() point at the current
  /// record until the next call.
  virtual Result<bool> Next() = 0;

  virtual const Value* dims() const = 0;
  virtual const double* measures() const = 0;
};

/// Cursor over a (typically already sorted) in-memory fact table. The
/// table must outlive the cursor.
std::unique_ptr<RecordCursor> MakeFactTableCursor(const FactTable& table);

/// Sorts a *binary fact file* (WriteFactTableBinary format) by `key`
/// using bounded memory and returns a cursor over the sorted stream:
/// the file is read in run-sized chunks, each chunk sorted and spilled to
/// `temp_dir`, and the returned cursor merges the runs lazily — the full
/// dataset is never resident. Run files are deleted when the cursor is
/// destroyed; `temp_dir` must outlive it.
///
/// This is the paper's out-of-core configuration: data lives in flat
/// files and the engine streams it, never a DBMS.
///
/// `cancel` (optional) is polled between run chunks; when it becomes true
/// the sort stops and returns Status::Cancelled.
///
/// The merge itself is batch-at-a-time (SortFactFileBatchCursor); this
/// entry point wraps it in the per-record adapter for callers that still
/// walk rows.
Result<std::unique_ptr<RecordCursor>> SortFactFileCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    size_t memory_budget_bytes, TempDir* temp_dir, SortStats* stats,
    const std::atomic<bool>* cancel = nullptr);

/// Batched variant of SortFactFileCursor: the run merge drains straight
/// into RecordBatch columns (no per-record virtual dispatch on the
/// consumer side). The final batch of the stream is short when the row
/// count is not a multiple of the batch capacity. This is the engines'
/// out-of-core scan input.
///
/// Run generation is pipelined: the caller thread reads chunks of the
/// fact file into a bounded queue while options.threads workers pull
/// chunks, sort them, and spill runs — so spill I/O overlaps both file
/// reading and sorting. Chunk sorts are stable and the merge breaks ties
/// by run index, so the streamed order is identical for any thread count
/// or budget.
Result<std::unique_ptr<BatchCursor>> SortFactFileBatchCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    const SortOptions& options, SortStats* stats = nullptr);

/// Single-threaded convenience overload (the pre-parallel signature).
inline Result<std::unique_ptr<BatchCursor>> SortFactFileBatchCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    size_t memory_budget_bytes, TempDir* temp_dir, SortStats* stats,
    const std::atomic<bool>* cancel = nullptr) {
  SortOptions options;
  options.memory_budget_bytes = memory_budget_bytes;
  options.temp_dir = temp_dir;
  options.cancel = cancel;
  return SortFactFileBatchCursor(std::move(schema), path, key, options,
                                 stats);
}

}  // namespace csm

#endif  // CSM_STORAGE_RECORD_CURSOR_H_
