#ifndef CSM_STORAGE_MEASURE_TABLE_H_
#define CSM_STORAGE_MEASURE_TABLE_H_

#include <string>
#include <vector>

#include "model/granularity.h"
#include "model/schema.h"
#include "model/sort_key.h"

namespace csm {

/// A measure table T:<G, M> (paper §3.2): one measure value per region of a
/// region set. Keys are full d-dimensional coordinates at the table's
/// granularity (dimensions at ALL hold kAllValue), so tables of different
/// granularities share one representation.
class MeasureTable {
 public:
  MeasureTable(SchemaPtr schema, Granularity gran, std::string name)
      : schema_(std::move(schema)),
        gran_(std::move(gran)),
        name_(std::move(name)),
        num_dims_(schema_->num_dims()) {}

  MeasureTable(MeasureTable&&) = default;
  MeasureTable& operator=(MeasureTable&&) = default;
  MeasureTable(const MeasureTable&) = delete;
  MeasureTable& operator=(const MeasureTable&) = delete;

  /// Deep copy (explicit, since the copy constructor is deleted).
  MeasureTable Clone() const;

  /// Deep copy under a different table name — the session demultiplexer
  /// hands a fused measure back to each query under the query's own
  /// measure name.
  MeasureTable CloneAs(std::string name) const;

  const SchemaPtr& schema() const { return schema_; }
  const Granularity& granularity() const { return gran_; }
  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  int num_dims() const { return num_dims_; }

  void Reserve(size_t rows) {
    keys_.reserve(rows * num_dims_);
    values_.reserve(rows);
  }

  void Append(const Value* key, double value) {
    keys_.insert(keys_.end(), key, key + num_dims_);
    values_.push_back(value);
    ++num_rows_;
  }
  void Append(const RegionKey& key, double value) {
    Append(key.data(), value);
  }

  const Value* key_row(size_t row) const {
    return keys_.data() + row * num_dims_;
  }
  double value(size_t row) const { return values_[row]; }
  void set_value(size_t row, double v) { values_[row] = v; }

  /// Sorts rows lexicographically by key in schema dimension order. Result
  /// order is deterministic (keys within a region set are unique).
  void SortByKeyLex();

  /// Sorts rows by `sort_key` with full-key lexicographic tie-breaking, so
  /// the output order is total and deterministic.
  void SortBy(const SortKey& sort_key);

  /// Returns row indices sorted lexicographically; does not move data.
  std::vector<uint32_t> LexOrder() const;

  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(Value) +
           values_.capacity() * sizeof(double);
  }

 private:
  SchemaPtr schema_;
  Granularity gran_;
  std::string name_;
  int num_dims_;
  size_t num_rows_ = 0;
  std::vector<Value> keys_;
  std::vector<double> values_;
};

/// Compares two keys of `n` values lexicographically.
inline int CompareKeys(const Value* a, const Value* b, int n) {
  for (int i = 0; i < n; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

}  // namespace csm

#endif  // CSM_STORAGE_MEASURE_TABLE_H_
