#ifndef CSM_STORAGE_TEMP_FILE_H_
#define CSM_STORAGE_TEMP_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace csm {

/// Owns a scratch directory for spill files; removes it and its contents on
/// destruction. Every engine run gets one, so temp space never leaks across
/// runs.
class TempDir {
 public:
  /// Creates a fresh directory under `base` (default: TMPDIR or /tmp).
  static Result<TempDir> Make(const std::string& base = "");

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  const std::string& path() const { return path_; }

  /// Returns a unique file path inside the directory.
  std::string NewFilePath(const std::string& prefix);

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}
  void Remove();

  std::string path_;
  uint64_t counter_ = 0;
};

/// Buffered sequential writer for fixed-width binary rows (spill runs,
/// materialized intermediates). Tracks bytes written for the engines' IO
/// accounting.
class SpillWriter {
 public:
  SpillWriter() = default;
  ~SpillWriter();
  SpillWriter(SpillWriter&& other) noexcept;
  SpillWriter& operator=(SpillWriter&& other) noexcept;
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  Status Open(const std::string& path);
  Status Write(const void* data, size_t bytes);
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Buffered sequential reader matching SpillWriter.
class SpillReader {
 public:
  SpillReader() = default;
  ~SpillReader();
  SpillReader(SpillReader&& other) noexcept;
  SpillReader& operator=(SpillReader&& other) noexcept;
  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  Status Open(const std::string& path);

  /// Reads exactly `bytes` into `data`. Returns true on success, false at
  /// clean EOF (no partial rows); sets `status` on IO error.
  bool Read(void* data, size_t bytes, Status* status);

  Status Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Removes a file if it exists (best effort).
void RemoveFileIfExists(const std::string& path);

}  // namespace csm

#endif  // CSM_STORAGE_TEMP_FILE_H_
