#ifndef CSM_STORAGE_FACT_TABLE_H_
#define CSM_STORAGE_FACT_TABLE_H_

#include <cstddef>
#include <vector>

#include "model/granularity.h"
#include "model/schema.h"

namespace csm {

/// The raw fact table D: rows of base-domain dimension values plus raw
/// measure attributes, stored row-major in flat arrays. This mirrors the
/// paper's setting — data lives in flat files and is streamed, never in a
/// DBMS — and keeps sorting and scanning cache-friendly.
class FactTable {
 public:
  explicit FactTable(SchemaPtr schema)
      : schema_(std::move(schema)),
        num_dims_(schema_->num_dims()),
        num_measures_(schema_->num_measures()) {}

  FactTable(FactTable&&) = default;
  FactTable& operator=(FactTable&&) = default;
  FactTable(const FactTable&) = delete;
  FactTable& operator=(const FactTable&) = delete;

  /// Deep copy (explicit; the copy constructor is deleted so accidental
  /// copies of multi-gigabyte tables cannot happen silently). Reserves
  /// the exact row count up front before copying, so the clone's
  /// capacity — and therefore MemoryBytes() — is the tight fit for its
  /// rows, never the source's (possibly padded) growth capacity.
  FactTable Clone() const {
    FactTable copy(schema_);
    copy.Reserve(num_rows_);
    copy.num_rows_ = num_rows_;
    copy.dims_.assign(dims_.begin(), dims_.end());
    copy.measures_.assign(measures_.begin(), measures_.end());
    return copy;
  }

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_dims() const { return num_dims_; }
  int num_measures() const { return num_measures_; }

  void Reserve(size_t rows) {
    dims_.reserve(rows * num_dims_);
    measures_.reserve(rows * num_measures_);
  }

  /// Appends one record; `dims` has num_dims() base-domain values,
  /// `measures` has num_measures() values (may be null when the schema has
  /// no measures).
  void AppendRow(const Value* dims, const double* measures) {
    dims_.insert(dims_.end(), dims, dims + num_dims_);
    if (num_measures_ > 0) {
      measures_.insert(measures_.end(), measures, measures + num_measures_);
    }
    ++num_rows_;
  }

  const Value* dim_row(size_t row) const {
    return dims_.data() + row * num_dims_;
  }
  const double* measure_row(size_t row) const {
    return measures_.data() + row * num_measures_;
  }

  /// Physically reorders rows by `perm` (perm[i] = source row of new row
  /// i). Used by the in-memory sort path.
  void Permute(const std::vector<uint32_t>& perm);

  /// 64-bit hash of the table's contents (shape + every dimension value +
  /// the bit patterns of every raw measure, so NaN payloads count). Two
  /// tables with equal hashes hold the same rows in the same order, up to
  /// hash collisions. O(rows); the session result cache keys on it so
  /// cached results die with the data that produced them.
  uint64_t ContentHash() const;

  /// Bytes per serialized row (dims + measures), for spill accounting.
  size_t RowBytes() const {
    return num_dims_ * sizeof(Value) + num_measures_ * sizeof(double);
  }

  /// Approximate resident size: allocated (capacity) bytes of the dim
  /// and measure arrays, not just the bytes in use — a table grown
  /// through AppendRow can hold up to 2x RowBytes() * num_rows(), while
  /// a Clone() holds exactly RowBytes() * num_rows() (see Clone()).
  size_t MemoryBytes() const {
    return dims_.capacity() * sizeof(Value) +
           measures_.capacity() * sizeof(double);
  }

  void Clear() {
    dims_.clear();
    measures_.clear();
    num_rows_ = 0;
  }

 private:
  SchemaPtr schema_;
  int num_dims_;
  int num_measures_;
  size_t num_rows_ = 0;
  std::vector<Value> dims_;
  std::vector<double> measures_;
};

}  // namespace csm

#endif  // CSM_STORAGE_FACT_TABLE_H_
