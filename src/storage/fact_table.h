#ifndef CSM_STORAGE_FACT_TABLE_H_
#define CSM_STORAGE_FACT_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "model/granularity.h"
#include "model/schema.h"
#include "storage/dim_dictionary.h"

namespace csm {

/// The raw fact table D: rows of base-domain dimension values plus raw
/// measure attributes, stored row-major in flat arrays. This mirrors the
/// paper's setting — data lives in flat files and is streamed, never in a
/// DBMS — and keeps sorting and scanning cache-friendly.
class FactTable {
 public:
  explicit FactTable(SchemaPtr schema)
      : schema_(std::move(schema)),
        num_dims_(schema_->num_dims()),
        num_measures_(schema_->num_measures()),
        hash_(std::make_unique<HashCache>()),
        dict_(std::make_unique<DictState>()) {}

  FactTable(FactTable&&) = default;
  FactTable& operator=(FactTable&&) = default;
  FactTable(const FactTable&) = delete;
  FactTable& operator=(const FactTable&) = delete;

  /// Deep copy (explicit; the copy constructor is deleted so accidental
  /// copies of multi-gigabyte tables cannot happen silently). Reserves
  /// the exact row count up front before copying, so the clone's
  /// capacity — and therefore MemoryBytes() — is the tight fit for its
  /// rows, never the source's (possibly padded) growth capacity.
  FactTable Clone() const {
    FactTable copy(schema_);
    copy.Reserve(num_rows_);
    copy.num_rows_ = num_rows_;
    copy.dims_.assign(dims_.begin(), dims_.end());
    copy.measures_.assign(measures_.begin(), measures_.end());
    if (hash_ != nullptr &&
        hash_->valid.load(std::memory_order_acquire)) {
      copy.hash_->row_sum.store(
          hash_->row_sum.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      copy.hash_->valid.store(true, std::memory_order_release);
    }
    if (const DictEncoding* enc = dict_encoding()) {
      copy.dict_->enc = *enc;
      copy.dict_->valid.store(true, std::memory_order_release);
    }
    return copy;
  }

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  int num_dims() const { return num_dims_; }
  int num_measures() const { return num_measures_; }

  void Reserve(size_t rows) {
    dims_.reserve(rows * num_dims_);
    measures_.reserve(rows * num_measures_);
  }

  /// Appends one record; `dims` has num_dims() base-domain values,
  /// `measures` has num_measures() values (may be null when the schema has
  /// no measures).
  void AppendRow(const Value* dims, const double* measures) {
    dims_.insert(dims_.end(), dims, dims + num_dims_);
    if (num_measures_ > 0) {
      measures_.insert(measures_.end(), measures, measures + num_measures_);
    }
    ++num_rows_;
    if (hash_ != nullptr && hash_->valid.load(std::memory_order_relaxed)) {
      hash_->row_sum.fetch_add(RowHash(dims, measures),
                               std::memory_order_relaxed);
    }
    if (dict_ != nullptr && dict_->valid.load(std::memory_order_relaxed)) {
      for (int i = 0; i < num_dims_; ++i) {
        dict_->enc.codes[i].push_back(dict_->enc.dicts[i].CodeOrAdd(dims[i]));
      }
    }
  }

  /// Bulk append of every row of `delta` (same dimension/measure arity;
  /// intended for batches over the same schema). The memoized ContentHash
  /// is maintained incrementally — O(delta) at worst, O(1) when the
  /// batch's own hash is already memoized.
  Status AppendBatch(const FactTable& delta);

  const Value* dim_row(size_t row) const {
    return dims_.data() + row * num_dims_;
  }
  const double* measure_row(size_t row) const {
    return measures_.data() + row * num_measures_;
  }

  /// Physically reorders rows by `perm` (perm[i] = source row of new row
  /// i). Used by the in-memory sort path. ContentHash is row-order
  /// independent, so the memoized hash carries over untouched.
  void Permute(const std::vector<uint32_t>& perm);

  /// 64-bit hash of the table's contents (shape + every dimension value +
  /// the bit patterns of every raw measure, so NaN payloads count). Two
  /// tables with equal hashes hold the same *multiset* of rows — the hash
  /// is deliberately row-order independent (a commutative sum of per-row
  /// hashes), so physically resorting the data or appending the same rows
  /// in a different batch order cannot fake a content change.
  ///
  /// The first call is O(rows) and memoizes the row sum; afterwards the
  /// hash is O(1) and AppendRow / AppendBatch keep it up to date
  /// incrementally, which is what lets the session cache re-key (rather
  /// than rehash the world) on every append.
  uint64_t ContentHash() const;

  /// Builds (or returns the memoized) dictionary encoding of the
  /// dimension columns: one sorted-unique DimDictionary plus one dense
  /// uint32 code column per dimension, row-aligned with the table. The
  /// build is lazy, thread-safe (double-checked under a mutex so
  /// concurrent query sessions share one build), and O(rows·dims) once;
  /// afterwards AppendRow / AppendBatch extend the encoding in place with
  /// stable codes (existing codes never remapped), Permute reorders the
  /// code columns alongside the data, and Clone carries the encoding to
  /// the copy. Mutations through any other path don't exist — FactTable's
  /// mutator set is the complete invalidation surface.
  const DictEncoding& EnsureDictEncoding() const;

  /// The memoized encoding, or nullptr when EnsureDictEncoding has not
  /// run yet (never triggers a build).
  const DictEncoding* dict_encoding() const {
    if (dict_ == nullptr || !dict_->valid.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return &dict_->enc;
  }

  /// Bytes per serialized row (dims + measures), for spill accounting.
  size_t RowBytes() const {
    return num_dims_ * sizeof(Value) + num_measures_ * sizeof(double);
  }

  /// Approximate resident size: allocated (capacity) bytes of the dim
  /// and measure arrays, not just the bytes in use — a table grown
  /// through AppendRow can hold up to 2x RowBytes() * num_rows(), while
  /// a Clone() holds exactly RowBytes() * num_rows() (see Clone()).
  size_t MemoryBytes() const {
    return dims_.capacity() * sizeof(Value) +
           measures_.capacity() * sizeof(double);
  }

  void Clear() {
    dims_.clear();
    measures_.clear();
    num_rows_ = 0;
    if (hash_ != nullptr) {
      hash_->row_sum.store(0, std::memory_order_relaxed);
      hash_->valid.store(true, std::memory_order_release);
    }
    if (dict_ != nullptr) {
      dict_->valid.store(false, std::memory_order_release);
      dict_->enc = DictEncoding();
    }
  }

 private:
  /// Chained hash of one row (dims then measure bit patterns). Rows enter
  /// ContentHash as a wrapping sum of these, making the table hash a
  /// multiset hash with O(1) incremental updates.
  uint64_t RowHash(const Value* dims, const double* measures) const {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < num_dims_; ++i) {
      h = HashCombine(h, static_cast<uint64_t>(dims[i]));
    }
    for (int i = 0; i < num_measures_; ++i) {
      uint64_t bits;
      std::memcpy(&bits, &measures[i], sizeof(bits));
      h = HashCombine(h, bits);
    }
    return Mix64(h);
  }

  /// Memoized ContentHash state, heap-held so the table stays movable.
  /// Atomics let concurrent readers race benignly on the first (lazy)
  /// computation: both compute the same sum; `valid` is released after
  /// `row_sum` so an acquire-load of `valid` sees a complete sum. Writers
  /// (AppendRow / AppendBatch / Clear) are exclusive by the same contract
  /// that already covers the data vectors.
  struct HashCache {
    std::atomic<bool> valid{false};
    std::atomic<uint64_t> row_sum{0};
  };

  /// Memoized dictionary encoding, heap-held so the table stays movable.
  /// `valid` is released after `enc` is fully built (under `mu`), so an
  /// acquire-load of `valid` sees a complete encoding; losers of the
  /// build race re-check under the mutex. Mutators run exclusive by the
  /// same contract that covers the data vectors.
  struct DictState {
    std::atomic<bool> valid{false};
    std::mutex mu;
    DictEncoding enc;
  };

  SchemaPtr schema_;
  int num_dims_;
  int num_measures_;
  size_t num_rows_ = 0;
  std::vector<Value> dims_;
  std::vector<double> measures_;
  mutable std::unique_ptr<HashCache> hash_;  // null only when moved-from
  mutable std::unique_ptr<DictState> dict_;  // null only when moved-from
};

}  // namespace csm

#endif  // CSM_STORAGE_FACT_TABLE_H_
