#include "storage/record_cursor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <numeric>
#include <queue>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "storage/external_sorter.h"
#include "storage/table_io.h"

namespace csm {

namespace {

class FactTableCursor : public RecordCursor {
 public:
  explicit FactTableCursor(const FactTable& table) : table_(table) {}

  Result<bool> Next() override {
    if (row_ + 1 >= table_.num_rows() &&
        row_ != static_cast<size_t>(-1)) {
      return false;
    }
    ++row_;
    return row_ < table_.num_rows();
  }

  const Value* dims() const override { return table_.dim_row(row_); }
  const double* measures() const override {
    return table_.measure_row(row_);
  }

 private:
  const FactTable& table_;
  size_t row_ = static_cast<size_t>(-1);
};

/// Streams one sorted run file.
struct RunReader {
  SpillReader reader;
  std::vector<Value> dims;
  std::vector<double> measures;
  std::vector<Value> sort_cols;  // generalized key + full dims tie-break
  bool exhausted = false;

  Status Advance(const Schema& schema, const SortKey& key) {
    Status status;
    if (!reader.Read(dims.data(), dims.size() * sizeof(Value), &status)) {
      exhausted = true;
      return status;
    }
    if (!measures.empty() &&
        !reader.Read(measures.data(), measures.size() * sizeof(double),
                     &status)) {
      return status.ok() ? Status::IOError("run file truncated mid-row")
                         : status;
    }
    for (int i = 0; i < key.size(); ++i) {
      const SortKeyPart& p = key.part(i);
      sort_cols[i] = schema.dim(p.dim).hierarchy->Generalize(
          dims[p.dim], 0, p.level);
    }
    std::copy(dims.begin(), dims.end(), sort_cols.begin() + key.size());
    return Status::OK();
  }
};

/// Merges sorted run files lazily, draining the heap straight into
/// RecordBatch columns; deletes the runs on destruction.
class MergingBatchCursor : public BatchCursor {
 public:
  MergingBatchCursor(SchemaPtr schema, SortKey key,
                     std::vector<std::string> run_paths)
      : schema_(std::move(schema)),
        key_(std::move(key)),
        run_paths_(std::move(run_paths)) {}

  ~MergingBatchCursor() override {
    for (const std::string& path : run_paths_) RemoveFileIfExists(path);
  }

  Status Open() {
    const int d = schema_->num_dims();
    const int m = schema_->num_measures();
    const int width = key_.size() + d;
    readers_.resize(run_paths_.size());
    for (size_t i = 0; i < run_paths_.size(); ++i) {
      readers_[i].dims.resize(d);
      readers_[i].measures.resize(m);
      readers_[i].sort_cols.resize(width);
      CSM_RETURN_NOT_OK(readers_[i].reader.Open(run_paths_[i]));
      CSM_RETURN_NOT_OK(readers_[i].Advance(*schema_, key_));
      if (!readers_[i].exhausted) heap_.push_back(i);
    }
    auto cmp = [this](size_t x, size_t y) { return Greater(x, y); };
    std::make_heap(heap_.begin(), heap_.end(), cmp);
    return Status::OK();
  }

  Result<size_t> NextBatch(RecordBatch* batch) override {
    auto cmp = [this](size_t x, size_t y) { return Greater(x, y); };
    const int d = schema_->num_dims();
    const int m = schema_->num_measures();
    const size_t cap = batch->capacity();
    size_t n = 0;
    while (n < cap && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      const size_t src = heap_.back();
      heap_.pop_back();
      RunReader& run = readers_[src];
      for (int i = 0; i < d; ++i) batch->dim_col(i)[n] = run.dims[i];
      for (int i = 0; i < m; ++i) {
        batch->measure_col(i)[n] = run.measures[i];
      }
      ++n;
      CSM_RETURN_NOT_OK(run.Advance(*schema_, key_));
      if (!run.exhausted) {
        heap_.push_back(src);
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
    batch->set_num_rows(n);
    return n;
  }

 private:
  bool Greater(size_t x, size_t y) const {
    const auto& a = readers_[x].sort_cols;
    const auto& b = readers_[y].sort_cols;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return a[i] > b[i];
    }
    return x > y;
  }

  SchemaPtr schema_;
  SortKey key_;
  std::vector<std::string> run_paths_;
  std::vector<RunReader> readers_;
  std::vector<size_t> heap_;
};

}  // namespace

std::unique_ptr<RecordCursor> MakeFactTableCursor(const FactTable& table) {
  return std::make_unique<FactTableCursor>(table);
}

namespace {

/// One run-sized slice of the fact file, tagged with its run index so
/// workers can write run files in input order no matter who sorts what.
struct PendingChunk {
  size_t index = 0;
  std::unique_ptr<FactTable> table;
};

/// The reader/sorter hand-off of the pipelined file sort: the caller
/// thread pushes chunks (blocking while the queue is full, which bounds
/// memory) and sort workers pop them. Close() wakes everyone up.
class BoundedChunkQueue {
 public:
  explicit BoundedChunkQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(PendingChunk chunk) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return items_.size() < capacity_ || closed_;
    });
    if (closed_) return;  // shutting down: drop the chunk
    items_.push_back(std::move(chunk));
    not_empty_.notify_one();
  }

  bool Pop(PendingChunk* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool HasBacklog() {
    std::lock_guard<std::mutex> lock(mu_);
    return !items_.empty();
  }

 private:
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingChunk> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace

Result<std::unique_ptr<BatchCursor>> SortFactFileBatchCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    const SortOptions& options, SortStats* stats) {
  Timer timer;
  const std::atomic<bool>* cancel = options.cancel;
  TempDir* temp_dir = options.temp_dir;
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  SortStats local;
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  const size_t row_bytes =
      static_cast<size_t>(d) * sizeof(Value) +
      static_cast<size_t>(m) * sizeof(double);
  int threads = options.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  constexpr size_t kQueueDepth = 2;
  // Run-size the chunks so every chunk in flight (queued + being sorted,
  // each charged chunk + sort columns + permutation) fits the budget.
  const size_t run_rows = std::max<size_t>(
      1024, options.memory_budget_bytes / 3 /
                std::max<size_t>(row_bytes, 1) /
                (static_cast<size_t>(threads) + kQueueDepth));

  SpillReader reader;
  CSM_RETURN_NOT_OK(reader.Open(path));
  uint64_t header[4];
  Status status;
  if (!reader.Read(header, sizeof(header), &status)) {
    return status.ok() ? Status::IOError("empty fact file: " + path)
                       : status;
  }
  if (header[1] != static_cast<uint64_t>(d) ||
      header[2] != static_cast<uint64_t>(m)) {
    return Status::InvalidArgument(
        "fact file column counts do not match schema: " + path);
  }
  const uint64_t total_rows = header[3];
  local.rows = total_rows;
  const size_t num_chunks =
      static_cast<size_t>((total_rows + run_rows - 1) / run_rows);
  threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(threads), std::max<size_t>(num_chunks, 1)));
  local.threads_used = threads;

  std::vector<std::string> run_paths(num_chunks);
  for (size_t g = 0; g < num_chunks; ++g) {
    run_paths[g] = temp_dir->NewFilePath("scan-run");
  }

  BoundedChunkQueue queue(kQueueDepth);
  std::atomic<int> active_workers{0};
  std::atomic<uint64_t> spilled_bytes{0};
  std::atomic<uint64_t> overlapped_runs{0};
  std::atomic<bool> failed{false};

  // Sort worker: pops a chunk, sorts it in memory (stable: ties keep the
  // chunk's input order), and spills one run file. Runs whose write
  // happens while another chunk is queued or being sorted overlapped
  // useful work — that is the pipelining the bounded queue buys.
  auto sort_worker = [&]() -> Status {
    Status first_error;
    PendingChunk chunk;
    while (queue.Pop(&chunk)) {
      // After a failure (ours or a peer's) keep draining so the reader
      // never blocks forever in Push against a full queue.
      if (cancelled() || failed.load(std::memory_order_relaxed)) continue;
      active_workers.fetch_add(1);
      Status chunk_status = [&]() -> Status {
        auto sorted = SortFactTable(std::move(*chunk.table), key,
                                    std::numeric_limits<size_t>::max(),
                                    nullptr, nullptr);
        CSM_RETURN_NOT_OK(sorted.status());
        SpillWriter writer;
        CSM_RETURN_NOT_OK(writer.Open(run_paths[chunk.index]));
        if (queue.HasBacklog() ||
            active_workers.load(std::memory_order_relaxed) > 1) {
          overlapped_runs.fetch_add(1, std::memory_order_relaxed);
        }
        for (size_t row = 0; row < sorted->num_rows(); ++row) {
          CSM_RETURN_NOT_OK(
              writer.Write(sorted->dim_row(row), d * sizeof(Value)));
          if (m > 0) {
            CSM_RETURN_NOT_OK(writer.Write(sorted->measure_row(row),
                                           m * sizeof(double)));
          }
        }
        spilled_bytes.fetch_add(writer.bytes_written(),
                                std::memory_order_relaxed);
        return writer.Close();
      }();
      active_workers.fetch_sub(1);
      if (!chunk_status.ok() && first_error.ok()) {
        first_error = std::move(chunk_status);
        failed.store(true, std::memory_order_relaxed);
      }
    }
    return first_error;
  };

  std::vector<Status> worker_status(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] { worker_status[i] = sort_worker(); });
  }

  // Reader loop (caller thread): stream the file into run-sized chunks.
  Status read_status = [&]() -> Status {
    FactTable chunk(schema);
    chunk.Reserve(std::min<uint64_t>(run_rows, total_rows));
    std::vector<Value> dims(d);
    std::vector<double> measures(m);
    size_t chunk_index = 0;
    for (uint64_t row = 0; row < total_rows; ++row) {
      if (!reader.Read(dims.data(), d * sizeof(Value), &status)) {
        return status.ok()
                   ? Status::IOError("fact file truncated: " + path)
                   : status;
      }
      if (m > 0 &&
          !reader.Read(measures.data(), m * sizeof(double), &status)) {
        return status.ok()
                   ? Status::IOError("fact file truncated: " + path)
                   : status;
      }
      chunk.AppendRow(dims.data(), measures.data());
      if (chunk.num_rows() >= run_rows) {
        if (cancelled() || failed.load(std::memory_order_relaxed)) {
          return Status::Cancelled(
              "file sort cancelled while spilling runs");
        }
        queue.Push(PendingChunk{
            chunk_index++, std::make_unique<FactTable>(std::move(chunk))});
        chunk = FactTable(schema);
        chunk.Reserve(run_rows);
      }
    }
    if (chunk.num_rows() > 0) {
      if (cancelled() || failed.load(std::memory_order_relaxed)) {
        return Status::Cancelled("file sort cancelled while spilling runs");
      }
      queue.Push(PendingChunk{
          chunk_index++, std::make_unique<FactTable>(std::move(chunk))});
    }
    return reader.Close();
  }();
  queue.Close();
  for (std::thread& w : workers) w.join();

  auto cleanup_runs = [&] {
    for (const auto& rp : run_paths) RemoveFileIfExists(rp);
  };
  for (const Status& ws : worker_status) {
    if (!ws.ok()) {
      cleanup_runs();
      return ws;
    }
  }
  if (!read_status.ok()) {
    cleanup_runs();
    return read_status;
  }
  if (cancelled()) {
    cleanup_runs();
    return Status::Cancelled("file sort cancelled while spilling runs");
  }
  local.runs = num_chunks;
  local.spilled_bytes = spilled_bytes.load();
  local.overlapped_runs = overlapped_runs.load();

  auto cursor = std::make_unique<MergingBatchCursor>(
      std::move(schema), key, std::move(run_paths));
  CSM_RETURN_NOT_OK(cursor->Open());
  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return std::unique_ptr<BatchCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordCursor>> SortFactFileCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    size_t memory_budget_bytes, TempDir* temp_dir, SortStats* stats,
    const std::atomic<bool>* cancel) {
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  CSM_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchCursor> batches,
      SortFactFileBatchCursor(std::move(schema), path, key,
                              memory_budget_bytes, temp_dir, stats,
                              cancel));
  return MakeRecordCursorOverBatches(std::move(batches), d, m,
                                     /*batch_capacity=*/1024);
}

}  // namespace csm
