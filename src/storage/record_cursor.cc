#include "storage/record_cursor.h"

#include <algorithm>
#include <numeric>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"
#include "storage/external_sorter.h"
#include "storage/table_io.h"

namespace csm {

namespace {

class FactTableCursor : public RecordCursor {
 public:
  explicit FactTableCursor(const FactTable& table) : table_(table) {}

  Result<bool> Next() override {
    if (row_ + 1 >= table_.num_rows() &&
        row_ != static_cast<size_t>(-1)) {
      return false;
    }
    ++row_;
    return row_ < table_.num_rows();
  }

  const Value* dims() const override { return table_.dim_row(row_); }
  const double* measures() const override {
    return table_.measure_row(row_);
  }

 private:
  const FactTable& table_;
  size_t row_ = static_cast<size_t>(-1);
};

/// Streams one sorted run file.
struct RunReader {
  SpillReader reader;
  std::vector<Value> dims;
  std::vector<double> measures;
  std::vector<Value> sort_cols;  // generalized key + full dims tie-break
  bool exhausted = false;

  Status Advance(const Schema& schema, const SortKey& key) {
    Status status;
    if (!reader.Read(dims.data(), dims.size() * sizeof(Value), &status)) {
      exhausted = true;
      return status;
    }
    if (!measures.empty() &&
        !reader.Read(measures.data(), measures.size() * sizeof(double),
                     &status)) {
      return status.ok() ? Status::IOError("run file truncated mid-row")
                         : status;
    }
    for (int i = 0; i < key.size(); ++i) {
      const SortKeyPart& p = key.part(i);
      sort_cols[i] = schema.dim(p.dim).hierarchy->Generalize(
          dims[p.dim], 0, p.level);
    }
    std::copy(dims.begin(), dims.end(), sort_cols.begin() + key.size());
    return Status::OK();
  }
};

/// Merges sorted run files lazily, draining the heap straight into
/// RecordBatch columns; deletes the runs on destruction.
class MergingBatchCursor : public BatchCursor {
 public:
  MergingBatchCursor(SchemaPtr schema, SortKey key,
                     std::vector<std::string> run_paths)
      : schema_(std::move(schema)),
        key_(std::move(key)),
        run_paths_(std::move(run_paths)) {}

  ~MergingBatchCursor() override {
    for (const std::string& path : run_paths_) RemoveFileIfExists(path);
  }

  Status Open() {
    const int d = schema_->num_dims();
    const int m = schema_->num_measures();
    const int width = key_.size() + d;
    readers_.resize(run_paths_.size());
    for (size_t i = 0; i < run_paths_.size(); ++i) {
      readers_[i].dims.resize(d);
      readers_[i].measures.resize(m);
      readers_[i].sort_cols.resize(width);
      CSM_RETURN_NOT_OK(readers_[i].reader.Open(run_paths_[i]));
      CSM_RETURN_NOT_OK(readers_[i].Advance(*schema_, key_));
      if (!readers_[i].exhausted) heap_.push_back(i);
    }
    auto cmp = [this](size_t x, size_t y) { return Greater(x, y); };
    std::make_heap(heap_.begin(), heap_.end(), cmp);
    return Status::OK();
  }

  Result<size_t> NextBatch(RecordBatch* batch) override {
    auto cmp = [this](size_t x, size_t y) { return Greater(x, y); };
    const int d = schema_->num_dims();
    const int m = schema_->num_measures();
    const size_t cap = batch->capacity();
    size_t n = 0;
    while (n < cap && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      const size_t src = heap_.back();
      heap_.pop_back();
      RunReader& run = readers_[src];
      for (int i = 0; i < d; ++i) batch->dim_col(i)[n] = run.dims[i];
      for (int i = 0; i < m; ++i) {
        batch->measure_col(i)[n] = run.measures[i];
      }
      ++n;
      CSM_RETURN_NOT_OK(run.Advance(*schema_, key_));
      if (!run.exhausted) {
        heap_.push_back(src);
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
    }
    batch->set_num_rows(n);
    return n;
  }

 private:
  bool Greater(size_t x, size_t y) const {
    const auto& a = readers_[x].sort_cols;
    const auto& b = readers_[y].sort_cols;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return a[i] > b[i];
    }
    return x > y;
  }

  SchemaPtr schema_;
  SortKey key_;
  std::vector<std::string> run_paths_;
  std::vector<RunReader> readers_;
  std::vector<size_t> heap_;
};

}  // namespace

std::unique_ptr<RecordCursor> MakeFactTableCursor(const FactTable& table) {
  return std::make_unique<FactTableCursor>(table);
}

Result<std::unique_ptr<BatchCursor>> SortFactFileBatchCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    size_t memory_budget_bytes, TempDir* temp_dir, SortStats* stats,
    const std::atomic<bool>* cancel) {
  Timer timer;
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  SortStats local;
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  const size_t row_bytes =
      static_cast<size_t>(d) * sizeof(Value) +
      static_cast<size_t>(m) * sizeof(double);
  // Run-size the chunks so chunk + sort columns + permutation fit.
  const size_t run_rows = std::max<size_t>(
      1024, memory_budget_bytes / 3 / std::max<size_t>(row_bytes, 1));

  SpillReader reader;
  CSM_RETURN_NOT_OK(reader.Open(path));
  uint64_t header[4];
  Status status;
  if (!reader.Read(header, sizeof(header), &status)) {
    return status.ok() ? Status::IOError("empty fact file: " + path)
                       : status;
  }
  if (header[1] != static_cast<uint64_t>(d) ||
      header[2] != static_cast<uint64_t>(m)) {
    return Status::InvalidArgument(
        "fact file column counts do not match schema: " + path);
  }
  const uint64_t total_rows = header[3];
  local.rows = total_rows;

  std::vector<std::string> run_paths;
  FactTable chunk(schema);
  chunk.Reserve(std::min<uint64_t>(run_rows, total_rows));
  std::vector<Value> dims(d);
  std::vector<double> measures(m);

  auto flush_chunk = [&]() -> Status {
    if (chunk.num_rows() == 0) return Status::OK();
    if (cancelled()) {
      for (const auto& rp : run_paths) RemoveFileIfExists(rp);
      return Status::Cancelled("file sort cancelled while spilling runs");
    }
    SortStats chunk_stats;
    // In-memory sort of the chunk (no temp dir: never spills here).
    auto sorted = SortFactTable(std::move(chunk), key,
                                std::numeric_limits<size_t>::max(),
                                nullptr, &chunk_stats);
    CSM_RETURN_NOT_OK(sorted.status());
    SpillWriter writer;
    std::string run_path = temp_dir->NewFilePath("scan-run");
    CSM_RETURN_NOT_OK(writer.Open(run_path));
    for (size_t row = 0; row < sorted->num_rows(); ++row) {
      CSM_RETURN_NOT_OK(
          writer.Write(sorted->dim_row(row), d * sizeof(Value)));
      if (m > 0) {
        CSM_RETURN_NOT_OK(
            writer.Write(sorted->measure_row(row), m * sizeof(double)));
      }
    }
    local.spilled_bytes += writer.bytes_written();
    CSM_RETURN_NOT_OK(writer.Close());
    run_paths.push_back(std::move(run_path));
    chunk = FactTable(schema);
    chunk.Reserve(run_rows);
    return Status::OK();
  };

  for (uint64_t row = 0; row < total_rows; ++row) {
    if (!reader.Read(dims.data(), d * sizeof(Value), &status)) {
      return status.ok() ? Status::IOError("fact file truncated: " + path)
                         : status;
    }
    if (m > 0 &&
        !reader.Read(measures.data(), m * sizeof(double), &status)) {
      return status.ok() ? Status::IOError("fact file truncated: " + path)
                         : status;
    }
    chunk.AppendRow(dims.data(), measures.data());
    if (chunk.num_rows() >= run_rows) CSM_RETURN_NOT_OK(flush_chunk());
  }
  CSM_RETURN_NOT_OK(flush_chunk());
  CSM_RETURN_NOT_OK(reader.Close());
  local.runs = run_paths.size();

  auto cursor = std::make_unique<MergingBatchCursor>(
      std::move(schema), key, std::move(run_paths));
  CSM_RETURN_NOT_OK(cursor->Open());
  local.seconds = timer.Seconds();
  if (stats != nullptr) *stats = local;
  return std::unique_ptr<BatchCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordCursor>> SortFactFileCursor(
    SchemaPtr schema, const std::string& path, const SortKey& key,
    size_t memory_budget_bytes, TempDir* temp_dir, SortStats* stats,
    const std::atomic<bool>* cancel) {
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  CSM_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchCursor> batches,
      SortFactFileBatchCursor(std::move(schema), path, key,
                              memory_budget_bytes, temp_dir, stats,
                              cancel));
  return MakeRecordCursorOverBatches(std::move(batches), d, m,
                                     /*batch_capacity=*/1024);
}

}  // namespace csm
