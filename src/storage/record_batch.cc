#include "storage/record_batch.h"

#include <algorithm>

#include "storage/record_cursor.h"

namespace csm {

// Writes are contiguous per column (reads stride over the row layout),
// which keeps the transpose a small fraction of batch fill cost.
void RecordBatch::FillFromTable(const FactTable& table, size_t begin,
                                size_t n) {
  for (int i = 0; i < d_; ++i) {
    Value* col = dim_col(i);
    const Value* src = table.dim_row(begin) + i;
    for (size_t r = 0; r < n; ++r) col[r] = src[r * d_];
  }
  for (int i = 0; i < m_; ++i) {
    double* col = measure_col(i);
    const double* src = table.measure_row(begin) + i;
    for (size_t r = 0; r < n; ++r) col[r] = src[r * m_];
  }
  num_rows_ = n;
  zones_valid_ = false;
  const DictEncoding* enc = table.dict_encoding();
  has_codes_ = enc != nullptr && d_ > 0 &&
               static_cast<int>(enc->codes.size()) == d_;
  if (has_codes_) {
    code_cols_.resize(d_);
    for (int i = 0; i < d_; ++i) {
      code_cols_[i] = enc->codes[i].data() + begin;
    }
  }
}

bool RecordBatch::CodeZones(const uint32_t** mins,
                            const uint32_t** maxs) const {
  if (!has_codes_ || num_rows_ == 0) return false;
  if (!zones_valid_) {
    zone_min_.resize(d_);
    zone_max_.resize(d_);
    for (int i = 0; i < d_; ++i) {
      const uint32_t* col = code_cols_[i];
      uint32_t lo = col[0], hi = col[0];
      for (size_t r = 1; r < num_rows_; ++r) {
        lo = std::min(lo, col[r]);
        hi = std::max(hi, col[r]);
      }
      zone_min_[i] = lo;
      zone_max_[i] = hi;
    }
    zones_valid_ = true;
  }
  *mins = zone_min_.data();
  *maxs = zone_max_.data();
  return true;
}

namespace {

/// Transposes row-major table ranges into columns, one batch per call.
class FactTableBatchCursor : public BatchCursor {
 public:
  explicit FactTableBatchCursor(const FactTable& table) : table_(table) {}

  Result<size_t> NextBatch(RecordBatch* batch) override {
    const size_t n =
        std::min(batch->capacity(), table_.num_rows() - row_);
    batch->FillFromTable(table_, row_, n);
    row_ += n;
    return n;
  }

 private:
  const FactTable& table_;
  size_t row_ = 0;
};

class RecordToBatchAdapter : public BatchCursor {
 public:
  RecordToBatchAdapter(std::unique_ptr<RecordCursor> records, int d, int m)
      : records_(std::move(records)), d_(d), m_(m) {}

  Result<size_t> NextBatch(RecordBatch* batch) override {
    size_t n = 0;
    const size_t cap = batch->capacity();
    while (n < cap) {
      CSM_ASSIGN_OR_RETURN(bool has, records_->Next());
      if (!has) break;
      const Value* dims = records_->dims();
      const double* measures = records_->measures();
      for (int i = 0; i < d_; ++i) batch->dim_col(i)[n] = dims[i];
      for (int i = 0; i < m_; ++i) {
        batch->measure_col(i)[n] = measures[i];
      }
      ++n;
    }
    batch->set_num_rows(n);
    return n;
  }

  bool per_record_fallback() const override { return true; }

 private:
  std::unique_ptr<RecordCursor> records_;
  int d_;
  int m_;
};

class BatchToRecordAdapter : public RecordCursor {
 public:
  BatchToRecordAdapter(std::unique_ptr<BatchCursor> batches, int d, int m,
                       size_t capacity)
      : batches_(std::move(batches)),
        batch_(d, m, capacity),
        dims_(d),
        measures_(m) {}

  Result<bool> Next() override {
    if (row_ + 1 >= batch_.num_rows()) {
      CSM_ASSIGN_OR_RETURN(size_t n, batches_->NextBatch(&batch_));
      if (n == 0) return false;
      row_ = static_cast<size_t>(-1);
    }
    ++row_;
    batch_.GatherRow(row_, dims_.data(), measures_.data());
    return true;
  }

  const Value* dims() const override { return dims_.data(); }
  const double* measures() const override { return measures_.data(); }

 private:
  std::unique_ptr<BatchCursor> batches_;
  RecordBatch batch_;
  std::vector<Value> dims_;
  std::vector<double> measures_;
  size_t row_ = static_cast<size_t>(-1);
};

}  // namespace

std::unique_ptr<BatchCursor> MakeFactTableBatchCursor(
    const FactTable& table) {
  return std::make_unique<FactTableBatchCursor>(table);
}

std::unique_ptr<BatchCursor> MakeBatchCursorOverRecords(
    std::unique_ptr<RecordCursor> records, int num_dims,
    int num_measures) {
  return std::make_unique<RecordToBatchAdapter>(std::move(records),
                                                num_dims, num_measures);
}

std::unique_ptr<RecordCursor> MakeRecordCursorOverBatches(
    std::unique_ptr<BatchCursor> batches, int num_dims, int num_measures,
    size_t batch_capacity) {
  return std::make_unique<BatchToRecordAdapter>(
      std::move(batches), num_dims, num_measures, batch_capacity);
}

}  // namespace csm
