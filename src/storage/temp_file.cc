#include "storage/temp_file.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <random>

#include "common/logging.h"
#include "common/rng.h"

namespace csm {

namespace fs = std::filesystem;

Result<TempDir> TempDir::Make(const std::string& base) {
  std::string root = base;
  if (root.empty()) {
    const char* env = std::getenv("TMPDIR");
    root = env ? env : "/tmp";
  }
  std::random_device rd;
  Rng rng((static_cast<uint64_t>(rd()) << 32) ^ rd());
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::string path =
        root + "/csm-" + std::to_string(rng.Next() & 0xffffffffffULL);
    std::error_code ec;
    if (fs::create_directories(path, ec) && !ec) {
      return TempDir(std::move(path));
    }
  }
  return Status::IOError("could not create temp directory under " + root);
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), counter_(other.counter_) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = std::move(other.path_);
    counter_ = other.counter_;
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() { Remove(); }

void TempDir::Remove() {
  if (path_.empty()) return;
  std::error_code ec;
  fs::remove_all(path_, ec);
  if (ec) {
    CSM_LOG_WARNING() << "failed to remove temp dir " << path_ << ": "
                      << ec.message();
  }
  path_.clear();
}

std::string TempDir::NewFilePath(const std::string& prefix) {
  return path_ + "/" + prefix + "-" + std::to_string(counter_++) + ".bin";
}

// ---------------------------------------------------------------------------

SpillWriter::~SpillWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

SpillWriter::SpillWriter(SpillWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

SpillWriter& SpillWriter::operator=(SpillWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    bytes_written_ = other.bytes_written_;
    other.file_ = nullptr;
  }
  return *this;
}

Status SpillWriter::Open(const std::string& path) {
  CSM_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("open for write failed: " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

Status SpillWriter::Write(const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    return Status::IOError("write failed: " + path_);
  }
  bytes_written_ += bytes;
  return Status::OK();
}

Status SpillWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

// ---------------------------------------------------------------------------

SpillReader::~SpillReader() {
  if (file_ != nullptr) std::fclose(file_);
}

SpillReader::SpillReader(SpillReader&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)) {
  other.file_ = nullptr;
}

SpillReader& SpillReader::operator=(SpillReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

Status SpillReader::Open(const std::string& path) {
  CSM_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("open for read failed: " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

bool SpillReader::Read(void* data, size_t bytes, Status* status) {
  size_t got = std::fread(data, 1, bytes, file_);
  if (got == bytes) return true;
  if (got == 0 && std::feof(file_)) {
    *status = Status::OK();
    return false;
  }
  *status = Status::IOError("short read (" + std::to_string(got) + "/" +
                            std::to_string(bytes) + " bytes): " + path_);
  return false;
}

Status SpillReader::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

void RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace csm
