#include "storage/table_io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/temp_file.h"

namespace csm {

namespace {
constexpr uint64_t kFactMagic = 0x43534d4631ULL;  // "CSMF1"
}

Status WriteFactTableBinary(const FactTable& table,
                            const std::string& path) {
  SpillWriter writer;
  CSM_RETURN_NOT_OK(writer.Open(path));
  const uint64_t header[4] = {kFactMagic,
                              static_cast<uint64_t>(table.num_dims()),
                              static_cast<uint64_t>(table.num_measures()),
                              table.num_rows()};
  CSM_RETURN_NOT_OK(writer.Write(header, sizeof(header)));
  const int d = table.num_dims();
  const int m = table.num_measures();
  for (size_t row = 0; row < table.num_rows(); ++row) {
    CSM_RETURN_NOT_OK(writer.Write(table.dim_row(row), d * sizeof(Value)));
    if (m > 0) {
      CSM_RETURN_NOT_OK(
          writer.Write(table.measure_row(row), m * sizeof(double)));
    }
  }
  return writer.Close();
}

Result<FactTable> ReadFactTableBinary(SchemaPtr schema,
                                      const std::string& path) {
  SpillReader reader;
  CSM_RETURN_NOT_OK(reader.Open(path));
  uint64_t header[4];
  Status status;
  if (!reader.Read(header, sizeof(header), &status)) {
    return status.ok() ? Status::IOError("empty fact file: " + path)
                       : status;
  }
  if (header[0] != kFactMagic) {
    return Status::IOError("bad magic in fact file: " + path);
  }
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  if (header[1] != static_cast<uint64_t>(d) ||
      header[2] != static_cast<uint64_t>(m)) {
    return Status::InvalidArgument(
        "fact file column counts do not match schema: " + path);
  }
  FactTable table(std::move(schema));
  const uint64_t rows = header[3];
  table.Reserve(rows);
  std::vector<Value> dims(d);
  std::vector<double> measures(m);
  for (uint64_t i = 0; i < rows; ++i) {
    if (!reader.Read(dims.data(), d * sizeof(Value), &status)) {
      return status.ok() ? Status::IOError("fact file truncated: " + path)
                         : status;
    }
    if (m > 0 &&
        !reader.Read(measures.data(), m * sizeof(double), &status)) {
      return status.ok() ? Status::IOError("fact file truncated: " + path)
                         : status;
    }
    table.AppendRow(dims.data(), measures.data());
  }
  CSM_RETURN_NOT_OK(reader.Close());
  return table;
}

Status WriteFactTableCsv(const FactTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const Schema& schema = *table.schema();
  for (int i = 0; i < schema.num_dims(); ++i) {
    if (i > 0) out << ",";
    out << schema.dim(i).name;
  }
  for (int i = 0; i < schema.num_measures(); ++i) {
    out << "," << schema.measure_name(i);
  }
  out << "\n";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const Value* dims = table.dim_row(row);
    for (int i = 0; i < schema.num_dims(); ++i) {
      if (i > 0) out << ",";
      out << dims[i];
    }
    const double* measures = table.measure_row(row);
    for (int i = 0; i < schema.num_measures(); ++i) {
      out << "," << measures[i];
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<FactTable> ReadFactTableCsv(SchemaPtr schema,
                                   const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  FactTable table(schema);
  const int d = schema->num_dims();
  const int m = schema->num_measures();
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV file: " + path);
  }
  std::vector<Value> dims(d);
  std::vector<double> measures(m);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view body = StripWhitespace(line);
    if (body.empty()) continue;
    auto fields = Split(body, ',');
    if (static_cast<int>(fields.size()) != d + m) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected " + std::to_string(d + m) +
                                " fields, got " +
                                std::to_string(fields.size()));
    }
    for (int i = 0; i < d; ++i) {
      if (!ParseUint64(fields[i], &dims[i])) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad dimension value '" +
                                  std::string(fields[i]) + "'");
      }
    }
    for (int i = 0; i < m; ++i) {
      if (!ParseDouble(fields[d + i], &measures[i])) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad measure value '" +
                                  std::string(fields[d + i]) + "'");
      }
    }
    table.AppendRow(dims.data(), measures.data());
  }
  return table;
}

namespace {
constexpr uint64_t kMeasureMagic = 0x43534d4d31ULL;  // "CSMM1"
}

Status WriteMeasureTableBinary(const MeasureTable& table,
                               const std::string& path) {
  SpillWriter writer;
  CSM_RETURN_NOT_OK(writer.Open(path));
  const uint64_t header[3] = {kMeasureMagic,
                              static_cast<uint64_t>(table.num_dims()),
                              table.num_rows()};
  CSM_RETURN_NOT_OK(writer.Write(header, sizeof(header)));
  const int d = table.num_dims();
  for (size_t row = 0; row < table.num_rows(); ++row) {
    CSM_RETURN_NOT_OK(writer.Write(table.key_row(row), d * sizeof(Value)));
    const double v = table.value(row);
    CSM_RETURN_NOT_OK(writer.Write(&v, sizeof(v)));
  }
  return writer.Close();
}

Result<MeasureTable> ReadMeasureTableBinary(SchemaPtr schema,
                                            Granularity gran,
                                            std::string name,
                                            const std::string& path) {
  SpillReader reader;
  CSM_RETURN_NOT_OK(reader.Open(path));
  uint64_t header[3];
  Status status;
  if (!reader.Read(header, sizeof(header), &status)) {
    return status.ok() ? Status::IOError("empty measure file: " + path)
                       : status;
  }
  if (header[0] != kMeasureMagic) {
    return Status::IOError("bad magic in measure file: " + path);
  }
  const int d = schema->num_dims();
  if (header[1] != static_cast<uint64_t>(d)) {
    return Status::InvalidArgument(
        "measure file dimension count does not match schema: " + path);
  }
  MeasureTable table(std::move(schema), std::move(gran), std::move(name));
  const uint64_t rows = header[2];
  table.Reserve(rows);
  std::vector<Value> key(d);
  for (uint64_t i = 0; i < rows; ++i) {
    double v;
    if (!reader.Read(key.data(), d * sizeof(Value), &status) ||
        !reader.Read(&v, sizeof(v), &status)) {
      return status.ok() ? Status::IOError("measure file truncated: " +
                                           path)
                         : status;
    }
    table.Append(key.data(), v);
  }
  CSM_RETURN_NOT_OK(reader.Close());
  return table;
}

Status WriteMeasureTableCsv(const MeasureTable& table,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const Schema& schema = *table.schema();
  const Granularity& gran = table.granularity();
  for (int i = 0; i < schema.num_dims(); ++i) {
    if (i > 0) out << ",";
    out << schema.dim(i).name;
  }
  out << "," << table.name() << "\n";
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const Value* key = table.key_row(row);
    for (int i = 0; i < schema.num_dims(); ++i) {
      if (i > 0) out << ",";
      if (gran.level(i) == schema.dim(i).hierarchy->all_level()) {
        out << "*";
      } else {
        out << key[i];
      }
    }
    const double v = table.value(row);
    if (std::isnan(v)) {
      out << ",null\n";
    } else {
      out << "," << v << "\n";
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace csm
