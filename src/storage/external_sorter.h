#ifndef CSM_STORAGE_EXTERNAL_SORTER_H_
#define CSM_STORAGE_EXTERNAL_SORTER_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "model/sort_key.h"
#include "storage/fact_table.h"
#include "storage/temp_file.h"

namespace csm {

/// Counters reported by a sort; feed the Fig. 6(e) cost breakdown.
struct SortStats {
  uint64_t rows = 0;
  uint64_t runs = 0;           // 0 for a pure in-memory sort
  uint64_t spilled_bytes = 0;  // run files written
  double seconds = 0;
};

/// Sorts a fact table by `key` (an order vector over generalized dimension
/// values; ties broken by the full base-level dimension tuple so the result
/// order is total and deterministic).
///
/// When the table fits in `memory_budget_bytes` the sort happens in memory;
/// otherwise the classic external merge sort is used: sorted runs of
/// ~budget/2 bytes are spilled into `temp_dir` and merged in one multi-way
/// pass. The paper's evaluation framework assumes exactly this sort
/// machinery between scan passes (§5.2).
///
/// `cancel` (optional) is polled between runs and merge batches; when it
/// becomes true the sort stops and returns Status::Cancelled.
Result<FactTable> SortFactTable(FactTable&& input, const SortKey& key,
                                size_t memory_budget_bytes,
                                TempDir* temp_dir, SortStats* stats,
                                const std::atomic<bool>* cancel = nullptr);

}  // namespace csm

#endif  // CSM_STORAGE_EXTERNAL_SORTER_H_
