#ifndef CSM_STORAGE_EXTERNAL_SORTER_H_
#define CSM_STORAGE_EXTERNAL_SORTER_H_

#include <atomic>
#include <cstdint>

#include "common/result.h"
#include "model/sort_key.h"
#include "storage/fact_table.h"
#include "storage/temp_file.h"

namespace csm {

/// Counters reported by a sort; feed the Fig. 6(e) cost breakdown.
struct SortStats {
  uint64_t rows = 0;
  uint64_t runs = 0;           // 0 for a pure in-memory sort
  uint64_t spilled_bytes = 0;  // run files written
  uint64_t overlapped_runs = 0;  // runs written while another worker was
                                 // sorting or spilling concurrently
  int threads_used = 1;  // run-generation workers actually spawned
  double seconds = 0;
};

/// Knobs of a sort. `threads` controls run generation: chunks are sorted
/// (and their spill I/O overlapped) on this many workers; 0 means hardware
/// concurrency. The merge stays single-pass regardless.
struct SortOptions {
  size_t memory_budget_bytes = 256ull << 20;
  TempDir* temp_dir = nullptr;
  int threads = 1;
  /// Polled between chunks and merge batches; when it becomes true the
  /// sort stops and returns Status::Cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

/// Sorts a fact table by `key` (an order vector over generalized dimension
/// values; ties broken by the full base-level dimension tuple, then by
/// source row index, so the result is the *stable* sort of the input and
/// identical across thread counts and budgets).
///
/// When the table fits in `memory_budget_bytes` the sort happens in memory
/// (partitioned across workers and merged when options.threads > 1);
/// otherwise the classic external merge sort is used: workers pull chunks
/// of the input, sort them in place (no copy of the chunk rows), and spill
/// sorted runs into `temp_dir` concurrently, then one multi-way merge pass
/// produces the output. The paper's evaluation framework assumes exactly
/// this sort machinery between scan passes (§5.2).
Result<FactTable> SortFactTable(FactTable&& input, const SortKey& key,
                                const SortOptions& options,
                                SortStats* stats = nullptr);

/// Single-threaded convenience overload (the pre-parallel signature).
inline Result<FactTable> SortFactTable(
    FactTable&& input, const SortKey& key, size_t memory_budget_bytes,
    TempDir* temp_dir, SortStats* stats,
    const std::atomic<bool>* cancel = nullptr) {
  SortOptions options;
  options.memory_budget_bytes = memory_budget_bytes;
  options.temp_dir = temp_dir;
  options.cancel = cancel;
  return SortFactTable(std::move(input), key, options, stats);
}

}  // namespace csm

#endif  // CSM_STORAGE_EXTERNAL_SORTER_H_
