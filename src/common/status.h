#ifndef CSM_COMMON_STATUS_H_
#define CSM_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace csm {

/// Error category for a failed operation.
///
/// The library reports all recoverable errors through Status / Result rather
/// than exceptions, following the conventions of large C++ database systems
/// (Arrow, RocksDB). StatusCode distinguishes the broad failure classes that
/// callers may want to branch on; the human-readable message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kIOError,
  kParseError,
  kResourceExhausted,
  kInternal,
  kCancelled,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail but returns no value.
///
/// A Status is cheap to pass around: the OK state is represented by a null
/// pointer, so success paths never allocate. Construct errors with the
/// factory functions (`Status::InvalidArgument(...)` etc.) which accept a
/// message assembled by the caller.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message);

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns this status with `context` prefixed to the message, or OK
  /// unchanged. Used to add call-site detail while propagating errors.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null means OK
};

/// Propagates a non-OK Status to the caller.
#define CSM_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::csm::Status _csm_status = (expr);         \
    if (!_csm_status.ok()) return _csm_status;  \
  } while (false)

}  // namespace csm

#endif  // CSM_COMMON_STATUS_H_
