#ifndef CSM_COMMON_FLAT_HASH_H_
#define CSM_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace csm {

/// Open-addressing aggregation hash table with inline fixed-width keys.
///
/// The key of every entry is a fixed-length span of `uint64_t` values
/// (region keys and order positions have a width known per measure), stored
/// inline in one flat arena — no per-entry heap allocation and no pointer
/// chase on probe, unlike `std::unordered_map<std::vector<uint64_t>, V>`.
/// The full 64-bit hash of every occupied slot is cached next to it:
/// probes compare the cached hash before touching the key arena, growth
/// rehashes by cached hash without re-mixing any key, and hash 0 doubles
/// as the empty-slot marker (real hashes are forced non-zero).
///
/// Collisions use linear probing; deletion is tombstone-free backward-shift
/// (displaced entries slide toward their home slot), so long-lived tables
/// that drain entries continuously — the sort/scan watermark-finalization
/// path — never degrade into tombstone chains and never pay a rehash to
/// stay clean. `FlushIf` is that drain: it pops every entry matching a
/// predicate in one sweep, optionally delivering them in lexicographic key
/// order (matching the `std::map` iteration order the sort/scan engine's
/// emission semantics were written against).
///
/// V must be default-constructible and movable. References returned by
/// FindOrInsert are invalidated by the next insertion (growth may move
/// slots), like every open-addressing table.
template <typename V>
class FlatKeyMap {
 public:
  using Value64 = uint64_t;

  FlatKeyMap() : FlatKeyMap(1) {}

  explicit FlatKeyMap(size_t key_width, size_t initial_capacity = 0)
      : width_(key_width == 0 ? 1 : key_width) {
    size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    Rebuild(cap);
  }

  FlatKeyMap(FlatKeyMap&&) = default;
  FlatKeyMap& operator=(FlatKeyMap&&) = default;
  FlatKeyMap(const FlatKeyMap&) = delete;
  FlatKeyMap& operator=(const FlatKeyMap&) = delete;

  size_t key_width() const { return width_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Non-zero 64-bit hash of a key span (0 marks an empty slot).
  uint64_t HashKey(const Value64* key) const {
    return NonZeroHash(HashSpan(key, width_));
  }

  /// Returns the value for `key`, or nullptr.
  V* Find(const Value64* key) { return FindHashed(key, HashKey(key)); }
  const V* Find(const Value64* key) const {
    return const_cast<FlatKeyMap*>(this)->FindHashed(key, HashKey(key));
  }

  V* FindHashed(const Value64* key, uint64_t hash) {
    size_t i = hash & mask_;
    while (hashes_[i] != 0) {
      if (hashes_[i] == hash && KeyEquals(i, key)) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Finds or default-inserts `key`; `*inserted` reports which happened.
  V& FindOrInsert(const Value64* key, bool* inserted) {
    return FindOrInsertHashed(key, HashKey(key), inserted);
  }

  /// Hints the cache that the probe chain of `hash` is about to be
  /// walked: touches the home slot's cached-hash lane and key stripe.
  /// Purely a speed hint (no-op without CSM_SIMD or on compilers
  /// without __builtin_prefetch); bulk probes issue it a small window
  /// ahead of the actual FindOrInsertHashed.
  void PrefetchHashed(uint64_t hash) const {
#if defined(CSM_SIMD) && (defined(__GNUC__) || defined(__clang__))
    const size_t i = hash & mask_;
    __builtin_prefetch(hashes_.data() + i, /*rw=*/0, /*locality=*/1);
    __builtin_prefetch(keys_.data() + i * width_, 0, 1);
#else
    (void)hash;
#endif
  }

  V& FindOrInsertHashed(const Value64* key, uint64_t hash,
                        bool* inserted) {
    size_t i = hash & mask_;
    while (hashes_[i] != 0) {
      if (hashes_[i] == hash && KeyEquals(i, key)) {
        *inserted = false;
        return values_[i];
      }
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 10 > capacity_ * 7) {  // keep load factor under 0.7
      Grow(capacity_ * 2);
      i = hash & mask_;
      while (hashes_[i] != 0) i = (i + 1) & mask_;
    }
    hashes_[i] = hash;
    std::copy(key, key + width_, keys_.data() + i * width_);
    ++size_;
    *inserted = true;
    return values_[i];
  }

  /// Removes `key` if present (backward-shift, no tombstone).
  bool Erase(const Value64* key) {
    const uint64_t hash = HashKey(key);
    size_t i = hash & mask_;
    while (hashes_[i] != 0) {
      if (hashes_[i] == hash && KeyEquals(i, key)) {
        EraseSlot(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Visits every entry as fn(const Value64* key, V& value) in slot order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] != 0) fn(keys_.data() + i * width_, values_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] != 0) fn(keys_.data() + i * width_, values_[i]);
    }
  }

  /// Pops every entry where pred(key, value) is true and hands it to
  /// emit(key, value&&), with the table already consistent when emit runs
  /// (emitting code may insert into *other* tables freely). When
  /// `sorted_by_key`, entries are emitted in lexicographic key order.
  /// Returns the number of entries flushed. The popped entries are
  /// removed by backward-shift and the table is shrunk when it became
  /// mostly empty, so a long scan's drain never rehashes on the hot path
  /// and never leaves a sparse table behind.
  template <typename Pred, typename Emit>
  size_t FlushIf(Pred&& pred, Emit&& emit, bool sorted_by_key = false) {
    flush_keys_.clear();
    flush_values_.clear();
    for (size_t i = 0; i < capacity_; ++i) {
      if (hashes_[i] == 0) continue;
      const Value64* k = keys_.data() + i * width_;
      if (!pred(k, const_cast<const V&>(values_[i]))) continue;
      flush_keys_.insert(flush_keys_.end(), k, k + width_);
      flush_values_.push_back(std::move(values_[i]));
    }
    const size_t n = flush_values_.size();
    for (size_t e = 0; e < n; ++e) {
      Erase(flush_keys_.data() + e * width_);
    }
    MaybeShrink();
    if (n == 0) return 0;
    if (!sorted_by_key) {
      for (size_t e = 0; e < n; ++e) {
        emit(flush_keys_.data() + e * width_, std::move(flush_values_[e]));
      }
      return n;
    }
    flush_order_.resize(n);
    for (size_t e = 0; e < n; ++e) flush_order_[e] = e;
    std::sort(flush_order_.begin(), flush_order_.end(),
              [this](size_t a, size_t b) {
                const Value64* ka = flush_keys_.data() + a * width_;
                const Value64* kb = flush_keys_.data() + b * width_;
                for (size_t i = 0; i < width_; ++i) {
                  if (ka[i] != kb[i]) return ka[i] < kb[i];
                }
                return false;
              });
    for (size_t e : flush_order_) {
      emit(flush_keys_.data() + e * width_, std::move(flush_values_[e]));
    }
    return n;
  }

  void Clear() {
    std::fill(hashes_.begin(), hashes_.end(), 0);
    for (auto& v : values_) v = V();
    size_ = 0;
  }

  void Reserve(size_t n) {
    size_t cap = capacity_;
    while (n * 10 > cap * 7) cap <<= 1;
    if (cap != capacity_) Grow(cap);
  }

  /// Approximate resident bytes of the slot arrays (excludes heap owned
  /// by the values themselves).
  size_t MemoryBytes() const {
    return capacity_ * (sizeof(uint64_t) + width_ * sizeof(Value64) +
                        sizeof(V)) +
           flush_keys_.capacity() * sizeof(Value64) +
           flush_values_.capacity() * sizeof(V);
  }

 private:
  bool KeyEquals(size_t slot, const Value64* key) const {
    const Value64* k = keys_.data() + slot * width_;
    for (size_t i = 0; i < width_; ++i) {
      if (k[i] != key[i]) return false;
    }
    return true;
  }

  void Rebuild(size_t cap) {
    capacity_ = cap;
    mask_ = cap - 1;
    hashes_.assign(cap, 0);
    keys_.assign(cap * width_, 0);
    values_.clear();
    values_.resize(cap);
  }

  void Grow(size_t new_cap) {
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<Value64> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    const size_t old_cap = capacity_;
    Rebuild(new_cap);
    // Reinsert by cached hash — keys are copied, never re-mixed.
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_hashes[i] == 0) continue;
      size_t j = old_hashes[i] & mask_;
      while (hashes_[j] != 0) j = (j + 1) & mask_;
      hashes_[j] = old_hashes[i];
      std::copy(old_keys.data() + i * width_,
                old_keys.data() + (i + 1) * width_,
                keys_.data() + j * width_);
      values_[j] = std::move(old_values[i]);
    }
  }

  void MaybeShrink() {
    if (capacity_ <= 1024 || size_ * 8 >= capacity_) return;
    size_t cap = 16;
    while (size_ * 10 > cap * 7 || cap < 16) cap <<= 1;
    Grow(std::max<size_t>(cap, 16));
  }

  /// Backward-shift deletion: close the probe chain over `slot` by
  /// sliding displaced entries toward their home buckets.
  void EraseSlot(size_t slot) {
    size_t i = slot;
    size_t j = slot;
    for (;;) {
      j = (j + 1) & mask_;
      if (hashes_[j] == 0) break;
      const size_t home = hashes_[j] & mask_;
      // Entry j may move to i iff i lies in the cyclic range [home, j).
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        hashes_[i] = hashes_[j];
        std::copy(keys_.data() + j * width_,
                  keys_.data() + (j + 1) * width_,
                  keys_.data() + i * width_);
        values_[i] = std::move(values_[j]);
        i = j;
      }
    }
    hashes_[i] = 0;
    values_[i] = V();
    --size_;
  }

  size_t width_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
  std::vector<uint64_t> hashes_;  // 0 = empty; cached full hash otherwise
  std::vector<Value64> keys_;     // capacity_ runs of width_ values
  std::vector<V> values_;
  // FlushIf scratch, reused across rounds so the drain does not allocate.
  std::vector<Value64> flush_keys_;
  std::vector<V> flush_values_;
  std::vector<size_t> flush_order_;
};

}  // namespace csm

#endif  // CSM_COMMON_FLAT_HASH_H_
