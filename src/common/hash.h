#ifndef CSM_COMMON_HASH_H_
#define CSM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace csm {

/// 64-bit finalization mix from MurmurHash3 / splitmix64. Good avalanche
/// behaviour for integer keys at a few instructions per value.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines an accumulated hash with the next value (boost::hash_combine
/// style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Seed of HashSpan, exposed so column-wise hashing can reproduce it:
/// initialize every row's hash to the seed, fold one key column at a
/// time with HashCombineColumn, and the results are bit-identical to
/// HashSpan over each row's gathered key.
inline constexpr uint64_t kHashSpanSeed = 0x2545f4914f6cdd1dULL;

/// Hashes a span of 64-bit values (e.g. an encoded region key).
inline uint64_t HashSpan(const uint64_t* data, size_t n) {
  uint64_t h = kHashSpanSeed;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// Column-wise HashSpan step: folds `column[r]` into `hashes[r]` for n
/// rows. One call per key column (in key order, hashes pre-seeded with
/// kHashSpanSeed) equals HashSpan row by row.
inline void HashCombineColumn(uint64_t* hashes, const uint64_t* column,
                              size_t n) {
  for (size_t r = 0; r < n; ++r) {
    hashes[r] = HashCombine(hashes[r], column[r]);
  }
}

/// Forces a hash non-zero; FlatKeyMap reserves 0 as its empty-slot
/// marker, so every hash handed to its *Hashed entry points must pass
/// through this.
inline uint64_t NonZeroHash(uint64_t h) {
  return h == 0 ? 0x9e3779b97f4a7c15ULL : h;
}

inline uint64_t HashVector(const std::vector<uint64_t>& v) {
  return HashSpan(v.data(), v.size());
}

/// Hash functor for std::vector<uint64_t> keys in unordered containers.
struct VectorHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    return static_cast<size_t>(HashVector(v));
  }
};

}  // namespace csm

#endif  // CSM_COMMON_HASH_H_
