#include "common/status.h"

namespace csm {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return state_ ? state_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(state_->code));
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += state_->message;
  return Status(state_->code, std::move(msg));
}

}  // namespace csm
