#ifndef CSM_COMMON_LOGGING_H_
#define CSM_COMMON_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace csm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
/// Controlled by the CSM_LOG_LEVEL environment variable (debug, info,
/// warning, error) and defaults to warning so library users see problems
/// but not chatter.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  bool enabled_;
  bool fatal_;
};

}  // namespace internal
}  // namespace csm

#define CSM_LOG_INTERNAL(level) \
  ::csm::internal::LogMessage(level, __FILE__, __LINE__)

#define CSM_LOG_DEBUG() CSM_LOG_INTERNAL(::csm::LogLevel::kDebug)
#define CSM_LOG_INFO() CSM_LOG_INTERNAL(::csm::LogLevel::kInfo)
#define CSM_LOG_WARNING() CSM_LOG_INTERNAL(::csm::LogLevel::kWarning)
#define CSM_LOG_ERROR() CSM_LOG_INTERNAL(::csm::LogLevel::kError)

/// Checks an invariant that must hold in all build modes; violation logs
/// the message and aborts. Used for internal consistency conditions whose
/// failure would make continuing unsafe (never for user input — user input
/// errors are reported via Status).
#define CSM_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::csm::internal::LogMessage(::csm::LogLevel::kError, __FILE__,         \
                              __LINE__, /*fatal=*/true)                  \
      << "Check failed: " #condition " "

#define CSM_DCHECK(condition) assert(condition)

#endif  // CSM_COMMON_LOGGING_H_
