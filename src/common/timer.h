#ifndef CSM_COMMON_TIMER_H_
#define CSM_COMMON_TIMER_H_

#include <chrono>

namespace csm {

/// Wall-clock stopwatch for the benchmark harnesses and the engine cost
/// breakdown instrumentation (Fig. 6(e) reproduces sort vs. scan seconds).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals.
class AccumTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_; }

 private:
  Timer timer_;
  double total_ = 0;
};

/// RAII guard adding the scope's duration to a double accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.Seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer timer_;
  double* sink_;
};

}  // namespace csm

#endif  // CSM_COMMON_TIMER_H_
