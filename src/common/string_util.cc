#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace csm {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitTopLevel(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    } else if (s[i] == '(' || s[i] == '[') {
      ++depth;
    } else if (s[i] == ')' || s[i] == ']') {
      --depth;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

namespace {
// Copies into a NUL-terminated buffer for the strto* family.
bool ToCString(std::string_view s, char* buf, size_t cap) {
  s = StripWhitespace(s);
  if (s.empty() || s.size() >= cap) return false;
  for (size_t i = 0; i < s.size(); ++i) buf[i] = s[i];
  buf[s.size()] = '\0';
  return true;
}
}  // namespace

bool ParseInt64(std::string_view s, int64_t* out) {
  char buf[64];
  if (!ToCString(s, buf, sizeof(buf))) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end == buf || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  char buf[64];
  if (!ToCString(s, buf, sizeof(buf))) return false;
  if (buf[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf, &end, 10);
  if (errno != 0 || end == buf || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  char buf[64];
  if (!ToCString(s, buf, sizeof(buf))) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end == buf || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace csm
