#ifndef CSM_COMMON_RESULT_H_
#define CSM_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace csm {

/// Holds either a value of type T or an error Status.
///
/// Result<T> is the return type for fallible operations that produce a
/// value. It mirrors arrow::Result: construct from a T for success or from a
/// non-OK Status for failure. Accessing the value of an error Result is a
/// programming bug and aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status");
  }

  /// Constructs a success result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, on failure returns the error Status from the enclosing
/// function.
#define CSM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie()

#define CSM_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define CSM_ASSIGN_OR_RETURN_CONCAT(x, y) CSM_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define CSM_ASSIGN_OR_RETURN(lhs, expr) \
  CSM_ASSIGN_OR_RETURN_IMPL(            \
      CSM_ASSIGN_OR_RETURN_CONCAT(_csm_result_, __LINE__), lhs, expr)

}  // namespace csm

#endif  // CSM_COMMON_RESULT_H_
