#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace csm {

namespace {

LogLevel InitialLogLevel() {
  const char* env = std::getenv("CSM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLogLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStore().load()); }

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), enabled_(fatal || level >= GetLogLevel()),
      fatal_(fatal) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " "
            << (base ? base + 1 : file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace csm
