#ifndef CSM_COMMON_RNG_H_
#define CSM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace csm {

/// Deterministic xorshift128+ generator used by the data generators and
/// property-based tests. Seeded explicitly so every dataset and test case is
/// reproducible across runs and platforms; std::mt19937 is avoided because
/// its distribution adapters are not portable across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // Split the seed into two non-zero lanes.
    s0_ = Mix64(seed + 0x9e3779b97f4a7c15ULL);
    s1_ = Mix64(s0_ + 0xbf58476d1ce4e5b9ULL);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(
                    hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Zipf-distributed value in [0, n) with exponent `theta` in (0, 1).
  /// Uses the rejection-inversion-free approximation common in YCSB-style
  /// generators; adequate for workload skew, not for statistics.
  uint64_t Zipf(uint64_t n, double theta) {
    // Power-law via inverse transform on a continuous approximation.
    double u = NextDouble();
    double v = std::pow(static_cast<double>(n), 1.0 - theta);
    double x = std::pow(u * (v - 1.0) + 1.0, 1.0 / (1.0 - theta)) - 1.0;
    uint64_t r = static_cast<uint64_t>(x);
    return r >= n ? n - 1 : r;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace csm

#endif  // CSM_COMMON_RNG_H_
