#ifndef CSM_COMMON_STRING_UTIL_H_
#define CSM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace csm {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits on `sep` at top nesting level only: separators inside (...) or
/// [...] are ignored. Used by the workflow DSL parser for argument lists.
std::vector<std::string_view> SplitTopLevel(std::string_view s, char sep);

/// Case-sensitive prefix / suffix tests.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Parses a signed/unsigned integer or double; returns false on any
/// non-numeric trailing characters.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseDouble(std::string_view s, double* out);

}  // namespace csm

#endif  // CSM_COMMON_STRING_UTIL_H_
