#ifndef CSM_EXPR_PREDICATE_KERNEL_H_
#define CSM_EXPR_PREDICATE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/scalar_expr.h"

namespace csm {

/// A dimension dictionary as the expression layer sees it: the sorted
/// array of distinct values, indexed by code. (A plain view rather than
/// storage's DimDictionary so csm_expr keeps its common-only dependency.)
struct DictColumnView {
  const uint64_t* values = nullptr;
  size_t size = 0;
};

/// Whole-batch predicate verdict from zone maps (see
/// PredicateKernel::JudgeBatch).
enum class BatchVerdict : uint8_t {
  kAllFalse,  // provably false for every row: skip the batch outright
  kAllTrue,   // provably true for every row: select all without masks
  kUnknown,   // mixed or unprovable: run Select row-wise
};

/// A selection condition compiled to columnar kernels: instead of running
/// the BoundExpr stack machine once per row, the kernel evaluates whole
/// batch columns into 0/1 byte masks and compacts the surviving row
/// indices into a dense selection vector.
///
/// Supported shapes — the subset of the expression grammar whose
/// interpreter semantics reduce to per-element column arithmetic:
///   * comparisons (< <= > >= == !=) between two atoms, where an atom is
///     a literal, a dimension variable, or a measure variable;
///   * bare atoms used as predicates (truthiness test);
///   * !, && and || combinations of supported shapes.
/// Everything else (arithmetic, calls, combine references) returns
/// nullopt from Compile and the caller falls back to the per-row
/// interpreter. The kernel's masks are bit-identical to
/// `BoundExpr::EvalBool` for every input, including NaN measures:
/// truthiness is `v != 0 && !(v != v)`, comparisons use raw double
/// comparison (false on NaN except `!=`), `!` maps NaN to true, exactly
/// as the stack machine does.
///
/// Variable resolution replicates `BoundExpr::Bind` against the
/// `FactRowVars` layout: case-insensitive match, a variable "X.M" also
/// matches a slot named "X", slots [0, num_dims) are dimension columns
/// and the rest are measure columns.
///
/// Select() mutates internal scratch buffers, so a kernel instance must
/// not be shared across executors — give each executor its own copy
/// (instances are cheaply copyable, scratch is re-grown on first use).
class PredicateKernel {
 public:
  /// Compiles `expr` against the slot layout, or nullopt when the shape
  /// is not vectorizable (caller keeps the interpreter).
  static std::optional<PredicateKernel> Compile(
      const ScalarExpr& expr, const std::vector<std::string>& vars,
      int num_dims);

  /// Evaluates the predicate over rows [0, n) of the given columns and
  /// writes the indices of surviving rows into `sel` (capacity >= n),
  /// in ascending order. Returns the number of selected rows.
  ///
  /// When `code_cols` is non-null (one uint32 code column per dimension,
  /// from a dictionary-encoded batch) and BindDictionaries has compiled
  /// an instruction to a bitset, that instruction evaluates as one bitset
  /// probe per code instead of a double comparison per row. Results are
  /// bit-identical either way: the bitset entries are precomputed with
  /// the exact comparison the row loop would run.
  size_t Select(const uint64_t* const* dim_cols,
                const double* const* measure_cols, size_t n, uint32_t* sel,
                const uint32_t* const* code_cols = nullptr) const;

  /// Compiles every dimension-vs-constant comparison (and bare-dimension
  /// truthiness test) into a per-dictionary bitset: bits[code] is the
  /// comparison evaluated once against the dictionary value. `views` has
  /// `num_dims` entries; dimensions without a dictionary (null values)
  /// simply stay uncompiled. Idempotent per kernel copy; call once at
  /// plan time. Bitsets are shared across kernel copies.
  void BindDictionaries(const DictColumnView* views, int num_dims);

  /// Zone-map judgment: given per-dimension [zone_min, zone_max] code
  /// ranges for a batch (from RecordBatch::CodeZones), decides whether
  /// the predicate is provably false (skip the batch without touching a
  /// row), provably true (select every row without masks), or unknown.
  /// Sound because a zone range is a superset of the codes present.
  /// Only meaningful after BindDictionaries; instructions that did not
  /// compile to bitsets (measure atoms, dim-vs-dim) judge as kUnknown.
  BatchVerdict JudgeBatch(const uint32_t* zone_min,
                          const uint32_t* zone_max) const;

  /// Number of instructions compiled to dictionary bitsets (0 before
  /// BindDictionaries).
  int dict_bound() const { return dict_bound_; }

  /// Total bits across all bound dictionary bitsets (obs counter food).
  size_t dict_bits() const { return dict_bits_total_; }

  /// One-line description for EXPLAIN output, e.g. "cmp(2) and/or(1)".
  std::string Describe() const;

 private:
  struct Operand {
    enum Kind : uint8_t { kDim, kMeasure, kConst };
    Kind kind = kConst;
    int col = 0;      // column index within its kind
    double value = 0;  // kConst only
  };

  enum class What : uint8_t {
    kTest,  // push truthiness mask of operand a
    kCmp,   // push comparison mask of (a cmp b); b never kConst-lhs
    kNot,   // top ^= 1
    kAnd,   // pop b; top &= b
    kOr,    // pop b; top |= b
  };

  /// A dictionary-compiled instruction: one truth byte per code plus a
  /// prefix popcount (prefix[i] = ones in bits[0, i)), which answers
  /// "any/all true in code range [lo, hi]" in O(1) for JudgeBatch.
  struct DictBits {
    std::vector<uint8_t> bits;
    std::vector<uint32_t> prefix;  // bits.size() + 1 entries
  };

  struct Instr {
    What what;
    ScalarExpr::Op cmp = ScalarExpr::Op::kNone;  // kCmp only
    Operand a, b;
    std::shared_ptr<const DictBits> dict;  // kTest/kCmp on a dim, bound
  };

  bool CompileNode(const ScalarExpr& expr,
                   const std::vector<std::string>& vars, int num_dims,
                   int depth);
  static bool ResolveAtom(const ScalarExpr& expr,
                          const std::vector<std::string>& vars,
                          int num_dims, Operand* out);

  // Returns the operand as a double column: measures are returned
  // in-place, dimensions are converted into `scratch` (resized to n).
  static const double* LoadColumn(const Operand& op,
                                  const uint64_t* const* dim_cols,
                                  const double* const* measure_cols,
                                  size_t n, std::vector<double>* scratch);

  std::vector<Instr> code_;
  int max_depth_ = 0;  // mask stack high-water, fixed at compile time
  int num_cmps_ = 0;
  int num_bools_ = 0;  // and/or/not combinators
  int dict_bound_ = 0;          // instrs compiled to dictionary bitsets
  size_t dict_bits_total_ = 0;  // sum of bound bitset sizes

  // Scratch: one byte-mask lane per stack level plus two double lanes
  // for dimension->double conversion. Mutable so Select stays const for
  // callers holding the kernel by value next to other per-executor
  // scratch.
  mutable std::vector<std::vector<uint8_t>> masks_;
  mutable std::vector<double> lhs_scratch_;
  mutable std::vector<double> rhs_scratch_;
};

}  // namespace csm

#endif  // CSM_EXPR_PREDICATE_KERNEL_H_
