#ifndef CSM_EXPR_PREDICATE_KERNEL_H_
#define CSM_EXPR_PREDICATE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/scalar_expr.h"

namespace csm {

/// A selection condition compiled to columnar kernels: instead of running
/// the BoundExpr stack machine once per row, the kernel evaluates whole
/// batch columns into 0/1 byte masks and compacts the surviving row
/// indices into a dense selection vector.
///
/// Supported shapes — the subset of the expression grammar whose
/// interpreter semantics reduce to per-element column arithmetic:
///   * comparisons (< <= > >= == !=) between two atoms, where an atom is
///     a literal, a dimension variable, or a measure variable;
///   * bare atoms used as predicates (truthiness test);
///   * !, && and || combinations of supported shapes.
/// Everything else (arithmetic, calls, combine references) returns
/// nullopt from Compile and the caller falls back to the per-row
/// interpreter. The kernel's masks are bit-identical to
/// `BoundExpr::EvalBool` for every input, including NaN measures:
/// truthiness is `v != 0 && !(v != v)`, comparisons use raw double
/// comparison (false on NaN except `!=`), `!` maps NaN to true, exactly
/// as the stack machine does.
///
/// Variable resolution replicates `BoundExpr::Bind` against the
/// `FactRowVars` layout: case-insensitive match, a variable "X.M" also
/// matches a slot named "X", slots [0, num_dims) are dimension columns
/// and the rest are measure columns.
///
/// Select() mutates internal scratch buffers, so a kernel instance must
/// not be shared across executors — give each executor its own copy
/// (instances are cheaply copyable, scratch is re-grown on first use).
class PredicateKernel {
 public:
  /// Compiles `expr` against the slot layout, or nullopt when the shape
  /// is not vectorizable (caller keeps the interpreter).
  static std::optional<PredicateKernel> Compile(
      const ScalarExpr& expr, const std::vector<std::string>& vars,
      int num_dims);

  /// Evaluates the predicate over rows [0, n) of the given columns and
  /// writes the indices of surviving rows into `sel` (capacity >= n),
  /// in ascending order. Returns the number of selected rows.
  size_t Select(const uint64_t* const* dim_cols,
                const double* const* measure_cols, size_t n,
                uint32_t* sel) const;

  /// One-line description for EXPLAIN output, e.g. "cmp(2) and/or(1)".
  std::string Describe() const;

 private:
  struct Operand {
    enum Kind : uint8_t { kDim, kMeasure, kConst };
    Kind kind = kConst;
    int col = 0;      // column index within its kind
    double value = 0;  // kConst only
  };

  enum class What : uint8_t {
    kTest,  // push truthiness mask of operand a
    kCmp,   // push comparison mask of (a cmp b); b never kConst-lhs
    kNot,   // top ^= 1
    kAnd,   // pop b; top &= b
    kOr,    // pop b; top |= b
  };

  struct Instr {
    What what;
    ScalarExpr::Op cmp = ScalarExpr::Op::kNone;  // kCmp only
    Operand a, b;
  };

  bool CompileNode(const ScalarExpr& expr,
                   const std::vector<std::string>& vars, int num_dims,
                   int depth);
  static bool ResolveAtom(const ScalarExpr& expr,
                          const std::vector<std::string>& vars,
                          int num_dims, Operand* out);

  // Returns the operand as a double column: measures are returned
  // in-place, dimensions are converted into `scratch` (resized to n).
  static const double* LoadColumn(const Operand& op,
                                  const uint64_t* const* dim_cols,
                                  const double* const* measure_cols,
                                  size_t n, std::vector<double>* scratch);

  std::vector<Instr> code_;
  int max_depth_ = 0;  // mask stack high-water, fixed at compile time
  int num_cmps_ = 0;
  int num_bools_ = 0;  // and/or/not combinators

  // Scratch: one byte-mask lane per stack level plus two double lanes
  // for dimension->double conversion. Mutable so Select stays const for
  // callers holding the kernel by value next to other per-executor
  // scratch.
  mutable std::vector<std::vector<uint8_t>> masks_;
  mutable std::vector<double> lhs_scratch_;
  mutable std::vector<double> rhs_scratch_;
};

}  // namespace csm

#endif  // CSM_EXPR_PREDICATE_KERNEL_H_
