#include "expr/scalar_expr.h"

#include <cctype>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace csm {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.';
}
}  // namespace

// ---------------------------------------------------------------------------
// Construction helpers

std::shared_ptr<const ScalarExpr> ScalarExpr::Const(double v) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kConst;
  e->const_value_ = v;
  return e;
}

std::shared_ptr<const ScalarExpr> ScalarExpr::Var(std::string name) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kVar;
  e->name_ = std::move(name);
  return e;
}

std::shared_ptr<const ScalarExpr> ScalarExpr::Unary(
    Op op, std::shared_ptr<const ScalarExpr> operand) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kUnary;
  e->op_ = op;
  e->children_ = {std::move(operand)};
  return e;
}

std::shared_ptr<const ScalarExpr> ScalarExpr::Binary(
    Op op, std::shared_ptr<const ScalarExpr> lhs,
    std::shared_ptr<const ScalarExpr> rhs) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kBinary;
  e->op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

std::shared_ptr<const ScalarExpr> ScalarExpr::Call(
    std::string name,
    std::vector<std::shared_ptr<const ScalarExpr>> args) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kCall;
  e->name_ = std::move(name);
  e->children_ = std::move(args);
  return e;
}

void ScalarExpr::CollectVars(std::vector<std::string>* out) const {
  if (kind_ == Kind::kVar) {
    std::string lower = ToLower(name_);
    for (const auto& existing : *out) {
      if (ToLower(existing) == lower) return;
    }
    out->push_back(name_);
    return;
  }
  for (const auto& child : children_) child->CollectVars(out);
}

std::string ScalarExpr::ToString() const {
  switch (kind_) {
    case Kind::kConst: {
      std::string s = std::to_string(const_value_);
      return s;
    }
    case Kind::kVar:
      return name_;
    case Kind::kUnary:
      return (op_ == Op::kNeg ? "(-" : "(!") + children_[0]->ToString() +
             ")";
    case Kind::kBinary: {
      const char* sym = "?";
      switch (op_) {
        case Op::kAdd: sym = " + "; break;
        case Op::kSub: sym = " - "; break;
        case Op::kMul: sym = " * "; break;
        case Op::kDiv: sym = " / "; break;
        case Op::kMod: sym = " % "; break;
        case Op::kLt: sym = " < "; break;
        case Op::kLe: sym = " <= "; break;
        case Op::kGt: sym = " > "; break;
        case Op::kGe: sym = " >= "; break;
        case Op::kEq: sym = " == "; break;
        case Op::kNe: sym = " != "; break;
        case Op::kAnd: sym = " && "; break;
        case Op::kOr: sym = " || "; break;
        default: break;
      }
      return "(" + children_[0]->ToString() + sym +
             children_[1]->ToString() + ")";
    }
    case Kind::kCall: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Parser (precedence climbing)

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  Result<ScalarExprPtr> Parse() {
    CSM_ASSIGN_OR_RETURN(ScalarExprPtr expr, ParseOr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  Status ErrorStatus(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_) +
                              " in '" + std::string(text_) + "'");
  }
  Result<ScalarExprPtr> Error(const std::string& what) {
    return ErrorStatus(what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  static ScalarExprPtr MakeUnary(ScalarExpr::Op op, ScalarExprPtr child) {
    auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
    e->kind_ = ScalarExpr::Kind::kUnary;
    e->op_ = op;
    e->children_ = {std::move(child)};
    return e;
  }

  static ScalarExprPtr MakeCall(
      std::string name, std::vector<ScalarExprPtr> args) {
    auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
    e->kind_ = ScalarExpr::Kind::kCall;
    e->name_ = std::move(name);
    e->children_ = std::move(args);
    return e;
  }

  Result<ScalarExprPtr> ParseOr() {
    CSM_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseAnd());
    while (Consume("||") || ConsumeKeyword("or")) {
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseAnd());
      lhs = ScalarExpr::Binary(ScalarExpr::Op::kOr, lhs, rhs);
    }
    return lhs;
  }

  Result<ScalarExprPtr> ParseAnd() {
    CSM_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseCompare());
    while (Consume("&&") || ConsumeKeyword("and")) {
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseCompare());
      lhs = ScalarExpr::Binary(ScalarExpr::Op::kAnd, lhs, rhs);
    }
    return lhs;
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    size_t end = pos_ + kw.size();
    if (end > text_.size()) return false;
    if (ToLower(text_.substr(pos_, kw.size())) != kw) return false;
    if (end < text_.size() && IsIdentChar(text_[end])) return false;
    pos_ = end;
    return true;
  }

  Result<ScalarExprPtr> ParseCompare() {
    CSM_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseAdd());
    for (;;) {
      ScalarExpr::Op op = ScalarExpr::Op::kNone;
      if (Consume("<=")) {
        op = ScalarExpr::Op::kLe;
      } else if (Consume(">=")) {
        op = ScalarExpr::Op::kGe;
      } else if (Consume("==") || (Peek() == '=' && Consume("="))) {
        op = ScalarExpr::Op::kEq;
      } else if (Consume("!=") || Consume("<>")) {
        op = ScalarExpr::Op::kNe;
      } else if (Consume("<")) {
        op = ScalarExpr::Op::kLt;
      } else if (Consume(">")) {
        op = ScalarExpr::Op::kGt;
      } else {
        return lhs;
      }
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseAdd());
      lhs = ScalarExpr::Binary(op, lhs, rhs);
    }
  }

  Result<ScalarExprPtr> ParseAdd() {
    CSM_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseMul());
    for (;;) {
      if (Consume("+")) {
        CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseMul());
        lhs = ScalarExpr::Binary(ScalarExpr::Op::kAdd, lhs, rhs);
      } else if (Peek() == '-') {
        ++pos_;
        CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseMul());
        lhs = ScalarExpr::Binary(ScalarExpr::Op::kSub, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ScalarExprPtr> ParseMul() {
    CSM_ASSIGN_OR_RETURN(ScalarExprPtr lhs, ParseUnary());
    for (;;) {
      if (Consume("*")) {
        CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseUnary());
        lhs = ScalarExpr::Binary(ScalarExpr::Op::kMul, lhs, rhs);
      } else if (Consume("/")) {
        CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseUnary());
        lhs = ScalarExpr::Binary(ScalarExpr::Op::kDiv, lhs, rhs);
      } else if (Consume("%")) {
        CSM_ASSIGN_OR_RETURN(ScalarExprPtr rhs, ParseUnary());
        lhs = ScalarExpr::Binary(ScalarExpr::Op::kMod, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ScalarExprPtr> ParseUnary() {
    if (Peek() == '-') {
      ++pos_;
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr child, ParseUnary());
      return MakeUnary(ScalarExpr::Op::kNeg, child);
    }
    if (Peek() == '!') {
      ++pos_;
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr child, ParseUnary());
      return MakeUnary(ScalarExpr::Op::kNot, child);
    }
    if (ConsumeKeyword("not")) {
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr child, ParseUnary());
      return MakeUnary(ScalarExpr::Op::kNot, child);
    }
    return ParsePrimary();
  }

  Result<ScalarExprPtr> ParsePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of expression");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      CSM_ASSIGN_OR_RETURN(ScalarExprPtr inner, ParseOr());
      if (!Consume(")")) return Error("expected ')'");
      return inner;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' ||
              ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      double v;
      if (!ParseDouble(text_.substr(start, pos_ - start), &v)) {
        return Error("bad numeric literal");
      }
      return ScalarExpr::Const(v);
    }
    if (IsIdentStart(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      std::string name(text_.substr(start, pos_ - start));
      std::string lower = ToLower(name);
      if (lower == "null" || lower == "nan") return ScalarExpr::Const(kNaN);
      if (lower == "true") return ScalarExpr::Const(1.0);
      if (lower == "false") return ScalarExpr::Const(0.0);
      SkipSpace();
      if (Peek() == '(') {
        ++pos_;
        std::vector<ScalarExprPtr> args;
        if (Peek() != ')') {
          for (;;) {
            CSM_ASSIGN_OR_RETURN(ScalarExprPtr arg, ParseOr());
            args.push_back(std::move(arg));
            if (!Consume(",")) break;
          }
        }
        if (!Consume(")")) return Error("expected ')' after call args");
        static const std::unordered_set<std::string>* const kFunctions =
            new std::unordered_set<std::string>{
                "abs", "sqrt", "log", "exp", "floor", "ceil",
                "min", "max", "pow", "if", "isnull", "coalesce"};
        if (kFunctions->find(lower) == kFunctions->end()) {
          return Error("unknown function '" + name + "'");
        }
        return MakeCall(lower, std::move(args));
      }
      return ScalarExpr::Var(std::move(name));
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<std::shared_ptr<const ScalarExpr>> ScalarExpr::Parse(
    std::string_view text) {
  return ExprParser(text).Parse();
}

// ---------------------------------------------------------------------------
// BoundExpr

Result<BoundExpr> BoundExpr::Bind(const ScalarExpr& expr,
                                  const std::vector<std::string>& vars) {
  BoundExpr bound;
  CSM_RETURN_NOT_OK(bound.Compile(expr, vars));
  bound.stack_.resize(16);
  return bound;
}

Status BoundExpr::Compile(const ScalarExpr& expr,
                          const std::vector<std::string>& vars) {
  switch (expr.kind()) {
    case ScalarExpr::Kind::kConst:
      code_.push_back({OpCode::kPushConst, 0, expr.const_value()});
      return Status::OK();
    case ScalarExpr::Kind::kVar: {
      std::string lower = ToLower(expr.var_name());
      // "X.M" also matches a slot named "X" — the single measure of a
      // joined table may be referenced either way.
      std::string base = lower;
      if (EndsWith(base, ".m")) base = base.substr(0, base.size() - 2);
      for (size_t i = 0; i < vars.size(); ++i) {
        std::string slot = ToLower(vars[i]);
        if (slot == lower || slot == base) {
          code_.push_back({OpCode::kPushSlot, static_cast<int>(i), 0});
          return Status::OK();
        }
      }
      return Status::InvalidArgument("unbound variable '" +
                                     expr.var_name() + "'");
    }
    case ScalarExpr::Kind::kUnary:
      CSM_RETURN_NOT_OK(Compile(*expr.children()[0], vars));
      code_.push_back({expr.op() == ScalarExpr::Op::kNeg ? OpCode::kNeg
                                                         : OpCode::kNot,
                       0, 0});
      return Status::OK();
    case ScalarExpr::Kind::kBinary: {
      CSM_RETURN_NOT_OK(Compile(*expr.children()[0], vars));
      CSM_RETURN_NOT_OK(Compile(*expr.children()[1], vars));
      OpCode op;
      switch (expr.op()) {
        case ScalarExpr::Op::kAdd: op = OpCode::kAdd; break;
        case ScalarExpr::Op::kSub: op = OpCode::kSub; break;
        case ScalarExpr::Op::kMul: op = OpCode::kMul; break;
        case ScalarExpr::Op::kDiv: op = OpCode::kDiv; break;
        case ScalarExpr::Op::kMod: op = OpCode::kMod; break;
        case ScalarExpr::Op::kLt: op = OpCode::kLt; break;
        case ScalarExpr::Op::kLe: op = OpCode::kLe; break;
        case ScalarExpr::Op::kGt: op = OpCode::kGt; break;
        case ScalarExpr::Op::kGe: op = OpCode::kGe; break;
        case ScalarExpr::Op::kEq: op = OpCode::kEq; break;
        case ScalarExpr::Op::kNe: op = OpCode::kNe; break;
        case ScalarExpr::Op::kAnd: op = OpCode::kAnd; break;
        case ScalarExpr::Op::kOr: op = OpCode::kOr; break;
        default:
          return Status::Internal("bad binary op");
      }
      code_.push_back({op, 0, 0});
      return Status::OK();
    }
    case ScalarExpr::Kind::kCall: {
      struct FnDef {
        const char* name;
        OpCode op;
        size_t arity;
      };
      static constexpr FnDef kFns[] = {
          {"abs", OpCode::kAbs, 1},     {"sqrt", OpCode::kSqrt, 1},
          {"log", OpCode::kLog, 1},     {"exp", OpCode::kExp, 1},
          {"floor", OpCode::kFloor, 1}, {"ceil", OpCode::kCeil, 1},
          {"min", OpCode::kMin, 2},     {"max", OpCode::kMax, 2},
          {"pow", OpCode::kPow, 2},     {"if", OpCode::kIf, 3},
          {"isnull", OpCode::kIsNull, 1},
          {"coalesce", OpCode::kCoalesce, 2},
      };
      for (const FnDef& fn : kFns) {
        if (expr.call_name() == fn.name) {
          if (expr.children().size() != fn.arity) {
            return Status::InvalidArgument(
                std::string(fn.name) + "() takes " +
                std::to_string(fn.arity) + " argument(s)");
          }
          for (const auto& child : expr.children()) {
            CSM_RETURN_NOT_OK(Compile(*child, vars));
          }
          code_.push_back({fn.op, 0, 0});
          return Status::OK();
        }
      }
      return Status::InvalidArgument("unknown function '" +
                                     expr.call_name() + "'");
    }
  }
  return Status::Internal("bad expression kind");
}

double BoundExpr::Eval(const double* slots) const {
  double* sp = stack_.data();
  auto truthy = [](double v) { return v != 0 && !(v != v); };
  for (const Instr& instr : code_) {
    switch (instr.op) {
      case OpCode::kPushConst:
        *sp++ = instr.value;
        break;
      case OpCode::kPushSlot:
        *sp++ = slots[instr.slot];
        break;
      case OpCode::kNeg:
        sp[-1] = -sp[-1];
        break;
      case OpCode::kNot:
        sp[-1] = truthy(sp[-1]) ? 0.0 : 1.0;
        break;
      case OpCode::kAdd: --sp; sp[-1] += *sp; break;
      case OpCode::kSub: --sp; sp[-1] -= *sp; break;
      case OpCode::kMul: --sp; sp[-1] *= *sp; break;
      case OpCode::kDiv: --sp; sp[-1] /= *sp; break;
      case OpCode::kMod: --sp; sp[-1] = std::fmod(sp[-1], *sp); break;
      case OpCode::kLt: --sp; sp[-1] = sp[-1] < *sp ? 1.0 : 0.0; break;
      case OpCode::kLe: --sp; sp[-1] = sp[-1] <= *sp ? 1.0 : 0.0; break;
      case OpCode::kGt: --sp; sp[-1] = sp[-1] > *sp ? 1.0 : 0.0; break;
      case OpCode::kGe: --sp; sp[-1] = sp[-1] >= *sp ? 1.0 : 0.0; break;
      case OpCode::kEq: --sp; sp[-1] = sp[-1] == *sp ? 1.0 : 0.0; break;
      case OpCode::kNe: --sp; sp[-1] = sp[-1] != *sp ? 1.0 : 0.0; break;
      case OpCode::kAnd:
        --sp;
        sp[-1] = truthy(sp[-1]) && truthy(*sp) ? 1.0 : 0.0;
        break;
      case OpCode::kOr:
        --sp;
        sp[-1] = truthy(sp[-1]) || truthy(*sp) ? 1.0 : 0.0;
        break;
      case OpCode::kAbs: sp[-1] = std::fabs(sp[-1]); break;
      case OpCode::kSqrt: sp[-1] = std::sqrt(sp[-1]); break;
      case OpCode::kLog: sp[-1] = std::log(sp[-1]); break;
      case OpCode::kExp: sp[-1] = std::exp(sp[-1]); break;
      case OpCode::kFloor: sp[-1] = std::floor(sp[-1]); break;
      case OpCode::kCeil: sp[-1] = std::ceil(sp[-1]); break;
      case OpCode::kMin:
        --sp;
        sp[-1] = std::fmin(sp[-1], *sp);
        break;
      case OpCode::kMax:
        --sp;
        sp[-1] = std::fmax(sp[-1], *sp);
        break;
      case OpCode::kPow:
        --sp;
        sp[-1] = std::pow(sp[-1], *sp);
        break;
      case OpCode::kIf:
        sp -= 2;
        sp[-1] = truthy(sp[-1]) ? sp[0] : sp[1];
        break;
      case OpCode::kIsNull:
        sp[-1] = (sp[-1] != sp[-1]) ? 1.0 : 0.0;
        break;
      case OpCode::kCoalesce:
        --sp;
        if (sp[-1] != sp[-1]) sp[-1] = *sp;
        break;
    }
    // Grow the stack defensively for pathological nesting.
    if (sp >= stack_.data() + stack_.size() - 4) {
      size_t offset = static_cast<size_t>(sp - stack_.data());
      stack_.resize(stack_.size() * 2);
      sp = stack_.data() + offset;
    }
  }
  return sp > stack_.data() ? sp[-1] : kNaN;
}

// ---------------------------------------------------------------------------
// Variable renaming

ScalarExprPtr RenameVars(
    const ScalarExprPtr& expr,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ScalarExpr::Kind::kConst:
      return expr;
    case ScalarExpr::Kind::kVar: {
      const std::string& name = expr->var_name();
      std::string lower = ToLower(name);
      // "X.M" renames on its "X" part, mirroring BoundExpr::Bind's rule
      // that a variable "X.M" matches a slot named "X".
      std::string_view base = lower;
      std::string_view suffix;
      if (base.size() > 2 && base.substr(base.size() - 2) == ".m") {
        base = base.substr(0, base.size() - 2);
        suffix = ".M";
      }
      for (const auto& [from, to] : renames) {
        if (ToLower(from) == base) {
          return ScalarExpr::Var(to + std::string(suffix));
        }
      }
      return expr;
    }
    case ScalarExpr::Kind::kUnary:
    case ScalarExpr::Kind::kBinary:
    case ScalarExpr::Kind::kCall: {
      bool changed = false;
      std::vector<ScalarExprPtr> children;
      children.reserve(expr->children().size());
      for (const ScalarExprPtr& child : expr->children()) {
        ScalarExprPtr renamed = RenameVars(child, renames);
        changed |= renamed != child;
        children.push_back(std::move(renamed));
      }
      if (!changed) return expr;  // share untouched subtrees
      if (expr->kind() == ScalarExpr::Kind::kUnary) {
        return ScalarExpr::Unary(expr->op(), std::move(children[0]));
      }
      if (expr->kind() == ScalarExpr::Kind::kBinary) {
        return ScalarExpr::Binary(expr->op(), std::move(children[0]),
                                  std::move(children[1]));
      }
      return ScalarExpr::Call(expr->call_name(), std::move(children));
    }
  }
  return expr;
}

}  // namespace csm
