#ifndef CSM_EXPR_SCALAR_EXPR_H_
#define CSM_EXPR_SCALAR_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace csm {

/// Immutable scalar expression AST used for selection conditions (σ_cond)
/// and combine-join functions (f_c). Expressions reference named variables
/// — the measure "M" of the input table, dimension attributes, or, in a
/// combine join, the names of the joined measures ("MAXT.M" or "MAXT").
///
/// NULL semantics: NULL is represented as NaN. Arithmetic propagates NaN;
/// comparisons involving NaN are false; isnull()/coalesce() handle it
/// explicitly.
class ScalarExpr {
 public:
  enum class Kind {
    kConst,   // literal
    kVar,     // named variable
    kUnary,   // op applied to child 0
    kBinary,  // op applied to children 0, 1
    kCall,    // named function over children
  };

  enum class Op {
    kNone,
    // unary
    kNeg,
    kNot,
    // binary
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kLt,
    kLe,
    kGt,
    kGe,
    kEq,
    kNe,
    kAnd,
    kOr,
  };

  /// Parses an expression. Grammar: C-like precedence with || && ,
  /// comparisons, + - , * / %, unary - !, parentheses, numeric literals,
  /// identifiers (dots allowed), and calls: abs, sqrt, log, exp, floor,
  /// ceil, min, max, pow, if(cond,a,b), isnull(x), coalesce(a,b).
  static Result<std::shared_ptr<const ScalarExpr>> Parse(
      std::string_view text);

  /// Convenience constructors used by programmatic query builders.
  static std::shared_ptr<const ScalarExpr> Const(double v);
  static std::shared_ptr<const ScalarExpr> Var(std::string name);
  static std::shared_ptr<const ScalarExpr> Unary(
      Op op, std::shared_ptr<const ScalarExpr> operand);
  static std::shared_ptr<const ScalarExpr> Binary(
      Op op, std::shared_ptr<const ScalarExpr> lhs,
      std::shared_ptr<const ScalarExpr> rhs);
  static std::shared_ptr<const ScalarExpr> Call(
      std::string name,
      std::vector<std::shared_ptr<const ScalarExpr>> args);

  Kind kind() const { return kind_; }
  Op op() const { return op_; }
  double const_value() const { return const_value_; }
  const std::string& var_name() const { return name_; }
  const std::string& call_name() const { return name_; }
  const std::vector<std::shared_ptr<const ScalarExpr>>& children() const {
    return children_;
  }

  /// Appends the distinct variable names referenced (original spelling,
  /// deduplicated case-insensitively).
  void CollectVars(std::vector<std::string>* out) const;

  std::string ToString() const;

 private:
  ScalarExpr() = default;
  friend class ExprParser;

  Kind kind_ = Kind::kConst;
  Op op_ = Op::kNone;
  double const_value_ = 0;
  std::string name_;
  std::vector<std::shared_ptr<const ScalarExpr>> children_;
};

using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// Returns `expr` with every variable reference renamed through `renames`
/// (old name -> new name, matched case-insensitively). A reference of the
/// form "X.M" is renamed on its "X" part, preserving the ".M" suffix —
/// the same matching rule BoundExpr::Bind applies to slots. Variables not
/// in the map are kept as-is; subtrees without renamed variables are
/// shared, not copied. Used by workflow fusion to re-point measure
/// references at namespaced measure names.
ScalarExprPtr RenameVars(
    const ScalarExprPtr& expr,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// A ScalarExpr compiled against a variable layout: variable references
/// become slot indices and the tree is flattened into a postfix program, so
/// per-row evaluation is a tight loop with no hashing or recursion.
class BoundExpr {
 public:
  BoundExpr() = default;

  /// `vars[i]` names slot i; matching is case-insensitive and a variable
  /// "X.M" also matches a slot named "X". Unknown variables fail.
  static Result<BoundExpr> Bind(const ScalarExpr& expr,
                                const std::vector<std::string>& vars);

  /// Evaluates with `slots` holding one double per bound variable.
  double Eval(const double* slots) const;

  /// Predicate view: non-zero and non-NaN.
  bool EvalBool(const double* slots) const {
    double v = Eval(slots);
    return v != 0 && !(v != v);
  }

  bool empty() const { return code_.empty(); }

 private:
  enum class OpCode : uint8_t {
    kPushConst,
    kPushSlot,
    kNeg,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kLt,
    kLe,
    kGt,
    kGe,
    kEq,
    kNe,
    kAnd,
    kOr,
    kAbs,
    kSqrt,
    kLog,
    kExp,
    kFloor,
    kCeil,
    kMin,
    kMax,
    kPow,
    kIf,
    kIsNull,
    kCoalesce,
  };
  struct Instr {
    OpCode op;
    int slot = 0;
    double value = 0;
  };

  Status Compile(const ScalarExpr& expr,
                 const std::vector<std::string>& vars);

  std::vector<Instr> code_;
  mutable std::vector<double> stack_;
};

}  // namespace csm

#endif  // CSM_EXPR_SCALAR_EXPR_H_
