#include "expr/predicate_kernel.h"

#include <cstring>

#include "common/string_util.h"

namespace csm {

namespace {

// Truthiness exactly as BoundExpr::EvalBool: non-zero and non-NaN.
inline bool Truthy(double v) { return v != 0 && !(v != v); }

// Column-vs-constant comparison loops. Plain counted loops over double
// lanes writing 0/1 bytes — the shape SSE2/AVX2 autovectorizers handle
// without intrinsics (CSM_SIMD only toggles prefetch hints elsewhere;
// these loops are the same either way, which is what keeps the OFF
// build bit-identical).
template <typename Cmp>
inline void CmpColConst(const double* a, double c, size_t n, uint8_t* out,
                        Cmp cmp) {
  for (size_t r = 0; r < n; ++r) out[r] = cmp(a[r], c) ? 1 : 0;
}

template <typename Cmp>
inline void CmpColCol(const double* a, const double* b, size_t n,
                      uint8_t* out, Cmp cmp) {
  for (size_t r = 0; r < n; ++r) out[r] = cmp(a[r], b[r]) ? 1 : 0;
}

// Dispatches on the comparison op; rhs is either a constant (b == null)
// or a second column. Raw double comparison operators, so NaN operands
// produce false for everything except != — the interpreter's exact
// behavior.
void CmpDispatch(ScalarExpr::Op op, const double* a, const double* b,
                 double c, size_t n, uint8_t* out) {
  switch (op) {
    case ScalarExpr::Op::kLt: {
      auto f = [](double x, double y) { return x < y; };
      b ? CmpColCol(a, b, n, out, f) : CmpColConst(a, c, n, out, f);
      return;
    }
    case ScalarExpr::Op::kLe: {
      auto f = [](double x, double y) { return x <= y; };
      b ? CmpColCol(a, b, n, out, f) : CmpColConst(a, c, n, out, f);
      return;
    }
    case ScalarExpr::Op::kGt: {
      auto f = [](double x, double y) { return x > y; };
      b ? CmpColCol(a, b, n, out, f) : CmpColConst(a, c, n, out, f);
      return;
    }
    case ScalarExpr::Op::kGe: {
      auto f = [](double x, double y) { return x >= y; };
      b ? CmpColCol(a, b, n, out, f) : CmpColConst(a, c, n, out, f);
      return;
    }
    case ScalarExpr::Op::kEq: {
      auto f = [](double x, double y) { return x == y; };
      b ? CmpColCol(a, b, n, out, f) : CmpColConst(a, c, n, out, f);
      return;
    }
    case ScalarExpr::Op::kNe: {
      auto f = [](double x, double y) { return x != y; };
      b ? CmpColCol(a, b, n, out, f) : CmpColConst(a, c, n, out, f);
      return;
    }
    default:
      // Compile() only emits the six comparison ops.
      std::memset(out, 0, n);
      return;
  }
}

// Swapped comparison for normalizing const-lhs to const-rhs:
// c < x  <=>  x > c, etc. Equality ops are symmetric; NaN yields false
// on both sides of the swap, so the rewrite is exact.
ScalarExpr::Op FlipCmp(ScalarExpr::Op op) {
  switch (op) {
    case ScalarExpr::Op::kLt: return ScalarExpr::Op::kGt;
    case ScalarExpr::Op::kLe: return ScalarExpr::Op::kGe;
    case ScalarExpr::Op::kGt: return ScalarExpr::Op::kLt;
    case ScalarExpr::Op::kGe: return ScalarExpr::Op::kLe;
    default: return op;
  }
}

bool IsCmp(ScalarExpr::Op op) {
  switch (op) {
    case ScalarExpr::Op::kLt:
    case ScalarExpr::Op::kLe:
    case ScalarExpr::Op::kGt:
    case ScalarExpr::Op::kGe:
    case ScalarExpr::Op::kEq:
    case ScalarExpr::Op::kNe:
      return true;
    default:
      return false;
  }
}

// Host-side evaluation of a comparison between two literals (constant
// folding); same raw double semantics as the row loops.
double FoldCmp(ScalarExpr::Op op, double a, double b) {
  switch (op) {
    case ScalarExpr::Op::kLt: return a < b ? 1.0 : 0.0;
    case ScalarExpr::Op::kLe: return a <= b ? 1.0 : 0.0;
    case ScalarExpr::Op::kGt: return a > b ? 1.0 : 0.0;
    case ScalarExpr::Op::kGe: return a >= b ? 1.0 : 0.0;
    case ScalarExpr::Op::kEq: return a == b ? 1.0 : 0.0;
    case ScalarExpr::Op::kNe: return a != b ? 1.0 : 0.0;
    default: return 0.0;
  }
}

}  // namespace

bool PredicateKernel::ResolveAtom(const ScalarExpr& expr,
                                  const std::vector<std::string>& vars,
                                  int num_dims, Operand* out) {
  if (expr.kind() == ScalarExpr::Kind::kConst) {
    out->kind = Operand::kConst;
    out->value = expr.const_value();
    return true;
  }
  if (expr.kind() == ScalarExpr::Kind::kUnary &&
      expr.op() == ScalarExpr::Op::kNeg) {
    // Negated literal ("m0 <= -1" parses as kNeg(Const(1))): fold to a
    // constant. Double negation is exact, so this matches the
    // interpreter bit for bit. Negated columns stay uncompiled.
    Operand inner;
    if (ResolveAtom(*expr.children()[0], vars, num_dims, &inner) &&
        inner.kind == Operand::kConst) {
      out->kind = Operand::kConst;
      out->value = -inner.value;
      return true;
    }
    return false;
  }
  if (expr.kind() != ScalarExpr::Kind::kVar) return false;
  // Same slot matching as BoundExpr::Bind: case-insensitive, and "X.M"
  // also matches a slot named "X"; first match wins.
  std::string lower = ToLower(expr.var_name());
  std::string base = lower;
  if (EndsWith(base, ".m")) base = base.substr(0, base.size() - 2);
  for (size_t i = 0; i < vars.size(); ++i) {
    std::string slot = ToLower(vars[i]);
    if (slot == lower || slot == base) {
      if (static_cast<int>(i) < num_dims) {
        out->kind = Operand::kDim;
        out->col = static_cast<int>(i);
      } else {
        out->kind = Operand::kMeasure;
        out->col = static_cast<int>(i) - num_dims;
      }
      return true;
    }
  }
  return false;  // unbound: let the interpreter produce the error
}

bool PredicateKernel::CompileNode(const ScalarExpr& expr,
                                  const std::vector<std::string>& vars,
                                  int num_dims, int depth) {
  if (depth > max_depth_) max_depth_ = depth;
  switch (expr.kind()) {
    case ScalarExpr::Kind::kConst:
    case ScalarExpr::Kind::kVar: {
      Instr instr;
      instr.what = What::kTest;
      if (!ResolveAtom(expr, vars, num_dims, &instr.a)) return false;
      code_.push_back(instr);
      return true;
    }
    case ScalarExpr::Kind::kUnary: {
      if (expr.op() != ScalarExpr::Op::kNot) return false;
      if (!CompileNode(*expr.children()[0], vars, num_dims, depth)) {
        return false;
      }
      code_.push_back({What::kNot, ScalarExpr::Op::kNone, {}, {}, {}});
      ++num_bools_;
      return true;
    }
    case ScalarExpr::Kind::kBinary: {
      if (expr.op() == ScalarExpr::Op::kAnd ||
          expr.op() == ScalarExpr::Op::kOr) {
        if (!CompileNode(*expr.children()[0], vars, num_dims, depth)) {
          return false;
        }
        if (!CompileNode(*expr.children()[1], vars, num_dims, depth + 1)) {
          return false;
        }
        code_.push_back({expr.op() == ScalarExpr::Op::kAnd ? What::kAnd
                                                           : What::kOr,
                         ScalarExpr::Op::kNone,
                         {},
                         {},
                         {}});
        ++num_bools_;
        return true;
      }
      if (!IsCmp(expr.op())) return false;  // arithmetic -> interpreter
      Instr instr;
      instr.what = What::kCmp;
      instr.cmp = expr.op();
      if (!ResolveAtom(*expr.children()[0], vars, num_dims, &instr.a) ||
          !ResolveAtom(*expr.children()[1], vars, num_dims, &instr.b)) {
        return false;
      }
      if (instr.a.kind == Operand::kConst &&
          instr.b.kind == Operand::kConst) {
        // Two literals: fold to a constant truth value at compile time.
        Instr folded;
        folded.what = What::kTest;
        folded.a.kind = Operand::kConst;
        folded.a.value = FoldCmp(instr.cmp, instr.a.value, instr.b.value);
        code_.push_back(folded);
        return true;
      }
      if (instr.a.kind == Operand::kConst) {
        // Normalize the literal to the right-hand side.
        std::swap(instr.a, instr.b);
        instr.cmp = FlipCmp(instr.cmp);
      }
      code_.push_back(instr);
      ++num_cmps_;
      return true;
    }
    case ScalarExpr::Kind::kCall:
      return false;
  }
  return false;
}

std::optional<PredicateKernel> PredicateKernel::Compile(
    const ScalarExpr& expr, const std::vector<std::string>& vars,
    int num_dims) {
  PredicateKernel kernel;
  if (!kernel.CompileNode(expr, vars, num_dims, /*depth=*/1)) {
    return std::nullopt;
  }
  kernel.masks_.resize(static_cast<size_t>(kernel.max_depth_));
  return kernel;
}

const double* PredicateKernel::LoadColumn(
    const Operand& op, const uint64_t* const* dim_cols,
    const double* const* measure_cols, size_t n,
    std::vector<double>* scratch) {
  if (op.kind == Operand::kMeasure) return measure_cols[op.col];
  // Dimension: widen to double exactly as the interpreter's slot fill
  // (static_cast<double>(Value)), so comparisons round identically.
  scratch->resize(n);
  const uint64_t* in = dim_cols[op.col];
  double* out = scratch->data();
  for (size_t r = 0; r < n; ++r) out[r] = static_cast<double>(in[r]);
  return out;
}

size_t PredicateKernel::Select(const uint64_t* const* dim_cols,
                               const double* const* measure_cols, size_t n,
                               uint32_t* sel,
                               const uint32_t* const* code_cols) const {
  if (n == 0) return 0;  // column tables may be null for empty batches
  int top = -1;  // index of the mask holding the current subresult
  for (const Instr& instr : code_) {
    // A dictionary-bound instruction over an encoded batch is one bitset
    // probe per code; the bitset holds the very comparison the loops
    // below would run, so the mask is the same bit for bit.
    const uint32_t* codes =
        instr.dict != nullptr && code_cols != nullptr &&
                (instr.what == What::kTest || instr.what == What::kCmp)
            ? code_cols[instr.a.col]
            : nullptr;
    switch (instr.what) {
      case What::kTest: {
        std::vector<uint8_t>& mask = masks_[static_cast<size_t>(++top)];
        mask.resize(n);
        uint8_t* out = mask.data();
        if (codes != nullptr) {
          const uint8_t* bits = instr.dict->bits.data();
          for (size_t r = 0; r < n; ++r) out[r] = bits[codes[r]];
          break;
        }
        switch (instr.a.kind) {
          case Operand::kConst:
            std::memset(out, Truthy(instr.a.value) ? 1 : 0, n);
            break;
          case Operand::kDim: {
            // A dimension value is a uint64; the cast to double is
            // non-zero iff the value is, and never NaN.
            const uint64_t* col = dim_cols[instr.a.col];
            for (size_t r = 0; r < n; ++r) out[r] = col[r] != 0 ? 1 : 0;
            break;
          }
          case Operand::kMeasure: {
            const double* col = measure_cols[instr.a.col];
            for (size_t r = 0; r < n; ++r) {
              out[r] = (col[r] != 0 && !(col[r] != col[r])) ? 1 : 0;
            }
            break;
          }
        }
        break;
      }
      case What::kCmp: {
        std::vector<uint8_t>& mask = masks_[static_cast<size_t>(++top)];
        mask.resize(n);
        if (codes != nullptr) {
          const uint8_t* bits = instr.dict->bits.data();
          uint8_t* out = mask.data();
          for (size_t r = 0; r < n; ++r) out[r] = bits[codes[r]];
          break;
        }
        const double* a = LoadColumn(instr.a, dim_cols, measure_cols, n,
                                     &lhs_scratch_);
        const double* b = instr.b.kind == Operand::kConst
                              ? nullptr
                              : LoadColumn(instr.b, dim_cols, measure_cols,
                                           n, &rhs_scratch_);
        CmpDispatch(instr.cmp, a, b, instr.b.value, n, mask.data());
        break;
      }
      case What::kNot: {
        uint8_t* m = masks_[static_cast<size_t>(top)].data();
        for (size_t r = 0; r < n; ++r) m[r] ^= 1;
        break;
      }
      case What::kAnd: {
        const uint8_t* b = masks_[static_cast<size_t>(top--)].data();
        uint8_t* a = masks_[static_cast<size_t>(top)].data();
        for (size_t r = 0; r < n; ++r) a[r] &= b[r];
        break;
      }
      case What::kOr: {
        const uint8_t* b = masks_[static_cast<size_t>(top--)].data();
        uint8_t* a = masks_[static_cast<size_t>(top)].data();
        for (size_t r = 0; r < n; ++r) a[r] |= b[r];
        break;
      }
    }
  }
  if (top < 0) return 0;
  // Branchless compaction: write every index, advance by the mask bit.
  const uint8_t* mask = masks_[static_cast<size_t>(top)].data();
  size_t k = 0;
  for (size_t r = 0; r < n; ++r) {
    sel[k] = static_cast<uint32_t>(r);
    k += mask[r];
  }
  return k;
}

void PredicateKernel::BindDictionaries(const DictColumnView* views,
                                       int num_dims) {
  dict_bound_ = 0;
  dict_bits_total_ = 0;
  for (Instr& instr : code_) {
    instr.dict = nullptr;
    if (instr.a.kind != Operand::kDim || instr.a.col >= num_dims) continue;
    const DictColumnView& view = views[instr.a.col];
    if (view.values == nullptr) continue;
    const bool is_test = instr.what == What::kTest;
    const bool is_const_cmp =
        instr.what == What::kCmp && instr.b.kind == Operand::kConst;
    if (!is_test && !is_const_cmp) continue;  // dim-vs-dim/measure: row-wise
    auto bound = std::make_shared<DictBits>();
    bound->bits.resize(view.size);
    bound->prefix.resize(view.size + 1);
    uint32_t ones = 0;
    for (size_t c = 0; c < view.size; ++c) {
      bound->prefix[c] = ones;
      // Exactly the row loop's semantics: widen the value with
      // static_cast<double>, then raw comparison / truthiness.
      const double v = static_cast<double>(view.values[c]);
      const bool truth = is_test ? Truthy(v)
                                 : FoldCmp(instr.cmp, v, instr.b.value) != 0;
      bound->bits[c] = truth ? 1 : 0;
      ones += bound->bits[c];
    }
    bound->prefix[view.size] = ones;
    instr.dict = std::move(bound);
    ++dict_bound_;
    dict_bits_total_ += view.size;
  }
}

BatchVerdict PredicateKernel::JudgeBatch(const uint32_t* zone_min,
                                         const uint32_t* zone_max) const {
  // Abstract interpretation of the instruction stack over tri-state
  // verdicts. Sound because a zone range [min, max] is a superset of the
  // codes actually present in the batch: "no ones in range" implies no
  // row passes, "all ones in range" implies every row passes.
  BatchVerdict stack[64];
  int top = -1;
  auto judge_dict = [&](const Instr& instr) {
    const DictBits& d = *instr.dict;
    const size_t size = d.bits.size();
    size_t lo = zone_min[instr.a.col];
    size_t hi = zone_max[instr.a.col];
    if (lo >= size) return BatchVerdict::kUnknown;  // stale zones: punt
    if (hi >= size) hi = size - 1;
    const uint32_t ones = d.prefix[hi + 1] - d.prefix[lo];
    const size_t len = hi - lo + 1;
    if (ones == 0) return BatchVerdict::kAllFalse;
    if (ones == len) return BatchVerdict::kAllTrue;
    return BatchVerdict::kUnknown;
  };
  for (const Instr& instr : code_) {
    if (top + 1 >= static_cast<int>(sizeof(stack) / sizeof(stack[0]))) {
      return BatchVerdict::kUnknown;  // deeper than the fixed stack: punt
    }
    switch (instr.what) {
      case What::kTest:
        if (instr.a.kind == Operand::kConst) {
          stack[++top] = Truthy(instr.a.value) ? BatchVerdict::kAllTrue
                                               : BatchVerdict::kAllFalse;
        } else if (instr.dict != nullptr) {
          stack[++top] = judge_dict(instr);
        } else {
          stack[++top] = BatchVerdict::kUnknown;
        }
        break;
      case What::kCmp:
        stack[++top] = instr.dict != nullptr ? judge_dict(instr)
                                             : BatchVerdict::kUnknown;
        break;
      case What::kNot: {
        BatchVerdict& v = stack[top];
        if (v == BatchVerdict::kAllFalse) {
          v = BatchVerdict::kAllTrue;
        } else if (v == BatchVerdict::kAllTrue) {
          v = BatchVerdict::kAllFalse;
        }
        break;
      }
      case What::kAnd: {
        const BatchVerdict b = stack[top--];
        BatchVerdict& a = stack[top];
        if (a == BatchVerdict::kAllFalse || b == BatchVerdict::kAllFalse) {
          a = BatchVerdict::kAllFalse;
        } else if (a == BatchVerdict::kAllTrue &&
                   b == BatchVerdict::kAllTrue) {
          a = BatchVerdict::kAllTrue;
        } else {
          a = BatchVerdict::kUnknown;
        }
        break;
      }
      case What::kOr: {
        const BatchVerdict b = stack[top--];
        BatchVerdict& a = stack[top];
        if (a == BatchVerdict::kAllTrue || b == BatchVerdict::kAllTrue) {
          a = BatchVerdict::kAllTrue;
        } else if (a == BatchVerdict::kAllFalse &&
                   b == BatchVerdict::kAllFalse) {
          a = BatchVerdict::kAllFalse;
        } else {
          a = BatchVerdict::kUnknown;
        }
        break;
      }
    }
  }
  return top >= 0 ? stack[top] : BatchVerdict::kUnknown;
}

std::string PredicateKernel::Describe() const {
  std::string out = "cmp(" + std::to_string(num_cmps_) + ") bool(" +
                    std::to_string(num_bools_) + ")";
  if (dict_bound_ > 0) {
    out += " dict(" + std::to_string(dict_bound_) + ")";
  }
  return out;
}

}  // namespace csm
