#include "exec/adaptive.h"

#include "exec/exec_context.h"
#include "exec/multi_pass.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "opt/footprint.h"
#include "opt/sort_order.h"

namespace csm {

namespace {
// Headroom factor: the footprint model is an estimate, so require the
// no-sort footprint to fit well inside the budget before skipping the
// sort.
constexpr double kSingleScanHeadroom = 0.5;
constexpr double kBytesPerEntry = 96.0;
}  // namespace

std::string_view AdaptiveChoiceName(AdaptiveEngine::Choice choice) {
  switch (choice) {
    case AdaptiveEngine::Choice::kSingleScan:
      return "single-scan";
    case AdaptiveEngine::Choice::kSortScan:
      return "sort-scan";
    case AdaptiveEngine::Choice::kMultiPass:
      return "multi-pass";
  }
  return "?";
}

Result<AdaptiveEngine::Choice> AdaptiveEngine::Decide(
    const Workflow& workflow, const EngineOptions& options) {
  const double budget_entries =
      static_cast<double>(options.memory_budget_bytes) / kBytesPerEntry;

  // Footprint with no usable order = what single-scan would hold.
  CSM_ASSIGN_OR_RETURN(FootprintReport unsorted,
                       EstimateFootprint(workflow, SortKey()));
  if (unsorted.total_entries <= budget_entries * kSingleScanHeadroom) {
    return Choice::kSingleScan;
  }

  SortKey key = options.sort_key;
  if (key.empty()) {
    CSM_ASSIGN_OR_RETURN(key, BruteForceSortKey(workflow, 20000));
  }
  CSM_ASSIGN_OR_RETURN(FootprintReport streamed,
                       EstimateFootprint(workflow, key));
  if (streamed.total_entries <= budget_entries) {
    return Choice::kSortScan;
  }
  return Choice::kMultiPass;
}

Result<EvalOutput> AdaptiveEngine::Run(const Workflow& workflow,
                                       const FactTable& fact,
                                       ExecContext& ctx) {
  RunScope rs(ctx, name());

  ScopedSpan plan_span(&rs.tracer(), "plan", rs.root());
  CSM_ASSIGN_OR_RETURN(Choice choice, Decide(workflow, ctx.options));
  ExecContext child = rs.Child(rs.root());
  if (choice == Choice::kSortScan && child.options.sort_key.empty()) {
    CSM_ASSIGN_OR_RETURN(child.options.sort_key,
                         BruteForceSortKey(workflow, 20000));
  }
  rs.tracer().SetAttr(plan_span.id(), "choice",
                      std::string(AdaptiveChoiceName(choice)));
  plan_span.End();

  Result<EvalOutput> result = Status::Internal("unreachable");
  switch (choice) {
    case Choice::kSingleScan: {
      SingleScanEngine engine;
      result = engine.Run(workflow, fact, child);
      break;
    }
    case Choice::kSortScan: {
      SortScanEngine engine;
      result = engine.Run(workflow, fact, child);
      break;
    }
    case Choice::kMultiPass: {
      MultiPassEngine engine;
      result = engine.Run(workflow, fact, child);
      break;
    }
  }
  CSM_RETURN_NOT_OK(result.status());
  rs.tracer().SetAttr(rs.root(), "sort_key",
                      "[" + std::string(AdaptiveChoiceName(choice)) + "] " +
                          result->stats.sort_key);
  result->stats = rs.Finish();
  return result;
}

}  // namespace csm
