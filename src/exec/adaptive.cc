#include "exec/adaptive.h"

#include "exec/multi_pass.h"
#include "exec/single_scan.h"
#include "exec/sort_scan.h"
#include "opt/footprint.h"
#include "opt/sort_order.h"

namespace csm {

namespace {
// Headroom factor: the footprint model is an estimate, so require the
// no-sort footprint to fit well inside the budget before skipping the
// sort.
constexpr double kSingleScanHeadroom = 0.5;
constexpr double kBytesPerEntry = 96.0;
}  // namespace

std::string_view AdaptiveChoiceName(AdaptiveEngine::Choice choice) {
  switch (choice) {
    case AdaptiveEngine::Choice::kSingleScan:
      return "single-scan";
    case AdaptiveEngine::Choice::kSortScan:
      return "sort-scan";
    case AdaptiveEngine::Choice::kMultiPass:
      return "multi-pass";
  }
  return "?";
}

Result<AdaptiveEngine::Choice> AdaptiveEngine::Decide(
    const Workflow& workflow) const {
  const double budget_entries =
      static_cast<double>(options_.memory_budget_bytes) / kBytesPerEntry;

  // Footprint with no usable order = what single-scan would hold.
  CSM_ASSIGN_OR_RETURN(FootprintReport unsorted,
                       EstimateFootprint(workflow, SortKey()));
  if (unsorted.total_entries <= budget_entries * kSingleScanHeadroom) {
    return Choice::kSingleScan;
  }

  SortKey key = options_.sort_key;
  if (key.empty()) {
    CSM_ASSIGN_OR_RETURN(key, BruteForceSortKey(workflow, 20000));
  }
  CSM_ASSIGN_OR_RETURN(FootprintReport streamed,
                       EstimateFootprint(workflow, key));
  if (streamed.total_entries <= budget_entries) {
    return Choice::kSortScan;
  }
  return Choice::kMultiPass;
}

Result<EvalOutput> AdaptiveEngine::Run(const Workflow& workflow,
                                       const FactTable& fact) {
  CSM_ASSIGN_OR_RETURN(Choice choice, Decide(workflow));
  EngineOptions options = options_;
  Result<EvalOutput> result = Status::Internal("unreachable");
  switch (choice) {
    case Choice::kSingleScan: {
      SingleScanEngine engine(options);
      result = engine.Run(workflow, fact);
      break;
    }
    case Choice::kSortScan: {
      if (options.sort_key.empty()) {
        CSM_ASSIGN_OR_RETURN(options.sort_key,
                             BruteForceSortKey(workflow, 20000));
      }
      SortScanEngine engine(options);
      result = engine.Run(workflow, fact);
      break;
    }
    case Choice::kMultiPass: {
      MultiPassEngine engine(options);
      result = engine.Run(workflow, fact);
      break;
    }
  }
  CSM_RETURN_NOT_OK(result.status());
  result->stats.sort_key = "[" + std::string(AdaptiveChoiceName(choice)) +
                           "] " + result->stats.sort_key;
  return result;
}

}  // namespace csm
