#ifndef CSM_EXEC_SCHEDULER_H_
#define CSM_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"

namespace csm {

/// The shared worker pool behind every parallel stage in the system: the
/// morsel-driven operator scans, the parallel engine's shard runs, and
/// the external sorter's run generation / in-memory partition sort all
/// draw executors from here instead of spawning their own threads.
///
/// The execution model is *caller participates*: RunOnExecutors always
/// runs `fn(0)` on the calling thread and hands indices 1..executors-1 to
/// idle pool workers. Claimed slots are best-effort — when every worker
/// is busy the caller simply does all the work itself — so `fn` MUST be
/// written as a work-claiming loop (grab the next morsel/task from a
/// shared cursor until empty) such that any single executor can complete
/// the whole job alone. This is also what makes nested calls safe: a
/// worker that issues RunOnExecutors from inside a job degrades to
/// running the nested job sequentially instead of deadlocking.
class ThreadPool {
 public:
  /// Spawns `workers` resident threads (0 = pick a default from the
  /// hardware concurrency, but never less than kMinWorkers so the
  /// determinism and race coverage of multi-executor execution survives
  /// single-core CI containers).
  explicit ThreadPool(int workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resident worker threads (excluding callers).
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Process-wide pool shared by all engines and the sorter.
  static ThreadPool& Global();

  /// Runs `fn(executor)` for executor 0 on this thread and offers
  /// executors 1..executors-1 to idle workers; returns when every
  /// executor that actually started has finished. `executors` < 1 is
  /// treated as 1. Safe to call concurrently and from inside a worker.
  void RunOnExecutors(int executors, const std::function<void(int)>& fn);

  /// Floor on the default pool size: even on single-core machines the
  /// pool keeps enough workers that multi-executor interleavings (and
  /// the TSan coverage of them) actually happen.
  static constexpr int kMinWorkers = 3;

 private:
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int executors = 1;
    int next = 1;  // next executor index to hand out (0 = the caller)
    std::mutex mu;
    std::condition_variable done_cv;
    int started = 0;
    int finished = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job*> jobs_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Telemetry of one morsel-parallel stage, surfaced as span counters
/// (`morsels`, `steals`, `pool_threads`).
struct MorselStats {
  uint64_t morsels = 0;   // morsels executed (== ceil(rows/morsel_rows))
  uint64_t steals = 0;    // morsels executed by a non-owner executor
  int pool_threads = 0;   // executors the stage planned for
  size_t morsel_rows = 0;
};

/// Morsel body: rows [begin, end) of morsel `morsel` on `executor`.
/// Morsel indices are dense and depend only on (total_rows, morsel_rows),
/// never on the executor count — per-morsel partial results merged in
/// morsel order are therefore bit-identical across thread counts.
using MorselBody =
    std::function<Status(size_t morsel, size_t begin, size_t end,
                         int executor)>;

/// Work-stealing morsel loop: splits [0, total_rows) into fixed
/// `morsel_rows`-sized morsels, partitions the morsel index space into
/// one contiguous range per executor, and lets executors drain their own
/// range before stealing from the front of other ranges. Every morsel
/// runs exactly once; the first body error (lowest morsel index) wins;
/// a set `cancel` flag stops dispatch and yields Status::Cancelled.
/// `max_executors` <= 0 means use the whole pool.
Status ParallelMorsels(ThreadPool& pool, size_t total_rows,
                       size_t morsel_rows, int max_executors,
                       const std::atomic<bool>* cancel,
                       const MorselBody& body, MorselStats* stats);

/// Task-list counterpart for coarse-grained units (partition shards,
/// sort runs): executors claim tasks from a shared cursor until the list
/// is drained. The first failing task (lowest index) decides the return
/// status; a set `cancel` flag stops dispatch of not-yet-started tasks.
Status ParallelTasks(ThreadPool& pool, int max_executors,
                     const std::atomic<bool>* cancel,
                     const std::vector<std::function<Status()>>& tasks);

}  // namespace csm

#endif  // CSM_EXEC_SCHEDULER_H_
