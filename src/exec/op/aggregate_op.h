#ifndef CSM_EXEC_OP_AGGREGATE_OP_H_
#define CSM_EXEC_OP_AGGREGATE_OP_H_

#include <string>
#include <string_view>

#include "exec/op/op.h"
#include "exec/op/vectorize.h"

namespace csm {

/// The single-scan accumulate stage (paper §5.1): one aggregation hash
/// table per basic measure (plus the implicit region enumerators of
/// match joins), filled in one unsorted pass over the fact table.
///
/// The pass is morsel-parallel on the shared scheduler: the row space is
/// cut into fixed `EngineOptions::morsel_rows` morsels, executors
/// work-steal them, and every morsel accumulates into its own private
/// partial tables. Partials are merged into the job tables *in morsel
/// index order* with AggMerge — morsel boundaries depend only on the
/// morsel size, never the executor count, so the result is bit-identical
/// across thread counts (including 1, which runs the same path).
///
/// Accumulated (unfinalized) states land on PlanContext::agg_results;
/// materialization and composite evaluation belong to EmitOp, mirroring
/// the scan/combine phase split of the engine this stage replaced.
class AggregateOp : public PhysicalOp {
 public:
  /// `num_tables` is the job count the lowering planned (basic measures
  /// plus distinct enumerator granularities); `vec` the plan-time
  /// vectorization decisions. Both are display-only — Run re-derives
  /// the same decisions from the workflow and the context options.
  explicit AggregateOp(size_t num_tables = 0, VectorizeInfo vec = {})
      : num_tables_(num_tables), vec_(vec) {}

  std::string_view name() const override { return "aggregate"; }
  std::string Describe(const Schema& schema) const override;
  Status Run(PlanContext& ctx) override;

 private:
  size_t num_tables_;
  VectorizeInfo vec_;
};

}  // namespace csm

#endif  // CSM_EXEC_OP_AGGREGATE_OP_H_
