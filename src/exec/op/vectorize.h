#ifndef CSM_EXEC_OP_VECTORIZE_H_
#define CSM_EXEC_OP_VECTORIZE_H_

#include <string>

namespace csm {

class Workflow;
struct EngineOptions;

/// Plan-time summary of the vectorized kernel layer's decisions for one
/// scan stage, printed by `csm_query --explain` without executing: how
/// many where-filters compile to selection-vector kernels versus fall
/// back to the per-row interpreter, how many scan jobs carry no filter,
/// and the width of the batch-encoded group keys. Execution re-derives
/// the same decisions (the compiler is deterministic), so EXPLAIN shows
/// exactly what the scan will do.
struct VectorizeInfo {
  bool enabled = false;       // EngineOptions::vectorized at plan time
  int kernel_filters = 0;     // filters compiled to columnar kernels
  int interpreted_filters = 0;  // unsupported shapes: row interpreter
  int unfiltered = 0;         // scan jobs with no where-filter
  int key_width = 0;          // group-key width in 64-bit values

  /// One-line EXPLAIN fragment, e.g.
  /// "vectorized: filters 2 kernel / 1 interpreted, 1 unfiltered,
  ///  key 4x64-bit".
  std::string Summary() const;
};

/// Inspects every scan-side where-filter of the workflow (basic
/// measures; match-join region enumerators count as unfiltered jobs)
/// and reports which ones the predicate kernel compiler accepts.
VectorizeInfo ComputeVectorizeInfo(const Workflow& workflow,
                                   const EngineOptions& options);

}  // namespace csm

#endif  // CSM_EXEC_OP_VECTORIZE_H_
