#include "exec/op/generalize_op.h"

namespace csm {

int GranularitySweep::AddGranularity(const Granularity& gran) {
  const int existing = PassOf(gran);
  if (existing >= 0) return existing;
  grans_.push_back(gran);
  return static_cast<int>(grans_.size()) - 1;
}

int GranularitySweep::PassOf(const Granularity& gran) const {
  for (size_t i = 0; i < grans_.size(); ++i) {
    if (grans_[i] == gran) return static_cast<int>(i);
  }
  return -1;
}

GranularitySweep::Columns::Columns(const GranularitySweep* spec,
                                   size_t capacity)
    : spec_(spec) {
  const int d = spec_->schema().num_dims();
  capacity = capacity == 0 ? 1 : capacity;
  cols_.resize(spec_->num_passes());
  col_ptrs_.resize(spec_->num_passes());
  for (size_t p = 0; p < spec_->num_passes(); ++p) {
    cols_[p].assign(d, std::vector<Value>(capacity));
    for (auto& col : cols_[p]) col_ptrs_[p].push_back(col.data());
  }
  in_ptrs_.resize(d);
}

void GranularitySweep::Columns::Apply(const RecordBatch& batch, size_t n) {
  const Schema& schema = spec_->schema();
  const int d = schema.num_dims();
  const Granularity base = Granularity::Base(schema);
  for (int i = 0; i < d; ++i) in_ptrs_[i] = batch.dim_col(i);
  for (size_t p = 0; p < spec_->num_passes(); ++p) {
    GeneralizeColumns(schema, base, spec_->gran(static_cast<int>(p)),
                      in_ptrs_.data(), n, col_ptrs_[p].data());
  }
}

std::string GeneralizeOp::Describe(const Schema& schema) const {
  std::string text =
      std::to_string(spec_.num_passes()) + " hierarchy sweep(s):";
  for (size_t p = 0; p < spec_.num_passes(); ++p) {
    text += " " + spec_.gran(static_cast<int>(p)).ToString(schema);
  }
  return text;
}

Status GeneralizeOp::Run(PlanContext& ctx) {
  ctx.generalize = this;
  return Status::OK();
}

GranularitySweep BuildScanSweep(const Workflow& workflow) {
  GranularitySweep sweep(workflow.schema());
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg || def.op == MeasureOp::kMatch) {
      sweep.AddGranularity(def.gran);
    }
  }
  return sweep;
}

}  // namespace csm
