#include "exec/op/generalize_op.h"

namespace csm {

int GranularitySweep::AddGranularity(const Granularity& gran) {
  const int existing = PassOf(gran);
  if (existing >= 0) return existing;
  grans_.push_back(gran);
  return static_cast<int>(grans_.size()) - 1;
}

int GranularitySweep::PassOf(const Granularity& gran) const {
  for (size_t i = 0; i < grans_.size(); ++i) {
    if (grans_[i] == gran) return static_cast<int>(i);
  }
  return -1;
}

GranularitySweep::Columns::Columns(const GranularitySweep* spec,
                                   size_t capacity, const DictPlan* dict)
    : spec_(spec), dict_(dict), base_(Granularity::Base(spec->schema())) {
  const int d = spec_->schema().num_dims();
  capacity = capacity == 0 ? 1 : capacity;
  cols_.resize(spec_->num_passes());
  col_ptrs_.resize(spec_->num_passes());
  for (size_t p = 0; p < spec_->num_passes(); ++p) {
    cols_[p].assign(d, std::vector<Value>(capacity));
    for (auto& col : cols_[p]) col_ptrs_[p].push_back(col.data());
  }
  in_ptrs_.resize(d);
  pass_ready_.assign(spec_->num_passes(), 0);
}

void GranularitySweep::Columns::Apply(const RecordBatch& batch, size_t n) {
  BeginBatch(batch, n);
  for (size_t p = 0; p < spec_->num_passes(); ++p) {
    EnsurePass(static_cast<int>(p));
  }
}

void GranularitySweep::Columns::BeginBatch(const RecordBatch& batch,
                                           size_t n) {
  batch_ = &batch;
  n_ = n;
  std::fill(pass_ready_.begin(), pass_ready_.end(), 0);
}

void GranularitySweep::Columns::EnsurePass(int pass) {
  if (pass_ready_[static_cast<size_t>(pass)]) return;
  pass_ready_[static_cast<size_t>(pass)] = 1;
  const Schema& schema = spec_->schema();
  const int d = schema.num_dims();
  const uint32_t* const* codes =
      dict_ != nullptr && batch_->has_codes() ? batch_->code_cols()
                                              : nullptr;
  if (codes != nullptr) {
    // Dictionary path: the hierarchy sweep was precomputed into the
    // pass's LUTs; per row this is one gather per dimension.
    for (int i = 0; i < d; ++i) {
      const Value* lut = dict_->luts[pass][i].data();
      const uint32_t* code = codes[i];
      Value* out = col_ptrs_[pass][i];
      for (size_t r = 0; r < n_; ++r) out[r] = lut[code[r]];
    }
    return;
  }
  for (int i = 0; i < d; ++i) in_ptrs_[i] = batch_->dim_col(i);
  GeneralizeColumns(schema, base_, spec_->gran(pass), in_ptrs_.data(), n_,
                    col_ptrs_[pass].data());
}

std::string GeneralizeOp::Describe(const Schema& schema) const {
  std::string text =
      std::to_string(spec_.num_passes()) + " hierarchy sweep(s):";
  for (size_t p = 0; p < spec_.num_passes(); ++p) {
    text += " " + spec_.gran(static_cast<int>(p)).ToString(schema);
  }
  return text;
}

Status GeneralizeOp::Run(PlanContext& ctx) {
  ctx.generalize = this;
  // Dictionary artifacts ride the sweep spec: any plan that generalizes
  // batches gets its LUTs (and filter-bitset views) from one place. The
  // raw path stays authoritative when the knob is off, the scan is
  // scalar (the per-row reference), or the input streams from a file
  // (no in-memory table to encode).
  const EngineOptions& options = ctx.exec->options;
  if (options.dict_encoding && options.vectorized) {
    const FactTable* table =
        ctx.sorted != nullptr ? ctx.sorted.get() : ctx.fact;
    if (table != nullptr) {
      ctx.dict = BuildDictPlan(*table, spec_);
    }
  }
  return Status::OK();
}

std::shared_ptr<const DictPlan> BuildDictPlan(
    const FactTable& table, const GranularitySweep& sweep) {
  auto plan = std::make_shared<DictPlan>();
  plan->table = &table;
  plan->enc = &table.EnsureDictEncoding();
  const Schema& schema = sweep.schema();
  const int d = schema.num_dims();
  plan->views.resize(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    plan->views[i].values = plan->enc->dicts[i].values().data();
    plan->views[i].size = plan->enc->dicts[i].size();
  }
  plan->luts.resize(sweep.num_passes());
  for (size_t p = 0; p < sweep.num_passes(); ++p) {
    const Granularity& gran = sweep.gran(static_cast<int>(p));
    auto& pass_luts = plan->luts[p];
    pass_luts.resize(static_cast<size_t>(d));
    for (int i = 0; i < d; ++i) {
      const std::vector<Value>& values = plan->enc->dicts[i].values();
      std::vector<Value>& lut = pass_luts[i];
      lut.resize(values.size());
      // The LUT is the raw path's own GeneralizeColumn run once over the
      // dictionary instead of once per batch — bit-identical downstream.
      schema.dim(i).hierarchy->GeneralizeColumn(
          values.data(), values.size(), /*from_level=*/0, gran.level(i),
          lut.data());
      ++plan->num_luts;
      plan->lut_entries += lut.size();
    }
  }
  return plan;
}

GranularitySweep BuildScanSweep(const Workflow& workflow) {
  GranularitySweep sweep(workflow.schema());
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg || def.op == MeasureOp::kMatch) {
      sweep.AddGranularity(def.gran);
    }
  }
  return sweep;
}

}  // namespace csm
