#ifndef CSM_EXEC_OP_EMIT_OP_H_
#define CSM_EXEC_OP_EMIT_OP_H_

#include <string>
#include <string_view>

#include "exec/op/op.h"

namespace csm {

/// Terminal stage: turns the pipeline's accumulated state into the run's
/// EvalOutput under the "combine" span.
///
///  - kCollect (sort/scan family): the propagate stage already finalized
///    every stream in sorted order; sort each kept table by key and move
///    it into the output.
///  - kComposite (single-scan family): materialize the accumulated agg
///    tables, evaluate composite measures (rollup / match join /
///    combine) in topological order from the fully materialized tables,
///    then keep only the requested outputs.
class EmitOp : public PhysicalOp {
 public:
  enum class Mode { kCollect, kComposite };

  explicit EmitOp(Mode mode) : mode_(mode) {}

  std::string_view name() const override { return "emit"; }
  std::string Describe(const Schema& schema) const override;
  Status Run(PlanContext& ctx) override;

 private:
  Status RunCollect(PlanContext& ctx);
  Status RunComposite(PlanContext& ctx);

  Mode mode_;
};

}  // namespace csm

#endif  // CSM_EXEC_OP_EMIT_OP_H_
