#include "exec/op/vectorize.h"

#include <set>
#include <vector>

#include "algebra/evaluator.h"
#include "exec/engine.h"
#include "expr/predicate_kernel.h"
#include "workflow/workflow.h"

namespace csm {

std::string VectorizeInfo::Summary() const {
  if (!enabled) {
    return "vectorized: off (per-row interpreter scan)";
  }
  return "vectorized: filters " + std::to_string(kernel_filters) +
         " kernel / " + std::to_string(interpreted_filters) +
         " interpreted, " + std::to_string(unfiltered) +
         " unfiltered, key " + std::to_string(key_width) + "x64-bit";
}

VectorizeInfo ComputeVectorizeInfo(const Workflow& workflow,
                                   const EngineOptions& options) {
  VectorizeInfo info;
  info.enabled = options.vectorized;
  const Schema& schema = *workflow.schema();
  info.key_width = schema.num_dims();
  const auto vars = FactRowVars(schema);
  // Same scan-job enumeration as the aggregate/propagate stages: one
  // job per basic measure, one region enumerator per distinct match
  // granularity (enumerators never carry filters).
  std::set<std::vector<int>> enum_grans;
  for (const MeasureDef& def : workflow.measures()) {
    if (def.op == MeasureOp::kBaseAgg) {
      if (def.where == nullptr) {
        ++info.unfiltered;
      } else if (PredicateKernel::Compile(*def.where, vars,
                                          schema.num_dims())
                     .has_value()) {
        ++info.kernel_filters;
      } else {
        ++info.interpreted_filters;
      }
    } else if (def.op == MeasureOp::kMatch) {
      if (enum_grans.insert(def.gran.levels()).second) ++info.unfiltered;
    }
  }
  return info;
}

}  // namespace csm
