#include "exec/op/scan_op.h"

#include "common/logging.h"
#include "exec/op/physical_plan.h"
#include "storage/record_cursor.h"

namespace csm {

std::string ScanOp::Describe(const Schema&) const {
  switch (mode_) {
    case Mode::kUnsorted:
      return "single pass over the in-memory fact table (no sort)";
    case Mode::kSortTable:
      return "clone + sort the fact table by the plan order (pool sort)";
    case Mode::kSortFile:
      return "external-sort the fact file into runs, stream the merge";
  }
  return "?";
}

void ScanOp::RecordSortMetrics(Tracer& tracer, SpanId span,
                               const SortStats& sort_stats) {
  tracer.AddCounter(span, "rows_sorted",
                    static_cast<double>(sort_stats.rows));
  tracer.AddCounter(span, "sort_runs",
                    static_cast<double>(sort_stats.runs));
  tracer.AddCounter(span, "spilled_bytes",
                    static_cast<double>(sort_stats.spilled_bytes));
  tracer.AddCounter(span, "overlapped_runs",
                    static_cast<double>(sort_stats.overlapped_runs));
  tracer.SetAttr(span, "sort_threads",
                 std::to_string(sort_stats.threads_used));
}

Status ScanOp::Run(PlanContext& ctx) {
  const EngineOptions& options = ctx.exec->options;
  switch (mode_) {
    case Mode::kUnsorted: {
      CSM_CHECK(ctx.fact != nullptr)
          << "unsorted scan requires an in-memory fact table";
      ctx.cursor = MakeFactTableBatchCursor(*ctx.fact);
      return Status::OK();
    }
    case Mode::kSortTable: {
      CSM_CHECK(ctx.fact != nullptr);
      ScopedSpan sort_span(&ctx.tracer(), "sort", ctx.root());
      CSM_ASSIGN_OR_RETURN(TempDir temp, TempDir::Make(options.temp_dir));
      temp_ = std::move(temp);
      SortStats sort_stats;
      SortOptions sort_options;
      sort_options.memory_budget_bytes = options.memory_budget_bytes;
      sort_options.temp_dir = &*temp_;
      sort_options.threads = options.parallel_threads;
      sort_options.cancel = ctx.exec->cancel;
      if (options.dict_encoding && options.vectorized) {
        // Encode before cloning: the build memoizes on the base table
        // (shared across repeated runs and sessions), the clone carries
        // the code columns, and the in-memory sort permutes them
        // alongside the rows — so the downstream GeneralizeOp finds the
        // sorted table already encoded. If the sort spills, the merged
        // output is rebuilt row-wise without codes and the encoding is
        // simply rebuilt there.
        ctx.fact->EnsureDictEncoding();
      }
      CSM_ASSIGN_OR_RETURN(
          FactTable sorted,
          SortFactTable(ctx.fact->Clone(), ctx.plan->sort_key,
                        sort_options, &sort_stats));
      ctx.sorted = std::make_unique<FactTable>(std::move(sorted));
      RecordSortMetrics(ctx.tracer(), sort_span.id(), sort_stats);
      ctx.cursor = MakeFactTableBatchCursor(*ctx.sorted);
      return Status::OK();
    }
    case Mode::kSortFile: {
      CSM_CHECK(ctx.fact_path != nullptr)
          << "file scan requires a fact file path";
      ScopedSpan sort_span(&ctx.tracer(), "sort", ctx.root());
      CSM_ASSIGN_OR_RETURN(TempDir temp, TempDir::Make(options.temp_dir));
      temp_ = std::move(temp);
      SortStats sort_stats;
      SortOptions sort_options;
      sort_options.memory_budget_bytes = options.memory_budget_bytes;
      sort_options.temp_dir = &*temp_;
      sort_options.threads = options.parallel_threads;
      sort_options.cancel = ctx.exec->cancel;
      CSM_ASSIGN_OR_RETURN(
          ctx.cursor,
          SortFactFileBatchCursor(ctx.workflow->schema(), *ctx.fact_path,
                                  ctx.plan->sort_key, sort_options,
                                  &sort_stats));
      RecordSortMetrics(ctx.tracer(), sort_span.id(), sort_stats);
      sort_span.End();
      return Status::OK();
    }
  }
  return Status::Internal("unknown scan mode");
}

}  // namespace csm
